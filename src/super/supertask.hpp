// Supertasking — hierarchical Pfair scheduling (Moir & Ramamurthy's
// supertask approach, the standard companion technique in the Pfair
// literature for tasks that must share a processor, e.g. to avoid
// migration or to serialize non-reentrant components).
//
// A *supertask* S represents a group of component tasks at the global
// Pfair level: S competes as an ordinary task of weight wt(S); whenever S
// is allocated a quantum, an internal uniprocessor scheduler (job-level
// EDF here) decides which component runs.  The classical observation —
// reproduced by `bench_supertask` — is that wt(S) = sum of component
// weights is NOT always sufficient: the Pfair window semantics give S its
// quanta at fluid-rate *boundaries*, which can starve a component right
// before its deadline.  Inflating wt(S) ("reweighting") restores the
// guarantees at some capacity cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edf/jobs.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// One group of components served through a single supertask.
struct SupertaskGroup {
  std::string name;
  std::vector<Weight> components;  ///< per-component (e, p)
  /// Weight the supertask competes with at the global level.  Must be at
  /// least the component sum (checked).  Use `component_sum` /
  /// `inflate_weight` to construct.
  Weight super_weight;

  [[nodiscard]] Rational component_sum() const;
};

/// The lightest weight >= `target` with period at most `max_period`
/// (searches denominators 1..max_period; throws if target > 1).
[[nodiscard]] Weight inflate_weight(const Rational& target,
                                    std::int64_t max_period);

/// Result of a hierarchical run.
struct SupertaskResult {
  SlotSchedule outer;              ///< global Pfair schedule
  TaskSystem outer_system;         ///< supertasks + free tasks
  /// Per group: component job statistics under the internal EDF.
  std::vector<JobScheduleResult> group_jobs;
  /// Free (non-grouped) task misses at subtask granularity.
  std::int64_t free_misses = 0;

  [[nodiscard]] bool all_components_met() const {
    for (const JobScheduleResult& r : group_jobs) {
      if (!r.all_met()) return false;
    }
    return true;
  }
};

/// Runs the hierarchy: global PD2 (or another policy) over the
/// supertasks plus `free_tasks`, then job-level EDF inside each group
/// over the quanta its supertask received.  `horizon` bounds both levels
/// (0 = automatic from the outer system).
[[nodiscard]] SupertaskResult run_supertasked(
    const std::vector<SupertaskGroup>& groups,
    const std::vector<Weight>& free_tasks, int processors,
    std::int64_t horizon = 0, Policy policy = Policy::kPd2);

/// Worst-case supply analysis: serves one group's components by EDF over
/// the *latest legal* grant pattern — every supertask subtask scheduled
/// in the final slot of its window.  No concrete outer schedule can
/// deliver the supertask's quanta later, so a group that meets all jobs
/// here meets them under any valid Pfair schedule of the supertask.
[[nodiscard]] JobScheduleResult run_group_worst_case(
    const SupertaskGroup& group, std::int64_t horizon);

}  // namespace pfair
