#include "super/supertask.hpp"

#include <algorithm>

#include "analysis/tardiness.hpp"
#include "sched/sfq_scheduler.hpp"
#include "tasks/windows.hpp"

namespace pfair {

namespace {

/// Job-level EDF of `jobs` over the given grant slots (ascending).
JobScheduleResult edf_over_grants(const std::vector<Job>& jobs,
                                  const std::vector<std::int64_t>& grants,
                                  std::int64_t horizon) {
  std::vector<std::int64_t> left(jobs.size());
  JobScheduleResult jr;
  jr.total_jobs = static_cast<std::int64_t>(jobs.size());
  jr.completion.assign(jobs.size(), -1);
  for (std::size_t i = 0; i < jobs.size(); ++i) left[i] = jobs[i].exec;

  for (const std::int64_t t : grants) {
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (left[i] == 0 || jobs[i].release > t) continue;
      if (best < 0 || jobs[i].deadline <
                          jobs[static_cast<std::size_t>(best)].deadline) {
        best = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (best < 0) continue;  // granted quantum with nothing pending
    const auto i = static_cast<std::size_t>(best);
    if (--left[i] == 0) jr.completion[i] = t + 1;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::int64_t tard;
    if (left[i] > 0) {
      tard = horizon - jobs[i].deadline;
      jr.completion[i] = -1;
    } else {
      tard = std::max<std::int64_t>(0, jr.completion[i] - jobs[i].deadline);
    }
    if (tard > 0) ++jr.missed_jobs;
    jr.max_tardiness = std::max(jr.max_tardiness, tard);
  }
  return jr;
}

/// Expands one group's component jobs over [0, horizon).
std::vector<Job> component_jobs(const SupertaskGroup& g,
                                std::int64_t horizon) {
  std::vector<Task> comp_tasks;
  int cid = 0;
  for (const Weight& w : g.components) {
    comp_tasks.push_back(
        Task::periodic(g.name + "." + std::to_string(cid++), w, horizon));
  }
  const TaskSystem comps(std::move(comp_tasks), 1);
  return expand_jobs(comps, horizon);
}

}  // namespace

Rational SupertaskGroup::component_sum() const {
  Rational sum;
  for (const Weight& w : components) sum += w.value();
  return sum;
}

Weight inflate_weight(const Rational& target, std::int64_t max_period) {
  PFAIR_REQUIRE(target > Rational(0) && target <= Rational(1),
                "supertask weight target " << target.str()
                                           << " outside (0, 1]");
  PFAIR_REQUIRE(max_period >= 1, "max_period must be >= 1");
  Weight best(1, 1);
  Rational best_val(1);
  for (std::int64_t p = 1; p <= max_period; ++p) {
    // Smallest e with e/p >= target.
    const std::int64_t e =
        std::min<std::int64_t>(p, ceil_div_mul(target.num(), p, target.den()));
    if (e < 1) continue;
    const Rational v(e, p);
    if (v >= target && v < best_val) {
      best = Weight(e, p);
      best_val = v;
    }
  }
  return best;
}

SupertaskResult run_supertasked(const std::vector<SupertaskGroup>& groups,
                                const std::vector<Weight>& free_tasks,
                                int processors, std::int64_t horizon,
                                Policy policy) {
  PFAIR_REQUIRE(!groups.empty(), "need at least one supertask group");
  for (const SupertaskGroup& g : groups) {
    PFAIR_REQUIRE(g.super_weight.value() >= g.component_sum(),
                  "supertask " << g.name << " weight "
                               << g.super_weight.str()
                               << " below its component sum "
                               << g.component_sum().str());
  }

  // Horizon: cover several jobs of every component.
  std::int64_t h = horizon;
  if (h == 0) {
    std::int64_t max_p = 1;
    for (const SupertaskGroup& g : groups) {
      for (const Weight& w : g.components) max_p = std::max(max_p, w.p);
    }
    for (const Weight& w : free_tasks) max_p = std::max(max_p, w.p);
    h = 6 * max_p;
  }

  // Outer system: one periodic task per group + the free tasks.
  std::vector<Task> outer_tasks;
  outer_tasks.reserve(groups.size() + free_tasks.size());
  for (const SupertaskGroup& g : groups) {
    outer_tasks.push_back(Task::periodic(g.name, g.super_weight, h));
  }
  int fid = 0;
  for (const Weight& w : free_tasks) {
    outer_tasks.push_back(
        Task::periodic("free" + std::to_string(fid++), w, h));
  }
  TaskSystem outer_system(std::move(outer_tasks), processors);
  PFAIR_REQUIRE(outer_system.feasible(),
                "outer system overloaded: util "
                    << outer_system.total_utilization().str() << " > M="
                    << processors);

  SfqOptions opts;
  opts.policy = policy;
  SlotSchedule outer = schedule_sfq(outer_system, opts);

  SupertaskResult res{std::move(outer), std::move(outer_system), {}, 0};

  // Inner level: per group, job-level EDF over the received quanta.
  for (std::int32_t gi = 0;
       gi < static_cast<std::int32_t>(groups.size()); ++gi) {
    const SupertaskGroup& g = groups[static_cast<std::size_t>(gi)];
    // Slots granted to this supertask, in time order.
    std::vector<std::int64_t> grants;
    const Task& st = res.outer_system.task(gi);
    for (std::int32_t s = 0; s < st.num_subtasks(); ++s) {
      const SlotPlacement& p = res.outer.placement(SubtaskRef{gi, s});
      if (p.scheduled()) grants.push_back(p.slot);
    }
    std::sort(grants.begin(), grants.end());
    res.group_jobs.push_back(
        edf_over_grants(component_jobs(g, h), grants, h));
  }

  // Free tasks: subtask-level misses under the outer schedule.
  for (std::int32_t k = static_cast<std::int32_t>(groups.size());
       k < res.outer_system.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < res.outer_system.task(k).num_subtasks();
         ++s) {
      const SubtaskRef ref{k, s};
      if (!res.outer.placement(ref).scheduled() ||
          subtask_tardiness(res.outer_system, res.outer, ref) > 0) {
        ++res.free_misses;
      }
    }
  }
  return res;
}

JobScheduleResult run_group_worst_case(const SupertaskGroup& group,
                                       std::int64_t horizon) {
  PFAIR_REQUIRE(horizon >= 1, "horizon must be >= 1");
  PFAIR_REQUIRE(group.super_weight.value() >= group.component_sum(),
                "supertask weight below its component sum");
  // Latest legal grants: subtask i in the last slot of its window,
  // d(S_i) - 1.  Deadlines are strictly increasing, so the slots are
  // distinct and this is a valid (single-task) schedule.
  std::vector<std::int64_t> grants;
  for (std::int64_t i = 1;; ++i) {
    const std::int64_t d = pseudo_deadline(group.super_weight, i);
    if (d > horizon) break;
    grants.push_back(d - 1);
  }
  return edf_over_grants(component_jobs(group, horizon), grants, horizon);
}

}  // namespace pfair
