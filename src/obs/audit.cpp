#include "obs/audit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace pfair {

namespace {

constexpr auto kLaterCritical = [](const auto& a, const auto& b) {
  return b.t_crit < a.t_crit;  // min-heap under std::push_heap/pop_heap
};

// The classical lag bounds assume a task whose fluid service starts at
// time 0 and whose subtasks are all eligible exactly at release.
bool lag_meaningful(const Task& task) {
  if (task.kind() != TaskKind::kPeriodic) return false;
  if (task.phase() != 0) return false;
  for (std::int64_t s = 0; s < task.num_subtasks(); ++s) {
    const Subtask sub = task.subtask_at(s);
    if (sub.eligible != sub.release) return false;
  }
  return true;
}

}  // namespace

std::string AuditFinding::str() const {
  std::ostringstream os;
  os << '[' << to_string(kind) << "] ";
  if (ref.valid()) os << ref << ' ';
  os << "at " << at << ": " << detail;
  return os.str();
}

InvariantAuditor::InvariantAuditor(const TaskSystem& sys, AuditOptions opts)
    : sys_(&sys),
      opts_(opts),
      expected_seq_(static_cast<std::size_t>(sys.num_tasks()), 0),
      prev_completion_(static_cast<std::size_t>(sys.num_tasks())),
      has_placement_(static_cast<std::size_t>(sys.num_tasks()), false),
      alloc_(static_cast<std::size_t>(sys.num_tasks()), 0),
      busy_until_(static_cast<std::size_t>(sys.processors())) {
  we_.reserve(static_cast<std::size_t>(sys.num_tasks()));
  wp_.reserve(static_cast<std::size_t>(sys.num_tasks()));
  bool all_meaningful = true;
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    we_.push_back(sys.task(k).weight().e);
    wp_.push_back(sys.task(k).weight().p);
    if (all_meaningful && !lag_meaningful(sys.task(k))) {
      all_meaningful = false;
    }
  }
  lag_enabled_ = opts_.lag == AuditOptions::Lag::kOn ||
                 (opts_.lag == AuditOptions::Lag::kAuto && all_meaningful);
}

TraceEventMask InvariantAuditor::event_mask() const {
  return trace_mask_of(TraceEventKind::kSlotBegin) |
         trace_mask_of(TraceEventKind::kEventBegin) |
         trace_mask_of(TraceEventKind::kPlace) |
         trace_mask_of(TraceEventKind::kDeadlineHit) |
         trace_mask_of(TraceEventKind::kDeadlineMiss);
}

const char* InvariantAuditor::model() const {
  switch (model_) {
    case Model::kSfq:
      return "sfq";
    case Model::kDvq:
      return "dvq";
    case Model::kUnknown:
      break;
  }
  return "?";
}

Time InvariantAuditor::allowance() const {
  if (opts_.tardiness_allowance.has_value()) {
    return *opts_.tardiness_allowance;
  }
  return model_ == Model::kDvq ? kQuantum : Time();
}

void InvariantAuditor::report(Violation::Kind kind, SubtaskRef ref, Time at,
                              std::string detail) {
  ++total_;
  if (registry_ != nullptr) {
    registry_->counter(audit_metrics::kFindings).add();
    registry_
        ->counter(std::string(audit_metrics::kFindings) + "." +
                  to_string(kind))
        .add();
  }
  AuditFinding f{kind, ref, at, std::move(detail)};
  if (downstream_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kAuditFinding;
    e.aux = static_cast<std::int32_t>(kind);
    e.at = at;
    e.subject = ref;
    downstream_->on_event(e);
  }
  if (callback_) callback_(f);
  if (findings_.size() < opts_.max_findings) {
    findings_.push_back(std::move(f));
  }
}

void InvariantAuditor::on_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kSlotBegin:
      if (model_ == Model::kUnknown) model_ = Model::kSfq;
      if (model_ == Model::kSfq) check_lag_upper(e.at.slot_floor());
      break;
    case TraceEventKind::kEventBegin:
      if (model_ == Model::kUnknown) model_ = Model::kDvq;
      break;
    case TraceEventKind::kPlace:
      handle_place(e);
      break;
    case TraceEventKind::kDeadlineHit:
    case TraceEventKind::kDeadlineMiss:
      handle_deadline(e);
      break;
    default:
      break;  // ready-set/compare/idle/... carry no audited state
  }
}

void InvariantAuditor::handle_place(const TraceEvent& e) {
  const SubtaskRef ref = e.subject;
  if (ref.task < 0 || ref.task >= sys_->num_tasks() || ref.seq < 0 ||
      ref.seq >= sys_->task(ref.task).num_subtasks()) {
    std::ostringstream os;
    os << "placement references a subtask outside the task system";
    report(Violation::Kind::kUnscheduled, ref, e.at, os.str());
    return;
  }
  const auto k = static_cast<std::size_t>(ref.task);
  const Subtask sub = sys_->subtask(ref);

  // Eligibility (Eq. (6)): never before e(T_i), in either model.
  if (e.at < Time::slots(sub.eligible)) {
    std::ostringstream os;
    os << "starts at " << e.at << " < e = " << sub.eligible;
    report(Violation::Kind::kBeforeEligible, ref, e.at, os.str());
  }

  // Sequence order within the task.
  if (ref.seq != expected_seq_[k]) {
    std::ostringstream os;
    os << "placed out of sequence (expected seq " << expected_seq_[k]
       << ")";
    report(Violation::Kind::kPrecedence, ref, e.at, os.str());
  }
  expected_seq_[k] = ref.seq + 1;

  // Completion instant: one quantum in the SFQ model, the charged cost
  // (place detail) in the DVQ model.
  const Time completion = model_ == Model::kDvq
                              ? e.at + Time::ticks(e.detail)
                              : e.at + kQuantum;

  // No intra-task parallelism: a subtask may not start before its
  // predecessor's quantum completes.
  if (has_placement_[k] && e.at < prev_completion_[k]) {
    std::ostringstream os;
    os << "starts at " << e.at << " before predecessor completes at "
       << prev_completion_[k];
    report(Violation::Kind::kIntraTaskParallel, ref, e.at, os.str());
  }
  prev_completion_[k] = completion;
  has_placement_[k] = true;

  // Processor occupancy: index in range and not double-booked.  In the
  // SFQ model processors are dense slot indices 0..M-1, so an over-full
  // slot necessarily spills to proc >= M and is caught here too.
  if (e.proc < 0 || static_cast<std::size_t>(e.proc) >= busy_until_.size()) {
    std::ostringstream os;
    os << "processor " << e.proc << " outside 0.." << sys_->processors() - 1;
    report(Violation::Kind::kOverloadedSlot, ref, e.at, os.str());
  } else {
    const auto p = static_cast<std::size_t>(e.proc);
    if (busy_until_[p] > e.at) {
      std::ostringstream os;
      os << "processor " << e.proc << " busy until " << busy_until_[p];
      report(Violation::Kind::kOverloadedSlot, ref, e.at, os.str());
    }
    busy_until_[p] = completion;
  }

  // Lag lower bound: allocation may not run ahead of the fluid rate.
  // lag(t) = (e/p)*t - alloc <= -1  <=>  e*t + p <= alloc*p, all int64.
  ++alloc_[k];
  if (lag_enabled_ && model_ != Model::kDvq) {
    const std::int64_t boundary = e.at.slot_floor() + 1;
    if (we_[k] * boundary + wp_[k] <= alloc_[k] * wp_[k]) {
      const Rational lag(we_[k] * boundary - alloc_[k] * wp_[k], wp_[k]);
      std::ostringstream os;
      os << "lag = " << lag.str() << " <= -1 at t = " << boundary
         << " (over-allocated)";
      report(Violation::Kind::kLagBound, ref, e.at, os.str());
    }
  }
}

void InvariantAuditor::handle_deadline(const TraceEvent& e) {
  if (e.detail > allowance().raw_ticks()) {
    std::ostringstream os;
    os << "tardiness " << e.detail << " ticks > allowance "
       << allowance().raw_ticks() << " ticks";
    report(Violation::Kind::kDeadlineMiss, e.subject, e.at, os.str());
  }
}

std::int64_t InvariantAuditor::lag_critical_slot(std::int32_t task,
                                                 std::int64_t alloc) const {
  // First boundary t with lag(T, t) = (e/p)*t - alloc >= 1, i.e.
  // t >= (alloc + 1) * p / e, rounded up in integers.
  const auto k = static_cast<std::size_t>(task);
  return ((alloc + 1) * wp_[k] + we_[k] - 1) / we_[k];
}

void InvariantAuditor::push_lag_entry(std::int32_t task, std::int64_t t_crit,
                                      std::int64_t alloc) {
  lag_heap_.push_back(LagEntry{t_crit, task, alloc});
  std::push_heap(lag_heap_.begin(), lag_heap_.end(), kLaterCritical);
}

void InvariantAuditor::check_lag_upper(std::int64_t slot) {
  if (!lag_enabled_) return;
  if (!lag_seeded_) {
    lag_seeded_ = true;
    for (std::int32_t k = 0; k < sys_->num_tasks(); ++k) {
      if (sys_->task(k).num_subtasks() == 0) continue;
      if (we_[static_cast<std::size_t>(k)] == 0) continue;
      push_lag_entry(k, lag_critical_slot(k, 0), 0);
    }
  }
  while (!lag_heap_.empty() && lag_heap_.front().t_crit <= slot) {
    const LagEntry entry = lag_heap_.front();
    std::pop_heap(lag_heap_.begin(), lag_heap_.end(), kLaterCritical);
    lag_heap_.pop_back();
    const auto k = static_cast<std::size_t>(entry.task);
    if (alloc_[k] >= sys_->task(entry.task).num_subtasks()) {
      continue;  // task exhausted its subtasks; fluid comparison is over
    }
    if (entry.alloc != alloc_[k]) {
      // Stale: the task was served since the entry was pushed.  Its
      // critical time moved right; re-arm.
      push_lag_entry(entry.task, lag_critical_slot(entry.task, alloc_[k]),
                     alloc_[k]);
      continue;
    }
    const Rational lag(we_[k] * slot - alloc_[k] * wp_[k], wp_[k]);
    std::ostringstream os;
    os << "lag = " << lag.str() << " >= 1 at t = " << slot
       << " (under-served)";
    report(Violation::Kind::kLagBound,
           SubtaskRef{entry.task,
                      static_cast<std::int32_t>(expected_seq_[k])},
           Time::slots(slot), os.str());
    // Re-arm past this boundary so one starving task reports at its
    // next critical boundary, not every slot.
    push_lag_entry(entry.task,
                   std::max(lag_critical_slot(entry.task, alloc_[k] + 1),
                            slot + 1),
                   alloc_[k]);
  }
}

}  // namespace pfair
