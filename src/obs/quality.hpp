// Scheduler-quality counters: preemptions, migrations, idle capacity,
// and per-processor context switches.
//
// These are the practicality metrics the multiprocessor-scheduling
// literature compares algorithms on (a schedule that meets every
// deadline but thrashes tasks across CPUs is not free).  Both
// simulators maintain them incrementally when a `QualityCounters` is
// attached via SfqOptions/DvqOptions; analysis/recount.hpp recomputes
// the same numbers from a finished schedule in O(schedule), so the
// incremental path is testable against an independent oracle.
//
// Definitions (shared across the slot-synchronous and event-driven
// models; "instant" is a slot boundary for SFQ and a dispatch event for
// DVQ):
//   * preemption  — a subtask that was ready the instant its
//     predecessor completed (its eligibility time had already passed)
//     yet runs strictly later: the task held a processor and was
//     descheduled rather than continuing.  Charged once per such pair
//     (SFQ charges it at the first denied slot, DVQ at the eventual
//     start; the totals are identical);
//   * migration   — a subtask placed on a different processor than its
//     predecessor subtask;
//   * idle slot   — one processor left unoccupied for one decision
//     instant while the simulator stepped it (unit: processor-slots for
//     SFQ, processor-events for DVQ);
//   * context switch — a placement on a processor whose previous
//     placement was a *different* task (idle gaps in between do not
//     reset this; the first task on a processor is not a switch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfair {

class MetricsRegistry;  // obs/metrics.hpp

/// Accumulated quality counters for one scheduling run.
struct QualityCounters {
  std::int64_t preemptions = 0;
  std::int64_t migrations = 0;
  std::int64_t idle_slots = 0;
  std::int64_t context_switches = 0;
  /// Decision instants the simulator stepped through (slots for SFQ,
  /// dispatch events for DVQ) — the denominator for per-instant rates.
  std::int64_t decision_points = 0;
  /// Context switches attributed to each processor; sums to
  /// context_switches.
  std::vector<std::int64_t> per_proc_switches;

  bool operator==(const QualityCounters&) const = default;

  /// Ensures per_proc_switches covers `procs` processors.
  void resize_procs(std::size_t procs) {
    if (per_proc_switches.size() < procs) per_proc_switches.resize(procs);
  }
};

/// One-line human-readable rendering for CLI output.
[[nodiscard]] std::string quality_to_string(const QualityCounters& q);

/// Publishes the counters as <prefix>.* into `reg`
/// (<prefix>.preemptions, .migrations, .idle_slots, .context_switches,
/// .decision_points, .proc<k>.context_switches).  Override the prefix
/// when one registry carries several runs (e.g. "sched.quality.sfq").
void publish_quality(const QualityCounters& q, MetricsRegistry& reg,
                     const std::string& prefix = "sched.quality");

}  // namespace pfair
