#include "obs/quality.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace pfair {

std::string quality_to_string(const QualityCounters& q) {
  std::ostringstream os;
  os << "preemptions=" << q.preemptions << " migrations=" << q.migrations
     << " idle_slots=" << q.idle_slots
     << " context_switches=" << q.context_switches
     << " decision_points=" << q.decision_points;
  return os.str();
}

void publish_quality(const QualityCounters& q, MetricsRegistry& reg,
                     const std::string& prefix) {
  reg.counter(prefix + ".preemptions").add(q.preemptions);
  reg.counter(prefix + ".migrations").add(q.migrations);
  reg.counter(prefix + ".idle_slots").add(q.idle_slots);
  reg.counter(prefix + ".context_switches").add(q.context_switches);
  reg.counter(prefix + ".decision_points").add(q.decision_points);
  for (std::size_t p = 0; p < q.per_proc_switches.size(); ++p) {
    reg.counter(prefix + ".proc" + std::to_string(p) + ".context_switches")
        .add(q.per_proc_switches[p]);
  }
}

}  // namespace pfair
