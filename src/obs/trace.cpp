#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "core/assert.hpp"
#include "obs/metrics.hpp"

namespace pfair {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kSlotBegin:
      return "slot_begin";
    case TraceEventKind::kEventBegin:
      return "event_begin";
    case TraceEventKind::kReadySet:
      return "ready_set";
    case TraceEventKind::kCompare:
      return "compare";
    case TraceEventKind::kPlace:
      return "place";
    case TraceEventKind::kPreempt:
      return "preempt";
    case TraceEventKind::kMigrate:
      return "migrate";
    case TraceEventKind::kProcFree:
      return "proc_free";
    case TraceEventKind::kProcIdle:
      return "proc_idle";
    case TraceEventKind::kDeadlineHit:
      return "deadline_hit";
    case TraceEventKind::kDeadlineMiss:
      return "deadline_miss";
    case TraceEventKind::kAuditFinding:
      return "audit_finding";
  }
  return "?";
}

const char* to_string(TieRule r) {
  switch (r) {
    case TieRule::kDeadline:
      return "deadline";
    case TieRule::kBBit:
      return "bbit";
    case TieRule::kGroupDeadline:
      return "group_deadline";
    case TieRule::kWeight:
      return "weight";
    case TieRule::kTie:
      return "tie";
  }
  return "?";
}

RingBufferSink::RingBufferSink(std::size_t capacity) : buf_(capacity) {
  PFAIR_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
}

RingBufferSink::RingBufferSink(std::size_t capacity, MetricsRegistry& reg)
    : RingBufferSink(capacity) {
  drops_ = &reg.counter(obs_metrics::kTraceDropped);
}

void RingBufferSink::on_event(const TraceEvent& e) {
  if (total_ >= buf_.size() && drops_ != nullptr) drops_->add();
  buf_[static_cast<std::size_t>(total_ % buf_.size())] = e;
  ++total_;
}

std::size_t RingBufferSink::size() const {
  return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                              : buf_.size();
}

std::uint64_t RingBufferSink::dropped() const {
  return total_ < buf_.size() ? 0 : total_ - buf_.size();
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
  }
  return out;
}

std::string trace_event_json(const TraceEvent& e) {
  std::ostringstream os;
  os << R"({"k": ")" << to_string(e.kind) << R"(", "t": )"
     << e.at.raw_ticks();
  if (e.subject.valid()) {
    os << R"(, "task": )" << e.subject.task << R"(, "seq": )"
       << e.subject.seq;
  }
  if (e.other.valid()) {
    os << R"(, "vs_task": )" << e.other.task << R"(, "vs_seq": )"
       << e.other.seq;
  }
  if (e.proc >= 0) os << R"(, "proc": )" << e.proc;
  if (e.kind == TraceEventKind::kCompare) {
    os << R"(, "rule": ")" << to_string(static_cast<TieRule>(e.aux))
       << '"';
  } else if (e.aux != 0) {
    os << R"(, "aux": )" << e.aux;
  }
  if (e.detail != 0) os << R"(, "d": )" << e.detail;
  os << '}';
  return os.str();
}

void JsonlSink::on_event(const TraceEvent& e) {
  *os_ << trace_event_json(e) << '\n';
  ++lines_;
}

void JsonlSink::flush() { os_->flush(); }

}  // namespace pfair
