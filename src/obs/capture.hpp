// Replayable counterexample capture — `pfair-capture-v1`.
//
// When the invariant auditor (obs/audit.hpp) observes a violation, a
// `CounterexampleRecorder` snapshots everything needed to reproduce it
// offline: the task system (as explicit GIS subtask specs, exact for
// every task kind), the scheduler model and policy, the yield model
// parameters, the provenance seed, the finding itself, and a bounded
// prefix of the trace leading up to it.  The bundle serializes to a
// single JSON document (schema "pfair-capture-v1").
//
// `replay_bundle` re-runs the bundle through the *reference* simulators
// (sched/reference_scheduler.hpp, dvq/reference_scheduler.hpp) and maps
// the offline validity/lag checkers' verdicts back to findings — an
// independent implementation path from the online auditor, so a bundle
// that reproduces is corroborated, not merely re-observed.
// `shrink_bundle` is a greedy delta-debugging pass: drop tasks one at a
// time, then truncate the horizon, keeping each step only if the same
// kind of violation still reproduces.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dvq/yield.hpp"
#include "obs/audit.hpp"
#include "sched/priority.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Everything needed to reproduce one audited run.
struct CaptureBundle {
  /// Yield model parameters (DVQ bundles only; "full" otherwise).
  struct YieldSpec {
    std::string kind = "full";  ///< full | fixed | bern | scripted
    std::int64_t delta_ticks = 0;          ///< fixed: yield before quantum end
    std::uint64_t seed = 0;                ///< bern
    std::int64_t num = 0, den = 1;         ///< bern: early-yield probability
    std::int64_t min_ticks = 0, max_ticks = 0;  ///< bern: cost range
    /// scripted: explicit (task, seq, cost_ticks) entries.
    std::vector<std::array<std::int64_t, 3>> costs;

    /// Instantiates the model; throws on an unknown kind.
    [[nodiscard]] std::unique_ptr<YieldModel> make() const;
  };

  /// One task as explicit GIS subtask specs — exact for every task kind.
  struct TaskSpec {
    std::string name;
    std::int64_t we = 1, wp = 1;  ///< weight e/p
    std::vector<Task::SubtaskSpec> subtasks;
  };

  std::string model = "sfq";  ///< sfq | dvq
  Policy policy = Policy::kPd2;
  int processors = 1;
  std::int64_t horizon_limit = 0;  ///< 0 = scheduler default
  std::uint64_t seed = 0;          ///< provenance only (workload seed)
  /// Tardiness allowance the auditor ran with, in ticks.  Unset: the
  /// model default (zero under SFQ, one quantum under DVQ — Theorem 3).
  /// Replay applies the same allowance, so a strict-allowance finding
  /// reproduces under the same rules it was found with.
  std::optional<std::int64_t> allowance_ticks;
  YieldSpec yields;
  std::vector<TaskSpec> tasks;
  AuditFinding finding;
  std::vector<TraceEvent> trace_prefix;

  /// Prefills model/policy/processors/horizon/tasks from a live system.
  [[nodiscard]] static CaptureBundle prototype(const TaskSystem& sys,
                                               std::string model,
                                               Policy policy,
                                               std::int64_t horizon_limit = 0,
                                               std::uint64_t seed = 0);

  /// Rebuilds the task system (Task::gis per task).
  [[nodiscard]] TaskSystem build_system() const;
};

/// Serializes to the single-document pfair-capture-v1 JSON form.
[[nodiscard]] std::string capture_to_json(const CaptureBundle& b);
/// Parses a pfair-capture-v1 document; throws ContractViolation on a
/// wrong schema tag or malformed fields.
[[nodiscard]] CaptureBundle capture_from_json(std::string_view text);

/// Buffers the newest trace events and freezes a bundle on the first
/// recorded finding.  Wire it *before* the auditor in a TeeSink so the
/// triggering event is part of the prefix, and hand `record` to
/// InvariantAuditor::set_finding_callback.
class CounterexampleRecorder final : public TraceSink {
 public:
  explicit CounterexampleRecorder(CaptureBundle prototype,
                                  std::size_t prefix_capacity = 1024);

  void on_event(const TraceEvent& e) override;
  [[nodiscard]] TraceEventMask event_mask() const override {
    return kDecisionTraceEvents;
  }

  /// First call snapshots the bundle (finding + trace prefix); later
  /// calls are ignored.
  void record(const AuditFinding& f);

  [[nodiscard]] bool captured() const { return captured_; }
  /// Requires captured().
  [[nodiscard]] const CaptureBundle& bundle() const;

 private:
  CaptureBundle proto_;
  RingBufferSink ring_;
  bool captured_ = false;
};

/// Outcome of re-running a bundle through the reference simulators.
struct ReplayResult {
  /// True iff a violation of bundle.finding.kind was found again.
  bool reproduced = false;
  /// Every violation the offline checkers report (all kinds).
  std::vector<AuditFinding> findings;
};

/// Re-runs the bundle via schedule_sfq_reference / schedule_dvq_reference
/// and the offline validity + lag checkers.
[[nodiscard]] ReplayResult replay_bundle(const CaptureBundle& b);

/// Greedy delta-debugging: drops tasks (never the finding's own task),
/// then truncates the horizon, keeping each candidate only if
/// replay_bundle still reproduces the same finding kind.  Returns the
/// input unchanged if it does not reproduce in the first place.  The
/// shrunk bundle carries no trace prefix (task indices were remapped).
[[nodiscard]] CaptureBundle shrink_bundle(const CaptureBundle& b);

}  // namespace pfair
