#include "obs/capture.hpp"

#include <sstream>
#include <utility>

#include "analysis/validity.hpp"
#include "core/assert.hpp"
#include "dvq/reference_scheduler.hpp"
#include "io/json.hpp"
#include "io/trace_io.hpp"
#include "sched/reference_scheduler.hpp"

namespace pfair {

namespace {

constexpr const char* kSchema = "pfair-capture-v1";

std::optional<Violation::Kind> violation_kind_from_string(
    std::string_view s) {
  for (int k = 0; k <= static_cast<int>(Violation::Kind::kLagBound); ++k) {
    const auto kind = static_cast<Violation::Kind>(k);
    if (s == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::int64_t req_int(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  PFAIR_REQUIRE(f.is(JsonValue::Kind::kNumber) && f.is_integer,
                "capture field \"" << key << "\" must be an integer");
  return f.integer;
}

std::int64_t int_or(const JsonValue& v, std::string_view key,
                    std::int64_t fallback) {
  return v.find(key) == nullptr ? fallback : req_int(v, key);
}

const std::string& req_str(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  PFAIR_REQUIRE(f.is(JsonValue::Kind::kString),
                "capture field \"" << key << "\" must be a string");
  return f.string;
}

const JsonValue& req_array(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  PFAIR_REQUIRE(f.is(JsonValue::Kind::kArray),
                "capture field \"" << key << "\" must be an array");
  return f;
}

std::int64_t elem_int(const JsonValue& arr, std::size_t i) {
  PFAIR_REQUIRE(i < arr.array.size() &&
                    arr.array[i].is(JsonValue::Kind::kNumber) &&
                    arr.array[i].is_integer,
                "capture array element " << i << " must be an integer");
  return arr.array[i].integer;
}

}  // namespace

std::unique_ptr<YieldModel> CaptureBundle::YieldSpec::make() const {
  if (kind == "full") return std::make_unique<FullQuantumYield>();
  if (kind == "fixed") {
    return std::make_unique<FixedYield>(Time::ticks(delta_ticks));
  }
  if (kind == "bern") {
    return std::make_unique<BernoulliYield>(seed, num, den,
                                            Time::ticks(min_ticks),
                                            Time::ticks(max_ticks));
  }
  if (kind == "scripted") {
    auto y = std::make_unique<ScriptedYield>();
    for (const auto& c : costs) {
      y->set(SubtaskRef{static_cast<std::int32_t>(c[0]),
                        static_cast<std::int32_t>(c[1])},
             Time::ticks(c[2]));
    }
    return y;
  }
  PFAIR_REQUIRE(false, "unknown yield kind \"" << kind << "\"");
  return nullptr;  // unreachable
}

CaptureBundle CaptureBundle::prototype(const TaskSystem& sys,
                                       std::string model, Policy policy,
                                       std::int64_t horizon_limit,
                                       std::uint64_t seed) {
  CaptureBundle b;
  b.model = std::move(model);
  b.policy = policy;
  b.processors = sys.processors();
  b.horizon_limit = horizon_limit;
  b.seed = seed;
  b.tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& t = sys.task(k);
    TaskSpec spec;
    spec.name = t.name();
    spec.we = t.weight().e;
    spec.wp = t.weight().p;
    spec.subtasks.reserve(static_cast<std::size_t>(t.num_subtasks()));
    for (std::int64_t s = 0; s < t.num_subtasks(); ++s) {
      const Subtask sub = t.subtask_at(s);
      spec.subtasks.push_back(
          Task::SubtaskSpec{sub.index, sub.theta, sub.eligible});
    }
    b.tasks.push_back(std::move(spec));
  }
  return b;
}

TaskSystem CaptureBundle::build_system() const {
  PFAIR_REQUIRE(!tasks.empty(), "capture bundle holds no tasks");
  std::vector<Task> ts;
  ts.reserve(tasks.size());
  for (const TaskSpec& t : tasks) {
    ts.push_back(Task::gis(t.name, Weight{t.we, t.wp}, t.subtasks));
  }
  return TaskSystem(std::move(ts), processors);
}

std::string capture_to_json(const CaptureBundle& b) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kSchema << "\",\n";
  os << "  \"model\": \"" << json_escape(b.model) << "\",\n";
  os << "  \"policy\": \"" << to_string(b.policy) << "\",\n";
  os << "  \"processors\": " << b.processors << ",\n";
  os << "  \"horizon_limit\": " << b.horizon_limit << ",\n";
  os << "  \"seed\": " << b.seed << ",\n";
  if (b.allowance_ticks.has_value()) {
    os << "  \"allowance_ticks\": " << *b.allowance_ticks << ",\n";
  }

  os << "  \"yields\": {\"kind\": \"" << json_escape(b.yields.kind) << "\"";
  if (b.yields.kind == "fixed") {
    os << ", \"delta_ticks\": " << b.yields.delta_ticks;
  } else if (b.yields.kind == "bern") {
    os << ", \"seed\": " << b.yields.seed << ", \"num\": " << b.yields.num
       << ", \"den\": " << b.yields.den
       << ", \"min_ticks\": " << b.yields.min_ticks
       << ", \"max_ticks\": " << b.yields.max_ticks;
  } else if (b.yields.kind == "scripted") {
    os << ", \"costs\": [";
    for (std::size_t i = 0; i < b.yields.costs.size(); ++i) {
      const auto& c = b.yields.costs[i];
      os << (i == 0 ? "" : ", ") << '[' << c[0] << ", " << c[1] << ", "
         << c[2] << ']';
    }
    os << ']';
  }
  os << "},\n";

  os << "  \"tasks\": [\n";
  for (std::size_t i = 0; i < b.tasks.size(); ++i) {
    const CaptureBundle::TaskSpec& t = b.tasks[i];
    os << "    {\"name\": \"" << json_escape(t.name) << "\", \"w\": ["
       << t.we << ", " << t.wp << "], \"subtasks\": [";
    for (std::size_t s = 0; s < t.subtasks.size(); ++s) {
      const Task::SubtaskSpec& sub = t.subtasks[s];
      os << (s == 0 ? "" : ", ") << '[' << sub.index << ", " << sub.theta
         << ", " << sub.eligible << ']';
    }
    os << "]}" << (i + 1 < b.tasks.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  os << "  \"finding\": {\"kind\": \"" << to_string(b.finding.kind)
     << "\", \"task\": " << b.finding.ref.task
     << ", \"seq\": " << b.finding.ref.seq
     << ", \"at_ticks\": " << b.finding.at.raw_ticks() << ", \"detail\": \""
     << json_escape(b.finding.detail) << "\"},\n";

  os << "  \"trace_prefix\": [";
  for (std::size_t i = 0; i < b.trace_prefix.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ")
       << trace_event_json(b.trace_prefix[i]);
  }
  os << (b.trace_prefix.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

CaptureBundle capture_from_json(std::string_view text) {
  const JsonValue root = parse_json(text);
  PFAIR_REQUIRE(root.is(JsonValue::Kind::kObject),
                "capture bundle must be a JSON object");
  PFAIR_REQUIRE(req_str(root, "schema") == kSchema,
                "unsupported capture schema \"" << req_str(root, "schema")
                                                << "\"");
  CaptureBundle b;
  b.model = req_str(root, "model");
  PFAIR_REQUIRE(b.model == "sfq" || b.model == "dvq",
                "capture model must be \"sfq\" or \"dvq\"");
  const auto policy = policy_from_string(req_str(root, "policy"));
  PFAIR_REQUIRE(policy.has_value(),
                "unknown policy \"" << req_str(root, "policy") << "\"");
  b.policy = *policy;
  b.processors = static_cast<int>(req_int(root, "processors"));
  b.horizon_limit = int_or(root, "horizon_limit", 0);
  b.seed = static_cast<std::uint64_t>(int_or(root, "seed", 0));
  if (root.find("allowance_ticks") != nullptr) {
    b.allowance_ticks = req_int(root, "allowance_ticks");
  }

  if (const JsonValue* y = root.find("yields"); y != nullptr) {
    PFAIR_REQUIRE(y->is(JsonValue::Kind::kObject),
                  "capture field \"yields\" must be an object");
    b.yields.kind = req_str(*y, "kind");
    b.yields.delta_ticks = int_or(*y, "delta_ticks", 0);
    b.yields.seed = static_cast<std::uint64_t>(int_or(*y, "seed", 0));
    b.yields.num = int_or(*y, "num", 0);
    b.yields.den = int_or(*y, "den", 1);
    b.yields.min_ticks = int_or(*y, "min_ticks", 0);
    b.yields.max_ticks = int_or(*y, "max_ticks", 0);
    if (const JsonValue* costs = y->find("costs"); costs != nullptr) {
      PFAIR_REQUIRE(costs->is(JsonValue::Kind::kArray),
                    "yield field \"costs\" must be an array");
      for (const JsonValue& c : costs->array) {
        PFAIR_REQUIRE(c.is(JsonValue::Kind::kArray) && c.array.size() == 3,
                      "scripted yield cost must be [task, seq, ticks]");
        b.yields.costs.push_back(
            {elem_int(c, 0), elem_int(c, 1), elem_int(c, 2)});
      }
    }
  }

  for (const JsonValue& t : req_array(root, "tasks").array) {
    PFAIR_REQUIRE(t.is(JsonValue::Kind::kObject),
                  "capture task must be a JSON object");
    CaptureBundle::TaskSpec spec;
    spec.name = req_str(t, "name");
    const JsonValue& w = req_array(t, "w");
    PFAIR_REQUIRE(w.array.size() == 2, "task weight must be [e, p]");
    spec.we = elem_int(w, 0);
    spec.wp = elem_int(w, 1);
    for (const JsonValue& s : req_array(t, "subtasks").array) {
      PFAIR_REQUIRE(s.is(JsonValue::Kind::kArray) && s.array.size() == 3,
                    "subtask spec must be [index, theta, eligible]");
      spec.subtasks.push_back(Task::SubtaskSpec{
          elem_int(s, 0), elem_int(s, 1), elem_int(s, 2)});
    }
    b.tasks.push_back(std::move(spec));
  }

  const JsonValue& f = root.at("finding");
  PFAIR_REQUIRE(f.is(JsonValue::Kind::kObject),
                "capture field \"finding\" must be an object");
  const auto kind = violation_kind_from_string(req_str(f, "kind"));
  PFAIR_REQUIRE(kind.has_value(),
                "unknown finding kind \"" << req_str(f, "kind") << "\"");
  b.finding.kind = *kind;
  b.finding.ref = SubtaskRef{static_cast<std::int32_t>(int_or(f, "task", -1)),
                             static_cast<std::int32_t>(int_or(f, "seq", -1))};
  b.finding.at = Time::ticks(int_or(f, "at_ticks", 0));
  if (const JsonValue* d = f.find("detail"); d != nullptr) {
    PFAIR_REQUIRE(d->is(JsonValue::Kind::kString),
                  "finding field \"detail\" must be a string");
    b.finding.detail = d->string;
  }

  if (const JsonValue* p = root.find("trace_prefix"); p != nullptr) {
    PFAIR_REQUIRE(p->is(JsonValue::Kind::kArray),
                  "capture field \"trace_prefix\" must be an array");
    for (const JsonValue& e : p->array) {
      b.trace_prefix.push_back(trace_event_from_json(e));
    }
  }
  return b;
}

CounterexampleRecorder::CounterexampleRecorder(CaptureBundle prototype,
                                               std::size_t prefix_capacity)
    : proto_(std::move(prototype)),
      ring_(prefix_capacity == 0 ? 1 : prefix_capacity) {}

void CounterexampleRecorder::on_event(const TraceEvent& e) {
  if (!captured_) ring_.on_event(e);
}

void CounterexampleRecorder::record(const AuditFinding& f) {
  if (captured_) return;
  captured_ = true;
  proto_.finding = f;
  proto_.trace_prefix = ring_.snapshot();
}

const CaptureBundle& CounterexampleRecorder::bundle() const {
  PFAIR_REQUIRE(captured_, "no counterexample has been captured");
  return proto_;
}

ReplayResult replay_bundle(const CaptureBundle& b) {
  ReplayResult out;
  const TaskSystem sys = b.build_system();
  ValidityReport rep;
  if (b.model == "dvq") {
    const auto yields = b.yields.make();
    DvqOptions opts;
    opts.policy = b.policy;
    opts.horizon_limit = b.horizon_limit;
    const DvqSchedule sched = schedule_dvq_reference(sys, *yields, opts);
    rep = check_dvq_schedule(sys, sched,
                             b.allowance_ticks.has_value()
                                 ? Time::ticks(*b.allowance_ticks)
                                 : kQuantum);
  } else {
    SfqOptions opts;
    opts.policy = b.policy;
    opts.horizon_limit = b.horizon_limit;
    const SlotSchedule sched = schedule_sfq_reference(sys, opts);
    // Slot checks take the allowance in whole slots; round up so any
    // sub-slot allowance still forgives the slot it falls in.
    rep = check_slot_schedule(
        sys, sched,
        b.allowance_ticks.has_value()
            ? (*b.allowance_ticks + kTicksPerSlot - 1) / kTicksPerSlot
            : 0);
    const std::int64_t horizon =
        b.horizon_limit > 0 ? b.horizon_limit : default_horizon(sys);
    // Per-task lag scan, like lag_range but stopping once the task has
    // received all its subtasks: a finite task's fluid rate keeps
    // accruing after its work is exhausted, so past that point a lag
    // >= 1 is an artifact, not under-service (cf. the online auditor,
    // which drops exhausted tasks from its heap).
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      const Task& tk = sys.task(k);
      const Rational w = tk.weight().value();
      if (w.is_zero() || tk.num_subtasks() == 0) continue;
      std::vector<bool> in_slot(static_cast<std::size_t>(horizon), false);
      for (std::int64_t s = 0; s < tk.num_subtasks(); ++s) {
        const SlotPlacement& p =
            sched.placement(SubtaskRef{static_cast<std::int32_t>(k),
                                       static_cast<std::int32_t>(s)});
        if (p.scheduled() && p.slot < horizon) {
          in_slot[static_cast<std::size_t>(p.slot)] = true;
        }
      }
      Rational cur;  // lag at t = 0 is 0
      std::int64_t served = 0;
      for (std::int64_t t = 0; t <= horizon; ++t) {
        if (!(cur > Rational(-1)) || !(cur < Rational(1))) {
          out.findings.push_back(AuditFinding{
              Violation::Kind::kLagBound,
              SubtaskRef{static_cast<std::int32_t>(k), -1},
              Time::slots(t),
              "lag = " + cur.str() + " leaves (-1, 1) at t = " +
                  std::to_string(t)});
          break;
        }
        if (served == tk.num_subtasks() || t == horizon) break;
        cur += w;
        if (in_slot[static_cast<std::size_t>(t)]) {
          cur -= Rational(1);
          ++served;
        }
      }
    }
  }
  for (const Violation& v : rep.violations) {
    out.findings.push_back(AuditFinding{v.kind, v.ref, Time(), v.detail});
  }
  for (const AuditFinding& f : out.findings) {
    if (f.kind == b.finding.kind) {
      out.reproduced = true;
      break;
    }
  }
  return out;
}

namespace {

// Removes task `victim`, remapping the finding's task index and any
// scripted yield entries; the trace prefix is dropped (stale indices).
CaptureBundle drop_task(const CaptureBundle& b, std::size_t victim) {
  CaptureBundle out = b;
  out.trace_prefix.clear();
  out.tasks.erase(out.tasks.begin() + static_cast<std::ptrdiff_t>(victim));
  const auto remap = [victim](std::int64_t t) {
    return t > static_cast<std::int64_t>(victim) ? t - 1 : t;
  };
  if (out.finding.ref.task >= 0) {
    out.finding.ref.task =
        static_cast<std::int32_t>(remap(out.finding.ref.task));
  }
  std::vector<std::array<std::int64_t, 3>> costs;
  costs.reserve(out.yields.costs.size());
  for (const auto& c : out.yields.costs) {
    if (c[0] == static_cast<std::int64_t>(victim)) continue;
    costs.push_back({remap(c[0]), c[1], c[2]});
  }
  out.yields.costs = std::move(costs);
  return out;
}

}  // namespace

CaptureBundle shrink_bundle(const CaptureBundle& b) {
  CaptureBundle best = b;
  if (!replay_bundle(best).reproduced) return best;
  best.trace_prefix.clear();

  // Pass 1: greedily drop tasks (never the finding's own) to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < best.tasks.size() && best.tasks.size() > 1;) {
      if (best.finding.ref.task == static_cast<std::int64_t>(i)) {
        ++i;
        continue;
      }
      CaptureBundle cand = drop_task(best, i);
      if (replay_bundle(cand).reproduced) {
        best = std::move(cand);
        changed = true;  // indices shifted; i now names the next task
      } else {
        ++i;
      }
    }
  }

  // Pass 2: truncate the horizon — smallest power-of-two horizon (from 4
  // slots) that still reproduces, if any beats the current one.
  const std::int64_t full = best.horizon_limit > 0
                                ? best.horizon_limit
                                : default_horizon(best.build_system());
  for (std::int64_t h = 4; h < full; h *= 2) {
    CaptureBundle cand = best;
    cand.horizon_limit = h;
    if (replay_bundle(cand).reproduced) {
      best = std::move(cand);
      break;
    }
  }
  return best;
}

}  // namespace pfair
