#include "obs/probe.hpp"

namespace pfair {

void SchedProbe::attach_metrics(MetricsRegistry& reg) {
  invocations_ = &reg.counter(sched_metrics::kInvocations);
  comparisons_ = &reg.counter(sched_metrics::kComparisons);
  placements_ = &reg.counter(sched_metrics::kPlacements);
  preemptions_ = &reg.counter(sched_metrics::kPreemptions);
  migrations_ = &reg.counter(sched_metrics::kMigrations);
  idle_quanta_ = &reg.counter(sched_metrics::kIdleQuanta);
  deadline_misses_ = &reg.counter(sched_metrics::kDeadlineMisses);
  ready_size_ = &reg.histogram(sched_metrics::kReadySetSize);
  compares_per_decision_ =
      &reg.histogram(sched_metrics::kComparesPerDecision);
  tardiness_ = &reg.histogram(sched_metrics::kTardinessTicks);
}

}  // namespace pfair
