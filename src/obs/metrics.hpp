// Per-run metrics registry: named counters, gauges and log2-bucketed
// histograms with cheap thread-striped accumulation.
//
// The registry is the write-side; reads go through `snapshot()`, which
// sums the stripes into a plain, deterministic `MetricsSnapshot` (JSON
// serialization lives in io/json.hpp).  Handles returned by
// `counter()` / `gauge()` / `histogram()` are stable for the lifetime
// of the registry, so hot paths resolve names once and then touch only
// a relaxed atomic per update — safe under `core/thread_pool`'s
// parallel sweeps, where many workers bump the same counters.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pfair {

namespace detail {
/// Stripe index of the calling thread (stable per thread, cheap).
[[nodiscard]] std::size_t metrics_stripe();
inline constexpr std::size_t kMetricsStripes = 8;
}  // namespace detail

/// Monotonic counter, striped across cache lines to keep concurrent
/// writers from bouncing one atomic.
class Counter {
 public:
  void add(std::int64_t d = 1) noexcept {
    stripes_[detail::metrics_stripe()].v.fetch_add(
        d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t s = 0;
    for (const Stripe& st : stripes_) {
      s += st.v.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Stripe, detail::kMetricsStripes> stripes_;
};

/// Last-writer-wins instantaneous value (plus a max-tracking helper).
class Gauge {
 public:
  void set(std::int64_t x) noexcept {
    v_.store(x, std::memory_order_relaxed);
  }
  void set_max(std::int64_t x) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram over nonnegative int64 samples.  Bucket b
/// holds samples with bit-width b (bucket 0: x <= 0); exact count, sum,
/// min and max are kept alongside the buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void add(std::int64_t x) noexcept;
  /// Folds `other`'s samples into this histogram.  Lock-free and safe
  /// against concurrent add()s on either side; associative and
  /// commutative over the resulting (count, sum, min, max, buckets).
  void merge_from(const Histogram& other) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Defined only when count() > 0.
  [[nodiscard]] std::int64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bucket(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

 private:
  void shrink_min(std::int64_t x) noexcept;
  void grow_max(std::int64_t x) noexcept;

  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Sentinel-initialized so min/max updates are a bare CAS loop with no
  // "first sample" special case — that keeps merge_from lock-free too.
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// Plain-data view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  /// (bucket index, count) for nonzero buckets, ascending.
  std::vector<std::pair<int, std::int64_t>> buckets;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Approximate q-quantile (q in [0,1]): walks the cumulative bucket
  /// counts and interpolates linearly inside the target bucket's value
  /// range, clamped to [min, max].  Exact at the extremes (quantile(0)
  /// == min, quantile(1) == max); 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

/// Deterministic point-in-time copy of a registry.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::int64_t counter_or(const std::string& name,
                                        std::int64_t fallback = 0) const {
    const auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }
};

/// Owner of named metrics.  Registration (first lookup of a name) takes
/// a mutex; subsequent updates through the returned handle are
/// lock-free.  The registry must outlive every handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Wall-clock scope timer: records elapsed nanoseconds into a histogram
/// on destruction.  Construct with nullptr to disable at zero cost.
class ScopeTimer {
 public:
  explicit ScopeTimer(Histogram* h)
      : h_(h),
        start_(h == nullptr ? std::chrono::steady_clock::time_point{}
                            : std::chrono::steady_clock::now()) {}
  /// Resolves "<name>" as a histogram of nanoseconds in `reg`.
  ScopeTimer(MetricsRegistry& reg, std::string_view name)
      : ScopeTimer(&reg.histogram(name)) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  ~ScopeTimer() {
    if (h_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    h_->add(ns.count());
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pfair
