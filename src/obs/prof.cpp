#include "obs/prof.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"

namespace pfair::prof {

namespace detail {

thread_local ThreadState* tl_state = nullptr;

struct PhaseAccum {
  std::int64_t count = 0;
  std::int64_t total_ticks = 0;
  std::int64_t self_ticks = 0;
};

struct ThreadState {
  std::thread::id tid;
  std::uint32_t index = 0;   ///< dense per-profiler thread index
  std::uint64_t epoch = 0;   ///< profiler construction tick
  std::array<PhaseAccum, static_cast<std::size_t>(kNumPhases)> accum{};
  Span* top = nullptr;       ///< innermost open span
  std::uint16_t depth = 0;
  std::vector<SpanRecord> ring;
  std::size_t ring_capacity = 0;
  std::uint64_t recorded = 0;  ///< spans pushed (>= ring.size() on overflow)

  void record(const SpanRecord& rec) {
    ++recorded;
    if (ring_capacity == 0) return;
    if (ring.size() < ring_capacity) {
      ring.push_back(rec);
    } else {
      // Overwrite round-robin: the ring always holds the newest
      // `ring_capacity` records (order restored at snapshot time).
      ring[static_cast<std::size_t>((recorded - 1) % ring_capacity)] = rec;
    }
  }
};

}  // namespace detail

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kParse: return "parse";
    case Phase::kConstruction: return "construction";
    case Phase::kKeyPrecompute: return "key_precompute";
    case Phase::kSimulate: return "simulate";
    case Phase::kCalendarWalk: return "calendar_walk";
    case Phase::kReadyHeap: return "ready_heap";
    case Phase::kDvqEvents: return "dvq_events";
    case Phase::kFingerprint: return "fingerprint";
    case Phase::kWarp: return "warp";
    case Phase::kAnalysis: return "analysis";
    case Phase::kRender: return "render";
    case Phase::kExport: return "export";
  }
  return "?";
}

#if !defined(PFAIR_PROF_CLOCK_TSC)
std::uint64_t clock_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

const char* clock_name() noexcept {
#if defined(PFAIR_PROF_CLOCK_TSC)
  return "tsc";
#else
  return "steady_clock";
#endif
}

namespace {

#if defined(PFAIR_PROF_CLOCK_TSC)
double calibrate_ns_per_tick() {
  using namespace std::chrono;
  // Three ~2 ms windows against steady_clock; the median shrugs off a
  // preemption landing inside one window.
  std::array<double, 3> samples{};
  for (double& s : samples) {
    const auto w0 = steady_clock::now();
    const std::uint64_t t0 = clock_now();
    std::this_thread::sleep_for(milliseconds(2));
    const std::uint64_t t1 = clock_now();
    const auto w1 = steady_clock::now();
    const auto ns = static_cast<double>(
        duration_cast<nanoseconds>(w1 - w0).count());
    s = t1 > t0 ? ns / static_cast<double>(t1 - t0) : 1.0;
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}
#endif

}  // namespace

double ns_per_tick() {
#if defined(PFAIR_PROF_CLOCK_TSC)
  static const double v = calibrate_ns_per_tick();
  return v;
#else
  return 1.0;
#endif
}

void Span::begin(Phase phase) noexcept {
  phase_ = phase;
  parent_ = st_->top;
  st_->top = this;
  ++st_->depth;
  child_ticks_ = 0;
  start_ = clock_now();
}

void Span::end() noexcept {
  const std::uint64_t now = clock_now();
  detail::ThreadState* st = st_;
  const std::uint64_t dur = now >= start_ ? now - start_ : 0;
  st->top = parent_;
  --st->depth;
  if (parent_ != nullptr) parent_->child_ticks_ += dur;
  detail::PhaseAccum& a =
      st->accum[static_cast<std::size_t>(static_cast<std::uint8_t>(phase_))];
  ++a.count;
  a.total_ticks += static_cast<std::int64_t>(dur);
  // Self time never goes negative even if a child overlapped a clock
  // hiccup: clamp children to the parent's duration.
  a.self_ticks +=
      static_cast<std::int64_t>(dur - std::min(child_ticks_, dur));
  st->record(SpanRecord{phase_, st->depth, st->index,
                        start_ - st->epoch, dur});
}

Profiler::Profiler(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity), epoch_(clock_now()) {}

Profiler::~Profiler() = default;

detail::ThreadState* Profiler::state_for_current_thread() {
  const std::thread::id tid = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& st : states_) {
    if (st->tid == tid) return st.get();
  }
  auto st = std::make_unique<detail::ThreadState>();
  st->tid = tid;
  st->index = static_cast<std::uint32_t>(states_.size());
  st->epoch = epoch_;
  st->ring_capacity = ring_capacity_;
  st->ring.reserve(std::min<std::size_t>(ring_capacity_, 1024));
  states_.push_back(std::move(st));
  return states_.back().get();
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  snap.clock = clock_name();
  snap.ns_per_tick = prof::ns_per_tick();
  std::array<detail::PhaseAccum, static_cast<std::size_t>(kNumPhases)>
      merged{};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap.threads = static_cast<int>(states_.size());
    for (const auto& st : states_) {
      for (std::size_t p = 0; p < merged.size(); ++p) {
        merged[p].count += st->accum[p].count;
        merged[p].total_ticks += st->accum[p].total_ticks;
        merged[p].self_ticks += st->accum[p].self_ticks;
      }
      snap.spans_recorded += st->recorded;
      snap.spans_dropped += st->recorded - st->ring.size();
      snap.spans.insert(snap.spans.end(), st->ring.begin(), st->ring.end());
    }
  }
  for (std::size_t p = 0; p < merged.size(); ++p) {
    if (merged[p].count == 0) continue;
    ProfileSnapshot::PhaseEntry e;
    e.phase = static_cast<Phase>(p);
    e.count = merged[p].count;
    e.total_ticks = merged[p].total_ticks;
    e.self_ticks = merged[p].self_ticks;
    e.total_ns = static_cast<double>(e.total_ticks) * snap.ns_per_tick;
    e.self_ns = static_cast<double>(e.self_ticks) * snap.ns_per_tick;
    snap.phases.push_back(e);
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ticks != b.start_ticks) {
                return a.start_ticks < b.start_ticks;
              }
              return a.thread < b.thread;
            });
  return snap;
}

ProfScope::ProfScope(Profiler* p) : prev_(detail::tl_state) {
  installed_ = true;
  detail::tl_state = p != nullptr ? p->state_for_current_thread() : nullptr;
}

ProfScope::~ProfScope() {
  if (installed_) detail::tl_state = prev_;
}

double ProfileSnapshot::attributed_ns() const {
  double s = 0.0;
  for (const PhaseEntry& e : phases) s += e.self_ns;
  return s;
}

const ProfileSnapshot::PhaseEntry* ProfileSnapshot::find(Phase p) const {
  for (const PhaseEntry& e : phases) {
    if (e.phase == p) return &e;
  }
  return nullptr;
}

std::string ProfileSnapshot::table() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "%-16s %10s %12s %12s\n", "phase",
                "count", "total (ms)", "self (ms)");
  os << line;
  for (const PhaseEntry& e : phases) {
    std::snprintf(line, sizeof line, "%-16s %10lld %12.3f %12.3f\n",
                  to_string(e.phase), static_cast<long long>(e.count),
                  e.total_ns / 1e6, e.self_ns / 1e6);
    os << line;
  }
  return os.str();
}

namespace {

std::string fmt_ns(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

std::string profile_to_json(const ProfileSnapshot& snap, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad4 = pad2 + "  ";
  std::ostringstream os;
  os << "{\n";
  os << pad2 << R"("clock": ")" << snap.clock << "\",\n";
  char npt[32];
  std::snprintf(npt, sizeof npt, "%.6g", snap.ns_per_tick);
  os << pad2 << R"("ns_per_tick": )" << npt << ",\n";
  os << pad2 << R"("threads": )" << snap.threads << ",\n";
  os << pad2 << R"("spans_recorded": )" << snap.spans_recorded << ",\n";
  os << pad2 << R"("spans_dropped": )" << snap.spans_dropped << ",\n";
  os << pad2 << R"("phases": {)";
  bool first = true;
  for (const ProfileSnapshot::PhaseEntry& e : snap.phases) {
    if (!first) os << ",";
    first = false;
    os << "\n"
       << pad4 << '"' << to_string(e.phase) << R"(": {"count": )" << e.count
       << R"(, "total_ns": )" << fmt_ns(e.total_ns) << R"(, "self_ns": )"
       << fmt_ns(e.self_ns) << "}";
  }
  if (!first) os << "\n" << pad2;
  os << "}\n" << pad << "}";
  return os.str();
}

void publish_profile(const ProfileSnapshot& snap, MetricsRegistry& reg) {
  for (const ProfileSnapshot::PhaseEntry& e : snap.phases) {
    const std::string base = std::string("prof.") + to_string(e.phase);
    reg.counter(base + ".count").add(e.count);
    reg.counter(base + ".total_ns")
        .add(static_cast<std::int64_t>(e.total_ns));
    reg.counter(base + ".self_ns").add(static_cast<std::int64_t>(e.self_ns));
  }
  if (snap.spans_dropped > 0) {
    reg.counter("prof.spans_dropped")
        .add(static_cast<std::int64_t>(snap.spans_dropped));
  }
}

}  // namespace pfair::prof
