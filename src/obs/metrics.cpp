#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pfair {

namespace detail {

std::size_t metrics_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricsStripes;
  return stripe;
}

}  // namespace detail

void Gauge::set_max(std::int64_t x) noexcept {
  std::int64_t cur = v_.load(std::memory_order_relaxed);
  while (x > cur &&
         !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::shrink_min(std::int64_t x) noexcept {
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::grow_max(std::int64_t x) noexcept {
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::add(std::int64_t x) noexcept {
  const int b =
      x <= 0 ? 0
             : 64 - std::countl_zero(static_cast<std::uint64_t>(x));
  buckets_[static_cast<std::size_t>(b)].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  shrink_min(x);
  grow_max(x);
}

void Histogram::merge_from(const Histogram& other) noexcept {
  std::int64_t n = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t c =
        other.buckets_[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
    if (c == 0) continue;
    buckets_[static_cast<std::size_t>(b)].fetch_add(
        c, std::memory_order_relaxed);
    n += c;
  }
  // Derive the merged count from the bucket transfer rather than
  // other.count(): under a concurrent add() on `other` the two can
  // disagree transiently, and buckets are what quantile() consumes.
  if (n != 0) count_.fetch_add(n, std::memory_order_relaxed);
  const std::int64_t s = other.sum_.load(std::memory_order_relaxed);
  if (s != 0) sum_.fetch_add(s, std::memory_order_relaxed);
  // Sentinels make empty-source merges a no-op for min/max.
  shrink_min(other.min_.load(std::memory_order_relaxed));
  grow_max(other.max_.load(std::memory_order_relaxed));
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (const auto& [b, n] : buckets) {
    const double prev = cum;
    cum += static_cast<double>(n);
    if (cum < rank) continue;
    // Bucket b covers bit-width-b values [2^(b-1), 2^b - 1]; bucket 0
    // is everything <= 0.  Interpolate by rank inside that range, then
    // clamp so the estimate never escapes the observed [min, max].
    const double lo = b == 0 ? static_cast<double>(min)
                             : std::ldexp(1.0, b - 1);
    const double hi = b == 0 ? 0.0 : std::ldexp(1.0, b) - 1.0;
    const double frac = (rank - prev) / static_cast<double>(n);
    return std::clamp(lo + frac * (hi - lo), static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    if (hs.count > 0) {
      hs.min = h->min();
      hs.max = h->max();
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n != 0) hs.buckets.emplace_back(b, n);
    }
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

}  // namespace pfair
