#include "obs/metrics.hpp"

#include <bit>

namespace pfair {

namespace detail {

std::size_t metrics_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricsStripes;
  return stripe;
}

}  // namespace detail

void Gauge::set_max(std::int64_t x) noexcept {
  std::int64_t cur = v_.load(std::memory_order_relaxed);
  while (x > cur &&
         !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::add(std::int64_t x) noexcept {
  const int b =
      x <= 0 ? 0
             : 64 - std::countl_zero(static_cast<std::uint64_t>(x));
  buckets_[static_cast<std::size_t>(b)].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample initializes min/max; racing first samples fall
    // through to the CAS loops below, so the result is still exact.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  }
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    if (hs.count > 0) {
      hs.min = h->min();
      hs.max = h->max();
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n != 0) hs.buckets.emplace_back(b, n);
    }
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

}  // namespace pfair
