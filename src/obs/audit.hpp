// Online invariant auditing — the paper's claims as an always-on
// observability signal.
//
// `InvariantAuditor` is a TraceSink: attach it to a simulator (directly,
// or behind a TeeSink) and it incrementally checks, per event, the
// properties the offline analyses in src/analysis verify at end of run:
//
//   * no processor over-allocation (per-slot load <= M in the SFQ model,
//     no double-booked processor in the DVQ model);
//   * every placement inside its subtask window — never before e(T_i)
//     (Eq. (6)), completing by d(T_i) plus the tardiness allowance
//     (b-bit semantics are carried by the window ends of Eqs. (2)-(4):
//     an overlapping b=1 window still ends exclusively at d);
//   * subtasks of one task in sequence and never in parallel;
//   * per-task lag within the classical Pfair bounds -1 < lag < 1
//     (exact Rational arithmetic; meaningful — and auto-enabled — only
//     for synchronous periodic systems, see AuditOptions::lag);
//   * tardiness <= 1 quantum under DVQ (Theorem 3; the allowance
//     defaults to one quantum in the DVQ model, zero in the SFQ model).
//
// Cost is O(changes) per decision: placements touch O(1) state each,
// and the lag upper bound uses a lazy min-heap of per-task critical
// times, so slots where nothing can go wrong cost O(1).  The auditor's
// event_mask() fits inside kDecisionTraceEvents, so attaching *only* an
// auditor keeps the simulators on their fast paths; it also tolerates
// the full instrumented stream (extra kinds are ignored), including
// streams replayed from `pfairsim --trace` JSONL files.
//
// Violations surface three ways: an `AuditFinding` record (kept up to
// AuditOptions::max_findings), a `kAuditFinding` trace event forwarded
// to an optional downstream sink, and `audit.findings[.<kind>]` metric
// counters.  A finding callback lets a CounterexampleRecorder (see
// obs/capture.hpp) snapshot a replayable bundle on first violation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/validity.hpp"
#include "core/rational.hpp"
#include "core/time.hpp"
#include "obs/trace.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

class MetricsRegistry;

/// Metric names published by the auditor.
namespace audit_metrics {
/// Total invariant violations ("audit.findings.<kind>" per kind).
inline constexpr const char* kFindings = "audit.findings";
}  // namespace audit_metrics

/// One invariant violation observed online.
struct AuditFinding {
  Violation::Kind kind = Violation::Kind::kUnscheduled;
  SubtaskRef ref;       ///< subtask involved (task may be all that's known)
  Time at;              ///< instant of the triggering event
  std::string detail;   ///< human-readable explanation

  [[nodiscard]] std::string str() const;
};

struct AuditOptions {
  /// Deadline slack before a completion counts as a violation.  Unset:
  /// zero in the SFQ model, one quantum in the DVQ model (Theorem 3).
  std::optional<Time> tardiness_allowance;

  /// The classical lag bounds are a statement about synchronous periodic
  /// systems; IS/GIS arrivals and early releases leave (-1, 1) legally.
  /// kAuto enables the lag checks only when every task is synchronous
  /// periodic with eligibility equal to release throughout (and only in
  /// the SFQ model — DVQ is covered by the tardiness bound instead).
  enum class Lag { kAuto, kOn, kOff };
  Lag lag = Lag::kAuto;

  /// Findings beyond this many are counted (and emitted downstream) but
  /// not stored.
  std::size_t max_findings = 64;
};

/// Incremental invariant checker over a scheduler trace stream.
/// The task system must outlive the auditor.
class InvariantAuditor final : public TraceSink {
 public:
  explicit InvariantAuditor(const TaskSystem& sys, AuditOptions opts = {});

  void on_event(const TraceEvent& e) override;
  /// Only the decision-outcome subset — attaching just an auditor keeps
  /// the simulator on its O(changes) fast path.
  [[nodiscard]] TraceEventMask event_mask() const override;

  /// Publishes audit.findings counters into `reg` (not owned).
  void attach_metrics(MetricsRegistry& reg) { registry_ = &reg; }
  /// Receives one kAuditFinding trace event per violation (not owned;
  /// aux = static_cast<int>(Violation::Kind), subject = the subtask).
  void set_downstream(TraceSink* sink) { downstream_ = sink; }
  /// Called synchronously on every violation (after metrics/downstream).
  void set_finding_callback(std::function<void(const AuditFinding&)> cb) {
    callback_ = std::move(cb);
  }

  /// Stored findings, oldest first (capped at AuditOptions::max_findings).
  [[nodiscard]] const std::vector<AuditFinding>& findings() const {
    return findings_;
  }
  /// Total violations observed, including unstored ones.
  [[nodiscard]] std::int64_t total_findings() const { return total_; }
  [[nodiscard]] bool clean() const { return total_ == 0; }

  /// Which model the stream turned out to be ("sfq", "dvq", or "?"
  /// before the first slot/event boundary).
  [[nodiscard]] const char* model() const;

 private:
  enum class Model { kUnknown, kSfq, kDvq };
  struct LagEntry {
    std::int64_t t_crit;  // first boundary where lag(T) >= 1 can hold
    std::int32_t task;
    std::int64_t alloc;   // allocation count when the entry was pushed
  };

  void report(Violation::Kind kind, SubtaskRef ref, Time at,
              std::string detail);
  void handle_place(const TraceEvent& e);
  void handle_deadline(const TraceEvent& e);
  void check_lag_upper(std::int64_t slot);
  [[nodiscard]] Time allowance() const;
  [[nodiscard]] std::int64_t lag_critical_slot(std::int32_t task,
                                               std::int64_t alloc) const;
  void push_lag_entry(std::int32_t task, std::int64_t t_crit,
                      std::int64_t alloc);

  const TaskSystem* sys_;
  AuditOptions opts_;
  Model model_ = Model::kUnknown;
  bool lag_enabled_ = false;
  bool lag_seeded_ = false;

  // Per-task incremental state.  Weights are kept as raw numerator /
  // denominator pairs so the per-placement lag bounds are integer
  // comparisons (e*t - alloc*p vs +-p), not Rational gcd arithmetic;
  // Rationals appear only in (cold) finding messages.
  std::vector<std::int64_t> expected_seq_;
  std::vector<Time> prev_completion_;
  std::vector<bool> has_placement_;
  std::vector<std::int64_t> alloc_;
  std::vector<std::int64_t> we_, wp_;

  // Per-processor occupancy.
  std::vector<Time> busy_until_;

  // Lazy min-heap of lag critical times (std::push_heap/pop_heap).
  std::vector<LagEntry> lag_heap_;

  std::vector<AuditFinding> findings_;
  std::int64_t total_ = 0;
  MetricsRegistry* registry_ = nullptr;
  TraceSink* downstream_ = nullptr;
  std::function<void(const AuditFinding&)> callback_;
};

}  // namespace pfair
