// SchedProbe — the single instrumentation point the simulators carry.
//
// A probe bundles an optional TraceSink with optional pre-resolved
// metric handles.  Every hook is inline and starts with a null check,
// so an unconfigured probe costs one predictable branch per call site
// and touches no memory; `enabled()` lets hot loops skip whole
// instrumentation blocks (ready-set scans, per-compare tracing) in one
// test.  Attaching metrics resolves registry names once, up front —
// the per-event path never does a string lookup.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pfair {

/// Metric names used by `SchedProbe::attach_metrics`.
namespace sched_metrics {
inline constexpr const char* kInvocations = "sched.invocations";
inline constexpr const char* kComparisons = "sched.comparisons";
inline constexpr const char* kPlacements = "sched.placements";
inline constexpr const char* kPreemptions = "sched.preemptions";
inline constexpr const char* kMigrations = "sched.migrations";
inline constexpr const char* kIdleQuanta = "sched.idle_quanta";
inline constexpr const char* kDeadlineMisses = "sched.deadline_misses";
inline constexpr const char* kReadySetSize = "sched.ready_set_size";
inline constexpr const char* kComparesPerDecision =
    "sched.comparisons_per_decision";
inline constexpr const char* kTardinessTicks = "sched.tardiness_ticks";
}  // namespace sched_metrics

class SchedProbe {
 public:
  SchedProbe() = default;

  /// Installs `sink` and caches its event mask — re-install the sink if
  /// its mask changes.
  void set_sink(TraceSink* sink) {
    sink_ = sink;
    mask_ = sink != nullptr ? sink->event_mask() : 0;
  }
  /// Resolves the sched.* metric names in `reg` (stable handles).
  void attach_metrics(MetricsRegistry& reg);

  [[nodiscard]] bool tracing() const { return sink_ != nullptr; }
  [[nodiscard]] bool metering() const { return invocations_ != nullptr; }
  /// True iff any hook would do work — hot loops branch on this once.
  [[nodiscard]] bool enabled() const { return tracing() || metering(); }
  /// True iff the naive instrumented scan is required to serve this
  /// probe: metrics need full ready-set/comparison accounting, and so
  /// does any sink wanting events beyond kDecisionTraceEvents.  When
  /// enabled() but not wants_full_instrumentation(), the simulators use
  /// the O(changes) fast path and emit only decision-outcome events.
  [[nodiscard]] bool wants_full_instrumentation() const {
    return metering() || (mask_ & ~kDecisionTraceEvents) != 0;
  }
  [[nodiscard]] TraceSink* sink() const { return sink_; }

  /// One scheduler invocation (slot boundary / event instant).
  void begin_decision(TraceEventKind kind, Time at, std::int64_t detail = 0) {
    if (invocations_ != nullptr) invocations_->add();
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = kind;
      e.at = at;
      e.detail = detail;
      emit(e);
    }
  }
  /// Commits the decision in grouping sinks (see TraceSink::flush).
  void end_decision() {
    if (sink_ != nullptr) sink_->flush();
  }

  void ready_set(Time at, std::int64_t n) {
    if (ready_size_ != nullptr) ready_size_->add(n);
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kReadySet;
      e.at = at;
      e.detail = n;
      emit(e);
    }
  }

  /// Outcome of one priority comparison (trace-only; counting goes
  /// through comparisons()).
  void compare_outcome(Time at, const SubtaskRef& winner,
                       const SubtaskRef& loser, TieRule rule) {
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kCompare;
      e.aux = static_cast<std::int32_t>(rule);
      e.at = at;
      e.subject = winner;
      e.other = loser;
      emit(e);
    }
  }
  /// `n` comparisons performed by one decision.
  void comparisons(std::int64_t n) {
    if (comparisons_ != nullptr) comparisons_->add(n);
    if (compares_per_decision_ != nullptr) compares_per_decision_->add(n);
  }

  /// `detail`: slot index (SFQ) or cost in ticks (DVQ).
  void place(Time at, const SubtaskRef& ref, int proc,
             std::int64_t detail) {
    if (placements_ != nullptr) placements_->add();
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kPlace;
      e.proc = proc;
      e.at = at;
      e.subject = ref;
      e.detail = detail;
      emit(e);
    }
  }

  void migrate(Time at, const SubtaskRef& ref, int from, int to) {
    if (migrations_ != nullptr) migrations_->add();
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kMigrate;
      e.aux = from;
      e.proc = to;
      e.at = at;
      e.subject = ref;
      emit(e);
    }
  }

  void preempt(Time at, const SubtaskRef& ref) {
    if (preemptions_ != nullptr) preemptions_->add();
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreempt;
      e.at = at;
      e.subject = ref;
      emit(e);
    }
  }

  /// A processor free at a DVQ decision instant (trace-only).
  void proc_free(Time at, int proc) {
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kProcFree;
      e.proc = proc;
      e.at = at;
      emit(e);
    }
  }

  /// `count` processors left without work after a decision.
  void idle(Time at, std::int64_t count) {
    if (idle_quanta_ != nullptr) idle_quanta_->add(count);
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kProcIdle;
      e.at = at;
      e.detail = count;
      emit(e);
    }
  }

  /// Deadline outcome of a completed subtask.
  void deadline(Time at, const SubtaskRef& ref,
                std::int64_t tardiness_ticks) {
    if (tardiness_ != nullptr) tardiness_->add(tardiness_ticks);
    if (tardiness_ticks > 0 && deadline_misses_ != nullptr) {
      deadline_misses_->add();
    }
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = tardiness_ticks > 0 ? TraceEventKind::kDeadlineMiss
                                   : TraceEventKind::kDeadlineHit;
      e.at = at;
      e.subject = ref;
      e.detail = tardiness_ticks;
      emit(e);
    }
  }

 private:
  void emit(const TraceEvent& e) { sink_->on_event(e); }

  TraceSink* sink_ = nullptr;
  TraceEventMask mask_ = 0;
  Counter* invocations_ = nullptr;
  Counter* comparisons_ = nullptr;
  Counter* placements_ = nullptr;
  Counter* preemptions_ = nullptr;
  Counter* migrations_ = nullptr;
  Counter* idle_quanta_ = nullptr;
  Counter* deadline_misses_ = nullptr;
  Histogram* ready_size_ = nullptr;
  Histogram* compares_per_decision_ = nullptr;
  Histogram* tardiness_ = nullptr;
};

}  // namespace pfair
