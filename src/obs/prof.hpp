// Self-profiling span layer: hierarchical RAII timing spans over a
// TSC-based clock, accumulated per phase and per thread.
//
// Design mirrors SchedProbe's zero-cost-when-off contract:
//   * compiled out entirely under -DPFAIR_NO_PROF (PFAIR_PROF_SPAN
//     expands to nothing);
//   * when compiled in but no profiler is installed on the thread, a
//     span is one thread-local pointer load and a predictable branch —
//     no clock read, no allocation;
//   * when a `ProfScope` has installed a `Profiler`, each span costs two
//     TSC reads plus a ring-buffer store on close.
//
// Spans nest: every span accumulates into its phase's {count, total,
// self} triple, where self excludes time spent in child spans (totals
// telescope, so the sum of self times over all phases equals the sum of
// top-level span durations — the "attributed" time a breakdown reports
// against wall clock).  Closed spans additionally land in a bounded
// per-thread ring (newest kept, drops counted) for timeline export
// (io/export.hpp renders them as Chrome trace `ph:"X"` events).
//
// The clock is the raw TSC on x86-64 (constant-rate on every CPU this
// project targets), calibrated once against steady_clock when a
// snapshot first needs nanoseconds; elsewhere it falls back to
// steady_clock directly (ns_per_tick == 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define PFAIR_PROF_CLOCK_TSC 1
#endif

namespace pfair {
class MetricsRegistry;  // obs/metrics.hpp
}

namespace pfair::prof {

/// The phases a run decomposes into.  Fine-grained phases (construction
/// through warp) are emitted by the library itself; coarse phases
/// (parse, simulate, analysis, render, export) are the caller's job
/// (tools/pfairsim.cpp, bench/bench_main.cpp), which keeps same-phase
/// spans from nesting across layers.
enum class Phase : std::uint8_t {
  kParse = 0,       ///< task-file parsing / scenario building
  kConstruction,    ///< task-system + simulator structure building
  kKeyPrecompute,   ///< packed 64-bit priority key tables
  kSimulate,        ///< a whole scheduling run (driver-level)
  kCalendarWalk,    ///< SFQ availability-calendar drain (per slot)
  kReadyHeap,       ///< SFQ ready-heap pops + placements of one slot
  kDvqEvents,       ///< DVQ event loop (retire + drain + dispatch); one
                    ///< span per run_until — a DVQ event is a few
                    ///< hundred ns, too fine for per-event clock reads
  kFingerprint,     ///< cycle-detect state fingerprint probes
  kWarp,            ///< cycle fast-forward counter jumps
  kAnalysis,        ///< validity / tardiness / recounts
  kRender,          ///< text/SVG rendering
  kExport,          ///< CSV / JSON / trace serialization
};
inline constexpr int kNumPhases = 12;

[[nodiscard]] const char* to_string(Phase p);

/// Raw profiling clock.  Ticks are only comparable within one process.
#if defined(PFAIR_PROF_CLOCK_TSC)
[[nodiscard]] inline std::uint64_t clock_now() noexcept { return __rdtsc(); }
#else
[[nodiscard]] std::uint64_t clock_now() noexcept;
#endif
/// Nanoseconds per clock tick, calibrated once against steady_clock on
/// first use (a few milliseconds, off the hot path).
[[nodiscard]] double ns_per_tick();
/// "tsc" or "steady_clock".
[[nodiscard]] const char* clock_name() noexcept;

/// One closed span, as kept in the per-thread ring.
struct SpanRecord {
  Phase phase{};
  std::uint16_t depth = 0;    ///< 0 = top-level
  std::uint32_t thread = 0;   ///< dense per-profiler thread index
  std::uint64_t start_ticks = 0;  ///< relative to the profiler's epoch
  std::uint64_t dur_ticks = 0;
};

/// Deterministic merged view of a profiler (take it after the profiled
/// region; accumulation is not synchronized against open spans).
struct ProfileSnapshot {
  std::string clock;
  double ns_per_tick = 1.0;
  int threads = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;  ///< overwritten in the rings

  struct PhaseEntry {
    Phase phase{};
    std::int64_t count = 0;
    std::int64_t total_ticks = 0;
    std::int64_t self_ticks = 0;  ///< total minus time in child spans
    double total_ns = 0.0;
    double self_ns = 0.0;
  };
  std::vector<PhaseEntry> phases;  ///< nonzero phases, ascending enum order
  std::vector<SpanRecord> spans;   ///< merged rings, by start tick

  /// Sum of self_ns over all phases == total duration of top-level spans.
  [[nodiscard]] double attributed_ns() const;
  [[nodiscard]] const PhaseEntry* find(Phase p) const;
  /// Human-readable per-phase breakdown table.
  [[nodiscard]] std::string table() const;
};

/// JSON object for the pfair-bench-v1 "profile" section and the
/// pfairstat differ: {clock, ns_per_tick, spans_*, phases: {name:
/// {count, total_ns, self_ns}}}.
[[nodiscard]] std::string profile_to_json(const ProfileSnapshot& snap,
                                          int indent = 0);

/// Publishes the snapshot as prof.<phase>.{count,total_ns,self_ns}
/// counters so one metrics exposition (JSON or Prometheus) carries the
/// profile too.
void publish_profile(const ProfileSnapshot& snap, MetricsRegistry& reg);

namespace detail {
struct ThreadState;
/// Non-null while a ProfScope is live on this thread.
extern thread_local ThreadState* tl_state;
}  // namespace detail

/// True iff spans on this thread currently record anywhere.
[[nodiscard]] inline bool active() noexcept {
  return detail::tl_state != nullptr;
}

/// Owner of the per-thread accumulation state.  Create one per profiled
/// run, install it with ProfScope, snapshot() at the end.  Thread-safe:
/// each participating thread gets its own state on first ProfScope.
class Profiler {
 public:
  /// `ring_capacity` bounds the span timeline kept per thread (the
  /// per-phase accumulators are exact regardless).
  explicit Profiler(std::size_t ring_capacity = std::size_t{1} << 14);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  friend class ProfScope;
  [[nodiscard]] detail::ThreadState* state_for_current_thread();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::ThreadState>> states_;
  std::size_t ring_capacity_;
  std::uint64_t epoch_;
};

/// RAII installer: while alive, spans on the constructing thread record
/// into `p`.  A null profiler *suspends* recording (any outer
/// installation resumes on destruction) — how the scaling bench times
/// its spans-off baseline under an active --profile.  Scopes may nest
/// and must be destroyed in LIFO order on the thread that created them.
class ProfScope {
 public:
  explicit ProfScope(Profiler* p);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  detail::ThreadState* prev_;
  bool installed_;
};

/// One hierarchical timing span.  Constructing against an inactive
/// thread is one pointer load; the profiler (if any) must outlive the
/// span.
class Span {
 public:
  explicit Span(Phase phase) noexcept : st_(detail::tl_state) {
    if (st_ == nullptr) [[likely]] {
      return;
    }
    begin(phase);
  }
  ~Span() {
    if (st_ != nullptr) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(Phase phase) noexcept;  // prof.cpp — needs ThreadState
  void end() noexcept;

  detail::ThreadState* st_;
  Span* parent_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t child_ticks_ = 0;
  Phase phase_{};

  friend struct detail::ThreadState;
};

}  // namespace pfair::prof

// Span convenience macro: `PFAIR_PROF_SPAN(kSimulate);` opens a span
// for the rest of the enclosing scope.  Compiles out entirely under
// -DPFAIR_NO_PROF (the acceptance path for "compile-out-to-zero").
#if defined(PFAIR_NO_PROF)
#define PFAIR_PROF_SPAN(phase) ((void)0)
#else
#define PFAIR_PROF_SPAN_CAT2(a, b) a##b
#define PFAIR_PROF_SPAN_CAT(a, b) PFAIR_PROF_SPAN_CAT2(a, b)
#define PFAIR_PROF_SPAN(phase)                       \
  const ::pfair::prof::Span PFAIR_PROF_SPAN_CAT(     \
      pfair_prof_span_, __LINE__) {                  \
    ::pfair::prof::Phase::phase                      \
  }
#endif
