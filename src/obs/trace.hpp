// Structured scheduler trace events — the decision-level record the
// paper's arguments (and the overhead accounting of Nelissen et al.)
// are made of: slot/event boundaries, ready sets, priority-comparison
// outcomes, placements, preemptions, migrations and deadline results.
//
// Events are emitted by the simulators into an installed `TraceSink`;
// with no sink installed the hot paths skip all trace work (a single
// predictable branch).  Two sinks ship with the library: a bounded
// in-memory ring buffer (keeps the newest events, counts drops) and a
// streaming JSONL sink (one JSON object per line).  `TeeSink` fans one
// event stream out to two sinks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/time.hpp"
#include "tasks/subtask.hpp"

namespace pfair {

class MetricsRegistry;
class Counter;

/// What happened at one instant of a simulated run.
enum class TraceEventKind : std::uint8_t {
  kSlotBegin,     ///< SFQ slot boundary reached (detail = slot index)
  kEventBegin,    ///< DVQ event instant reached
  kReadySet,      ///< ready set computed (detail = its size)
  kCompare,       ///< priority comparison: subject beat other (aux = rule)
  kPlace,         ///< subject placed on proc (detail = cost/slot)
  kPreempt,       ///< subject was ready but denied a processor
  kMigrate,       ///< subject placed on proc != predecessor's (aux = from)
  kProcFree,      ///< proc free at a DVQ decision instant
  kProcIdle,      ///< capacity left idle after a decision (detail = count)
  kDeadlineHit,   ///< subject completed by its deadline
  kDeadlineMiss,  ///< subject missed (detail = tardiness in ticks)
  kAuditFinding,  ///< invariant violation (aux = Violation::Kind, detail =
                  ///< finding payload; see obs/audit.hpp)
};

[[nodiscard]] const char* to_string(TraceEventKind k);

/// Bitmask over TraceEventKind: bit `1 << kind` set means the sink wants
/// events of that kind.  A sink's mask is a *path-selection hint* for the
/// simulators, not a filter: a sink may still receive events outside its
/// mask (e.g. from an instrumented run forced by another sink in a tee).
using TraceEventMask = std::uint32_t;

[[nodiscard]] constexpr TraceEventMask trace_mask_of(TraceEventKind k) {
  return TraceEventMask{1} << static_cast<unsigned>(k);
}

/// Every event kind (the default sink mask).
inline constexpr TraceEventMask kAllTraceEvents =
    (trace_mask_of(TraceEventKind::kAuditFinding) << 1) - 1;

/// The decision-outcome subset the O(changes) fast paths can emit without
/// falling back to the naive instrumented scan: slot/event boundaries,
/// placements, migrations and deadline outcomes.  A sink whose mask is a
/// subset of this keeps the simulator on the fast path (see
/// SchedProbe::wants_full_instrumentation); ready-set sizes, comparison
/// outcomes, preemptions, free/idle processors require the full scan.
inline constexpr TraceEventMask kDecisionTraceEvents =
    trace_mask_of(TraceEventKind::kSlotBegin) |
    trace_mask_of(TraceEventKind::kEventBegin) |
    trace_mask_of(TraceEventKind::kPlace) |
    trace_mask_of(TraceEventKind::kMigrate) |
    trace_mask_of(TraceEventKind::kDeadlineHit) |
    trace_mask_of(TraceEventKind::kDeadlineMiss) |
    trace_mask_of(TraceEventKind::kAuditFinding);

/// Which priority rule decided a comparison (see PriorityOrder::compare).
enum class TieRule : std::uint8_t {
  kDeadline,       ///< rule 1: earlier pseudo-deadline
  kBBit,           ///< rule 2: b-bit (PD/PD2) or PF bit string
  kGroupDeadline,  ///< rule 3: later group deadline (PD/PD2)
  kWeight,         ///< PD refinement: heavier weight
  kTie,            ///< genuine tie under the policy (resolved by id)
};

[[nodiscard]] const char* to_string(TieRule r);

/// Metric names published by trace sinks.
namespace obs_metrics {
/// Events overwritten by a full RingBufferSink (truncated trace).
inline constexpr const char* kTraceDropped = "trace.ring_dropped";
}  // namespace obs_metrics

/// One compact, POD trace record.  Fields not meaningful for a given
/// kind keep their defaults.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSlotBegin;
  std::int32_t aux = 0;          ///< rule index / source processor
  int proc = -1;                 ///< processor involved, if any
  Time at;                       ///< instant of the event
  SubtaskRef subject;            ///< primary subtask, if any
  SubtaskRef other;              ///< comparison loser, if any
  std::int64_t detail = 0;       ///< kind-specific payload (see enum)
};

/// Receiver of trace events.  Implementations must tolerate events from
/// a single simulator thread; distinct simulators may use distinct
/// sinks concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
  /// Called at the end of every simulator step (and at end of run) so
  /// sinks that group events per decision can commit.  Default no-op.
  virtual void flush() {}
  /// The event kinds this sink needs (default: everything).  Queried
  /// once when the sink is installed; sinks that only need the
  /// kDecisionTraceEvents subset keep the simulator on its O(changes)
  /// fast path.
  [[nodiscard]] virtual TraceEventMask event_mask() const {
    return kAllTraceEvents;
  }
};

/// Bounded in-memory sink: keeps the `capacity` newest events and
/// counts how many older ones were overwritten.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);
  /// Same, with the drop count additionally published as the
  /// obs_metrics::kTraceDropped counter in `reg` (which must outlive the
  /// sink) so truncated traces are visible in metrics output.
  RingBufferSink(std::size_t capacity, MetricsRegistry& reg);

  void on_event(const TraceEvent& e) override;

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Total events ever received.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// The retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> buf_;
  std::uint64_t total_ = 0;  // head_ = total_ % capacity
  Counter* drops_ = nullptr;
};

/// Streaming sink: one JSON object per event, one per line (JSONL).
/// The stream must outlive the sink.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  void on_event(const TraceEvent& e) override;
  void flush() override;

  [[nodiscard]] std::uint64_t lines() const { return lines_; }

 private:
  std::ostream* os_;
  std::uint64_t lines_ = 0;
};

/// Fans events out to two sinks (either may be null).
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* a, TraceSink* b) : a_(a), b_(b) {}

  void on_event(const TraceEvent& e) override {
    if (a_ != nullptr) a_->on_event(e);
    if (b_ != nullptr) b_->on_event(e);
  }
  void flush() override {
    if (a_ != nullptr) a_->flush();
    if (b_ != nullptr) b_->flush();
  }
  /// Union of the children's needs: any child requiring the full stream
  /// pulls the whole tee onto the instrumented path.
  [[nodiscard]] TraceEventMask event_mask() const override {
    TraceEventMask m = 0;
    if (a_ != nullptr) m |= a_->event_mask();
    if (b_ != nullptr) m |= b_->event_mask();
    return m;
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

/// Serializes one event as a single-line JSON object (no newline).
[[nodiscard]] std::string trace_event_json(const TraceEvent& e);

}  // namespace pfair
