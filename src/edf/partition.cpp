#include "edf/partition.hpp"

#include <algorithm>
#include <numeric>

#include "core/rational.hpp"

namespace pfair {

std::optional<std::vector<int>> first_fit_decreasing(const TaskSystem& sys) {
  const auto n = static_cast<std::size_t>(sys.num_tasks());
  const auto m = static_cast<std::size_t>(sys.processors());

  std::vector<std::size_t> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), std::size_t{0});
  std::sort(by_weight.begin(), by_weight.end(),
            [&sys](std::size_t a, std::size_t b) {
              const Rational wa =
                  sys.task(static_cast<std::int64_t>(a)).weight().value();
              const Rational wb =
                  sys.task(static_cast<std::int64_t>(b)).weight().value();
              if (wa != wb) return wa > wb;
              return a < b;
            });

  std::vector<Rational> load(m);
  std::vector<int> assignment(n, -1);
  for (const std::size_t k : by_weight) {
    const Rational w =
        sys.task(static_cast<std::int64_t>(k)).weight().value();
    bool placed = false;
    for (std::size_t pi = 0; pi < m; ++pi) {
      if (load[pi] + w <= Rational(1)) {
        load[pi] += w;
        assignment[k] = static_cast<int>(pi);
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return assignment;
}

}  // namespace pfair
