#include "edf/partitioned_pfair.hpp"

#include "analysis/tardiness.hpp"
#include "edf/partition.hpp"

namespace pfair {

PartitionedPfairResult run_partitioned_pfair(const TaskSystem& sys,
                                             Policy policy) {
  PartitionedPfairResult res;
  std::optional<std::vector<int>> assignment = first_fit_decreasing(sys);
  if (!assignment.has_value()) return res;
  res.assignment = std::move(*assignment);
  res.partitioned = true;

  res.all_met = true;
  for (int pi = 0; pi < sys.processors(); ++pi) {
    std::vector<Task> local;
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      if (res.assignment[static_cast<std::size_t>(k)] == pi) {
        local.push_back(sys.task(k));
      }
    }
    TaskSystem one(std::move(local), 1);
    SfqOptions opts;
    opts.policy = policy;
    SlotSchedule sched = schedule_sfq(one, opts);
    const TardinessSummary sum = measure_tardiness(one, sched);
    if (!sum.none_late()) res.all_met = false;
    res.per_proc_systems.push_back(std::move(one));
    res.per_proc_schedules.push_back(std::move(sched));
  }
  return res;
}

}  // namespace pfair
