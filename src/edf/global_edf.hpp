// Preemptive global EDF on the quantum substrate.
//
// At every slot boundary, the M pending jobs with the earliest absolute
// deadlines receive the slot (a job may execute on at most one processor
// per slot; migration between slots is free).  Optimal on one processor,
// but subject to the Dhall effect on multiprocessors: schedulable
// utilization can drop toward 1 regardless of M.
#pragma once

#include "edf/jobs.hpp"

namespace pfair {

struct GlobalEdfOptions {
  /// Slots to simulate; 0 = one hyperperiod-ish default (max deadline of
  /// the expanded jobs plus slack).
  std::int64_t horizon = 0;
};

/// Runs global EDF over the jobs of `sys` released in [0, horizon).
[[nodiscard]] JobScheduleResult run_global_edf(const TaskSystem& sys,
                                               const GlobalEdfOptions& opts = {});

}  // namespace pfair
