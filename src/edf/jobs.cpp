#include "edf/jobs.hpp"

namespace pfair {

std::vector<Job> expand_jobs(const TaskSystem& sys, std::int64_t horizon) {
  PFAIR_REQUIRE(horizon >= 0, "horizon must be >= 0");
  std::vector<Job> jobs;
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    PFAIR_REQUIRE(task.kind() == TaskKind::kPeriodic ||
                      task.kind() == TaskKind::kSporadic,
                  "job expansion requires (phased) periodic tasks; task "
                      << task.name() << " is " << to_string(task.kind()));
    const Weight& w = task.weight();
    const std::int64_t phase =
        task.num_subtasks() > 0 ? task.subtask(0).theta : 0;
    for (std::int64_t j = 1;; ++j) {
      const std::int64_t release = phase + (j - 1) * w.p;
      if (release >= horizon) break;
      Job job;
      job.task = static_cast<std::int32_t>(k);
      job.number = j;
      job.release = release;
      job.deadline = release + w.p;
      job.exec = w.e;
      jobs.push_back(job);
    }
  }
  return jobs;
}

}  // namespace pfair
