#include "edf/partitioned_edf.hpp"

#include <algorithm>

#include "edf/partition.hpp"

namespace pfair {

PartitionedEdfResult run_partitioned_edf(const TaskSystem& sys,
                                         const PartitionedEdfOptions& opts) {
  PartitionedEdfResult res;
  const auto m = static_cast<std::size_t>(sys.processors());

  std::optional<std::vector<int>> assignment = first_fit_decreasing(sys);
  if (!assignment.has_value()) return res;  // partitioned stays false
  res.assignment = std::move(*assignment);
  res.partitioned = true;

  // Per-processor uniprocessor EDF over the jobs of the assigned tasks.
  std::int64_t horizon = opts.horizon;
  std::vector<Job> jobs =
      expand_jobs(sys, horizon > 0 ? horizon : sys.max_deadline());
  if (horizon == 0) {
    for (const Job& j : jobs) horizon = std::max(horizon, j.deadline);
    horizon += sys.num_tasks() + 4;
  }

  std::vector<std::int64_t> left(jobs.size());
  std::vector<std::int64_t> completion(jobs.size(), -1);
  for (std::size_t i = 0; i < jobs.size(); ++i) left[i] = jobs[i].exec;

  for (std::int64_t t = 0; t < horizon; ++t) {
    for (std::size_t pi = 0; pi < m; ++pi) {
      // Earliest-deadline pending job assigned to processor pi.
      std::ptrdiff_t best = -1;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (left[i] == 0 || jobs[i].release > t) continue;
        if (res.assignment[static_cast<std::size_t>(jobs[i].task)] !=
            static_cast<int>(pi)) {
          continue;
        }
        if (best < 0 ||
            jobs[i].deadline < jobs[static_cast<std::size_t>(best)].deadline) {
          best = static_cast<std::ptrdiff_t>(i);
        }
      }
      if (best < 0) continue;
      const auto i = static_cast<std::size_t>(best);
      if (--left[i] == 0) completion[i] = t + 1;
    }
  }

  JobScheduleResult& out = res.schedule;
  out.total_jobs = static_cast<std::int64_t>(jobs.size());
  out.completion = std::move(completion);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::int64_t tard;
    if (left[i] > 0) {
      tard = horizon - jobs[i].deadline;
      out.completion[i] = -1;
    } else {
      tard = std::max<std::int64_t>(0, out.completion[i] - jobs[i].deadline);
    }
    if (tard > 0) ++out.missed_jobs;
    out.max_tardiness = std::max(out.max_tardiness, tard);
  }
  return res;
}

}  // namespace pfair
