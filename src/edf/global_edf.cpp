#include "edf/global_edf.hpp"

#include <algorithm>

namespace pfair {

namespace {

std::int64_t jobs_horizon(const std::vector<Job>& jobs) {
  std::int64_t m = 0;
  for (const Job& j : jobs) m = std::max(m, j.deadline);
  return m;
}

JobScheduleResult finish(const TaskSystem&, const std::vector<Job>& jobs,
                         const std::vector<std::int64_t>& left,
                         std::vector<std::int64_t> completion,
                         std::int64_t horizon) {
  JobScheduleResult res;
  res.total_jobs = static_cast<std::int64_t>(jobs.size());
  res.completion = std::move(completion);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::int64_t tard;
    if (left[i] > 0) {
      tard = horizon - jobs[i].deadline;  // still unfinished at the end
      res.completion[i] = -1;
    } else {
      tard = std::max<std::int64_t>(0, res.completion[i] - jobs[i].deadline);
    }
    if (tard > 0) ++res.missed_jobs;
    res.max_tardiness = std::max(res.max_tardiness, tard);
  }
  return res;
}

}  // namespace

JobScheduleResult run_global_edf(const TaskSystem& sys,
                                 const GlobalEdfOptions& opts) {
  std::int64_t horizon = opts.horizon;
  std::vector<Job> jobs = expand_jobs(
      sys, horizon > 0 ? horizon : sys.max_deadline());
  if (horizon == 0) horizon = jobs_horizon(jobs) + sys.num_tasks() + 4;

  std::vector<std::int64_t> left(jobs.size());
  std::vector<std::int64_t> completion(jobs.size(), -1);
  for (std::size_t i = 0; i < jobs.size(); ++i) left[i] = jobs[i].exec;

  std::vector<std::size_t> pending;  // indices of released, unfinished jobs
  for (std::int64_t t = 0; t < horizon; ++t) {
    pending.clear();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (left[i] > 0 && jobs[i].release <= t) pending.push_back(i);
    }
    if (pending.empty()) continue;
    const auto m = std::min<std::size_t>(
        static_cast<std::size_t>(sys.processors()), pending.size());
    std::partial_sort(pending.begin(),
                      pending.begin() + static_cast<std::ptrdiff_t>(m),
                      pending.end(), [&jobs](std::size_t a, std::size_t b) {
                        if (jobs[a].deadline != jobs[b].deadline) {
                          return jobs[a].deadline < jobs[b].deadline;
                        }
                        return a < b;
                      });
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t i = pending[r];
      if (--left[i] == 0) completion[i] = t + 1;
    }
  }
  return finish(sys, jobs, left, std::move(completion), horizon);
}

}  // namespace pfair
