// Job-level view of periodic tasks, for the non-Pfair baselines.
//
// The paper's introduction motivates Pfair by the utilization gap: EDF-
// style approaches can only guarantee task sets with total utilization
// around M/2 in the worst case [13, 5, 4], while Pfair schedules anything
// up to M.  These baselines run on the same quantum substrate (integer
// execution costs, slot-granularity allocation) so the comparison isolates
// the scheduling policy.
#pragma once

#include <cstdint>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// One job (task invocation) with an integral execution requirement.
struct Job {
  std::int32_t task = -1;
  std::int64_t number = 0;    ///< 1-based job index
  std::int64_t release = 0;   ///< slot of release
  std::int64_t deadline = 0;  ///< absolute (implicit: release + period)
  std::int64_t exec = 0;      ///< quanta required
};

/// Expands every task of `sys` into its jobs with releases < horizon.
/// Requires periodic or sporadic (phased) tasks — job boundaries are not
/// meaningful for arbitrary GIS subtask sequences.
[[nodiscard]] std::vector<Job> expand_jobs(const TaskSystem& sys,
                                           std::int64_t horizon);

/// Result of a job-level scheduling run.
struct JobScheduleResult {
  /// Completion slot boundary of each job (index-parallel with the job
  /// vector); -1 if not finished within the simulated horizon.
  std::vector<std::int64_t> completion;
  /// max(0, completion - deadline) over finished jobs; unfinished jobs
  /// count as missing by (horizon - deadline).
  std::int64_t max_tardiness = 0;
  std::int64_t missed_jobs = 0;
  std::int64_t total_jobs = 0;

  [[nodiscard]] bool all_met() const { return missed_jobs == 0; }
};

}  // namespace pfair
