// Partitioned EDF: first-fit-decreasing task assignment + per-processor
// uniprocessor EDF.
//
// Tasks are statically bound to processors (no migration), so the binding
// step is a bin-packing problem; first-fit decreasing by utilization is
// the standard heuristic.  Worst-case guaranteed utilization is about
// (M+1)/2 [13] — the other side of the gap Pfair closes.
#pragma once

#include <vector>

#include "edf/jobs.hpp"

namespace pfair {

struct PartitionedEdfOptions {
  std::int64_t horizon = 0;  ///< 0 = automatic (as global EDF)
};

struct PartitionedEdfResult {
  /// False if first-fit-decreasing could not place every task (a task's
  /// weight did not fit on any processor); `schedule` is then empty.
  bool partitioned = false;
  std::vector<int> assignment;  ///< processor per task (when partitioned)
  JobScheduleResult schedule;
};

/// Partitions and runs per-processor EDF.  Uniprocessor EDF is optimal, so
/// when every processor's assigned utilization is <= 1 no job misses.
[[nodiscard]] PartitionedEdfResult run_partitioned_edf(
    const TaskSystem& sys, const PartitionedEdfOptions& opts = {});

}  // namespace pfair
