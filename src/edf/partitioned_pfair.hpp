// Partitioned Pfair: first-fit-decreasing assignment + an independent
// uniprocessor Pfair (PD2) schedule per processor.
//
// A useful middle baseline between partitioned EDF and global Pfair:
// once a partition exists, every processor is a feasible uniprocessor
// Pfair instance (utilization <= 1), so all windows are met — the ONLY
// failure mode is the bin packing itself, which is exactly the
// utilization gap Pfair's global optimality closes (Sec. 1).
#pragma once

#include <vector>

#include "sched/schedule.hpp"
#include "sched/sfq_scheduler.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

struct PartitionedPfairResult {
  bool partitioned = false;
  std::vector<int> assignment;  ///< processor per task (when partitioned)
  /// One single-processor system + schedule per processor, index-aligned
  /// with processors.  Tasks keep their global order within a processor.
  std::vector<TaskSystem> per_proc_systems;
  std::vector<SlotSchedule> per_proc_schedules;
  bool all_met = false;
};

/// Partitions and schedules each processor independently with the given
/// policy (PD2 by default — optimal on one processor, so `all_met` is
/// true whenever `partitioned` is).
[[nodiscard]] PartitionedPfairResult run_partitioned_pfair(
    const TaskSystem& sys, Policy policy = Policy::kPd2);

}  // namespace pfair
