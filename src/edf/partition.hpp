// First-fit-decreasing bin packing of tasks onto processors — shared by
// the partitioned baselines (partitioned EDF, partitioned Pfair).
#pragma once

#include <optional>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// Assigns each task a processor by first-fit decreasing utilization,
/// never loading a processor past 1.  Returns std::nullopt when some
/// task does not fit (the bin-packing failure the intro's utilization
/// gap comes from).
[[nodiscard]] std::optional<std::vector<int>> first_fit_decreasing(
    const TaskSystem& sys);

}  // namespace pfair
