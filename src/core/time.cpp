#include "core/time.hpp"

#include <ostream>
#include <sstream>

namespace pfair {

std::string Time::str() const {
  const std::int64_t s = slot_floor();
  const std::int64_t rem = ticks_ - s * kTicksPerSlot;
  std::ostringstream os;
  if (rem == 0) {
    os << s;
  } else {
    os << s << '+' << rem << "/2^20";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.str(); }

}  // namespace pfair
