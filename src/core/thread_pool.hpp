// A minimal work-sharing thread pool for the experiment harness.
//
// Large randomized sweeps (thousands of independent task-system
// simulations) are embarrassingly parallel; `parallel_for` splits an index
// range into contiguous chunks, one in-flight chunk per worker, with a
// shared atomic cursor for dynamic load balancing.  The simulators
// themselves are single-threaded and share no mutable state, so no locking
// is needed beyond the cursor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfair {

/// Fixed-size pool created once and reused across sweeps.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run `body(i)` for every i in [begin, end), distributing chunks of
  /// `grain` indices across the pool.  Blocks until all iterations finish.
  /// Exceptions thrown by `body` are rethrown (first one wins).
  ///
  /// `grain == 0` (the default) picks max(1, (end - begin) / (8 * size()))
  /// — about eight chunks per worker, amortizing the atomic cursor on
  /// cheap bodies while keeping enough chunks for load balancing.  Pass
  /// an explicit grain >= 1 to override (e.g. 1 for very lumpy bodies).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& body,
                    std::int64_t grain = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> job_;       // current chunk-claiming loop
  std::uint64_t job_epoch_ = 0;     // bumped per parallel_for
  unsigned job_remaining_ = 0;      // workers still to finish current epoch
  std::condition_variable done_cv_;
  bool stop_ = false;
};

/// Process-wide pool for bench/test harness convenience.
ThreadPool& global_pool();

}  // namespace pfair
