// Portable SIMD shim for the scheduler's data-oriented hot paths.
//
// Exactly the kernels the hot paths need — batch affine key recompute
// (key = base + job * step over structure-of-arrays spans) and min /
// argmin selection for the 8-ary ready heap — with three backends:
//
//   * AVX2   (x86-64): 4 x u64 lanes; unsigned 64-bit compares are
//             synthesized by flipping the sign bit before a signed
//             compare, and the 64 x 32 -> 64 multiply from two
//             _mm256_mul_epu32 partial products.
//   * NEON   (aarch64): 2 x u64 lanes for the selection kernels; the
//             multiply kernel stays scalar (no 64-bit lane multiply,
//             and two lanes do not amortize the decomposition).
//   * scalar: plain loops, always compiled, on every platform.
//
// Backend selection is a compile-time decision (`-DPFAIR_NO_SIMD`
// forces scalar); on top of that, `set_force_scalar(true)` is a
// runtime test hook that makes every dispatching kernel take the
// scalar implementation, so A/B suites can cross-check both shims in
// one binary regardless of how the build was configured.
//
// Semantics are exact and backend-independent: all arithmetic is
// modulo 2^64, and the argmin kernels return the lowest index holding
// the minimum **provided keys are pairwise distinct** (the packed-key
// construction guarantees distinctness; with duplicated minima the
// accelerated backends may prefer a different duplicate).  The
// SIMD-vs-scalar property suite (tests/simd_test.cpp) pins the
// equivalence at lane-count boundaries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#if !defined(PFAIR_NO_SIMD) && defined(__AVX2__)
#define PFAIR_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(PFAIR_NO_SIMD) && defined(__aarch64__) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define PFAIR_SIMD_NEON 1
#include <arm_neon.h>
#else
#define PFAIR_SIMD_SCALAR 1
#endif

namespace pfair::simd {

/// The instruction set the accelerated kernels were compiled for.
[[nodiscard]] constexpr const char* isa_name() {
#if defined(PFAIR_SIMD_AVX2)
  return "avx2";
#elif defined(PFAIR_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {
inline std::atomic<bool> g_force_scalar{false};
}  // namespace detail

/// Runtime test hook: route every dispatching kernel to the scalar
/// implementation.  Process-wide; intended for A/B equivalence tests
/// and the scalar-vs-SIMD legs of bench_scaling, not for concurrent
/// toggling mid-run.
inline void set_force_scalar(bool v) {
  detail::g_force_scalar.store(v, std::memory_order_relaxed);
}
[[nodiscard]] inline bool force_scalar() {
  return detail::g_force_scalar.load(std::memory_order_relaxed);
}
/// True iff the dispatching kernels currently run accelerated code.
[[nodiscard]] inline bool accelerated() {
#if defined(PFAIR_SIMD_SCALAR)
  return false;
#else
  return !force_scalar();
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels — always compiled, the semantic ground truth.
// ---------------------------------------------------------------------------

/// out[i] = base[i] + job[i] * step[i] (mod 2^64).  Requires
/// job[i] < 2^32 (job indices are subtask counts; they fit easily).
inline void affine_keys_scalar(const std::uint64_t* base,
                               const std::uint64_t* step,
                               const std::uint64_t* job, std::uint64_t* out,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = base[i] + job[i] * step[i];
}

/// Index of the minimum of keys[0..n); lowest index wins ties.
/// Requires n >= 1.
inline std::size_t argmin_scalar(const std::uint64_t* keys, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (keys[i] < keys[best]) best = i;
  }
  return best;
}

/// argmin over exactly 8 contiguous keys (callers pad with ~0ull).
inline std::size_t argmin8_scalar(const std::uint64_t* keys) {
  return argmin_scalar(keys, 8);
}

// ---------------------------------------------------------------------------
// AVX2 backend
// ---------------------------------------------------------------------------
#if defined(PFAIR_SIMD_AVX2)

namespace detail {

inline __m256i flip_sign(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(
                                 static_cast<long long>(0x8000000000000000ULL)));
}

/// Lane-wise unsigned min of (a, b) that keeps `a` on ties, plus the
/// matching index blend: where b < a take (b, bi), else keep (a, ai).
struct MinIdx {
  __m256i val;
  __m256i idx;
};
inline MinIdx min_keep_first(__m256i a, __m256i ai, __m256i b, __m256i bi) {
  const __m256i lt = _mm256_cmpgt_epi64(flip_sign(a), flip_sign(b));  // b < a
  return MinIdx{_mm256_blendv_epi8(a, b, lt), _mm256_blendv_epi8(ai, bi, lt)};
}

}  // namespace detail

inline void affine_keys_avx2(const std::uint64_t* base,
                             const std::uint64_t* step,
                             const std::uint64_t* job, std::uint64_t* out,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + i));
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(step + i));
    const __m256i j = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(job + i));
    // j < 2^32, so s * j mod 2^64 = s_lo * j + ((s_hi * j) << 32).
    const __m256i lo = _mm256_mul_epu32(s, j);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(s, 32), j);
    const __m256i prod = _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(b, prod));
  }
  affine_keys_scalar(base + i, step + i, job + i, out + i, n - i);
}

inline std::size_t argmin8_avx2(const std::uint64_t* keys) {
  using detail::min_keep_first;
  const __m256i v0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  const __m256i v1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + 4));
  // (0..3) vs (4..7): ties keep the lower index by construction.
  detail::MinIdx m = min_keep_first(v0, _mm256_set_epi64x(3, 2, 1, 0), v1,
                                    _mm256_set_epi64x(7, 6, 5, 4));
  // Cross 128-bit halves, then adjacent lanes.  Each step's first
  // operand holds the candidate from the lower original lane, so a
  // distinct minimum always reports its exact index.
  const __m256i vs = _mm256_permute4x64_epi64(m.val, 0b01001110);
  const __m256i is = _mm256_permute4x64_epi64(m.idx, 0b01001110);
  m = min_keep_first(m.val, m.idx, vs, is);
  const __m256i vs2 = _mm256_permute4x64_epi64(m.val, 0b10110001);
  const __m256i is2 = _mm256_permute4x64_epi64(m.idx, 0b10110001);
  m = min_keep_first(m.val, m.idx, vs2, is2);
  return static_cast<std::size_t>(_mm256_extract_epi64(m.idx, 0));
}

inline std::size_t argmin_avx2(const std::uint64_t* keys, std::size_t n) {
  if (n < 8) return argmin_scalar(keys, n);
  using detail::min_keep_first;
  const __m256i four = _mm256_set1_epi64x(4);
  __m256i bestv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  __m256i besti = _mm256_set_epi64x(3, 2, 1, 0);
  __m256i idx = besti;
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    idx = _mm256_add_epi64(idx, four);
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const detail::MinIdx m = min_keep_first(bestv, besti, v, idx);
    bestv = m.val;
    besti = m.idx;
  }
  // Reduce the 4 running lanes; the lane holding the earliest index is
  // the first operand at every step, so ties across lanes cannot occur
  // for distinct keys and a lower-lane duplicate wins otherwise.
  alignas(32) std::uint64_t vals[4];
  alignas(32) std::uint64_t idxs[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(vals), bestv);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), besti);
  std::size_t best = static_cast<std::size_t>(idxs[0]);
  std::uint64_t bestk = vals[0];
  for (int l = 1; l < 4; ++l) {
    if (vals[l] < bestk ||
        (vals[l] == bestk && idxs[l] < static_cast<std::uint64_t>(best))) {
      bestk = vals[l];
      best = static_cast<std::size_t>(idxs[l]);
    }
  }
  // Scalar tail.
  for (; i < n; ++i) {
    if (keys[i] < bestk) {
      bestk = keys[i];
      best = i;
    }
  }
  return best;
}

#endif  // PFAIR_SIMD_AVX2

// ---------------------------------------------------------------------------
// NEON backend (aarch64): 2 x u64 lanes for the selection kernels.
// ---------------------------------------------------------------------------
#if defined(PFAIR_SIMD_NEON)

namespace detail {
struct MinIdx2 {
  uint64x2_t val;
  uint64x2_t idx;
};
/// Lane-wise unsigned min keeping `a` on ties.
inline MinIdx2 min_keep_first(uint64x2_t a, uint64x2_t ai, uint64x2_t b,
                              uint64x2_t bi) {
  const uint64x2_t lt = vcltq_u64(b, a);  // b < a
  return MinIdx2{vbslq_u64(lt, b, a), vbslq_u64(lt, bi, ai)};
}
}  // namespace detail

inline std::size_t argmin8_neon(const std::uint64_t* keys) {
  using detail::min_keep_first;
  const uint64x2_t i01 = {0, 1}, i23 = {2, 3}, i45 = {4, 5}, i67 = {6, 7};
  detail::MinIdx2 lo = min_keep_first(vld1q_u64(keys), i01,
                                      vld1q_u64(keys + 2), i23);
  detail::MinIdx2 hi = min_keep_first(vld1q_u64(keys + 4), i45,
                                      vld1q_u64(keys + 6), i67);
  const detail::MinIdx2 m = min_keep_first(lo.val, lo.idx, hi.val, hi.idx);
  const std::uint64_t k0 = vgetq_lane_u64(m.val, 0);
  const std::uint64_t k1 = vgetq_lane_u64(m.val, 1);
  if (k1 < k0) return static_cast<std::size_t>(vgetq_lane_u64(m.idx, 1));
  return static_cast<std::size_t>(vgetq_lane_u64(m.idx, 0));
}

inline std::size_t argmin_neon(const std::uint64_t* keys, std::size_t n) {
  std::size_t best = 0;
  std::uint64_t bestk = keys[0];
  std::size_t i = (n % 8 == 0 && n >= 8) ? 0 : 0;
  for (i = 0; i + 8 <= n; i += 8) {
    const std::size_t l = argmin8_neon(keys + i);
    if (keys[i + l] < bestk) {
      bestk = keys[i + l];
      best = i + l;
    }
  }
  for (; i < n; ++i) {
    if (keys[i] < bestk) {
      bestk = keys[i];
      best = i;
    }
  }
  return best;
}

/// No 64-bit lane multiply on NEON, and two lanes do not amortize the
/// 32-bit decomposition — the batch recompute stays scalar there.
inline void affine_keys_neon(const std::uint64_t* base,
                             const std::uint64_t* step,
                             const std::uint64_t* job, std::uint64_t* out,
                             std::size_t n) {
  affine_keys_scalar(base, step, job, out, n);
}

#endif  // PFAIR_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatching entry points — the names the hot paths call.
// ---------------------------------------------------------------------------

inline void affine_keys(const std::uint64_t* base, const std::uint64_t* step,
                        const std::uint64_t* job, std::uint64_t* out,
                        std::size_t n) {
#if defined(PFAIR_SIMD_AVX2)
  if (!force_scalar()) return affine_keys_avx2(base, step, job, out, n);
#elif defined(PFAIR_SIMD_NEON)
  if (!force_scalar()) return affine_keys_neon(base, step, job, out, n);
#endif
  affine_keys_scalar(base, step, job, out, n);
}

inline std::size_t argmin8(const std::uint64_t* keys) {
#if defined(PFAIR_SIMD_AVX2)
  if (!force_scalar()) return argmin8_avx2(keys);
#elif defined(PFAIR_SIMD_NEON)
  if (!force_scalar()) return argmin8_neon(keys);
#endif
  return argmin8_scalar(keys);
}

inline std::size_t argmin(const std::uint64_t* keys, std::size_t n) {
#if defined(PFAIR_SIMD_AVX2)
  if (!force_scalar()) return argmin_avx2(keys, n);
#elif defined(PFAIR_SIMD_NEON)
  if (!force_scalar()) return argmin_neon(keys, n);
#endif
  return argmin_scalar(keys, n);
}

/// Best-effort cache-line prefetch (read intent); a no-op where the
/// builtin is unavailable.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

}  // namespace pfair::simd
