// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Task weights, lags and utilization sums must be exact: Pfair window
// formulas (Eqs. (2)-(4) of the paper) and the feasibility condition
// sum(wt) <= M are integer-arithmetic statements, and a single ulp of
// floating-point error can flip a schedulability verdict.  Intermediate
// products are computed in __int128, so any value whose reduced form fits
// in 64/64 bits is handled without overflow.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <string>

#include "core/assert.hpp"

namespace pfair {

/// An exact rational number `num/den`, always stored in lowest terms with
/// `den > 0`.  Value-semantic, totally ordered, hashable.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// An integer value.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// `n/d`; `d` may be negative or zero is rejected.  Reduced on entry.
  Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) { normalize(); }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  /// Largest integer <= *this.
  [[nodiscard]] std::int64_t floor() const;
  /// Smallest integer >= *this.
  [[nodiscard]] std::int64_t ceil() const;

  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) {
    Rational r;
    r.num_ = -a.num_;
    r.den_ = a.den_;
    return r;
  }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  /// Debug form "num/den" (or just "num" for integers).
  [[nodiscard]] std::string str() const;

  /// Closest double; for reporting only, never for scheduling decisions.
  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  void normalize();

  std::int64_t num_;
  std::int64_t den_;  // > 0 after normalize()
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// floor(a*b/c) on 64-bit values with a 128-bit intermediate.
/// Requires c > 0.  Handles negative a*b with mathematical (floored)
/// semantics, unlike C++ integer division which truncates toward zero.
std::int64_t floor_div_mul(std::int64_t a, std::int64_t b, std::int64_t c);

/// ceil(a*b/c); same contract as floor_div_mul.
std::int64_t ceil_div_mul(std::int64_t a, std::int64_t b, std::int64_t c);

}  // namespace pfair
