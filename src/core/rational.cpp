#include "core/rational.hpp"

#include <ostream>

namespace pfair {

namespace {

using I128 = __int128;

std::int64_t checked_narrow(I128 v, const char* what) {
  PFAIR_ASSERT_MSG(v >= INT64_MIN && v <= INT64_MAX,
                   "rational overflow in " << what);
  return static_cast<std::int64_t>(v);
}

/// Floored division for 128-bit dividend, positive divisor.
I128 floordiv(I128 a, I128 b) {
  PFAIR_ASSERT(b > 0);
  I128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

}  // namespace

void Rational::normalize() {
  PFAIR_REQUIRE(den_ != 0, "rational with zero denominator");
  if (den_ < 0) {
    PFAIR_ASSERT_MSG(den_ != INT64_MIN && num_ != INT64_MIN,
                     "rational normalize overflow");
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const {
  return checked_narrow(floordiv(num_, den_), "floor");
}

std::int64_t Rational::ceil() const {
  return checked_narrow(-floordiv(-static_cast<I128>(num_), den_), "ceil");
}

Rational& Rational::operator+=(const Rational& o) {
  const I128 n = static_cast<I128>(num_) * o.den_ +
                 static_cast<I128>(o.num_) * den_;
  const I128 d = static_cast<I128>(den_) * o.den_;
  const I128 g0 = d == 0 ? 1 : 1;  // d > 0 always (both dens positive)
  (void)g0;
  // Reduce in 128-bit space before narrowing.
  I128 a = n < 0 ? -n : n;
  I128 b = d;
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  const I128 g = a == 0 ? 1 : a;
  num_ = checked_narrow(n / g, "operator+=");
  den_ = checked_narrow(d / g, "operator+=");
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce first to keep intermediates small.
  const std::int64_t g1 = std::gcd(num_, o.den_);
  const std::int64_t g2 = std::gcd(o.num_, den_);
  const I128 n = static_cast<I128>(num_ / g1) * (o.num_ / g2);
  const I128 d = static_cast<I128>(den_ / g2) * (o.den_ / g1);
  num_ = checked_narrow(n, "operator*=");
  den_ = checked_narrow(d, "operator*=");
  if (num_ == 0) den_ = 1;
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  PFAIR_REQUIRE(o.num_ != 0, "division by zero rational");
  Rational inv;
  inv.num_ = o.den_;
  inv.den_ = o.num_;
  if (inv.den_ < 0) {
    inv.num_ = -inv.num_;
    inv.den_ = -inv.den_;
  }
  return *this *= inv;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  const I128 lhs = static_cast<I128>(a.num_) * b.den_;
  const I128 rhs = static_cast<I128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.str();
}

std::int64_t floor_div_mul(std::int64_t a, std::int64_t b, std::int64_t c) {
  PFAIR_REQUIRE(c > 0, "floor_div_mul requires positive divisor");
  const I128 p = static_cast<I128>(a) * b;
  I128 q = p / c;
  if (p % c != 0 && p < 0) --q;
  PFAIR_ASSERT(q >= INT64_MIN && q <= INT64_MAX);
  return static_cast<std::int64_t>(q);
}

std::int64_t ceil_div_mul(std::int64_t a, std::int64_t b, std::int64_t c) {
  PFAIR_REQUIRE(c > 0, "ceil_div_mul requires positive divisor");
  const I128 p = static_cast<I128>(a) * b;
  I128 q = p / c;
  if (p % c != 0 && p > 0) ++q;
  PFAIR_ASSERT(q >= INT64_MIN && q <= INT64_MAX);
  return static_cast<std::int64_t>(q);
}

}  // namespace pfair
