// Exact simulated time.
//
// The DVQ model makes scheduling decisions at non-integral instants (a
// subtask may yield delta before the end of its quantum), so time cannot be
// a slot index.  We represent time as a signed 64-bit count of *ticks* with
// 2^20 ticks per quantum/slot.  Every quantity the paper manipulates
// (eligibility times, releases, deadlines: integers; yields, completions:
// slot-fractions) is exactly representable, additions never round, and the
// "delta -> 0" limit argument of Sec. 3 is realized by a one-tick yield.
//
// No floating point is used anywhere in scheduling decisions.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/assert.hpp"

namespace pfair {

/// Number of ticks in one quantum (= one slot).  A power of two so that
/// halving/offsetting (staggered model) stays exact.
inline constexpr std::int64_t kTicksPerSlot = std::int64_t{1} << 20;

/// A point on the simulated time line (or a duration), in ticks.
/// Strongly typed to keep slot indices and tick counts from mixing.
class Time {
 public:
  constexpr Time() : ticks_(0) {}

  /// Named constructors ----------------------------------------------------
  [[nodiscard]] static constexpr Time ticks(std::int64_t t) {
    return Time(t);
  }
  [[nodiscard]] static constexpr Time slots(std::int64_t s) {
    return Time(s * kTicksPerSlot);
  }
  /// `s + num/den` slots, exact; requires den to divide kTicksPerSlot times
  /// num without remainder is NOT required — any rational with denominator
  /// dividing 2^20 is exact; others are rejected.
  [[nodiscard]] static Time slots_frac(std::int64_t s, std::int64_t num,
                                       std::int64_t den) {
    PFAIR_REQUIRE(den > 0 && num >= 0 && num <= den,
                  "slot fraction must lie in [0,1]");
    PFAIR_REQUIRE((kTicksPerSlot * num) % den == 0,
                  "fraction " << num << "/" << den
                              << " is not representable in ticks");
    return Time(s * kTicksPerSlot + kTicksPerSlot * num / den);
  }

  [[nodiscard]] constexpr std::int64_t raw_ticks() const { return ticks_; }

  /// Slot containing this instant: floor(t).
  [[nodiscard]] constexpr std::int64_t slot_floor() const {
    // ticks_ may be negative in duration arithmetic; use floored division.
    std::int64_t q = ticks_ / kTicksPerSlot;
    if (ticks_ % kTicksPerSlot != 0 && ticks_ < 0) --q;
    return q;
  }
  /// Smallest slot boundary >= this instant: ceil(t).
  [[nodiscard]] constexpr std::int64_t slot_ceil() const {
    std::int64_t q = ticks_ / kTicksPerSlot;
    if (ticks_ % kTicksPerSlot != 0 && ticks_ > 0) ++q;
    return q;
  }
  [[nodiscard]] constexpr bool is_slot_boundary() const {
    return ticks_ % kTicksPerSlot == 0;
  }

  /// Reporting only; never used in decisions.
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(ticks_) / static_cast<double>(kTicksPerSlot);
  }

  /// Human-readable "s" or "s+num/2^20" form.
  [[nodiscard]] std::string str() const;

  constexpr Time& operator+=(Time o) {
    ticks_ += o.ticks_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ticks_ -= o.ticks_;
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) { return a += b; }
  friend constexpr Time operator-(Time a, Time b) { return a -= b; }
  friend constexpr bool operator==(Time a, Time b) = default;
  friend constexpr auto operator<=>(Time a, Time b) = default;

 private:
  explicit constexpr Time(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_;
};

std::ostream& operator<<(std::ostream& os, Time t);

/// One full quantum as a duration.
inline constexpr Time kQuantum = Time::slots(1);
/// The smallest positive duration (the "delta -> 0" yield of the paper).
inline constexpr Time kTick = Time::ticks(1);

}  // namespace pfair
