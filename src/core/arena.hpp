// Bump-pointer arena for the scheduler hot paths.
//
// The fast simulators allocate working state (key tables, heap
// storage, calendar bucket chunks, warp scratch) whose lifetime is
// one schedule call or one hyperperiod of the cycle driver.  A bump
// arena turns those into pointer increments: blocks are grabbed from
// the system allocator only while the arena grows toward its
// high-water mark, after which `reset()` rewinds in O(blocks) and
// every later allocation sequence is served from memory already
// owned.  That is what makes repeated `schedule_*` calls zero-alloc
// in steady state (see sched/sfq_scheduler.hpp `SfqOptions::arena`
// and tests/steady_alloc_test.cpp).
//
// reset() does not run destructors — only trivially-destructible
// payloads belong here (ArenaVector enforces that).  Under
// AddressSanitizer, reset() re-poisons all recycled memory, so
// use-after-reset is caught as a heap poison hit instead of silent
// reuse (tests/arena_test.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "core/assert.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define PFAIR_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PFAIR_ASAN 1
#endif
#endif

#if defined(PFAIR_ASAN)
#include <sanitizer/asan_interface.h>
#define PFAIR_ASAN_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define PFAIR_ASAN_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define PFAIR_ASAN_POISON(p, n) ((void)(p), (void)(n))
#define PFAIR_ASAN_UNPOISON(p, n) ((void)(p), (void)(n))
#endif

namespace pfair {

/// Growable bump allocator.  Not thread-safe; one arena per simulator
/// (or per thread in sweeps).
class Arena {
 public:
  /// `block_bytes` sizes the first block; later blocks grow
  /// geometrically and oversized requests get a block of their own.
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : first_block_bytes_(block_bytes < kMinBlock ? kMinBlock : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Leave no poisoned system memory behind.
    for (Block& b : blocks_) PFAIR_ASAN_UNPOISON(b.base, b.cap);
  }

  /// Raw allocation; `align` must be a power of two <= 64.
  void* alloc(std::size_t bytes, std::size_t align) {
    PFAIR_ASSERT(align != 0 && (align & (align - 1)) == 0 && align <= 64);
    if (bytes == 0) bytes = 1;
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const std::size_t aligned = (off_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.cap) {
          void* p = b.base + aligned;
          off_ = aligned + bytes;
          used_ += bytes;
          if (used_ > high_water_) high_water_ = used_;
          PFAIR_ASAN_UNPOISON(p, bytes);
          return p;
        }
        // Does not fit the remainder of this block: waste it and move
        // on (the next block may be an existing recycled one).
        ++block_;
        off_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  /// Typed array of `n` (uninitialized; trivial T only).
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every allocation (O(blocks), no frees, no destructors).
  /// Under ASan all recycled memory is poisoned until re-allocated.
  void reset() {
    for (Block& b : blocks_) PFAIR_ASAN_POISON(b.base, b.cap);
    block_ = 0;
    off_ = 0;
    used_ = 0;
    ++resets_;
  }

  /// Live payload bytes since the last reset (excludes block slack).
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  /// Largest used_bytes() ever observed — the steady-state footprint.
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }
  /// Total bytes owned (capacity across all blocks).
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t reset_count() const { return resets_; }

 private:
  static constexpr std::size_t kMinBlock = 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::byte* base;  // data.get() rounded up to a 64-byte boundary
    std::size_t cap;  // usable bytes from `base`
  };

  void grow(std::size_t at_least) {
    std::size_t cap = blocks_.empty() ? first_block_bytes_
                                      : blocks_.back().cap * 2;
    if (cap < at_least) cap = at_least;
    // operator new[] only guarantees the default alignment (usually
    // 16); over-allocate and round the base up so offset alignment
    // inside the block is alignment in memory, up to the 64-byte max.
    auto data = std::make_unique<std::byte[]>(cap + 63);
    auto* base = reinterpret_cast<std::byte*>(
        (reinterpret_cast<std::uintptr_t>(data.get()) + 63) &
        ~std::uintptr_t{63});
    Block b{std::move(data), base, cap};
    PFAIR_ASAN_POISON(b.base, b.cap);
    capacity_ += cap;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    off_ = 0;
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  // index of the block being bumped
  std::size_t off_ = 0;    // bump offset inside blocks_[block_]
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
  std::size_t resets_ = 0;
};

/// Minimal vector over trivially-copyable T whose storage comes from
/// an Arena when one is supplied (growth copies and abandons the old
/// span until the next reset) and from the heap otherwise.  Only the
/// operations the hot paths need.  `kAlign` raises the storage
/// alignment (e.g. 64 keeps the ready heap's 8-wide child groups on
/// one cache line).
template <typename T, std::size_t kAlign = alignof(T)>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(kAlign >= alignof(T) && kAlign <= 64 &&
                (kAlign & (kAlign - 1)) == 0);

 public:
  ArenaVector() = default;
  explicit ArenaVector(Arena* arena) : arena_(arena) {}
  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;
  ArenaVector(ArenaVector&& o) noexcept { steal(o); }
  ArenaVector& operator=(ArenaVector&& o) noexcept {
    if (this != &o) {
      free_storage();
      steal(o);
    }
    return *this;
  }
  ~ArenaVector() { free_storage(); }

  /// Re-binds the backing arena.  Existing contents are discarded;
  /// callers re-reserve afterwards (the simulators do this once per
  /// schedule call, before any push).
  void rebind(Arena* arena) {
    free_storage();
    data_ = nullptr;
    size_ = cap_ = 0;
    arena_ = arena;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow_to(n);
  }
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }
  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == cap_) grow_to(cap_ == 0 ? 16 : cap_ * 2);
    data_[size_++] = v;
  }
  void pop_back() {
    PFAIR_ASSERT(size_ > 0);
    --size_;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow_to(std::size_t n) {
    T* nd;
    if (arena_ != nullptr) {
      nd = static_cast<T*>(arena_->alloc(n * sizeof(T), kAlign));
    } else if constexpr (kAlign > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      nd = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
    } else {
      nd = static_cast<T*>(::operator new(n * sizeof(T)));
    }
    if (size_ != 0) std::memcpy(nd, data_, size_ * sizeof(T));
    free_storage();
    data_ = nd;
    cap_ = n;
  }
  void free_storage() {
    if (arena_ != nullptr || data_ == nullptr) return;
    if constexpr (kAlign > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(data_, std::align_val_t{kAlign});
    } else {
      ::operator delete(data_);
    }
  }
  void steal(ArenaVector& o) {
    data_ = o.data_;
    size_ = o.size_;
    cap_ = o.cap_;
    arena_ = o.arena_;
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  Arena* arena_ = nullptr;
};

}  // namespace pfair
