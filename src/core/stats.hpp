// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/assert.hpp"

namespace pfair {

/// Welford streaming accumulator over doubles: count/min/max/mean/variance.
/// Used only for *reporting* (tardiness summaries, idle fractions); all
/// scheduling decisions use exact arithmetic.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Merge another accumulator (for parallel sweeps).
  void merge(const StreamingStats& o);

 private:
  std::int64_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0;
};

/// Batch percentile: p in [0,100], nearest-rank method.  Copies + sorts.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Exact max over int64 samples with a "none yet" state.
class MaxTracker {
 public:
  void add(std::int64_t x) {
    if (!seen_ || x > max_) max_ = x;
    seen_ = true;
  }
  [[nodiscard]] bool seen() const { return seen_; }
  [[nodiscard]] std::int64_t max() const {
    PFAIR_ASSERT(seen_);
    return max_;
  }

 private:
  bool seen_ = false;
  std::int64_t max_ = 0;
};

}  // namespace pfair
