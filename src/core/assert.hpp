// Contract checking for the pfair library.
//
// All scheduling code in this repository manipulates exact integer
// quantities; a violated invariant is always a programming error (or a
// malformed task system handed in by the caller), never a numerical
// artifact.  Contracts therefore stay enabled in release builds, and they
// throw `ContractViolation` rather than aborting so that the test suite can
// assert on misuse of the public API.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pfair {

/// Thrown when a precondition or invariant of the library is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace pfair

/// Invariant / internal-consistency check.  Enabled in all build types.
#define PFAIR_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pfair::detail::contract_fail("assertion", #expr, __FILE__,          \
                                     __LINE__, "");                         \
  } while (0)

/// Invariant check with an explanatory message (streamed into a string).
#define PFAIR_ASSERT_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pfair_assert_os_;                                 \
      pfair_assert_os_ << msg;                                             \
      ::pfair::detail::contract_fail("assertion", #expr, __FILE__,         \
                                     __LINE__, pfair_assert_os_.str());    \
    }                                                                      \
  } while (0)

/// Precondition on arguments of a public API entry point.
#define PFAIR_REQUIRE(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pfair_require_os_;                                \
      pfair_require_os_ << msg;                                            \
      ::pfair::detail::contract_fail("precondition", #expr, __FILE__,      \
                                     __LINE__, pfair_require_os_.str());   \
    }                                                                      \
  } while (0)
