#include "core/stats.hpp"

#include <cmath>

namespace pfair {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::min() const {
  PFAIR_ASSERT(n_ > 0);
  return min_;
}

double StreamingStats::max() const {
  PFAIR_ASSERT(n_ > 0);
  return max_;
}

double StreamingStats::mean() const {
  PFAIR_ASSERT(n_ > 0);
  return mean_;
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const auto n = n_ + o.n_;
  const double delta = o.mean_ - mean_;
  const double mean = mean_ + delta * static_cast<double>(o.n_) /
                                  static_cast<double>(n);
  m2_ = m2_ + o.m2_ +
        delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
            static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double percentile(std::vector<double> xs, double p) {
  PFAIR_REQUIRE(!xs.empty(), "percentile of empty sample");
  PFAIR_REQUIRE(p >= 0.0 && p <= 100.0, "percentile " << p);
  std::sort(xs.begin(), xs.end());
  if (p == 0.0) return xs.front();
  const auto n = static_cast<double>(xs.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::min(rank, xs.size());
  return xs[rank - 1];
}

}  // namespace pfair
