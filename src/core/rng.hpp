// Deterministic pseudo-random generation for workload synthesis.
//
// Experiments must be reproducible from a single seed printed in their
// output, so the library carries its own generator (xoshiro256**) rather
// than depending on unspecified std::mt19937 stream details across
// standard-library versions.  Seeding uses SplitMix64 as recommended by the
// xoshiro authors.
#pragma once

#include <cstdint>
#include <vector>

#include "core/assert.hpp"

namespace pfair {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased (rejection).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability num/den.
  bool chance(std::int64_t num, std::int64_t den);

  /// A derived, independent generator (for parallel sweeps).
  [[nodiscard]] Rng split();

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pfair
