#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "core/assert.hpp"

namespace pfair {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    job();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--job_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& body,
                              std::int64_t grain) {
  PFAIR_REQUIRE(grain >= 0, "parallel_for grain must be >= 0");
  if (begin >= end) return;
  if (grain == 0) {
    grain = std::max<std::int64_t>(
        1, (end - begin) / (8 * static_cast<std::int64_t>(size())));
  }

  std::atomic<std::int64_t> cursor{begin};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto claim_loop = [&] {
    for (;;) {
      const std::int64_t lo = cursor.fetch_add(grain);
      if (lo >= end) return;
      const std::int64_t hi = std::min(lo + grain, end);
      for (std::int64_t i = lo; i < hi; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    }
  };

  {
    std::unique_lock<std::mutex> lk(mu_);
    job_ = claim_loop;
    job_remaining_ = size();
    ++job_epoch_;
    cv_.notify_all();
    // The calling thread participates too.
    lk.unlock();
    claim_loop();
    lk.lock();
    done_cv_.wait(lk, [&] { return job_remaining_ == 0; });
    job_ = nullptr;
  }

  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pfair
