#include "core/rng.hpp"

namespace pfair {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  PFAIR_REQUIRE(lo <= hi, "uniform(" << lo << ", " << hi << ")");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

bool Rng::chance(std::int64_t num, std::int64_t den) {
  PFAIR_REQUIRE(den > 0 && num >= 0 && num <= den,
                "chance(" << num << "/" << den << ")");
  if (num == 0) return false;
  if (num == den) return true;
  return uniform(1, den) <= num;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace pfair
