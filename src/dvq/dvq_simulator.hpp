// Stepwise DVQ simulation — the event-granularity counterpart of
// SfqSimulator.  One `step()` processes the next event instant: it
// retires completions, computes the new ready set, and hands every free
// processor to the highest-priority ready subtask (work-conserving,
// Sec. 3).  `schedule_dvq` is implemented on top of this class, keeping
// the batch and incremental paths behaviourally identical.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "dvq/decision_sink.hpp"
#include "dvq/dvq_schedule.hpp"
#include "dvq/yield.hpp"
#include "obs/probe.hpp"
#include "sched/priority.hpp"

namespace pfair {

struct DvqOptions;  // dvq/dvq_scheduler.hpp

/// Incremental event-driven DVQ scheduler.  The task system and yield
/// model must outlive the simulator.
class DvqSimulator {
 public:
  /// `log_decisions` is DEPRECATED: it is now an alias that installs an
  /// internal DvqDecisionSink (see dvq/decision_sink.hpp) and will be
  /// removed one release after 2026-08.  New code should install a
  /// TraceSink via set_trace_sink() instead.
  DvqSimulator(const TaskSystem& sys, const YieldModel& yields,
               Policy policy = Policy::kPd2, bool log_decisions = false);

  /// True once every subtask has been placed (no events can remain that
  /// would place more work).
  [[nodiscard]] bool done() const { return remaining_ == 0; }
  /// The instant of the most recently processed event (Time() initially).
  [[nodiscard]] Time now() const { return now_; }
  /// Whether any event is pending (false also implies nothing more can
  /// be scheduled — on a complete run, after done()).
  [[nodiscard]] bool has_events() const { return !events_.empty(); }

  /// Processes the next event instant; returns the subtasks started
  /// there (possibly none — e.g. a completion with nothing ready).
  std::vector<SubtaskRef> step();

  /// Runs until done() or the event queue drains or `time_limit` is
  /// reached (events at or beyond the limit are not processed).
  void run_until(Time time_limit);

  /// Processors currently idle (valid between steps).
  [[nodiscard]] std::vector<int> idle_processors() const;

  [[nodiscard]] const DvqSchedule& schedule() const { return sched_; }
  [[nodiscard]] DvqSchedule take_schedule() && { return std::move(sched_); }

  /// Installs a structured trace sink (not owned; null uninstalls).  It
  /// observes the same event stream as the deprecated decision log, and
  /// an instrumented run places every subtask identically.
  void set_trace_sink(TraceSink* sink);
  /// Accumulates sched.* metrics (see obs/probe.hpp) into `reg`, which
  /// must outlive the simulator.
  void attach_metrics(MetricsRegistry& reg) { probe_.attach_metrics(reg); }

 private:
  // Cold counterpart of the plain partial_sort in step(): identical
  // ordering, plus comparison counts and per-comparison trace events.
  // Out of line so the uninstrumented path stays compact.
  void sort_ready_instrumented(std::vector<SubtaskRef>& ready,
                               std::size_t m, Time t);
  // Cold: trace/metrics bookkeeping for one placement.
  void note_placement(Time t, SubtaskRef ref, int proc, Time c);

  const TaskSystem* sys_;
  const YieldModel* yields_;
  PriorityOrder order_;
  SchedProbe probe_;
  TraceSink* user_sink_ = nullptr;
  std::unique_ptr<DvqDecisionSink> decision_sink_;  // log_decisions alias
  std::unique_ptr<TeeSink> tee_;
  DvqSchedule sched_;

  struct Proc {
    bool busy = false;
    Time busy_until;
    SubtaskRef running;
  };
  std::vector<Proc> procs_;
  std::vector<std::int64_t> head_;
  std::vector<Time> ready_at_;
  std::priority_queue<Time, std::vector<Time>, std::greater<Time>> events_;
  Time now_;
  std::int64_t remaining_;
};

}  // namespace pfair
