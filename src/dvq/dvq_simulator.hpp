// Stepwise DVQ simulation — the event-granularity counterpart of
// SfqSimulator.  One `step()` processes the next event instant: it
// retires completions, computes the new ready set, and hands every free
// processor to the highest-priority ready subtask (work-conserving,
// Sec. 3).  `schedule_dvq` is implemented on top of this class, keeping
// the batch and incremental paths behaviourally identical.
//
// Per-event cost is O(changes), not O(tasks): the old bag of bare
// timestamps (one duplicate push per processor completion and per
// readiness advance) is replaced by two exact queues — completions
// keyed (time, processor) and pending readiness keyed (time, subtask),
// each unique by construction — plus a free-processor min-heap and a
// ready heap ordered by packed 64-bit priority keys (see
// sched/packed_key.hpp).  A decision touches only the processors that
// completed, the subtasks that became ready, and the winners it places.
// Schedules are bit-identical to the retained naive reference
// (`schedule_dvq_reference`).
//
// With a probe attached, step() takes the instrumented path — the
// pre-optimization full scan and event-reporting partial_sort — so
// trace streams and metric values stay exactly stable.  Exception: a
// sink whose event_mask() fits inside kDecisionTraceEvents (e.g. the
// InvariantAuditor) is served from the fast path with only the
// decision-outcome events emitted.  Whatever the path, the placements
// are the same.
#pragma once

#include <cstdint>
#include <vector>

#include "core/arena.hpp"
#include "dvq/dvq_schedule.hpp"
#include "dvq/yield.hpp"
#include "obs/probe.hpp"
#include "sched/packed_key.hpp"
#include "sched/priority.hpp"
#include "sched/ready_queue.hpp"

namespace pfair {

struct DvqOptions;       // dvq/dvq_scheduler.hpp
struct QualityCounters;  // obs/quality.hpp

/// Incremental event-driven DVQ scheduler.  The task system and yield
/// model must outlive the simulator.
class DvqSimulator {
 public:
  /// With `arena`, the working state (key tables, ready heap, event
  /// queues, per-task/per-processor records) is bump-allocated there
  /// (the arena must be fresh or reset and outlive the simulator).
  DvqSimulator(const TaskSystem& sys, const YieldModel& yields,
               Policy policy = Policy::kPd2, Arena* arena = nullptr);

  /// True once every subtask has been placed (no events can remain that
  /// would place more work).
  [[nodiscard]] bool done() const { return remaining_ == 0; }
  /// The instant of the most recently processed event (Time() initially).
  [[nodiscard]] Time now() const { return now_; }
  /// Whether any event is pending (false also implies nothing more can
  /// be scheduled — on a complete run, after done()).
  [[nodiscard]] bool has_events() const {
    return !completions_.empty() || !pending_.empty();
  }

  /// Processes the next event instant; returns the subtasks started
  /// there (possibly none — e.g. a completion with nothing ready).
  std::vector<SubtaskRef> step();

  /// Runs until done() or the event queue drains or `time_limit` is
  /// reached (events at or beyond the limit are not processed).
  void run_until(Time time_limit);

  /// Processors currently idle (valid between steps).
  [[nodiscard]] std::vector<int> idle_processors() const;

  /// The system being scheduled.
  [[nodiscard]] const TaskSystem& system() const { return *sys_; }
  /// Raw per-task / per-processor state, for cycle fingerprints
  /// (dvq/dvq_cycle.hpp).
  [[nodiscard]] std::int64_t head_of(std::int64_t task) const {
    return head_[static_cast<std::size_t>(task)];
  }
  [[nodiscard]] Time ready_time_of(std::int64_t task) const {
    return ready_at_[static_cast<std::size_t>(task)];
  }
  [[nodiscard]] bool proc_busy(std::int64_t proc) const {
    return procs_[static_cast<std::size_t>(proc)].busy;
  }
  [[nodiscard]] Time proc_busy_until(std::int64_t proc) const {
    return procs_[static_cast<std::size_t>(proc)].busy_until;
  }
  /// True iff a probe (trace sink or metrics) is attached.
  [[nodiscard]] bool instrumented() const { return probe_.enabled(); }

  /// Fast-forwards `cycles` repetitions of a steady-state cycle of
  /// `cycle_slots` slots detected at slot boundary `boundary_slot` (all
  /// events < boundary processed, none at or after), in which task k
  /// starts exactly `cycle_allocs[k]` subtasks.  Counters and event
  /// times jump by the cycle length; the pending/ready partition is
  /// rebuilt relative to the shifted boundary.  Callers
  /// (dvq/dvq_cycle.cpp) must have proved the recurrence via
  /// fingerprints.  Requires an uninstrumented simulator.
  void warp(std::int64_t cycles, std::int64_t cycle_slots,
            const std::vector<std::int64_t>& cycle_allocs,
            std::int64_t boundary_slot);

  [[nodiscard]] const DvqSchedule& schedule() const { return sched_; }
  [[nodiscard]] DvqSchedule take_schedule() && { return std::move(sched_); }

  /// Installs a structured trace sink (not owned; null uninstalls).  An
  /// instrumented run places every subtask identically.  To collect a
  /// per-instant decision log, install a DvqDecisionSink (see
  /// dvq/decision_sink.hpp).
  void set_trace_sink(TraceSink* sink) { probe_.set_sink(sink); }
  /// Accumulates sched.* metrics (see obs/probe.hpp) into `reg`, which
  /// must outlive the simulator.
  void attach_metrics(MetricsRegistry& reg) { probe_.attach_metrics(reg); }
  /// Accumulates scheduler-quality counters (obs/quality.hpp) into `q`
  /// incrementally, one O(changes) update per event, on every path —
  /// placements are unaffected.  Must be attached before the first
  /// step; `q` must outlive the simulator.  analysis/recount.hpp
  /// recomputes the same numbers offline.
  void set_quality(QualityCounters* q);

 private:
  /// The earliest unprocessed event instant; requires has_events().
  [[nodiscard]] Time next_event_time() const;

  // One event instant's decisions appended into `started` (not cleared;
  // reused as a scratch buffer by run_until).
  void step_into(std::vector<SubtaskRef>& started);
  // The O(changes) decision body.  kTraced additionally reports the
  // decision-outcome events (event begin, placements, migrations,
  // deadlines) — the kDecisionTraceEvents subset of the instrumented
  // stream — without the naive scan.
  template <bool kTraced>
  void step_fast(std::vector<SubtaskRef>& started, Time t);
  // The pre-optimization decision body: naive ready scan + instrumented
  // sort + trace/metrics reporting.  Identical placements.
  void step_instrumented(std::vector<SubtaskRef>& started, Time t);
  void sort_ready_instrumented(std::vector<SubtaskRef>& ready,
                               std::size_t m, Time t);
  void note_placement(Time t, SubtaskRef ref, int proc, Time c);
  // Folds one event instant's decisions into quality_: `free0` is the
  // free-processor count before dispatch, `started[base..)` the
  // placements made at this instant (already committed).
  void note_quality_event(std::size_t free0,
                          const std::vector<SubtaskRef>& started,
                          std::size_t base);

  // Bookkeeping shared by both paths for one placement at instant `t`:
  // records the placement, books the completion event, and enqueues the
  // successor's readiness.  Returns the charged cost.
  Time commit_placement(const SubtaskRef& ref, Time t, int proc);

  const TaskSystem* sys_;
  const YieldModel* yields_;
  PriorityOrder order_;
  PackedKeys keys_;
  ReadyQueue ready_q_;
  SchedProbe probe_;
  DvqSchedule sched_;

  struct Proc {
    bool busy = false;
    Time busy_until;
  };
  ArenaVector<Proc> procs_;
  ArenaVector<std::int64_t> head_;
  ArenaVector<Time> ready_at_;

  // Exact event queues (min-heaps via std::push_heap/pop_heap): one
  // completion per busy processor, one pending entry per task awaiting
  // its head's readiness instant — no duplicate timestamps anywhere.
  struct Completion {
    Time at;
    std::int32_t proc;
  };
  struct Pending {
    Time at;
    SubtaskRef ref;
  };
  ArenaVector<Completion> completions_;
  ArenaVector<Pending> pending_;
  ArenaVector<std::int32_t> free_procs_;  // min-heap of idle processors

  std::vector<SubtaskRef> scratch_started_;
  std::vector<SubtaskRef> scratch_ready_;  // instrumented path only
  Time now_;
  std::int64_t remaining_;

  // Quality accounting (null = off): the task each processor last ran.
  QualityCounters* quality_ = nullptr;
  std::vector<std::int32_t> proc_task_;
};

}  // namespace pfair
