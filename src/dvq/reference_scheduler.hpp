// The naive DVQ scheduler, retained verbatim as a correctness oracle.
//
// This is the pre-optimization hot path of DvqSimulator: one bag-style
// event queue of bare timestamps (duplicates and all), a full O(n) task
// scan for the ready set at every event instant, and a fresh
// partial_sort with the branchy PriorityOrder comparator.  The
// production scheduler (`schedule_dvq` / DvqSimulator) replaced that
// with per-processor completion events, a pending-readiness heap and
// packed priority keys; the A/B equivalence suite asserts both produce
// bit-identical schedules, and `bench_scaling` measures the gap.
// Deliberately simple and probe-free — do not optimize this function.
#pragma once

#include "dvq/dvq_scheduler.hpp"

namespace pfair {

/// Reference counterpart of `schedule_dvq` (same options; `trace` and
/// `metrics` are ignored — the oracle is unobserved by design).
[[nodiscard]] DvqSchedule schedule_dvq_reference(const TaskSystem& sys,
                                                 const YieldModel& yields,
                                                 const DvqOptions& opts = {});

}  // namespace pfair
