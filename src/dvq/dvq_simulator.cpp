#include "dvq/dvq_simulator.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "obs/prof.hpp"
#include "obs/quality.hpp"

namespace pfair {

namespace {

// Min-heap orderings for std::push_heap/pop_heap (which build max-heaps,
// so "lower priority" means "later time" / "larger id").
constexpr auto kLaterCompletion = [](const auto& a, const auto& b) {
  return b.at < a.at;
};
constexpr auto kLaterPending = [](const auto& a, const auto& b) {
  return b.at < a.at;
};
constexpr auto kLargerProc = [](std::int32_t a, std::int32_t b) {
  return b < a;
};

}  // namespace

DvqSimulator::DvqSimulator(const TaskSystem& sys, const YieldModel& yields,
                           Policy policy, Arena* arena)
    : sys_(&sys),
      yields_(&yields),
      order_(sys, policy),
      keys_(sys, policy, arena),
      ready_q_(order_, keys_, arena),
      sched_(sys),
      procs_(arena),
      head_(arena),
      ready_at_(arena),
      completions_(arena),
      pending_(arena),
      free_procs_(arena),
      remaining_(sys.total_subtasks()) {
  procs_.resize(static_cast<std::size_t>(sys.processors()));
  head_.resize(static_cast<std::size_t>(sys.num_tasks()));
  ready_at_.resize(static_cast<std::size_t>(sys.num_tasks()));
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) procs_[pi] = Proc{};
  for (std::size_t k = 0; k < head_.size(); ++k) {
    head_[k] = 0;
    ready_at_[k] = Time();
  }
  ready_q_.reserve(head_.size());
  pending_.reserve(head_.size());
  completions_.reserve(procs_.size());
  free_procs_.reserve(procs_.size());
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    free_procs_.push_back(static_cast<std::int32_t>(pi));
  }
  std::make_heap(free_procs_.begin(), free_procs_.end(), kLargerProc);
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys.task(static_cast<std::int64_t>(k));
    if (task.num_subtasks() > 0) {
      ready_at_[k] = Time::slots(task.eligible_at(0));
      pending_.push_back(Pending{
          ready_at_[k], SubtaskRef{static_cast<std::int32_t>(k), 0}});
    }
  }
  std::make_heap(pending_.begin(), pending_.end(), kLaterPending);
}

Time DvqSimulator::next_event_time() const {
  PFAIR_ASSERT(has_events());
  if (completions_.empty()) return pending_.front().at;
  if (pending_.empty()) return completions_.front().at;
  return std::min(completions_.front().at, pending_.front().at);
}

Time DvqSimulator::commit_placement(const SubtaskRef& ref, Time t,
                                    int proc) {
  const Time c = yields_->checked_cost(*sys_, ref);
  sched_.place(ref, t, c, proc);
  Proc& pr = procs_[static_cast<std::size_t>(proc)];
  pr.busy = true;
  pr.busy_until = t + c;
  completions_.push_back(
      Completion{pr.busy_until, static_cast<std::int32_t>(proc)});
  std::push_heap(completions_.begin(), completions_.end(), kLaterCompletion);
  const auto k = static_cast<std::size_t>(ref.task);
  ++head_[k];
  --remaining_;
  // The successor's readiness instant is known now: the later of its
  // eligibility time and this quantum's completion.
  const Task& task = sys_->task(ref.task);
  if (head_[k] < task.num_subtasks()) {
    ready_at_[k] = std::max(
        Time::slots(task.eligible_at(head_[k])), pr.busy_until);
    pending_.push_back(Pending{
        ready_at_[k], SubtaskRef{ref.task, ref.seq + 1}});
    std::push_heap(pending_.begin(), pending_.end(), kLaterPending);
  }
  return c;
}

std::vector<SubtaskRef> DvqSimulator::step() {
  std::vector<SubtaskRef> started;
  if (!has_events()) return started;
  step_into(started);
  return started;
}

void DvqSimulator::step_into(std::vector<SubtaskRef>& started) {
  const Time t = next_event_time();
  now_ = t;

  {
    // 1. Retire completions at t; successors whose readiness instant has
    // arrived join the ready heap for this very batch.
    while (!completions_.empty() && completions_.front().at <= t) {
      PFAIR_ASSERT(completions_.front().at == t);
      const std::int32_t proc = completions_.front().proc;
      std::pop_heap(completions_.begin(), completions_.end(),
                    kLaterCompletion);
      completions_.pop_back();
      procs_[static_cast<std::size_t>(proc)].busy = false;
      free_procs_.push_back(proc);
      std::push_heap(free_procs_.begin(), free_procs_.end(), kLargerProc);
    }
    while (!pending_.empty() && pending_.front().at <= t) {
      ready_q_.push(pending_.front().ref);
      std::pop_heap(pending_.begin(), pending_.end(), kLaterPending);
      pending_.pop_back();
    }
  }

  const std::size_t free0 = free_procs_.size();
  const std::size_t base = started.size();
  // 2.+3. Dispatch.  No spans at this granularity: an event costs a few
  // hundred nanoseconds, so even one clock-read pair per event would be
  // double-digit overhead — run_until() scopes the whole loop instead.
  if (probe_.enabled()) [[unlikely]] {
    if (probe_.wants_full_instrumentation()) {
      step_instrumented(started, t);
    } else {
      step_fast<true>(started, t);
    }
  } else {
    step_fast<false>(started, t);
  }
  if (quality_ != nullptr) [[unlikely]] {
    note_quality_event(free0, started, base);
  }
}

void DvqSimulator::set_quality(QualityCounters* q) {
  PFAIR_REQUIRE(q == nullptr || remaining_ == sys_->total_subtasks(),
                "attach quality counters before the first step");
  quality_ = q;
  if (q != nullptr) {
    const auto procs = static_cast<std::size_t>(sys_->processors());
    q->resize_procs(procs);
    proc_task_.assign(procs, -1);
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::note_quality_event(std::size_t free0,
                                      const std::vector<SubtaskRef>& started,
                                      std::size_t base) {
  QualityCounters& q = *quality_;
  ++q.decision_points;
  for (std::size_t i = base; i < started.size(); ++i) {
    const SubtaskRef ref = started[i];
    const DvqPlacement& pl = sched_.placement(ref);
    const int proc = pl.proc;
    if (ref.seq > 0) {
      const DvqPlacement& prev =
          sched_.placement(SubtaskRef{ref.task, ref.seq - 1});
      if (prev.proc >= 0 && prev.proc != proc) ++q.migrations;
      // Preemption: this subtask was ready the instant its predecessor
      // completed (eligibility had already passed) yet starts strictly
      // later — the task was descheduled in between.  Charged once, at
      // the start (the tick-space analog of the SFQ slot rule).
      const Time prev_end = prev.completion();
      if (pl.start > prev_end &&
          Time::slots(sys_->task(ref.task).eligible_at(ref.seq)) <=
              prev_end) {
        ++q.preemptions;
      }
    }
    std::int32_t& occupant = proc_task_[static_cast<std::size_t>(proc)];
    if (occupant != ref.task) {
      if (occupant >= 0) {
        ++q.context_switches;
        ++q.per_proc_switches[static_cast<std::size_t>(proc)];
      }
      occupant = ref.task;
    }
  }
  // No capacity at this instant (a readiness event landed while every
  // processor was busy): nothing is idle.  Otherwise every free
  // processor the work-conserving dispatch left unfilled idles for this
  // decision instant.
  if (free0 == 0) return;
  const std::size_t placed = started.size() - base;
  if (placed < free0) {
    q.idle_slots += static_cast<std::int64_t>(free0 - placed);
  }
}

template <bool kTraced>
void DvqSimulator::step_fast(std::vector<SubtaskRef>& started, Time t) {
  if constexpr (kTraced) {
    probe_.begin_decision(TraceEventKind::kEventBegin, t);
  }
  // 2.+3. Hand each free processor (ascending id) the highest-priority
  // live ready subtask, immediately (work-conserving).
  while (!free_procs_.empty()) {
    SubtaskRef ref{};
    bool found = false;
    while (!ready_q_.empty()) {
      ref = ready_q_.pop_best();
      // Skip entries scheduled behind the heap's back by an instrumented
      // step (the head moved on).
      if (head_[static_cast<std::size_t>(ref.task)] == ref.seq) {
        found = true;
        break;
      }
    }
    if (!found) break;
    const std::int32_t proc = free_procs_.front();
    std::pop_heap(free_procs_.begin(), free_procs_.end(), kLargerProc);
    free_procs_.pop_back();
    [[maybe_unused]] const Time c = commit_placement(ref, t, proc);
    if constexpr (kTraced) note_placement(t, ref, proc, c);
    started.push_back(ref);
  }
  if constexpr (kTraced) probe_.end_decision();
}

// noinline: instrumented-path-only code; folding it into step() costs
// the *uninstrumented* path measurable icache pressure.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::step_instrumented(std::vector<SubtaskRef>& started,
                                     Time t) {
  probe_.begin_decision(TraceEventKind::kEventBegin, t);

  // 2. Free processors and ready subtasks — the pre-optimization full
  // scans, so the event stream is unchanged.
  std::vector<int> free_procs = idle_processors();
  if (free_procs.empty()) {
    probe_.end_decision();
    return;
  }
  for (const int p : free_procs) probe_.proc_free(t, p);
  scratch_ready_.clear();
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    if (head_[k] >= task.num_subtasks()) continue;
    if (ready_at_[k] > t) continue;
    scratch_ready_.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                                        static_cast<std::int32_t>(head_[k])});
  }
  std::vector<SubtaskRef>& ready = scratch_ready_;
  probe_.ready_set(t, static_cast<std::int64_t>(ready.size()));
  if (ready.empty()) {
    probe_.idle(t, static_cast<std::int64_t>(free_procs.size()));
    probe_.end_decision();
    return;
  }

  // 3. Assign in priority order, immediately (work-conserving).
  const auto m = std::min(free_procs.size(), ready.size());
  sort_ready_instrumented(ready, m, t);
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = ready[r];
    const int proc = free_procs[r];
    // The r-th free processor in ascending id order is exactly the r-th
    // pop of the free-processor min-heap — keep it in sync.
    PFAIR_ASSERT(free_procs_.front() == proc);
    std::pop_heap(free_procs_.begin(), free_procs_.end(), kLargerProc);
    free_procs_.pop_back();
    const Time c = commit_placement(ref, t, proc);
    note_placement(t, ref, proc, c);
    started.push_back(ref);
  }
  // Ready subtasks left unserved at this instant (the paper's blocked
  // work) and capacity beyond the ready set.
  for (std::size_t r = m; r < ready.size(); ++r) {
    probe_.preempt(t, ready[r]);
  }
  if (m < free_procs.size()) {
    probe_.idle(t, static_cast<std::int64_t>(free_procs.size() - m));
  }
  probe_.end_decision();
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::sort_ready_instrumented(std::vector<SubtaskRef>& ready,
                                           std::size_t m, Time t) {
  std::int64_t ncmp = 0;
  const bool tracing = probe_.tracing();
  std::partial_sort(
      ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(m),
      ready.end(),
      [this, t, tracing, &ncmp](const SubtaskRef& a, const SubtaskRef& b) {
        ++ncmp;
        TieRule rule = TieRule::kTie;
        const int c = order_.compare(a, b, &rule);
        const bool a_wins = c != 0 ? c < 0 : a < b;
        if (tracing) {
          probe_.compare_outcome(t, a_wins ? a : b, a_wins ? b : a, rule);
        }
        return a_wins;
      });
  probe_.comparisons(ncmp);
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::note_placement(Time t, SubtaskRef ref, int proc,
                                  Time c) {
  probe_.place(t, ref, proc, c.raw_ticks());
  if (ref.seq > 0) {
    const int prev = sched_.placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
    if (prev >= 0 && prev != proc) probe_.migrate(t, ref, prev, proc);
  }
  const Time completion = t + c;
  const std::int64_t tard = std::max<std::int64_t>(
      0, completion.raw_ticks() -
             sys_->subtask(ref).deadline * kTicksPerSlot);
  probe_.deadline(t, ref, tard);
}

void DvqSimulator::run_until(Time time_limit) {
  PFAIR_PROF_SPAN(kDvqEvents);
  while (remaining_ > 0 && has_events() &&
         next_event_time() < time_limit) {
    scratch_started_.clear();
    step_into(scratch_started_);
  }
}

void DvqSimulator::warp(std::int64_t cycles, std::int64_t cycle_slots,
                        const std::vector<std::int64_t>& cycle_allocs,
                        std::int64_t boundary_slot) {
  PFAIR_REQUIRE(!probe_.enabled(), "warp would skip trace events");
  PFAIR_REQUIRE(quality_ == nullptr, "warp would skip quality accounting");
  PFAIR_REQUIRE(cycles >= 0 && cycle_slots > 0, "bad warp parameters");
  if (cycles == 0) return;
  const Time shift = Time::ticks(cycles * cycle_slots * kTicksPerSlot);
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const std::int64_t adv = cycles * cycle_allocs[k];
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    PFAIR_REQUIRE(head_[k] + adv <= task.num_subtasks(),
                  "warp overruns task " << task.name());
    head_[k] += adv;
    remaining_ -= adv;
    if (head_[k] < task.num_subtasks()) {
      ready_at_[k] = ready_at_[k] + shift;
    }
  }
  // Uniform time shifts preserve heap order, so busy processors and
  // their completion events move in place.
  for (Proc& pr : procs_) {
    if (pr.busy) pr.busy_until = pr.busy_until + shift;
  }
  for (Completion& c : completions_) c.at = c.at + shift;
  now_ = now_ + shift;
  // Pending entries and queued ready entries name pre-warp seqs —
  // rebuild both from the shifted readiness instants.  At the (shifted)
  // boundary every readiness instant strictly before it has already
  // been drained; at or after it is still a pending event.
  const Time boundary =
      Time::slots(boundary_slot + cycles * cycle_slots);
  ready_q_.clear();
  pending_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    if (head_[k] >= task.num_subtasks()) continue;
    const SubtaskRef ref{static_cast<std::int32_t>(k),
                         static_cast<std::int32_t>(head_[k])};
    if (ready_at_[k] < boundary) {
      ready_q_.push(ref);
    } else {
      pending_.push_back(Pending{ready_at_[k], ref});
    }
  }
  std::make_heap(pending_.begin(), pending_.end(), kLaterPending);
}

std::vector<int> DvqSimulator::idle_processors() const {
  std::vector<int> out;
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    if (!procs_[pi].busy) out.push_back(static_cast<int>(pi));
  }
  return out;
}

}  // namespace pfair
