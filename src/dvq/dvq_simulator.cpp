#include "dvq/dvq_simulator.hpp"

#include <algorithm>

namespace pfair {

DvqSimulator::DvqSimulator(const TaskSystem& sys, const YieldModel& yields,
                           Policy policy, bool log_decisions)
    : sys_(&sys),
      yields_(&yields),
      order_(sys, policy),
      log_decisions_(log_decisions),
      sched_(sys),
      procs_(static_cast<std::size_t>(sys.processors())),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0),
      ready_at_(static_cast<std::size_t>(sys.num_tasks())),
      remaining_(sys.total_subtasks()) {
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys.task(static_cast<std::int64_t>(k));
    if (task.num_subtasks() > 0) {
      ready_at_[k] = Time::slots(task.subtask(0).eligible);
      events_.push(ready_at_[k]);
    }
  }
}

std::vector<SubtaskRef> DvqSimulator::step() {
  std::vector<SubtaskRef> started;
  if (events_.empty()) return started;
  const Time t = events_.top();
  while (!events_.empty() && events_.top() == t) events_.pop();
  now_ = t;

  // 1. Retire completions at t; newly-ready successors join this batch.
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    Proc& pr = procs_[pi];
    if (pr.busy && pr.busy_until <= t) {
      PFAIR_ASSERT(pr.busy_until == t);
      pr.busy = false;
      const auto k = static_cast<std::size_t>(pr.running.task);
      const Task& task = sys_->task(pr.running.task);
      const std::int64_t next = pr.running.seq + 1;
      if (next < task.num_subtasks()) {
        const Time elig = Time::slots(task.subtask(next).eligible);
        ready_at_[k] = std::max(elig, t);
        if (ready_at_[k] > t) events_.push(ready_at_[k]);
      }
    }
  }

  // 2. Free processors and ready subtasks.
  std::vector<int> free_procs = idle_processors();
  if (free_procs.empty()) return started;
  std::vector<SubtaskRef> ready;
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    if (head_[k] >= task.num_subtasks()) continue;
    if (ready_at_[k] > t) continue;
    ready.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                               static_cast<std::int32_t>(head_[k])});
  }
  if (ready.empty()) return started;

  // 3. Assign in priority order, immediately (work-conserving).
  const auto m = std::min(free_procs.size(), ready.size());
  std::partial_sort(ready.begin(),
                    ready.begin() + static_cast<std::ptrdiff_t>(m),
                    ready.end(),
                    [this](const SubtaskRef& a, const SubtaskRef& b) {
                      return order_.higher(a, b);
                    });
  DvqDecision dec;
  if (log_decisions_) {
    dec.at = t;
    dec.free_procs = free_procs;
  }
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = ready[r];
    const Time c = yields_->checked_cost(*sys_, ref);
    const int proc = free_procs[r];
    sched_.place(ref, t, c, proc);
    Proc& pr = procs_[static_cast<std::size_t>(proc)];
    pr.busy = true;
    pr.busy_until = t + c;
    pr.running = ref;
    events_.push(pr.busy_until);
    const auto k = static_cast<std::size_t>(ref.task);
    ++head_[k];
    --remaining_;
    // Advance readiness immediately: the next subtask cannot run before
    // this one completes (recomputed identically at the completion
    // event).
    const Task& task_k = sys_->task(ref.task);
    if (head_[k] < task_k.num_subtasks()) {
      ready_at_[k] = std::max(
          Time::slots(task_k.subtask(head_[k]).eligible), pr.busy_until);
    }
    started.push_back(ref);
    if (log_decisions_) dec.started.push_back(ref);
  }
  if (log_decisions_) {
    for (std::size_t r = m; r < ready.size(); ++r) {
      dec.left_ready.push_back(ready[r]);
    }
    sched_.log_decision(std::move(dec));
  }
  return started;
}

void DvqSimulator::run_until(Time time_limit) {
  while (remaining_ > 0 && !events_.empty() &&
         events_.top() < time_limit) {
    step();
  }
}

std::vector<int> DvqSimulator::idle_processors() const {
  std::vector<int> out;
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    if (!procs_[pi].busy) out.push_back(static_cast<int>(pi));
  }
  return out;
}

}  // namespace pfair
