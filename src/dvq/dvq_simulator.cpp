#include "dvq/dvq_simulator.hpp"

#include <algorithm>

namespace pfair {

DvqSimulator::DvqSimulator(const TaskSystem& sys, const YieldModel& yields,
                           Policy policy, bool log_decisions)
    : sys_(&sys),
      yields_(&yields),
      order_(sys, policy),
      sched_(sys),
      procs_(static_cast<std::size_t>(sys.processors())),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0),
      ready_at_(static_cast<std::size_t>(sys.num_tasks())),
      remaining_(sys.total_subtasks()) {
  if (log_decisions) {
    decision_sink_ = std::make_unique<DvqDecisionSink>(sched_);
    set_trace_sink(nullptr);  // wires the internal sink into the probe
  }
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys.task(static_cast<std::int64_t>(k));
    if (task.num_subtasks() > 0) {
      ready_at_[k] = Time::slots(task.subtask(0).eligible);
      events_.push(ready_at_[k]);
    }
  }
}

void DvqSimulator::set_trace_sink(TraceSink* sink) {
  user_sink_ = sink;
  TraceSink* effective = user_sink_;
  if (decision_sink_ != nullptr) {
    if (effective != nullptr) {
      tee_ = std::make_unique<TeeSink>(decision_sink_.get(), effective);
      effective = tee_.get();
    } else {
      effective = decision_sink_.get();
    }
  }
  probe_.set_sink(effective);
}

std::vector<SubtaskRef> DvqSimulator::step() {
  std::vector<SubtaskRef> started;
  if (events_.empty()) return started;
  const Time t = events_.top();
  while (!events_.empty() && events_.top() == t) events_.pop();
  now_ = t;
  const bool obs = probe_.enabled();
  if (obs) probe_.begin_decision(TraceEventKind::kEventBegin, t);

  // 1. Retire completions at t; newly-ready successors join this batch.
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    Proc& pr = procs_[pi];
    if (pr.busy && pr.busy_until <= t) {
      PFAIR_ASSERT(pr.busy_until == t);
      pr.busy = false;
      const auto k = static_cast<std::size_t>(pr.running.task);
      const Task& task = sys_->task(pr.running.task);
      const std::int64_t next = pr.running.seq + 1;
      if (next < task.num_subtasks()) {
        const Time elig = Time::slots(task.subtask(next).eligible);
        ready_at_[k] = std::max(elig, t);
        if (ready_at_[k] > t) events_.push(ready_at_[k]);
      }
    }
  }

  // 2. Free processors and ready subtasks.
  std::vector<int> free_procs = idle_processors();
  if (free_procs.empty()) {
    if (obs) probe_.end_decision();
    return started;
  }
  if (obs) {
    for (const int p : free_procs) probe_.proc_free(t, p);
  }
  std::vector<SubtaskRef> ready;
  for (std::size_t k = 0; k < head_.size(); ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    if (head_[k] >= task.num_subtasks()) continue;
    if (ready_at_[k] > t) continue;
    ready.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                               static_cast<std::int32_t>(head_[k])});
  }
  if (obs) probe_.ready_set(t, static_cast<std::int64_t>(ready.size()));
  if (ready.empty()) {
    if (obs) {
      probe_.idle(t, static_cast<std::int64_t>(free_procs.size()));
      probe_.end_decision();
    }
    return started;
  }

  // 3. Assign in priority order, immediately (work-conserving).
  const auto m = std::min(free_procs.size(), ready.size());
  if (!obs) [[likely]] {
    std::partial_sort(ready.begin(),
                      ready.begin() + static_cast<std::ptrdiff_t>(m),
                      ready.end(),
                      [this](const SubtaskRef& a, const SubtaskRef& b) {
                        return order_.higher(a, b);
                      });
  } else {
    sort_ready_instrumented(ready, m, t);
  }
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = ready[r];
    const Time c = yields_->checked_cost(*sys_, ref);
    const int proc = free_procs[r];
    sched_.place(ref, t, c, proc);
    if (obs) [[unlikely]] note_placement(t, ref, proc, c);
    Proc& pr = procs_[static_cast<std::size_t>(proc)];
    pr.busy = true;
    pr.busy_until = t + c;
    pr.running = ref;
    events_.push(pr.busy_until);
    const auto k = static_cast<std::size_t>(ref.task);
    ++head_[k];
    --remaining_;
    // Advance readiness immediately: the next subtask cannot run before
    // this one completes (recomputed identically at the completion
    // event).
    const Task& task_k = sys_->task(ref.task);
    if (head_[k] < task_k.num_subtasks()) {
      ready_at_[k] = std::max(
          Time::slots(task_k.subtask(head_[k]).eligible), pr.busy_until);
    }
    started.push_back(ref);
  }
  if (obs) {
    // Ready subtasks left unserved at this instant (the paper's blocked
    // work) and capacity beyond the ready set.
    for (std::size_t r = m; r < ready.size(); ++r) {
      probe_.preempt(t, ready[r]);
    }
    if (m < free_procs.size()) {
      probe_.idle(t, static_cast<std::int64_t>(free_procs.size() - m));
    }
    probe_.end_decision();
  }
  return started;
}

// noinline: this lives on the instrumented path only; folding it into
// step() costs the *uninstrumented* path measurable icache pressure.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::sort_ready_instrumented(std::vector<SubtaskRef>& ready,
                                           std::size_t m, Time t) {
  std::int64_t ncmp = 0;
  const bool tracing = probe_.tracing();
  std::partial_sort(
      ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(m),
      ready.end(),
      [this, t, tracing, &ncmp](const SubtaskRef& a, const SubtaskRef& b) {
        ++ncmp;
        TieRule rule = TieRule::kTie;
        const int c = order_.compare(a, b, &rule);
        const bool a_wins = c != 0 ? c < 0 : a < b;
        if (tracing) {
          probe_.compare_outcome(t, a_wins ? a : b, a_wins ? b : a, rule);
        }
        return a_wins;
      });
  probe_.comparisons(ncmp);
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void DvqSimulator::note_placement(Time t, SubtaskRef ref, int proc,
                                  Time c) {
  probe_.place(t, ref, proc, c.raw_ticks());
  if (ref.seq > 0) {
    const int prev = sched_.placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
    if (prev >= 0 && prev != proc) probe_.migrate(t, ref, prev, proc);
  }
  const Time completion = t + c;
  const std::int64_t tard = std::max<std::int64_t>(
      0, completion.raw_ticks() -
             sys_->subtask(ref).deadline * kTicksPerSlot);
  probe_.deadline(t, ref, tard);
}

void DvqSimulator::run_until(Time time_limit) {
  while (remaining_ > 0 && !events_.empty() &&
         events_.top() < time_limit) {
    step();
  }
}

std::vector<int> DvqSimulator::idle_processors() const {
  std::vector<int> out;
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    if (!procs_[pi].busy) out.push_back(static_cast<int>(pi));
  }
  return out;
}

}  // namespace pfair
