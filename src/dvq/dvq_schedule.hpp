// Continuous-time schedules — the overloaded S : {subtasks} -> Q of Sec. 3.
//
// Under the DVQ model a schedule is no longer a slot/subtask incidence
// function: each subtask has a (possibly non-integral) commencement time
// S(T_i) and an actual execution cost c(T_i) <= 1.  Both are exact Times.
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Placement of one subtask on the continuous time line.
struct DvqPlacement {
  Time start;        ///< S(T_i)
  Time cost;         ///< c(T_i), in (0, 1]
  int proc = -1;
  bool placed = false;

  [[nodiscard]] Time completion() const { return start + cost; }
};

/// One decision instant of the DVQ engine: which processors were free,
/// which subtasks started, and which ready subtasks were left waiting.
/// This is the raw material for the blocking analysis of Sec. 3.1.
struct DvqDecision {
  Time at;
  std::vector<int> free_procs;
  std::vector<SubtaskRef> started;
  std::vector<SubtaskRef> left_ready;  ///< ready but unserved at `at`
};

/// A complete DVQ (or staggered) schedule.
class DvqSchedule {
 public:
  explicit DvqSchedule(const TaskSystem& sys);

  [[nodiscard]] const DvqPlacement& placement(const SubtaskRef& ref) const;
  void place(const SubtaskRef& ref, Time start, Time cost, int proc);

  [[nodiscard]] bool complete() const;

  /// Latest completion time (Time() if nothing placed).
  [[nodiscard]] Time makespan() const { return makespan_; }

  /// Decision log, in time order.
  [[nodiscard]] const std::vector<DvqDecision>& decisions() const {
    return decisions_;
  }
  void log_decision(DvqDecision d) { decisions_.push_back(std::move(d)); }

  /// Total busy ticks per processor (for idle accounting).
  [[nodiscard]] const std::vector<std::int64_t>& busy_ticks() const {
    return busy_ticks_;
  }

  [[nodiscard]] std::int64_t num_tasks() const {
    return static_cast<std::int64_t>(placements_.size());
  }
  [[nodiscard]] std::int64_t num_subtasks(std::int64_t task) const {
    return static_cast<std::int64_t>(
        placements_[static_cast<std::size_t>(task)].size());
  }

 private:
  std::vector<std::vector<DvqPlacement>> placements_;  // [task][seq]
  std::vector<DvqDecision> decisions_;
  std::vector<std::int64_t> busy_ticks_;
  Time makespan_;
};

}  // namespace pfair
