// Yield models: how much of its quantum a subtask actually uses.
//
// Under the SFQ model a subtask that finishes early wastes the rest of its
// quantum; under the DVQ model the processor is handed over immediately
// (Sec. 1, Sec. 3).  A YieldModel supplies the *actual execution cost*
// c(T_i) in (0, 1] of each subtask, exactly representable in ticks.  The
// same model instance can be replayed against SFQ, staggered and DVQ runs
// for paired comparisons (costs are drawn deterministically from the
// subtask identity, not from call order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Supplies c(T_i) for every subtask.  Implementations must be pure
/// functions of (seed, subtask identity) so paired experiments see
/// identical costs.
class YieldModel {
 public:
  virtual ~YieldModel() = default;

  /// Actual execution cost of `ref`; must lie in (0, 1] slots.
  [[nodiscard]] virtual Time cost(const TaskSystem& sys,
                                  const SubtaskRef& ref) const = 0;

  /// True iff costs are a pure function of (task, seq mod the task's raw
  /// job length e) — i.e. repeat verbatim every job.  This is what lets
  /// DVQ cycle fast-forward (dvq/dvq_cycle.hpp) treat two fingerprint-
  /// equal states as truly identical; models with per-subtask randomness
  /// or scripts must leave this false so detection bails out cleanly.
  [[nodiscard]] virtual bool periodic_costs() const { return false; }

  /// Checked wrapper around cost().
  [[nodiscard]] Time checked_cost(const TaskSystem& sys,
                                  const SubtaskRef& ref) const {
    const Time c = cost(sys, ref);
    PFAIR_ASSERT_MSG(c > Time() && c <= kQuantum,
                     "yield model produced cost " << c << " outside (0,1]");
    return c;
  }
};

/// Every subtask uses its whole quantum — DVQ degenerates to SFQ.
class FullQuantumYield final : public YieldModel {
 public:
  [[nodiscard]] Time cost(const TaskSystem&, const SubtaskRef&) const override {
    return kQuantum;
  }
  [[nodiscard]] bool periodic_costs() const override { return true; }
};

/// Every subtask yields `delta` before the end of its quantum
/// (c = 1 - delta).  delta = kTick realizes the paper's "delta -> 0" limit.
class FixedYield final : public YieldModel {
 public:
  explicit FixedYield(Time delta) : delta_(delta) {
    PFAIR_REQUIRE(delta >= Time() && delta < kQuantum,
                  "delta must lie in [0, 1)");
  }
  [[nodiscard]] Time cost(const TaskSystem&, const SubtaskRef&) const override {
    return kQuantum - delta_;
  }
  [[nodiscard]] bool periodic_costs() const override { return true; }

 private:
  Time delta_;
};

/// With probability `num/den` a subtask finishes early, with a cost drawn
/// uniformly from [min_cost, max_cost] ticks; otherwise it uses the whole
/// quantum.  Models pessimistic WCETs (Sec. 1, second bullet).
class BernoulliYield final : public YieldModel {
 public:
  BernoulliYield(std::uint64_t seed, std::int64_t num, std::int64_t den,
                 Time min_cost, Time max_cost);

  [[nodiscard]] Time cost(const TaskSystem& sys,
                          const SubtaskRef& ref) const override;

 private:
  std::uint64_t seed_;
  std::int64_t num_, den_;
  Time min_cost_, max_cost_;
};

/// The paper's stated future work (Sec. 4): task execution costs that are
/// NOT integral multiples of the quantum.  A job of cost (e-1) + f quanta
/// (0 < f <= 1) is modeled as e subtasks whose last one deterministically
/// uses only the fraction f of its quantum.  Under SFQ the remainder is
/// wasted every period; under DVQ it is reclaimed — `bench_fractional`
/// measures the impact on tardiness and makespan.
class FractionalTailYield final : public YieldModel {
 public:
  /// `tail` = the fractional cost of each job's final subtask.
  explicit FractionalTailYield(Time tail) : tail_(tail) {
    PFAIR_REQUIRE(tail > Time() && tail <= kQuantum,
                  "tail cost must lie in (0,1]");
  }

  [[nodiscard]] Time cost(const TaskSystem& sys,
                          const SubtaskRef& ref) const override {
    const Task& task = sys.task(ref.task);
    // Last subtask of its job: index i with i mod e == 0.
    const std::int64_t i = task.subtask(ref.seq).index;
    return i % task.weight().e == 0 ? tail_ : kQuantum;
  }
  [[nodiscard]] bool periodic_costs() const override { return true; }

 private:
  Time tail_;
};

/// Explicit per-subtask costs (used to script the paper's figures);
/// unlisted subtasks use the full quantum.
class ScriptedYield final : public YieldModel {
 public:
  ScriptedYield() = default;

  /// Sets c for one subtask; chainable.
  ScriptedYield& set(const SubtaskRef& ref, Time cost);

  [[nodiscard]] Time cost(const TaskSystem& sys,
                          const SubtaskRef& ref) const override;

 private:
  std::map<SubtaskRef, Time> costs_;
};

}  // namespace pfair
