#include "dvq/decision_sink.hpp"

namespace pfair {

void DvqDecisionSink::on_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kEventBegin:
      flush();
      cur_.at = e.at;
      break;
    case TraceEventKind::kProcFree:
      cur_.free_procs.push_back(e.proc);
      break;
    case TraceEventKind::kPlace:
      cur_.started.push_back(e.subject);
      break;
    case TraceEventKind::kPreempt:
      cur_.left_ready.push_back(e.subject);
      break;
    default:
      break;  // comparison/deadline/idle events carry no decision state
  }
}

void DvqDecisionSink::flush() {
  if (!cur_.started.empty()) {
    if (sched_ != nullptr) {
      sched_->log_decision(std::move(cur_));
    } else {
      own_.push_back(std::move(cur_));
    }
  }
  cur_ = DvqDecision{};
}

}  // namespace pfair
