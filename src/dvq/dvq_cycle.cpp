#include "dvq/dvq_cycle.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/assert.hpp"
#include "dvq/dvq_simulator.hpp"
#include "obs/prof.hpp"
#include "sched/state_hash.hpp"

namespace pfair {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One task's decision-relevant DVQ state at slot boundary T, relative
/// to T.  Readiness is exact in ticks for heads still pending (an entry
/// at exactly T fires a decision event at T) and clamped to the
/// sentinel for heads already drained into the ready queue — queue
/// order depends only on static priorities, never on drain time.
struct DvqTaskRecord {
  std::int64_t rem = 0;        // head seq mod raw e (-1 once exhausted)
  std::int64_t anchor = 0;     // r(head) - T, slots
  std::int64_t ready_rel = 0;  // ready_at - T, ticks; -1 = in ready queue
  std::int64_t lag_num = 0;    // e_raw * T - started * p_raw

  friend bool operator==(const DvqTaskRecord&, const DvqTaskRecord&) = default;
};

/// Full DVQ state at slot boundary `at`: task records plus per-processor
/// remaining busy ticks (-1 when idle).  Equality compares everything;
/// the hash is only a fast reject.
struct DvqSnap {
  std::uint64_t hash = 0;
  std::int64_t at = 0;
  std::vector<DvqTaskRecord> tasks;
  std::vector<std::int64_t> procs;
  std::vector<std::int64_t> heads;

  [[nodiscard]] bool same_state(const DvqSnap& o) const {
    return hash == o.hash && tasks == o.tasks && procs == o.procs;
  }
};

DvqSnap dvq_snapshot(const DvqSimulator& sim, std::int64_t t) {
  const TaskSystem& sys = sim.system();
  const std::int64_t t_ticks = t * kTicksPerSlot;
  DvqSnap snap;
  snap.at = t;
  const auto n = static_cast<std::size_t>(sys.num_tasks());
  snap.tasks.reserve(n);
  snap.heads.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys.task(static_cast<std::int64_t>(k));
    const std::int64_t head = sim.head_of(static_cast<std::int64_t>(k));
    snap.heads.push_back(head);
    DvqTaskRecord rec;
    const Weight& w = task.weight();
    rec.lag_num = w.e * t - head * w.p;
    if (head >= task.num_subtasks()) {
      rec.rem = -1;
    } else {
      rec.rem = head % w.e;
      rec.anchor = task.subtask_at(head).release - t;
      const std::int64_t rt =
          sim.ready_time_of(static_cast<std::int64_t>(k)).raw_ticks();
      rec.ready_rel = rt < t_ticks ? -1 : rt - t_ticks;
    }
    snap.tasks.push_back(rec);
  }
  snap.procs.reserve(static_cast<std::size_t>(sys.processors()));
  for (std::int64_t p = 0; p < sys.processors(); ++p) {
    snap.procs.push_back(sim.proc_busy(p)
                             ? sim.proc_busy_until(p).raw_ticks() - t_ticks
                             : -1);
  }
  std::uint64_t h = 0xa076bc23176a95dbull;
  for (const DvqTaskRecord& r : snap.tasks) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.rem));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.anchor));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.ready_rel));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.lag_num));
  }
  for (const std::int64_t p : snap.procs) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(p));
  }
  snap.hash = h;
  return snap;
}

}  // namespace

DvqCycleSchedule::DvqCycleSchedule(DvqSchedule inner)
    : inner_(std::move(inner)),
      makespan_(inner_.makespan()),
      complete_(inner_.complete()) {}

DvqCycleSchedule::DvqCycleSchedule(DvqSchedule inner, CycleStats stats,
                                   std::vector<TaskSplice> splices,
                                   bool complete)
    : inner_(std::move(inner)),
      stats_(stats),
      splices_(std::move(splices)),
      makespan_(inner_.makespan()),
      complete_(complete) {
  if (!stats_.engaged) return;
  PFAIR_REQUIRE(static_cast<std::int64_t>(splices_.size()) ==
                    inner_.num_tasks(),
                "one splice per task required");
  for (std::size_t k = 0; k < splices_.size(); ++k) {
    const TaskSplice& sp = splices_[k];
    if (sp.skip_count == 0) continue;
    const SubtaskRef last{
        static_cast<std::int32_t>(k),
        static_cast<std::int32_t>(sp.skip_begin + sp.skip_count - 1)};
    makespan_ = std::max(makespan_, placement(last).completion());
  }
}

DvqPlacement DvqCycleSchedule::placement(const SubtaskRef& ref) const {
  if (!stats_.engaged) return inner_.placement(ref);
  const TaskSplice& sp = splices_[static_cast<std::size_t>(ref.task)];
  if (!in_skip(sp, ref.seq)) return inner_.placement(ref);
  const std::int64_t off = ref.seq - sp.skip_begin;
  const std::int64_t j = off / sp.per_cycle;
  const std::int64_t rem = off % sp.per_cycle;
  DvqPlacement base = inner_.placement(
      SubtaskRef{ref.task, static_cast<std::int32_t>(sp.cycle_begin + rem)});
  PFAIR_REQUIRE(base.placed, "base cycle placement missing");
  base.start =
      base.start + Time::ticks((j + 1) * stats_.cycle_slots * kTicksPerSlot);
  return base;
}

DvqSchedule DvqCycleSchedule::materialize(std::int64_t horizon) const {
  DvqSchedule out = inner_;
  if (!stats_.engaged) return out;
  const Time limit = Time::slots(horizon);
  for (std::size_t k = 0; k < splices_.size(); ++k) {
    const TaskSplice& sp = splices_[k];
    for (std::int64_t off = 0; off < sp.skip_count; ++off) {
      const SubtaskRef ref{static_cast<std::int32_t>(k),
                           static_cast<std::int32_t>(sp.skip_begin + off)};
      const DvqPlacement pl = placement(ref);
      if (pl.start < limit) out.place(ref, pl.start, pl.cost, pl.proc);
    }
  }
  return out;
}

DvqCycleSchedule schedule_dvq_cyclic(const TaskSystem& sys,
                                     const YieldModel& yields,
                                     const DvqOptions& opts) {
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  std::optional<DvqSimulator> sim_store;
  {
    PFAIR_PROF_SPAN(kConstruction);
    sim_store.emplace(sys, yields, opts.policy, opts.arena);
  }
  DvqSimulator& sim = *sim_store;
  const bool probing = opts.trace == nullptr && opts.metrics == nullptr &&
                       opts.quality == nullptr && yields.periodic_costs();
  if (opts.trace != nullptr) sim.set_trace_sink(opts.trace);
  if (opts.metrics != nullptr) sim.attach_metrics(*opts.metrics);
  if (opts.quality != nullptr) sim.set_quality(opts.quality);

  CycleStats stats;
  std::vector<TaskSplice> splices;
  const std::int64_t hyper = probing ? fingerprint_period(sys) : 0;
  if (hyper > 0) {
    constexpr std::size_t kMaxSnaps = 64;
    std::vector<DvqSnap> snaps;
    const auto n = static_cast<std::size_t>(sys.num_tasks());
    for (std::int64_t t = 0; t + hyper <= limit; t += hyper) {
      sim.run_until(Time::slots(t));
      if (sim.done() || !sim.has_events()) break;
      bool exhausted = false;
      for (std::size_t k = 0; k < n; ++k) {
        exhausted |= sim.head_of(static_cast<std::int64_t>(k)) >=
                     sys.task(static_cast<std::int64_t>(k)).num_subtasks();
      }
      if (exhausted) break;
      PFAIR_PROF_SPAN(kFingerprint);
      DvqSnap snap = dvq_snapshot(sim, t);
      const DvqSnap* match = nullptr;
      for (const DvqSnap& s : snaps) {
        if (s.same_state(snap)) {
          match = &s;
          break;
        }
      }
      if (match != nullptr) {
        const std::int64_t cycle = t - match->at;
        std::vector<std::int64_t> allocs(n);
        std::int64_t max_cycles = (limit - t) / cycle;
        for (std::size_t k = 0; k < n; ++k) {
          allocs[k] = snap.heads[k] - match->heads[k];
          PFAIR_REQUIRE(allocs[k] > 0, "recurring task placed nothing");
          max_cycles = std::min(
              max_cycles,
              (sys.task(static_cast<std::int64_t>(k)).num_subtasks() -
               snap.heads[k]) /
                  allocs[k]);
        }
        if (max_cycles > 0) {
          splices.resize(n);
          for (std::size_t k = 0; k < n; ++k) {
            splices[k] = TaskSplice{match->heads[k], snap.heads[k], allocs[k],
                                    max_cycles * allocs[k]};
          }
          stats.engaged = true;
          stats.prefix_slots = match->at;
          stats.cycle_slots = cycle;
          stats.detect_slot = t;
          stats.cycles_skipped = max_cycles;
          stats.slots_skipped = max_cycles * cycle;
          PFAIR_PROF_SPAN(kWarp);
          sim.warp(max_cycles, cycle, allocs, t);
        }
        break;
      }
      if (snaps.size() >= kMaxSnaps) break;
      snaps.push_back(std::move(snap));
    }
  }
  sim.run_until(Time::slots(limit));
  stats.sim_slots = limit - stats.slots_skipped;
  const bool complete = sim.done();
  if (!stats.engaged) {
    return DvqCycleSchedule(std::move(sim).take_schedule());
  }
  return DvqCycleSchedule(std::move(sim).take_schedule(), stats,
                          std::move(splices), complete);
}

}  // namespace pfair
