#include "dvq/dvq_schedule.hpp"

namespace pfair {

DvqSchedule::DvqSchedule(const TaskSystem& sys)
    : busy_ticks_(static_cast<std::size_t>(sys.processors()), 0) {
  placements_.resize(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    placements_[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(sys.task(k).num_subtasks()));
  }
}

const DvqPlacement& DvqSchedule::placement(const SubtaskRef& ref) const {
  PFAIR_REQUIRE(ref.task >= 0 &&
                    static_cast<std::size_t>(ref.task) < placements_.size(),
                "bad task in " << ref);
  const auto& row = placements_[static_cast<std::size_t>(ref.task)];
  PFAIR_REQUIRE(ref.seq >= 0 && static_cast<std::size_t>(ref.seq) < row.size(),
                "bad seq in " << ref);
  return row[static_cast<std::size_t>(ref.seq)];
}

void DvqSchedule::place(const SubtaskRef& ref, Time start, Time cost,
                        int proc) {
  PFAIR_REQUIRE(cost > Time() && cost <= kQuantum,
                "cost must lie in (0,1], got " << cost);
  PFAIR_REQUIRE(proc >= 0 &&
                    static_cast<std::size_t>(proc) < busy_ticks_.size(),
                "bad processor " << proc);
  auto& p = const_cast<DvqPlacement&>(placement(ref));
  PFAIR_ASSERT_MSG(!p.placed, "subtask " << ref << " placed twice");
  p.start = start;
  p.cost = cost;
  p.proc = proc;
  p.placed = true;
  busy_ticks_[static_cast<std::size_t>(proc)] += cost.raw_ticks();
  makespan_ = std::max(makespan_, p.completion());
}

bool DvqSchedule::complete() const {
  for (const auto& row : placements_) {
    for (const auto& p : row) {
      if (!p.placed) return false;
    }
  }
  return true;
}

}  // namespace pfair
