#include "dvq/yield.hpp"

namespace pfair {

BernoulliYield::BernoulliYield(std::uint64_t seed, std::int64_t num,
                               std::int64_t den, Time min_cost, Time max_cost)
    : seed_(seed), num_(num), den_(den), min_cost_(min_cost),
      max_cost_(max_cost) {
  PFAIR_REQUIRE(den > 0 && num >= 0 && num <= den,
                "early-yield probability " << num << "/" << den);
  PFAIR_REQUIRE(min_cost > Time() && min_cost <= max_cost &&
                    max_cost <= kQuantum,
                "cost range must satisfy 0 < min <= max <= 1");
}

Time BernoulliYield::cost(const TaskSystem&, const SubtaskRef& ref) const {
  // Hash the subtask identity into an independent stream so the cost is a
  // pure function of (seed, subtask) — identical across paired SFQ /
  // staggered / DVQ runs regardless of scheduling order.
  std::uint64_t h = seed_;
  h ^= splitmix64(h) + static_cast<std::uint64_t>(ref.task) *
                           std::uint64_t{0x9e3779b97f4a7c15};
  h ^= splitmix64(h) + static_cast<std::uint64_t>(ref.seq) *
                           std::uint64_t{0xc2b2ae3d27d4eb4f};
  Rng rng(splitmix64(h));
  if (!rng.chance(num_, den_)) return kQuantum;
  const std::int64_t lo = min_cost_.raw_ticks();
  const std::int64_t hi = max_cost_.raw_ticks();
  return Time::ticks(rng.uniform(lo, hi));
}

ScriptedYield& ScriptedYield::set(const SubtaskRef& ref, Time cost) {
  PFAIR_REQUIRE(cost > Time() && cost <= kQuantum,
                "scripted cost must lie in (0,1]");
  costs_[ref] = cost;
  return *this;
}

Time ScriptedYield::cost(const TaskSystem&, const SubtaskRef& ref) const {
  const auto it = costs_.find(ref);
  return it == costs_.end() ? kQuantum : it->second;
}

}  // namespace pfair
