// The staggered quantum model (Holman & Anderson [11], Sec. 1).
//
// Quanta are still fixed-size and periodic on every processor, but
// processor k's quantum boundaries are offset by k/M of a slot, so the M
// scheduling decisions per slot are spread uniformly in time instead of
// happening simultaneously (their motivation: bus contention on SMPs).
// A subtask that yields early leaves its processor idle until that
// processor's next boundary — staggering alone is NOT work-conserving.
//
// Staggered scheduling is a special case of the DVQ model (desynchronized,
// quanta of size exactly 1), so Theorem 3 applies: tardiness under PD2 is
// at most one quantum.  `bench_staggered` confirms this and measures the
// decision-concurrency reduction.
#pragma once

#include "dvq/dvq_schedule.hpp"
#include "dvq/yield.hpp"
#include "sched/priority.hpp"

namespace pfair {

struct StaggeredOptions {
  Policy policy = Policy::kPd2;
  bool log_decisions = false;
  std::int64_t horizon_limit = 0;  ///< 0 = automatic
};

/// Runs the staggered-model scheduler.  Processor k makes decisions at
/// times n + floor(k * 2^20 / M) ticks, n = 0, 1, 2, ...; a chosen subtask
/// executes for c(T_i) <= 1 and the processor then idles until its next
/// own boundary.
[[nodiscard]] DvqSchedule schedule_staggered(const TaskSystem& sys,
                                             const YieldModel& yields,
                                             const StaggeredOptions& opts = {});

}  // namespace pfair
