// Reconstructs the classic per-instant `DvqDecision` log from the
// structured trace-event stream, and appends it to a `DvqSchedule`.
//
// This is how `DvqOptions::log_decisions` (deprecated) is implemented
// now: the simulator installs one of these internally, so the legacy
// decision log and any user-installed TraceSink observe the very same
// events.  One decision spans the events between two kEventBegin
// boundaries; it is committed on flush() (end of the simulator step)
// and only if at least one subtask started — exactly the instants the
// old ad-hoc logger recorded.
#pragma once

#include "dvq/dvq_schedule.hpp"
#include "obs/trace.hpp"

namespace pfair {

class DvqDecisionSink final : public TraceSink {
 public:
  /// The schedule must outlive the sink.
  explicit DvqDecisionSink(DvqSchedule& sched) : sched_(&sched) {}

  void on_event(const TraceEvent& e) override;
  void flush() override;

 private:
  DvqSchedule* sched_;
  DvqDecision cur_;
};

}  // namespace pfair
