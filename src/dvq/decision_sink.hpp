// Reconstructs the classic per-instant `DvqDecision` log from the
// structured trace-event stream.
//
// This replaced the removed `DvqOptions::log_decisions` flag: install a
// DvqDecisionSink as the trace sink (or behind a TeeSink) and it
// rebuilds the same log the old ad-hoc logger recorded.  One decision
// spans the events between two kEventBegin boundaries; it is committed
// on flush() (end of the simulator step) and only if at least one
// subtask started — exactly the instants the old logger kept.
//
// Two storage modes: appended into an external `DvqSchedule` (the
// legacy location, read back via `DvqSchedule::decisions()`), or — with
// the default constructor — into the sink's own log, read back via
// `decisions()`.
#pragma once

#include <vector>

#include "dvq/dvq_schedule.hpp"
#include "obs/trace.hpp"

namespace pfair {

class DvqDecisionSink final : public TraceSink {
 public:
  /// Owns its decision log; read it back via decisions().
  DvqDecisionSink() = default;
  /// Appends into `sched` (which must outlive the sink) via
  /// `DvqSchedule::log_decision`.
  explicit DvqDecisionSink(DvqSchedule& sched) : sched_(&sched) {}

  void on_event(const TraceEvent& e) override;
  void flush() override;

  /// The decisions committed so far (own-storage mode only; empty when
  /// bound to an external schedule).
  [[nodiscard]] const std::vector<DvqDecision>& decisions() const {
    return own_;
  }

 private:
  DvqSchedule* sched_ = nullptr;
  std::vector<DvqDecision> own_;
  DvqDecision cur_;
};

}  // namespace pfair
