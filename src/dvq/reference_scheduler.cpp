#include "dvq/reference_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/assert.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {

DvqSchedule schedule_dvq_reference(const TaskSystem& sys,
                                   const YieldModel& yields,
                                   const DvqOptions& opts) {
  const std::int64_t slot_limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  const Time time_limit = Time::slots(slot_limit);
  const PriorityOrder order(sys, opts.policy);
  DvqSchedule sched(sys);

  struct Proc {
    bool busy = false;
    Time busy_until;
    SubtaskRef running;
  };
  std::vector<Proc> procs(static_cast<std::size_t>(sys.processors()));
  const auto n = static_cast<std::size_t>(sys.num_tasks());
  std::vector<std::int64_t> head(n, 0);
  std::vector<Time> ready_at(n);
  // The pre-optimization event queue: a bag of bare timestamps, one push
  // per completion and per readiness advance, duplicates drained in the
  // pop loop.
  std::priority_queue<Time, std::vector<Time>, std::greater<Time>> events;
  std::int64_t remaining = sys.total_subtasks();

  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys.task(static_cast<std::int64_t>(k));
    if (task.num_subtasks() > 0) {
      ready_at[k] = Time::slots(task.subtask(0).eligible);
      events.push(ready_at[k]);
    }
  }

  while (remaining > 0 && !events.empty() && events.top() < time_limit) {
    const Time t = events.top();
    while (!events.empty() && events.top() == t) events.pop();

    // 1. Retire completions at t; newly-ready successors join this batch.
    for (auto& pr : procs) {
      if (pr.busy && pr.busy_until <= t) {
        PFAIR_ASSERT(pr.busy_until == t);
        pr.busy = false;
        const auto k = static_cast<std::size_t>(pr.running.task);
        const Task& task = sys.task(pr.running.task);
        const std::int64_t next = pr.running.seq + 1;
        if (next < task.num_subtasks()) {
          const Time elig = Time::slots(task.subtask(next).eligible);
          ready_at[k] = std::max(elig, t);
          if (ready_at[k] > t) events.push(ready_at[k]);
        }
      }
    }

    // 2. Free processors and ready subtasks.
    std::vector<int> free_procs;
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      if (!procs[pi].busy) free_procs.push_back(static_cast<int>(pi));
    }
    if (free_procs.empty()) continue;
    std::vector<SubtaskRef> ready;
    for (std::size_t k = 0; k < n; ++k) {
      const Task& task = sys.task(static_cast<std::int64_t>(k));
      if (head[k] >= task.num_subtasks()) continue;
      if (ready_at[k] > t) continue;
      ready.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                                 static_cast<std::int32_t>(head[k])});
    }
    if (ready.empty()) continue;

    // 3. Assign in priority order, immediately (work-conserving).
    const auto m = std::min(free_procs.size(), ready.size());
    std::partial_sort(ready.begin(),
                      ready.begin() + static_cast<std::ptrdiff_t>(m),
                      ready.end(),
                      [&order](const SubtaskRef& a, const SubtaskRef& b) {
                        return order.higher(a, b);
                      });
    for (std::size_t r = 0; r < m; ++r) {
      const SubtaskRef ref = ready[r];
      const Time c = yields.checked_cost(sys, ref);
      const int proc = free_procs[r];
      sched.place(ref, t, c, proc);
      Proc& pr = procs[static_cast<std::size_t>(proc)];
      pr.busy = true;
      pr.busy_until = t + c;
      pr.running = ref;
      events.push(pr.busy_until);
      const auto k = static_cast<std::size_t>(ref.task);
      ++head[k];
      --remaining;
      const Task& task_k = sys.task(ref.task);
      if (head[k] < task_k.num_subtasks()) {
        ready_at[k] = std::max(
            Time::slots(task_k.subtask(head[k]).eligible), pr.busy_until);
      }
    }
  }
  return sched;
}

}  // namespace pfair
