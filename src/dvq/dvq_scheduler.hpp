// The desynchronized, variable-sized-quantum (DVQ) scheduler — Sec. 3.
//
// Event-driven and work-conserving: whenever a subtask completes (possibly
// mid-slot, after using only c(T_i) < 1 of its quantum), the freed
// processor is immediately offered to the highest-priority ready subtask;
// quanta on different processors need not align.  Scheduling decisions
// therefore happen at arbitrary (tick-exact) instants, and a decision made
// just before an integral eligibility time can hand a processor to
// lower-priority work — exactly the eligibility/predecessor blocking the
// paper analyzes.  Theorem 3: with PD2 priorities the resulting tardiness
// is below one quantum for every feasible GIS system.
#pragma once

#include "dvq/dvq_schedule.hpp"
#include "dvq/yield.hpp"
#include "sched/priority.hpp"

namespace pfair {

struct DvqOptions {
  Policy policy = Policy::kPd2;
  /// Record per-instant decision logs (needed by the blocking analysis;
  /// costs memory on big runs).
  bool log_decisions = false;
  /// Hard stop, in slots (0 = automatic, as for the SFQ scheduler).
  std::int64_t horizon_limit = 0;
};

/// Runs the DVQ scheduler with actual execution costs drawn from `yields`.
[[nodiscard]] DvqSchedule schedule_dvq(const TaskSystem& sys,
                                       const YieldModel& yields,
                                       const DvqOptions& opts = {});

}  // namespace pfair
