// The desynchronized, variable-sized-quantum (DVQ) scheduler — Sec. 3.
//
// Event-driven and work-conserving: whenever a subtask completes (possibly
// mid-slot, after using only c(T_i) < 1 of its quantum), the freed
// processor is immediately offered to the highest-priority ready subtask;
// quanta on different processors need not align.  Scheduling decisions
// therefore happen at arbitrary (tick-exact) instants, and a decision made
// just before an integral eligibility time can hand a processor to
// lower-priority work — exactly the eligibility/predecessor blocking the
// paper analyzes.  Theorem 3: with PD2 priorities the resulting tardiness
// is below one quantum for every feasible GIS system.
#pragma once

#include "dvq/dvq_schedule.hpp"
#include "dvq/yield.hpp"
#include "sched/priority.hpp"

namespace pfair {

class Arena;             // core/arena.hpp
class TraceSink;         // obs/trace.hpp
class MetricsRegistry;   // obs/metrics.hpp
struct QualityCounters;  // obs/quality.hpp

struct DvqOptions {
  Policy policy = Policy::kPd2;
  // log_decisions was removed 2026-08 after one release of deprecation:
  // install a DvqDecisionSink (dvq/decision_sink.hpp) as `trace` to get
  // the identical per-instant decision log.
  /// Hard stop, in slots (0 = automatic, as for the SFQ scheduler).
  std::int64_t horizon_limit = 0;
  /// Optional structured trace receiver (not owned; see obs/trace.hpp).
  /// An instrumented run produces a bit-identical schedule.
  TraceSink* trace = nullptr;
  /// Optional metrics registry (not owned); sched.* counters and
  /// histograms accumulate into it, plus a final "sched.idle_ticks"
  /// gauge (capacity minus busy time over the makespan).
  MetricsRegistry* metrics = nullptr;
  /// Optional scheduler-quality counters (not owned; obs/quality.hpp):
  /// preemptions, migrations, idle capacity, context switches
  /// accumulate incrementally with no effect on placements.  Like
  /// trace/metrics, attaching disables cycle fast-forward.
  QualityCounters* quality = nullptr;
  /// Optional bump arena (not owned; core/arena.hpp) backing the
  /// simulator's working state, as for SfqOptions::arena.  Must be
  /// fresh or reset when the run starts; the caller resets it between
  /// runs.
  Arena* arena = nullptr;
  /// Steady-state cycle detection (dvq/dvq_cycle.hpp): skip proven-
  /// recurring hyperperiods instead of simulating them.  Engages only
  /// for deterministic/periodic yield models (YieldModel::periodic_costs)
  /// and never while `trace` or `metrics` is attached; placements are
  /// bit-identical either way.
  bool cycle_detect = true;
};

/// Runs the DVQ scheduler with actual execution costs drawn from `yields`.
[[nodiscard]] DvqSchedule schedule_dvq(const TaskSystem& sys,
                                       const YieldModel& yields,
                                       const DvqOptions& opts = {});

}  // namespace pfair
