#include "dvq/dvq_scheduler.hpp"

#include <optional>
#include <utility>

#include "dvq/dvq_cycle.hpp"
#include "dvq/dvq_simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {

DvqSchedule schedule_dvq(const TaskSystem& sys, const YieldModel& yields,
                         const DvqOptions& opts) {
  if (opts.cycle_detect && opts.trace == nullptr && opts.metrics == nullptr &&
      opts.quality == nullptr && yields.periodic_costs()) {
    const std::int64_t limit =
        opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
    DvqCycleSchedule cyc = schedule_dvq_cyclic(sys, yields, opts);
    if (cyc.stats().engaged) return cyc.materialize(limit);
    return std::move(cyc).take_stored();
  }
  const std::int64_t slot_limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  // The simulator is not movable (its ready heap points into member
  // tables), so construct in place under the span.
  std::optional<DvqSimulator> sim_store;
  {
    PFAIR_PROF_SPAN(kConstruction);
    sim_store.emplace(sys, yields, opts.policy, opts.arena);
  }
  DvqSimulator& sim = *sim_store;
  if (opts.trace != nullptr) sim.set_trace_sink(opts.trace);
  if (opts.metrics != nullptr) sim.attach_metrics(*opts.metrics);
  if (opts.quality != nullptr) sim.set_quality(opts.quality);
  sim.run_until(Time::slots(slot_limit));
  if (opts.metrics != nullptr) {
    const DvqSchedule& sched = sim.schedule();
    std::int64_t busy = 0;
    for (const std::int64_t b : sched.busy_ticks()) busy += b;
    opts.metrics->gauge("sched.idle_ticks")
        .set(sched.makespan().raw_ticks() * sys.processors() - busy);
  }
  return std::move(sim).take_schedule();
}

}  // namespace pfair
