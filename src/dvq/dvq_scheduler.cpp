#include "dvq/dvq_scheduler.hpp"

#include <utility>

#include "dvq/dvq_simulator.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {

DvqSchedule schedule_dvq(const TaskSystem& sys, const YieldModel& yields,
                         const DvqOptions& opts) {
  const std::int64_t slot_limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  DvqSimulator sim(sys, yields, opts.policy, opts.log_decisions);
  sim.run_until(Time::slots(slot_limit));
  return std::move(sim).take_schedule();
}

}  // namespace pfair
