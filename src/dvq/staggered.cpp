#include "dvq/staggered.hpp"

#include <algorithm>
#include <vector>

#include "sched/sfq_scheduler.hpp"

namespace pfair {

DvqSchedule schedule_staggered(const TaskSystem& sys, const YieldModel& yields,
                               const StaggeredOptions& opts) {
  const std::int64_t slot_limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  const PriorityOrder order(sys, opts.policy);
  DvqSchedule sched(sys);

  const auto n_tasks = static_cast<std::size_t>(sys.num_tasks());
  const auto n_procs = static_cast<std::size_t>(sys.processors());

  std::vector<std::int64_t> head(n_tasks, 0);
  std::vector<Time> pred_completion(n_tasks);  // completion of last subtask

  // Processor k's boundary offset within a slot.
  std::vector<Time> offset(n_procs);
  for (std::size_t k = 0; k < n_procs; ++k) {
    offset[k] = Time::ticks(static_cast<std::int64_t>(k) * kTicksPerSlot /
                            static_cast<std::int64_t>(n_procs));
  }

  std::int64_t remaining = sys.total_subtasks();

  // Walk slot boundaries in global time order: slot n, processors 0..M-1
  // (offsets are nondecreasing in k, so this is chronological).  At each
  // boundary the owning processor is idle by construction (its previous
  // quantum has ended), and picks the single highest-priority ready
  // subtask.
  for (std::int64_t n = 0; n < slot_limit && remaining > 0; ++n) {
    for (std::size_t k = 0; k < n_procs && remaining > 0; ++k) {
      const Time t = Time::slots(n) + offset[k];
      // Find the highest-priority ready subtask at t.
      SubtaskRef best;
      for (std::size_t j = 0; j < n_tasks; ++j) {
        const Task& task = sys.task(static_cast<std::int64_t>(j));
        const std::int64_t h = head[j];
        if (h >= task.num_subtasks()) continue;
        const Subtask& s = task.subtask(h);
        if (Time::slots(s.eligible) > t) continue;
        if (h > 0 && pred_completion[j] > t) continue;
        const SubtaskRef ref{static_cast<std::int32_t>(j),
                             static_cast<std::int32_t>(h)};
        if (!best.valid() || order.higher(ref, best)) best = ref;
      }
      if (!best.valid()) continue;
      const Time c = yields.checked_cost(sys, best);
      sched.place(best, t, c, static_cast<int>(k));
      const auto j = static_cast<std::size_t>(best.task);
      ++head[j];
      pred_completion[j] = t + c;
      --remaining;
      if (opts.log_decisions) {
        DvqDecision dec;
        dec.at = t;
        dec.free_procs = {static_cast<int>(k)};
        dec.started = {best};
        sched.log_decision(std::move(dec));
      }
    }
  }
  return sched;
}

}  // namespace pfair
