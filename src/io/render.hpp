// ASCII rendering of schedules — the library's analogue of the paper's
// figures.  Slot schedules render as a task x slot grid; DVQ schedules as
// per-processor timelines with sub-slot resolution.
#pragma once

#include <cstdint>
#include <string>

#include "dvq/dvq_schedule.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct RenderOptions {
  /// Show each subtask's PF-window as dots between release and deadline.
  bool show_windows = true;
  /// Characters per slot in DVQ timelines (sub-slot resolution).
  int chars_per_slot = 6;
  /// Clip rendering to this many slots (0 = schedule horizon).
  std::int64_t max_slots = 0;
};

/// Task-per-row grid: 'X' where a subtask executes, '.' inside a pending
/// window, ' ' elsewhere; one column per slot, ruler on top.
[[nodiscard]] std::string render_slot_schedule(const TaskSystem& sys,
                                               const SlotSchedule& sched,
                                               const RenderOptions& opts = {});

/// Processor-per-row timelines: each placement drawn as a labelled segment
/// [Xi....), with sub-slot precision rounded to chars_per_slot.
[[nodiscard]] std::string render_dvq_schedule(const TaskSystem& sys,
                                              const DvqSchedule& sched,
                                              const RenderOptions& opts = {});

/// One line per subtask: windows, placement, tardiness.
[[nodiscard]] std::string describe_subtasks(const TaskSystem& sys);

}  // namespace pfair
