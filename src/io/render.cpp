#include "io/render.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pfair {

namespace {

/// Width of the task-name gutter.
std::size_t name_width(const TaskSystem& sys) {
  std::size_t w = 4;
  for (const Task& t : sys.tasks()) w = std::max(w, t.name().size());
  return w;
}

std::string ruler(std::size_t gutter, std::int64_t slots) {
  std::ostringstream os;
  os << std::string(gutter + 2, ' ');
  for (std::int64_t t = 0; t < slots; ++t) {
    os << (t % 5 == 0 ? std::to_string(t % 10) : " ");
  }
  return os.str();
}

}  // namespace

std::string render_slot_schedule(const TaskSystem& sys,
                                 const SlotSchedule& sched,
                                 const RenderOptions& opts) {
  const std::int64_t slots =
      opts.max_slots > 0 ? std::min(opts.max_slots, sched.horizon())
                         : std::max<std::int64_t>(sched.horizon(), 1);
  const std::size_t gutter = name_width(sys);
  std::ostringstream os;
  os << ruler(gutter, slots) << '\n';
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::string row(static_cast<std::size_t>(slots), ' ');
    if (opts.show_windows) {
      for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
        const Subtask sub = task.subtask_at(s);
        for (std::int64_t t = std::max<std::int64_t>(0, sub.release);
             t < std::min(slots, sub.deadline); ++t) {
          char& c = row[static_cast<std::size_t>(t)];
          if (c == ' ') c = '.';
        }
      }
    }
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.scheduled() || p.slot >= slots) continue;
      row[static_cast<std::size_t>(p.slot)] =
          static_cast<char>('0' + p.proc % 10);
    }
    os << std::setw(static_cast<int>(gutter)) << task.name() << " |" << row
       << "|\n";
  }
  os << "(digits = executing subtask's processor; '.' = pending window)";
  return os.str();
}

std::string render_dvq_schedule(const TaskSystem& sys,
                                const DvqSchedule& sched,
                                const RenderOptions& opts) {
  PFAIR_REQUIRE(opts.chars_per_slot >= 2, "need >= 2 chars per slot");
  const std::int64_t slots =
      opts.max_slots > 0
          ? std::min(opts.max_slots, sched.makespan().slot_ceil())
          : std::max<std::int64_t>(sched.makespan().slot_ceil(), 1);
  const auto cps = static_cast<std::int64_t>(opts.chars_per_slot);
  const std::size_t width = static_cast<std::size_t>(slots * cps);

  std::vector<std::string> rows(
      static_cast<std::size_t>(sys.processors()),
      std::string(width, ' '));

  auto to_col = [&](Time t) {
    // Round to nearest character cell; exact for ticks that are multiples
    // of 1/cps of a slot.
    const std::int64_t tk = t.raw_ticks();
    return std::min<std::int64_t>(
        static_cast<std::int64_t>(width),
        (tk * cps + kTicksPerSlot / 2) / kTicksPerSlot);
  };

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const DvqPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.placed) continue;
      const std::int64_t c0 = to_col(p.start);
      const std::int64_t c1 = std::max(to_col(p.completion()), c0 + 1);
      if (c0 >= static_cast<std::int64_t>(width)) continue;
      std::string& row = rows[static_cast<std::size_t>(p.proc)];
      const std::string label =
          task.name() + std::to_string(task.subtask(s).index);
      for (std::int64_t c = c0;
           c < std::min<std::int64_t>(c1, static_cast<std::int64_t>(width));
           ++c) {
        const auto li = static_cast<std::size_t>(c - c0);
        row[static_cast<std::size_t>(c)] =
            li < label.size() ? label[li] : '=';
      }
      // Mark an early yield (completion before the next boundary).
      if (c1 - 1 < static_cast<std::int64_t>(width) && c1 > c0) {
        if (!p.completion().is_slot_boundary()) {
          row[static_cast<std::size_t>(c1 - 1)] = ')';
        }
      }
    }
  }

  std::ostringstream os;
  os << "      ";
  for (std::int64_t t = 0; t <= slots; ++t) {
    const std::string tick = std::to_string(t);
    os << tick;
    if (t < slots) {
      os << std::string(static_cast<std::size_t>(std::max<std::int64_t>(
                            0, cps - static_cast<std::int64_t>(tick.size()))),
                        ' ');
    }
  }
  os << '\n';
  for (std::size_t pi = 0; pi < rows.size(); ++pi) {
    os << "P" << pi << "   |" << rows[pi] << "|\n";
  }
  os << "(')' = early yield before the slot boundary)";
  return os.str();
}

std::string describe_subtasks(const TaskSystem& sys) {
  std::ostringstream os;
  os << "task      i  theta      r      d  e      b  grpD\n";
  for (const Task& task : sys.tasks()) {
    for (std::int64_t i = 0; i < task.num_subtasks(); ++i) {
      const Subtask s = task.subtask_at(i);
      os << std::left << std::setw(8) << task.name() << std::right
         << std::setw(3) << s.index << std::setw(7) << s.theta
         << std::setw(7) << s.release << std::setw(7) << s.deadline
         << std::setw(3) << s.eligible << std::setw(7) << (s.bbit ? 1 : 0)
         << std::setw(6) << s.group_deadline << '\n';
    }
  }
  return os.str();
}

}  // namespace pfair
