// CSV export of schedules and task systems, for offline analysis and
// plotting (each bench can dump its raw data).
#pragma once

#include <cstdint>
#include <span>

#include "dvq/dvq_schedule.hpp"
#include "io/csv.hpp"
#include "obs/trace.hpp"
#include "sched/schedule.hpp"

namespace pfair {

namespace prof {
struct ProfileSnapshot;  // obs/prof.hpp
}  // namespace prof

/// One row per subtask: task, name, index, window parameters.
[[nodiscard]] CsvWriter export_task_system(const TaskSystem& sys);

/// One row per placed subtask of a slot schedule:
/// task,name,index,slot,proc,deadline,tardiness.
[[nodiscard]] CsvWriter export_slot_schedule(const TaskSystem& sys,
                                             const SlotSchedule& sched);

/// One row per placed subtask of a DVQ schedule, with exact tick values:
/// task,name,index,start_ticks,cost_ticks,proc,deadline,tardiness_ticks.
[[nodiscard]] CsvWriter export_dvq_schedule(const TaskSystem& sys,
                                            const DvqSchedule& sched);

/// Chrome trace-event JSON ("chrome://tracing" / Perfetto "Open legacy
/// trace"): one complete event per placed subtask, processors as
/// threads, 1 slot = 1000 trace microseconds.  Works for both schedule
/// kinds (slot schedules occupy whole quanta).
///
/// The `events` overloads additionally render a captured scheduler
/// trace (e.g. a RingBufferSink snapshot) as instant events — decision
/// boundaries, preemptions, migrations, deadline outcomes — on the
/// processor rows (tid M is the "scheduler" row for processor-less
/// events).  kCompare events are skipped: they dominate the stream and
/// drown the timeline.
[[nodiscard]] std::string export_chrome_trace(const TaskSystem& sys,
                                              const DvqSchedule& sched);
[[nodiscard]] std::string export_chrome_trace(const TaskSystem& sys,
                                              const SlotSchedule& sched);
[[nodiscard]] std::string export_chrome_trace(
    const TaskSystem& sys, const DvqSchedule& sched,
    std::span<const TraceEvent> events);
[[nodiscard]] std::string export_chrome_trace(
    const TaskSystem& sys, const SlotSchedule& sched,
    std::span<const TraceEvent> events);

/// Extra streams rendered alongside a schedule in one Chrome trace.
struct ChromeTraceExtras {
  /// Captured scheduler trace, rendered as instant events (see above).
  std::span<const TraceEvent> events{};
  /// Events the capturing ring dropped (RingBufferSink::dropped()).
  /// Nonzero renames the schedule process to "... (trace truncated: N
  /// events dropped)" and records the count under otherData, so a
  /// truncated timeline is visibly truncated in Chrome/Perfetto.
  std::uint64_t events_dropped = 0;
  /// Self-profiling spans (obs/prof.hpp), rendered as ph:"X" duration
  /// events in real (wall-clock) microseconds on a second process row —
  /// the schedule timeline above, where the simulator spent its cycles
  /// below.
  const prof::ProfileSnapshot* profile = nullptr;
};

/// The full-fat export: schedule + scheduler trace + profiler spans +
/// truncation metadata.  The overloads above delegate here.
[[nodiscard]] std::string export_chrome_trace(const TaskSystem& sys,
                                              const DvqSchedule& sched,
                                              const ChromeTraceExtras& extras);
[[nodiscard]] std::string export_chrome_trace(const TaskSystem& sys,
                                              const SlotSchedule& sched,
                                              const ChromeTraceExtras& extras);

}  // namespace pfair
