// Aligned text tables for experiment output (paper-style rows).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfair {

/// Builds a column-aligned table: add a header once, then rows; `str()`
/// pads every column to its widest cell.  Numeric formatting is the
/// caller's job (pass pre-formatted strings via `cell()` helpers).
class TextTable {
 public:
  TextTable& header(std::vector<std::string> cols);
  TextTable& row(std::vector<std::string> cols);

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers for table cells.
[[nodiscard]] std::string cell(std::int64_t v);
[[nodiscard]] std::string cell(double v, int precision = 3);
[[nodiscard]] std::string cell_ratio(std::int64_t num, std::int64_t den,
                                     int precision = 3);

}  // namespace pfair
