#include "io/prometheus.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace pfair {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = "pfair_";
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(
        (std::isalnum(u) != 0 || c == '_' || c == ':') ? c : '_');
  }
  return out;
}

// Largest value held by log2 bucket b (bucket 0: everything <= 0).
std::int64_t bucket_upper(int b) {
  if (b <= 0) return 0;
  if (b >= 63) return INT64_MAX;
  return (std::int64_t{1} << b) - 1;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = sanitize(name) + "_total";
    os << "# TYPE " << p << " counter\n";
    os << p << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = sanitize(name);
    os << "# TYPE " << p << " gauge\n";
    os << p << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = sanitize(name);
    os << "# TYPE " << p << " histogram\n";
    std::int64_t cum = 0;
    for (const auto& [b, n] : h.buckets) {
      cum += n;
      os << p << "_bucket{le=\"" << bucket_upper(b) << "\"} " << cum
         << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << p << "_sum " << h.sum << "\n";
    os << p << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace pfair
