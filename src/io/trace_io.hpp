// Reading trace streams back in — the reverse of trace_event_json().
//
// `pfairsim --trace` writes one JSON object per line (JSONL); these
// helpers parse that stream back into TraceEvent records so offline
// tools (pfairtrace validate / diff) can re-run the invariant auditor
// or compare two runs event by event.  Parsing is strict about types
// but lenient about unknown keys, so the format can grow.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "obs/trace.hpp"

namespace pfair {

/// Inverse of to_string(TraceEventKind); nullopt for an unknown name.
[[nodiscard]] std::optional<TraceEventKind> trace_event_kind_from_string(
    std::string_view s);

/// Inverse of to_string(TieRule); nullopt for an unknown name.
[[nodiscard]] std::optional<TieRule> tie_rule_from_string(std::string_view s);

/// Parses one trace_event_json() object.  Throws ContractViolation on a
/// missing/ill-typed required field ("k", "t") or an unknown kind.
[[nodiscard]] TraceEvent trace_event_from_json(const JsonValue& v);

/// Reads a JSONL trace stream: one event per non-blank line.  Throws
/// ContractViolation on the first malformed line (message names the
/// 1-based line number).
[[nodiscard]] std::vector<TraceEvent> read_trace_jsonl(std::istream& is);

}  // namespace pfair
