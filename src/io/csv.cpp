#include "io/csv.hpp"

#include <fstream>
#include <ostream>

#include "core/assert.hpp"

namespace pfair {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

CsvWriter& CsvWriter::row(std::vector<std::string> cols) {
  if (!header_.empty()) {
    PFAIR_REQUIRE(cols.size() == header_.size(),
                  "CSV row width " << cols.size() << " != header width "
                                   << header_.size());
  }
  rows_.push_back(std::move(cols));
  return *this;
}

void CsvWriter::write(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cols) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(cols[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  PFAIR_REQUIRE(f.good(), "cannot open " << path << " for writing");
  write(f);
  f.flush();
  PFAIR_REQUIRE(f.good(), "write to " << path << " failed");
}

}  // namespace pfair
