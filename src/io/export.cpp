#include "io/export.hpp"

#include <cmath>
#include <sstream>

#include "analysis/tardiness.hpp"
#include "io/json.hpp"
#include "obs/prof.hpp"

namespace pfair {

namespace {

/// Trace-event timebase: one slot = 1000 "microseconds".
constexpr std::int64_t kTraceUsPerSlot = 1000;

std::int64_t to_trace_us(Time t) {
  return t.raw_ticks() * kTraceUsPerSlot / kTicksPerSlot;
}

void emit_event(std::ostream& os, bool& first, const std::string& name,
                int proc, std::int64_t ts_us, std::int64_t dur_us,
                std::int64_t deadline, std::int64_t tardiness_ticks) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << name << R"(", "cat": "subtask", "ph": "X",)"
     << R"( "pid": 1, "tid": )" << proc << R"(, "ts": )" << ts_us
     << R"(, "dur": )" << dur_us << R"(, "args": {"deadline": )" << deadline
     << R"(, "tardiness_ticks": )" << tardiness_ticks << "}}";
}

/// Renders a scheduler trace event as a thread-scoped instant event.
/// Processor-less events land on tid M, a synthetic "scheduler" row.
void emit_instants(std::ostream& os, bool& first, const TaskSystem& sys,
                   std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kCompare) continue;
    if (first) {
      first = false;
    } else {
      os << ",\n";
    }
    const int tid = e.proc >= 0 ? e.proc : sys.processors();
    os << R"(  {"name": ")" << to_string(e.kind)
       << R"(", "cat": "decision", "ph": "i", "s": "t", "pid": 1, "tid": )"
       << tid << R"(, "ts": )" << to_trace_us(e.at) << R"(, "args": {)";
    bool farg = true;
    auto arg = [&](const char* key, std::int64_t v) {
      if (!farg) os << ", ";
      farg = false;
      os << '"' << key << "\": " << v;
    };
    if (e.subject.valid()) {
      arg("task", e.subject.task);
      arg("seq", e.subject.seq);
    }
    if (e.aux != 0) arg("aux", e.aux);
    arg("d", e.detail);
    os << "}}";
  }
}

void emit_metadata(std::ostream& os, bool& first, int pid,
                   const char* kind, const std::string& value) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << kind << R"(", "ph": "M", "pid": )" << pid
     << R"(, "tid": 0, "args": {"name": ")" << json_escape(value)
     << "\"}}";
}

/// Profiler process row (pid 2): every recorded span as a ph:"X" event
/// in real wall-clock microseconds, one thread row per profiled thread.
void emit_profile_spans(std::ostream& os, bool& first,
                        const prof::ProfileSnapshot& profile) {
  emit_metadata(os, first, 2, "process_name",
                "profiler (" + profile.clock + ")");
  const double ns = profile.ns_per_tick;
  for (const prof::SpanRecord& s : profile.spans) {
    if (!first) os << ",\n";
    first = false;
    const auto ts = static_cast<std::int64_t>(
        std::llround(static_cast<double>(s.start_ticks) * ns / 1000.0));
    const auto dur = static_cast<std::int64_t>(
        std::llround(static_cast<double>(s.dur_ticks) * ns / 1000.0));
    os << R"(  {"name": ")" << prof::to_string(s.phase)
       << R"(", "cat": "prof", "ph": "X", "pid": 2, "tid": )" << s.thread
       << R"(, "ts": )" << ts << R"(, "dur": )" << dur
       << R"(, "args": {"depth": )" << s.depth << "}}";
  }
}

/// Shared tail: instants, truncation metadata, profiler spans, footer.
void finish_trace(std::ostream& os, bool& first, const TaskSystem& sys,
                  const ChromeTraceExtras& extras) {
  emit_instants(os, first, sys, extras.events);
  if (extras.events_dropped > 0) {
    emit_metadata(os, first, 1, "process_name",
                  "schedule (trace truncated: " +
                      std::to_string(extras.events_dropped) +
                      " events dropped)");
  }
  if (extras.profile != nullptr) {
    emit_profile_spans(os, first, *extras.profile);
  }
  os << "\n]";
  if (extras.events_dropped > 0) {
    os << ", \"otherData\": {\"trace_events_dropped\": "
       << extras.events_dropped << "}";
  }
  os << ", \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace

CsvWriter export_task_system(const TaskSystem& sys) {
  CsvWriter w;
  w.header({"task", "name", "weight", "index", "theta", "release",
            "deadline", "eligible", "bbit", "group_deadline"});
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t i = 0; i < task.num_subtasks(); ++i) {
      const Subtask s = task.subtask_at(i);
      w.row({std::to_string(k), task.name(), task.weight().str(),
             std::to_string(s.index), std::to_string(s.theta),
             std::to_string(s.release), std::to_string(s.deadline),
             std::to_string(s.eligible), s.bbit ? "1" : "0",
             std::to_string(s.group_deadline)});
    }
  }
  return w;
}

CsvWriter export_slot_schedule(const TaskSystem& sys,
                               const SlotSchedule& sched) {
  CsvWriter w;
  w.header({"task", "name", "index", "slot", "proc", "deadline",
            "tardiness_slots"});
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const SlotPlacement& p = sched.placement(ref);
      if (!p.scheduled()) continue;
      w.row({std::to_string(k), task.name(),
             std::to_string(task.subtask(s).index), std::to_string(p.slot),
             std::to_string(p.proc),
             std::to_string(task.subtask(s).deadline),
             std::to_string(subtask_tardiness(sys, sched, ref))});
    }
  }
  return w;
}

CsvWriter export_dvq_schedule(const TaskSystem& sys,
                              const DvqSchedule& sched) {
  CsvWriter w;
  w.header({"task", "name", "index", "start_ticks", "cost_ticks", "proc",
            "deadline", "tardiness_ticks"});
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = sched.placement(ref);
      if (!p.placed) continue;
      w.row({std::to_string(k), task.name(),
             std::to_string(task.subtask(s).index),
             std::to_string(p.start.raw_ticks()),
             std::to_string(p.cost.raw_ticks()), std::to_string(p.proc),
             std::to_string(task.subtask(s).deadline),
             std::to_string(subtask_tardiness_ticks(sys, sched, ref))});
    }
  }
  return w;
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const DvqSchedule& sched) {
  return export_chrome_trace(sys, sched, ChromeTraceExtras{});
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const SlotSchedule& sched) {
  return export_chrome_trace(sys, sched, ChromeTraceExtras{});
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const DvqSchedule& sched,
                                std::span<const TraceEvent> events) {
  return export_chrome_trace(sys, sched, ChromeTraceExtras{.events = events});
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const SlotSchedule& sched,
                                std::span<const TraceEvent> events) {
  return export_chrome_trace(sys, sched, ChromeTraceExtras{.events = events});
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const DvqSchedule& sched,
                                const ChromeTraceExtras& extras) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = sched.placement(ref);
      if (!p.placed) continue;
      emit_event(os, first,
                 task.name() + "_" + std::to_string(task.subtask(s).index),
                 p.proc, to_trace_us(p.start), to_trace_us(p.cost),
                 task.subtask(s).deadline,
                 subtask_tardiness_ticks(sys, sched, ref));
    }
  }
  finish_trace(os, first, sys, extras);
  return os.str();
}

std::string export_chrome_trace(const TaskSystem& sys,
                                const SlotSchedule& sched,
                                const ChromeTraceExtras& extras) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const SlotPlacement& p = sched.placement(ref);
      if (!p.scheduled()) continue;
      emit_event(os, first,
                 task.name() + "_" + std::to_string(task.subtask(s).index),
                 p.proc, p.slot * kTraceUsPerSlot, kTraceUsPerSlot,
                 task.subtask(s).deadline,
                 subtask_tardiness(sys, sched, ref) * kTicksPerSlot);
    }
  }
  finish_trace(os, first, sys, extras);
  return os.str();
}

}  // namespace pfair
