#include "io/svg.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/tardiness.hpp"

namespace pfair {

namespace {

/// Muted categorical palette (cycled per task).
const char* const kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f", "#b07aa1",
                                "#76b7b2", "#edc948", "#9c755f", "#bab0ac"};
constexpr int kPaletteSize = 8;
constexpr int kGutter = 72;   // left label gutter
constexpr int kTopRuler = 22;

const char* color_of(std::int32_t task) {
  return kPalette[static_cast<std::size_t>(task % kPaletteSize)];
}

void svg_header(std::ostringstream& os, int width, int height) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\" font-family=\"sans-serif\" font-size=\"11\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

void ruler(std::ostringstream& os, std::int64_t slots, int slot_w,
           int height) {
  for (std::int64_t t = 0; t <= slots; ++t) {
    const int x = kGutter + static_cast<int>(t) * slot_w;
    os << "<line x1=\"" << x << "\" y1=\"" << kTopRuler << "\" x2=\"" << x
       << "\" y2=\"" << height << "\" stroke=\"#ddd\"/>\n";
    os << "<text x=\"" << x << "\" y=\"" << kTopRuler - 8
       << "\" text-anchor=\"middle\" fill=\"#666\">" << t << "</text>\n";
  }
}

void label(std::ostringstream& os, const std::string& name, int y,
           int row_h) {
  os << "<text x=\"" << kGutter - 8 << "\" y=\"" << y + row_h / 2 + 4
     << "\" text-anchor=\"end\">" << name << "</text>\n";
}

void box(std::ostringstream& os, double x0, double x1, int y, int row_h,
         const char* fill, bool tardy, const std::string& text) {
  os << "<rect x=\"" << x0 << "\" y=\"" << y + 3 << "\" width=\""
     << std::max(1.0, x1 - x0) << "\" height=\"" << row_h - 6
     << "\" fill=\"" << fill << "\" stroke=\""
     << (tardy ? "#d62728" : "#333") << "\" stroke-width=\""
     << (tardy ? 2 : 1) << "\" rx=\"2\"/>\n";
  if (!text.empty()) {
    os << "<text x=\"" << (x0 + x1) / 2 << "\" y=\"" << y + row_h / 2 + 4
       << "\" text-anchor=\"middle\" fill=\"white\">" << text
       << "</text>\n";
  }
}

}  // namespace

std::string render_slot_schedule_svg(const TaskSystem& sys,
                                     const SlotSchedule& sched,
                                     const SvgOptions& opts) {
  const std::int64_t slots =
      opts.max_slots > 0 ? std::min(opts.max_slots, sched.horizon())
                         : std::max<std::int64_t>(sched.horizon(), 1);
  const int width =
      kGutter + static_cast<int>(slots) * opts.slot_width_px + 12;
  const int height = kTopRuler +
                     static_cast<int>(sys.num_tasks()) * opts.row_height_px +
                     10;
  std::ostringstream os;
  svg_header(os, width, height);
  ruler(os, slots, opts.slot_width_px, height - 10);

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    const int y = kTopRuler + k * opts.row_height_px;
    label(os, task.name(), y, opts.row_height_px);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const Subtask& sub = task.subtask(s);
      if (opts.show_windows && sub.release < slots) {
        const int x0 = kGutter + static_cast<int>(sub.release) *
                                     opts.slot_width_px;
        const int x1 = kGutter + static_cast<int>(std::min(
                                     sub.deadline, slots)) *
                                     opts.slot_width_px;
        os << "<line x1=\"" << x0 << "\" y1=\"" << y + opts.row_height_px - 3
           << "\" x2=\"" << x1 << "\" y2=\"" << y + opts.row_height_px - 3
           << "\" stroke=\"" << color_of(k) << "\" stroke-dasharray=\"3 2\""
           << " opacity=\"0.6\"/>\n";
      }
      const SlotPlacement& p = sched.placement(ref);
      if (!p.scheduled() || p.slot >= slots) continue;
      const double x0 =
          kGutter + static_cast<double>(p.slot) * opts.slot_width_px;
      box(os, x0, x0 + opts.slot_width_px, y, opts.row_height_px,
          color_of(k), subtask_tardiness(sys, sched, ref) > 0,
          std::to_string(sub.index));
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string render_dvq_schedule_svg(const TaskSystem& sys,
                                    const DvqSchedule& sched,
                                    const SvgOptions& opts) {
  const std::int64_t slots =
      opts.max_slots > 0
          ? std::min(opts.max_slots, sched.makespan().slot_ceil())
          : std::max<std::int64_t>(sched.makespan().slot_ceil(), 1);
  const int width =
      kGutter + static_cast<int>(slots) * opts.slot_width_px + 12;
  const int height = kTopRuler +
                     sys.processors() * opts.row_height_px + 10;
  std::ostringstream os;
  svg_header(os, width, height);
  ruler(os, slots, opts.slot_width_px, height - 10);

  for (int pi = 0; pi < sys.processors(); ++pi) {
    label(os, "P" + std::to_string(pi),
          kTopRuler + pi * opts.row_height_px, opts.row_height_px);
  }
  const double px_per_tick =
      static_cast<double>(opts.slot_width_px) /
      static_cast<double>(kTicksPerSlot);
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = sched.placement(ref);
      if (!p.placed || p.start.slot_floor() >= slots) continue;
      const int y = kTopRuler + p.proc * opts.row_height_px;
      const double x0 =
          kGutter + static_cast<double>(p.start.raw_ticks()) * px_per_tick;
      const double x1 = kGutter + static_cast<double>(
                                      p.completion().raw_ticks()) *
                                      px_per_tick;
      box(os, x0, x1, y, opts.row_height_px, color_of(k),
          subtask_tardiness_ticks(sys, sched, ref) > 0,
          task.name() + std::to_string(task.subtask(s).index));
    }
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace pfair
