// Minimal JSON support for the observability layer: string escaping for
// the writers (trace sinks, bench reports, metrics serialization) and a
// small recursive-descent parser used by tests and tools to validate
// emitted documents.  This is intentionally not a general-purpose JSON
// library — no comments, no trailing commas, UTF-8 passed through.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace pfair {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Parsed JSON value.  Numbers are kept as doubles (plus an exact int64
/// when the literal was integral); objects preserve insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;  ///< valid when `is_integer`
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is(Kind k) const { return kind == k; }
  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// `find` that throws ContractViolation when the key is absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses one complete JSON document; throws ContractViolation on any
/// syntax error or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Serializes a metrics snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {name:
///  {"count": n, "sum": s, "min": m, "max": M, "buckets": [[b, n], ...]}}}
[[nodiscard]] std::string metrics_to_json(const MetricsSnapshot& snap,
                                          int indent = 0);

}  // namespace pfair
