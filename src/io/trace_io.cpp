#include "io/trace_io.hpp"

#include <istream>
#include <sstream>
#include <string>

#include "core/assert.hpp"

namespace pfair {

std::optional<TraceEventKind> trace_event_kind_from_string(
    std::string_view s) {
  for (int k = 0; k <= static_cast<int>(TraceEventKind::kAuditFinding);
       ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (s == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<TieRule> tie_rule_from_string(std::string_view s) {
  for (int r = 0; r <= static_cast<int>(TieRule::kTie); ++r) {
    const auto rule = static_cast<TieRule>(r);
    if (s == to_string(rule)) return rule;
  }
  return std::nullopt;
}

namespace {

std::int64_t int_or(const JsonValue& v, std::string_view key,
                    std::int64_t fallback) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return fallback;
  PFAIR_REQUIRE(f->is(JsonValue::Kind::kNumber) && f->is_integer,
                "trace field \"" << key << "\" must be an integer");
  return f->integer;
}

}  // namespace

TraceEvent trace_event_from_json(const JsonValue& v) {
  PFAIR_REQUIRE(v.is(JsonValue::Kind::kObject),
                "trace event must be a JSON object");
  const JsonValue& k = v.at("k");
  PFAIR_REQUIRE(k.is(JsonValue::Kind::kString),
                "trace field \"k\" must be a string");
  const auto kind = trace_event_kind_from_string(k.string);
  PFAIR_REQUIRE(kind.has_value(), "unknown trace event kind \"" << k.string
                                                                << "\"");
  TraceEvent e;
  e.kind = *kind;
  e.at = Time::ticks(int_or(v, "t", 0));
  e.subject =
      SubtaskRef{static_cast<std::int32_t>(int_or(v, "task", -1)),
                 static_cast<std::int32_t>(int_or(v, "seq", -1))};
  e.other =
      SubtaskRef{static_cast<std::int32_t>(int_or(v, "vs_task", -1)),
                 static_cast<std::int32_t>(int_or(v, "vs_seq", -1))};
  e.proc = static_cast<int>(int_or(v, "proc", -1));
  if (e.kind == TraceEventKind::kCompare) {
    const JsonValue* rule = v.find("rule");
    if (rule != nullptr) {
      PFAIR_REQUIRE(rule->is(JsonValue::Kind::kString),
                    "trace field \"rule\" must be a string");
      const auto r = tie_rule_from_string(rule->string);
      PFAIR_REQUIRE(r.has_value(),
                    "unknown tie rule \"" << rule->string << "\"");
      e.aux = static_cast<std::int32_t>(*r);
    }
  } else {
    e.aux = static_cast<std::int32_t>(int_or(v, "aux", 0));
  }
  e.detail = int_or(v, "d", 0);
  return e;
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& is) {
  std::vector<TraceEvent> out;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view sv = line;
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t' ||
                           sv.front() == '\r')) {
      sv.remove_prefix(1);
    }
    if (sv.empty()) continue;
    try {
      out.push_back(trace_event_from_json(parse_json(sv)));
    } catch (const ContractViolation& e) {
      PFAIR_REQUIRE(false, "trace line " << lineno << ": " << e.what());
    }
  }
  return out;
}

}  // namespace pfair
