#include "io/parse.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <sstream>

namespace pfair {

namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string clean(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

std::int64_t parse_int(const std::string& tok, int lineno,
                       const char* what) {
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(tok, &pos);
  } catch (...) {
    pos = 0;
  }
  PFAIR_REQUIRE(pos == tok.size() && !tok.empty(),
                "line " << lineno << ": bad " << what << " '" << tok << "'");
  return v;
}

Weight parse_weight(const std::string& tok, int lineno) {
  const auto slash = tok.find('/');
  PFAIR_REQUIRE(slash != std::string::npos,
                "line " << lineno << ": weight must be e/p, got '" << tok
                        << "'");
  const std::int64_t e = parse_int(tok.substr(0, slash), lineno, "weight");
  const std::int64_t p = parse_int(tok.substr(slash + 1), lineno, "weight");
  PFAIR_REQUIRE(e >= 1 && p >= e,
                "line " << lineno << ": weight " << tok
                        << " outside (0, 1]");
  return Weight(e, p);
}

}  // namespace

ParsedSystem parse_task_file(std::istream& in) {
  ParsedSystem out;
  bool saw_processors = false;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = clean(raw);
    if (line.empty()) continue;
    std::istringstream toks(line);
    std::string kw;
    toks >> kw;
    if (kw == "processors") {
      std::string v;
      toks >> v;
      const std::int64_t m = parse_int(v, lineno, "processor count");
      PFAIR_REQUIRE(m >= 1 && m <= 1024,
                    "line " << lineno << ": processor count " << m);
      out.processors = static_cast<int>(m);
      saw_processors = true;
    } else if (kw == "horizon") {
      std::string v;
      toks >> v;
      out.horizon = parse_int(v, lineno, "horizon");
      PFAIR_REQUIRE(out.horizon >= 1,
                    "line " << lineno << ": horizon must be >= 1");
    } else if (kw == "task") {
      ParsedTask t;
      std::string wtok;
      toks >> t.name >> wtok;
      PFAIR_REQUIRE(!t.name.empty() && !wtok.empty(),
                    "line " << lineno << ": task needs a name and weight");
      t.weight = parse_weight(wtok, lineno);
      std::string opt;
      while (toks >> opt) {
        const auto eq = opt.find('=');
        PFAIR_REQUIRE(eq != std::string::npos,
                      "line " << lineno << ": bad option '" << opt << "'");
        const std::string key = opt.substr(0, eq);
        PFAIR_REQUIRE(key == "phase" || key == "jobs",
                      "line " << lineno << ": unknown option '" << key
                              << "'");
        const std::int64_t val =
            parse_int(opt.substr(eq + 1), lineno, key.c_str());
        if (key == "phase") {
          PFAIR_REQUIRE(val >= 0, "line " << lineno << ": phase >= 0");
          t.phase = val;
        } else {
          PFAIR_REQUIRE(val >= 1, "line " << lineno << ": jobs >= 1");
          t.jobs = val;
        }
      }
      out.tasks.push_back(std::move(t));
    } else {
      PFAIR_REQUIRE(false,
                    "line " << lineno << ": unknown keyword '" << kw << "'");
    }
  }
  PFAIR_REQUIRE(saw_processors, "missing 'processors' line");
  PFAIR_REQUIRE(!out.tasks.empty(), "no tasks defined");
  return out;
}

ParsedSystem parse_task_string(const std::string& text) {
  std::istringstream is(text);
  return parse_task_file(is);
}

std::int64_t ParsedSystem::effective_horizon() const {
  if (horizon > 0) return horizon;
  // Two hyperperiods past the latest phase, capped to keep runs sane.
  std::int64_t h = 1;
  std::int64_t max_phase = 0;
  for (const ParsedTask& t : tasks) {
    h = std::lcm(h, t.weight.p);
    max_phase = std::max(max_phase, t.phase);
    if (h > 4096) break;
  }
  return std::min<std::int64_t>(max_phase + 2 * h, 4096);
}

TaskSystem ParsedSystem::build() const {
  const std::int64_t h = effective_horizon();
  std::vector<Task> out;
  out.reserve(tasks.size());
  for (const ParsedTask& t : tasks) {
    if (t.jobs > 0) {
      std::vector<Task::SubtaskSpec> subs;
      const std::int64_t n = t.jobs * t.weight.e;
      for (std::int64_t i = 1; i <= n; ++i) {
        subs.push_back(Task::SubtaskSpec{i, t.phase, -1});
      }
      out.push_back(Task::gis(t.name, t.weight, subs));
    } else {
      out.push_back(Task::periodic_phased(t.name, t.weight, t.phase,
                                          std::max(h, t.phase)));
    }
  }
  return TaskSystem(std::move(out), processors);
}

}  // namespace pfair
