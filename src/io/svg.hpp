// SVG rendering of schedules — publication-style figures (the graphical
// counterpart of io/render's ASCII output).
//
// Slot schedules draw as the paper's figures do: one row per task, a box
// per executed quantum, window brackets from release to deadline.  DVQ
// schedules draw one lane per processor with exact sub-slot geometry and
// red boxes on tardy subtasks.  Output is self-contained SVG 1.1.
#pragma once

#include <string>

#include "dvq/dvq_schedule.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct SvgOptions {
  int slot_width_px = 48;   ///< horizontal pixels per slot
  int row_height_px = 26;   ///< vertical pixels per task/processor lane
  bool show_windows = true; ///< draw [r, d) brackets on slot schedules
  std::int64_t max_slots = 0;  ///< clip (0 = schedule horizon)
};

/// Task-per-row figure of a slot schedule.
[[nodiscard]] std::string render_slot_schedule_svg(
    const TaskSystem& sys, const SlotSchedule& sched,
    const SvgOptions& opts = {});

/// Processor-per-lane figure of a DVQ/staggered schedule.
[[nodiscard]] std::string render_dvq_schedule_svg(
    const TaskSystem& sys, const DvqSchedule& sched,
    const SvgOptions& opts = {});

}  // namespace pfair
