// Prometheus text-format exposition (version 0.0.4) for a metrics
// snapshot — the scrape surface the future `pfaird` serving daemon will
// answer on /metrics, usable today via `pfairsim --prom` and
// `bench --prom`.
//
// Mapping:
//   * counters    -> `pfair_<name>_total` (TYPE counter)
//   * gauges      -> `pfair_<name>` (TYPE gauge)
//   * histograms  -> `pfair_<name>` as a cumulative native-text
//     histogram: one `_bucket{le="..."}` series per populated log2
//     bucket boundary (le = 2^b - 1, the largest value bucket b holds),
//     a final `_bucket{le="+Inf"}`, plus `_sum` and `_count`.
// Metric names are sanitized to [a-zA-Z0-9_:] (every other byte becomes
// '_'), matching the exposition-format grammar.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace pfair {

/// Renders the whole snapshot in deterministic (name-sorted) order.
[[nodiscard]] std::string metrics_to_prometheus(const MetricsSnapshot& snap);

}  // namespace pfair
