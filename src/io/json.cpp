#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/assert.hpp"

namespace pfair {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  PFAIR_REQUIRE(v != nullptr, "missing JSON key '" << key << "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    PFAIR_REQUIRE(pos_ == s_.size(),
                  "trailing characters after JSON document at offset "
                      << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    PFAIR_REQUIRE(pos_ < s_.size(), "unexpected end of JSON input");
    return s_[pos_];
  }

  void expect(char c) {
    PFAIR_REQUIRE(pos_ < s_.size() && s_[pos_] == c,
                  "expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          PFAIR_REQUIRE(pos_ + 4 <= s_.size(),
                        "truncated \\u escape at offset " << pos_);
          unsigned code = 0;
          const auto res = std::from_chars(
              s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
          PFAIR_REQUIRE(res.ptr == s_.data() + pos_ + 4,
                        "bad \\u escape at offset " << pos_);
          pos_ += 4;
          // BMP-only, encoded as UTF-8 (enough for our own documents).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          PFAIR_REQUIRE(false, "bad escape '\\" << e << "' at offset "
                                                << pos_);
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    PFAIR_REQUIRE(!tok.empty() && tok != "-",
                  "expected a JSON value at offset " << start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const bool integral = tok.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(),
                                       v.integer);
      PFAIR_REQUIRE(res.ec == std::errc() &&
                        res.ptr == tok.data() + tok.size(),
                    "bad integer literal '" << tok << "'");
      v.is_integer = true;
      v.number = static_cast<double>(v.integer);
    } else {
      try {
        v.number = std::stod(std::string(tok));
      } catch (const std::exception&) {
        PFAIR_REQUIRE(false, "bad number literal '" << tok << "'");
      }
    }
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void indent_to(std::ostream& os, int level) {
  for (int i = 0; i < level; ++i) os << ' ';
}

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).document();
}

std::string metrics_to_json(const MetricsSnapshot& snap, int indent) {
  std::ostringstream os;
  const int i1 = indent + 2, i2 = indent + 4;
  auto scalar_map = [&](const char* name,
                        const std::map<std::string, std::int64_t>& m,
                        bool trailing_comma) {
    indent_to(os, i1);
    os << '"' << name << "\": {";
    bool first = true;
    for (const auto& [k, v] : m) {
      os << (first ? "\n" : ",\n");
      first = false;
      indent_to(os, i2);
      os << '"' << json_escape(k) << "\": " << v;
    }
    if (!first) {
      os << '\n';
      indent_to(os, i1);
    }
    os << (trailing_comma ? "},\n" : "}\n");
  };

  os << "{\n";
  scalar_map("counters", snap.counters, true);
  scalar_map("gauges", snap.gauges, true);
  indent_to(os, i1);
  os << "\"histograms\": {";
  bool first = true;
  for (const auto& [k, h] : snap.histograms) {
    os << (first ? "\n" : ",\n");
    first = false;
    indent_to(os, i2);
    os << '"' << json_escape(k) << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [b, n] : h.buckets) {
      if (!bfirst) os << ", ";
      bfirst = false;
      os << '[' << b << ", " << n << ']';
    }
    os << "]}";
  }
  if (!first) {
    os << '\n';
    indent_to(os, i1);
  }
  os << "}\n";
  indent_to(os, indent);
  os << "}";
  return os.str();
}

}  // namespace pfair
