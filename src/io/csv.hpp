// Minimal CSV writing (RFC-4180 quoting) for experiment data exports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pfair {

/// Quotes a field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Accumulates rows and writes them to a stream or file.
class CsvWriter {
 public:
  CsvWriter& header(std::vector<std::string> cols);
  CsvWriter& row(std::vector<std::string> cols);

  void write(std::ostream& os) const;
  /// Writes to `path`, throwing ContractViolation on I/O failure.
  void write_file(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pfair
