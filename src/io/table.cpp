#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/assert.hpp"

namespace pfair {

TextTable& TextTable::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cols) {
  if (!header_.empty()) {
    PFAIR_REQUIRE(cols.size() == header_.size(),
                  "row has " << cols.size() << " cells, header has "
                             << header_.size());
  }
  rows_.push_back(std::move(cols));
  return *this;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width;
  auto widen = [&width](const std::vector<std::string>& cols) {
    if (width.size() < cols.size()) width.resize(cols.size(), 0);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      width[i] = std::max(width[i], cols[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cols) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      os << std::setw(static_cast<int>(width[i])) << cols[i];
      if (i + 1 < cols.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i) {
      total += width[i] + (i + 1 < width.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string cell(std::int64_t v) { return std::to_string(v); }

std::string cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string cell_ratio(std::int64_t num, std::int64_t den, int precision) {
  PFAIR_REQUIRE(den != 0, "ratio with zero denominator");
  return cell(static_cast<double>(num) / static_cast<double>(den),
              precision);
}

}  // namespace pfair
