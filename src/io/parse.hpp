// A small text format for describing task systems, consumed by the
// `pfairsim` CLI and usable from tests/benches.
//
//   # comment (also after values)
//   processors 2
//   horizon 24                # optional; default derived from periods
//   task video 1/2            # synchronous periodic, weight e/p
//   task audio 1/3 phase=4    # joins at slot 4
//   task ctrl  3/4 jobs=5     # leaves after 5 jobs (GIS, finite)
//
// `parse_task_file` reports the first syntax error with its line number
// via ContractViolation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// Parsed, not-yet-materialized task description.
struct ParsedTask {
  std::string name;
  Weight weight;
  std::int64_t phase = 0;
  std::int64_t jobs = -1;  ///< -1: recur through the horizon
};

struct ParsedSystem {
  int processors = 1;
  std::int64_t horizon = 0;  ///< 0: auto (two hyperperiods, capped)
  std::vector<ParsedTask> tasks;

  /// Materializes the description into a schedulable task system.
  [[nodiscard]] TaskSystem build() const;
  /// The horizon build() will use.
  [[nodiscard]] std::int64_t effective_horizon() const;
};

/// Parses the format above; throws ContractViolation on malformed input.
[[nodiscard]] ParsedSystem parse_task_file(std::istream& in);
[[nodiscard]] ParsedSystem parse_task_string(const std::string& text);

}  // namespace pfair
