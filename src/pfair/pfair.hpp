// Umbrella header for the pfair library.
//
// A C++20 laboratory for Pfair scheduling on multiprocessors, built around
// Devi & Anderson, "Desynchronized Pfair Scheduling on Multiprocessors"
// (IPPS 2005).  See README.md for a tour and DESIGN.md for the
// paper-to-code map.
#pragma once

#include "core/arena.hpp"        // IWYU pragma: export
#include "core/assert.hpp"       // IWYU pragma: export
#include "core/rational.hpp"     // IWYU pragma: export
#include "core/simd.hpp"         // IWYU pragma: export
#include "core/rng.hpp"          // IWYU pragma: export
#include "core/stats.hpp"        // IWYU pragma: export
#include "core/thread_pool.hpp"  // IWYU pragma: export
#include "core/time.hpp"         // IWYU pragma: export

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/probe.hpp"    // IWYU pragma: export
#include "obs/prof.hpp"     // IWYU pragma: export
#include "obs/quality.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export

#include "tasks/group_deadline.hpp"  // IWYU pragma: export
#include "tasks/subtask.hpp"         // IWYU pragma: export
#include "tasks/task.hpp"            // IWYU pragma: export
#include "tasks/window_table.hpp"    // IWYU pragma: export
#include "tasks/task_system.hpp"     // IWYU pragma: export
#include "tasks/weight.hpp"          // IWYU pragma: export
#include "tasks/windows.hpp"         // IWYU pragma: export

#include "sched/compressed_schedule.hpp"  // IWYU pragma: export
#include "sched/indexed_scheduler.hpp"  // IWYU pragma: export
#include "sched/packed_key.hpp"     // IWYU pragma: export
#include "sched/pdb_scheduler.hpp"  // IWYU pragma: export
#include "sched/priority.hpp"       // IWYU pragma: export
#include "sched/ready_queue.hpp"    // IWYU pragma: export
#include "sched/reference_scheduler.hpp"  // IWYU pragma: export
#include "sched/schedule.hpp"       // IWYU pragma: export
#include "sched/sfq_scheduler.hpp"  // IWYU pragma: export
#include "sched/simulator.hpp"      // IWYU pragma: export
#include "sched/state_hash.hpp"     // IWYU pragma: export

#include "dvq/dvq_cycle.hpp"      // IWYU pragma: export
#include "dvq/dvq_schedule.hpp"   // IWYU pragma: export
#include "dvq/dvq_scheduler.hpp"  // IWYU pragma: export
#include "dvq/dvq_simulator.hpp"  // IWYU pragma: export
#include "dvq/reference_scheduler.hpp"  // IWYU pragma: export
#include "dvq/staggered.hpp"      // IWYU pragma: export
#include "dvq/yield.hpp"          // IWYU pragma: export

#include "edf/global_edf.hpp"        // IWYU pragma: export
#include "edf/jobs.hpp"              // IWYU pragma: export
#include "edf/partition.hpp"         // IWYU pragma: export
#include "edf/partitioned_edf.hpp"   // IWYU pragma: export
#include "edf/partitioned_pfair.hpp" // IWYU pragma: export

#include "analysis/blocking.hpp"         // IWYU pragma: export
#include "analysis/charged_free.hpp"     // IWYU pragma: export
#include "analysis/compliance.hpp"       // IWYU pragma: export
#include "analysis/hyperperiod.hpp"      // IWYU pragma: export
#include "analysis/lag.hpp"              // IWYU pragma: export
#include "analysis/overheads.hpp"        // IWYU pragma: export
#include "analysis/pdb_blocking.hpp"     // IWYU pragma: export
#include "analysis/recount.hpp"          // IWYU pragma: export
#include "analysis/sb_construction.hpp"  // IWYU pragma: export
#include "analysis/switching.hpp"        // IWYU pragma: export
#include "analysis/tardiness.hpp"        // IWYU pragma: export
#include "analysis/validity.hpp"         // IWYU pragma: export

#include "super/supertask.hpp"  // IWYU pragma: export

#include "workload/adversary.hpp"      // IWYU pragma: export
#include "workload/dynamic.hpp"        // IWYU pragma: export
#include "workload/generator.hpp"      // IWYU pragma: export
#include "workload/paper_figures.hpp"  // IWYU pragma: export

#include "dvq/decision_sink.hpp"  // IWYU pragma: export

#include "io/csv.hpp"       // IWYU pragma: export
#include "io/export.hpp"    // IWYU pragma: export
#include "io/json.hpp"      // IWYU pragma: export
#include "io/parse.hpp"       // IWYU pragma: export
#include "io/prometheus.hpp"  // IWYU pragma: export
#include "io/render.hpp"    // IWYU pragma: export
#include "io/svg.hpp"       // IWYU pragma: export
#include "io/table.hpp"     // IWYU pragma: export
#include "io/trace_io.hpp"  // IWYU pragma: export

#include "obs/audit.hpp"    // IWYU pragma: export
#include "obs/capture.hpp"  // IWYU pragma: export
