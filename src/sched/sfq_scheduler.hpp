// The slot-synchronous (SFQ-model) Pfair scheduler.
//
// At every slot boundary t the scheduler collects the *ready* subtasks —
// each task's next unscheduled subtask, provided it is eligible
// (e(T_i) <= t) and its predecessor, if any, was scheduled before t — and
// places the M highest-priority ones (under the configured policy) on the
// M processors.  This is the model of Sec. 2: fixed-size quanta, aligned
// across processors, decisions at slot boundaries only.
#pragma once

#include <cstdint>

#include "sched/priority.hpp"
#include "sched/schedule.hpp"

namespace pfair {

class Arena;             // core/arena.hpp
class TraceSink;         // obs/trace.hpp
class MetricsRegistry;   // obs/metrics.hpp
struct QualityCounters;  // obs/quality.hpp

/// Options for one SFQ run.
struct SfqOptions {
  Policy policy = Policy::kPd2;
  /// Stop after this many slots even if subtasks remain unscheduled.
  /// 0 = automatic: max deadline plus a tardiness allowance (generous for
  /// suboptimal policies / infeasible systems).
  std::int64_t horizon_limit = 0;
  /// Optional structured trace receiver (not owned; see obs/trace.hpp).
  /// An instrumented run produces a bit-identical schedule.
  TraceSink* trace = nullptr;
  /// Optional metrics registry (not owned); sched.* counters and
  /// histograms accumulate into it (see obs/probe.hpp).
  MetricsRegistry* metrics = nullptr;
  /// Optional scheduler-quality counters (not owned; obs/quality.hpp):
  /// preemptions, migrations, idle slots, context switches accumulate
  /// incrementally with no effect on placements.  Like trace/metrics,
  /// attaching disables cycle fast-forward (skipped slots would be
  /// uncounted).
  QualityCounters* quality = nullptr;
  /// Optional bump arena (not owned; core/arena.hpp) backing all of the
  /// scheduler's working state — key tables, ready heap, calendar
  /// chunks, hot task records.  Must be fresh or reset when the run
  /// starts; the scheduler never resets it, so the caller resets it
  /// between runs.  Together with `schedule_sfq_into`, this makes
  /// repeated runs free of steady-state heap allocations
  /// (tests/steady_alloc_test.cpp pins this).
  Arena* arena = nullptr;
  /// Steady-state cycle detection (sched/compressed_schedule.hpp): skip
  /// proven-recurring hyperperiods instead of simulating them.  Placements
  /// are bit-identical either way; the knob exists so A/B tests can force
  /// the full run.  Automatically off while `trace` or `metrics` is
  /// attached — instrumented streams are never elided.
  bool cycle_detect = true;
};

/// Runs the SFQ scheduler to completion (or to the horizon limit).
/// The returned schedule is complete for every feasible system under an
/// optimal policy; `SlotSchedule::complete()` reports truncation otherwise.
[[nodiscard]] SlotSchedule schedule_sfq(const TaskSystem& sys,
                                        const SfqOptions& opts = {});

/// Runs the SFQ scheduler writing placements into `out`, which must be
/// shaped like `sys` (existing placements are cleared first).  This is
/// the allocation-free reuse entry point: with `opts.arena` set and
/// reset between calls, repeated calls touch only memory that is
/// already owned — no heap traffic in steady state (the sustained-
/// throughput bench and sweeps run on this).  Placements are
/// bit-identical to `schedule_sfq`.  Cycle fast-forward does not apply
/// here (it would synthesize placements outside `out`'s storage), so
/// every slot is simulated.
void schedule_sfq_into(const TaskSystem& sys, const SfqOptions& opts,
                       SlotSchedule& out);

/// The automatic horizon used when `horizon_limit == 0`.
[[nodiscard]] std::int64_t default_horizon(const TaskSystem& sys);

}  // namespace pfair
