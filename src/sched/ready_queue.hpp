// The scheduler's incremental ready set: a binary heap of subtask
// references ordered by the strict total priority order, so one decision
// pops only the subtasks it schedules instead of re-scanning and
// re-sorting every task (O(changes x log n) per decision, not O(n)).
//
// Two comparison modes, chosen once per run:
//   * packed  — one unsigned compare on precomputed 64-bit keys
//               (EPDF/PD/PD2, see sched/packed_key.hpp);
//   * fallback — PriorityOrder::higher (PF's lexicographic bit-string
//               tie-break, or the fit-overflow corner case).
// Both realize the identical strict total order, so pop order — and
// therefore the schedule — is bit-identical across modes.
//
// Entries are never erased in place.  A task's head subtask enters when
// it becomes available and normally leaves by being popped; when the
// instrumented (probe-on) path schedules behind the queue's back, the
// stale entry stays and callers skip it with `is_current` (an entry is
// live iff it still names its task's next unscheduled subtask).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sched/packed_key.hpp"
#include "sched/priority.hpp"

namespace pfair {

class ReadyQueue {
 public:
  /// Both referents must outlive the queue.  Packed mode is used
  /// whenever `keys.packable()`.
  ReadyQueue(const PriorityOrder& order, const PackedKeys& keys)
      : order_(&order), keys_(&keys), packed_(keys.packable()) {}

  void reserve(std::size_t n) { heap_.reserve(n); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Drops every entry (cycle fast-forward rebuilds the ready set from
  /// scratch after a warp — stale refs would otherwise linger forever).
  void clear() { heap_.clear(); }

  void push(const SubtaskRef& ref) {
    heap_.push_back(Entry{packed_ ? keys_->order_key(ref) : 0, ref});
    std::push_heap(heap_.begin(), heap_.end(), Lower{this});
  }

  /// Removes and returns the highest-priority entry (possibly stale —
  /// see header note).  Precondition: !empty().
  SubtaskRef pop_best() {
    std::pop_heap(heap_.begin(), heap_.end(), Lower{this});
    const SubtaskRef ref = heap_.back().ref;
    heap_.pop_back();
    return ref;
  }

 private:
  struct Entry {
    std::uint64_t key;
    SubtaskRef ref;
  };
  // std::push_heap keeps the *greatest* element on top, so "lower
  // priority" is the heap's less-than.
  struct Lower {
    const ReadyQueue* q;
    bool operator()(const Entry& a, const Entry& b) const {
      if (q->packed_) return a.key > b.key;
      return q->order_->higher(b.ref, a.ref);
    }
  };

  std::vector<Entry> heap_;
  const PriorityOrder* order_;
  const PackedKeys* keys_;
  bool packed_;
};

}  // namespace pfair
