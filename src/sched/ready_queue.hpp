// The scheduler's incremental ready set: a priority queue of subtask
// references ordered by the strict total priority order, so one decision
// pops only the subtasks it schedules instead of re-scanning and
// re-sorting every task (O(changes x log n) per decision, not O(n)).
//
// Two comparison modes, chosen once per run:
//   * packed  — one unsigned compare on precomputed 64-bit keys
//               (EPDF/PD/PD2, see sched/packed_key.hpp);
//   * fallback — PriorityOrder::higher (PF's lexicographic bit-string
//               tie-break, or the fit-overflow corner case).
// Both realize the identical strict total order, so pop order — and
// therefore the schedule — is bit-identical across modes.
//
// The packed mode is data-oriented, in two tiers:
//
//   1. An 8-ary heap over two parallel flat arrays (keys / payloads).
//      The physical layout is cache-aligned: the root lives at index 7
//      and the children of node i occupy [8i-48, 8i-41], so every child
//      group starts at a multiple of 8 — with the arrays 64-byte
//      aligned (ArenaVector<.., 64>), one simd::argmin8 per level reads
//      exactly one cache line.  Indices 0..6 are never used, and the
//      key array keeps 8 UINT64_MAX padding slots past the live end so
//      lane loads never read garbage.
//
//   2. Deadline staging.  The pseudo-deadline is the most significant
//      key field (PackedKeys::deadline_shift), so an entry whose
//      deadline slot is beyond the current heap top's cannot be popped
//      yet no matter its low bits.  Such entries are appended O(1) to a
//      per-deadline-slot bucket (chunked freelists, like the
//      simulator's availability calendar) instead of the heap, and a
//      bucket is drained into the heap only once the heap top reaches
//      its deadline slot.  The live heap then holds just the imminent-
//      deadline backlog — a few hundred entries that fit L1 — instead
//      of every ready subtask, which is what made large systems pay
//      DRAM latency per sift level.  Pop order is unchanged: a drain
//      happens strictly before any pop it could influence.
//
// Pop order is the sorted key order in every variant (strict total
// order, keys pairwise distinct by construction), so schedules stay
// bit-identical across heap arity, staging, and SIMD backend — the A/B
// suite asserts this.
//
// Storage comes from an Arena when one is supplied (zero steady-state
// allocations across repeated schedule calls); otherwise the heap.
//
// Entries are never erased in place.  A task's head subtask enters when
// it becomes available and normally leaves by being popped; when the
// instrumented (probe-on) path schedules behind the queue's back, the
// stale entry stays and callers skip it with a head check (an entry is
// live iff it still names its task's next unscheduled subtask).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/arena.hpp"
#include "core/simd.hpp"
#include "sched/packed_key.hpp"
#include "sched/priority.hpp"

namespace pfair {

class ReadyQueue {
 public:
  /// Both referents must outlive the queue.  Packed mode is used
  /// whenever `keys.packable()`.
  ReadyQueue(const PriorityOrder& order, const PackedKeys& keys,
             Arena* arena = nullptr)
      : keys_(arena),
        payload_(arena),
        stage_head_(arena),
        stage_chunks_(arena),
        order_(&order),
        pkeys_(&keys),
        packed_(keys.packable()) {
    if (packed_) {
      shift_ = keys.deadline_shift();
      reset_packed();
    }
  }

  void reserve(std::size_t n) {
    if (packed_) {
      keys_.reserve(n + kBase + kPad);
      payload_.reserve(n + kBase + kPad);
    } else {
      fb_.reserve(n);
    }
  }
  [[nodiscard]] bool empty() const {
    return packed_ ? (n_ == 0 && staged_ == 0) : fb_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return packed_ ? n_ + staged_ : fb_.size();
  }
  /// Drops every entry (cycle fast-forward rebuilds the ready set from
  /// scratch after a warp — stale refs would otherwise linger forever).
  void clear() {
    if (!packed_) {
      fb_.clear();
      return;
    }
    reset_packed();
    for (std::size_t i = 0; i < stage_head_.size(); ++i) stage_head_[i] = -1;
    stage_chunks_.clear();
    stage_free_ = -1;
    staged_ = 0;
    frontier_ = 0;
    stage_min_ = kNoStage;
  }

  /// Packed-mode push with the key already in hand (the simulators keep
  /// each task's next key in their hot per-task record, so the queue
  /// never re-derives it).  Requires packed mode.
  void push_key(std::uint64_t key, std::int32_t task, std::int32_t seq) {
    const auto ds = static_cast<std::int64_t>(key >> shift_);
    if (ds >= frontier_) {
      stage_push(ds, key, pack_ref(task, seq));
      return;
    }
    heap_push(key, pack_ref(task, seq));
  }

  void push(const SubtaskRef& ref) {
    if (packed_) {
      push_key(pkeys_->order_key(ref), ref.task, ref.seq);
      return;
    }
    fb_.push_back(ref);
    std::push_heap(fb_.begin(), fb_.end(), Lower{this});
  }

  /// Removes and returns the highest-priority entry (possibly stale —
  /// see header note).  Precondition: !empty().
  SubtaskRef pop_best() {
    if (!packed_) {
      std::pop_heap(fb_.begin(), fb_.end(), Lower{this});
      const SubtaskRef ref = fb_.back();
      fb_.pop_back();
      return ref;
    }
    maybe_drain();
    std::uint64_t* k = keys_.data();
    std::uint64_t* p = payload_.data();
    const std::uint64_t top = p[kBase];
    const std::size_t last = n_ + kBase - 1;
    const std::uint64_t lk = k[last];
    const std::uint64_t lp = p[last];
    --n_;
    keys_.resize(n_ + kBase + kPad);
    payload_.resize(n_ + kBase + kPad);
    k[last] = ~std::uint64_t{0};  // start of the shifted pad window
    if (n_ != 0) sift_down(lk, lp);
    return unpack_ref(top);
  }

  /// The task owning the current best entry (packed mode; !empty()).
  /// Lets the pop loop prefetch that task's hot record before popping.
  /// Drains any due deadline bucket, hence non-const.
  [[nodiscard]] std::int32_t peek_task() {
    maybe_drain();
    return static_cast<std::int32_t>(payload_.data()[kBase] >> 32);
  }

 private:
  // Physical heap layout: root at kBase, children of node i at
  // [8i - 48, 8i - 41], parent of node j at j/8 + 6; indices 0..kBase-1
  // unused.  kPad UINT64_MAX sentinels follow the last live slot.
  static constexpr std::size_t kBase = 7;
  static constexpr std::size_t kPad = 8;
  static constexpr std::int64_t kNoStage =
      std::numeric_limits<std::int64_t>::max();

  /// One fragment of a deadline bucket's entry list: 7 key/payload
  /// pairs plus the header is 120 bytes — two cache lines.
  struct StageChunk {
    static constexpr std::int32_t kCap = 7;
    std::int32_t count;
    std::int32_t next;  // next chunk in this bucket (or the freelist)
    std::uint64_t key[kCap];
    std::uint64_t pay[kCap];
  };

  static std::uint64_t pack_ref(std::int32_t task, std::int32_t seq) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(task))
            << 32) |
           static_cast<std::uint32_t>(seq);
  }
  static SubtaskRef unpack_ref(std::uint64_t p) {
    return SubtaskRef{static_cast<std::int32_t>(p >> 32),
                      static_cast<std::int32_t>(p & 0xffffffffu)};
  }

  /// Empties the heap and re-establishes the pad window [kBase,
  /// kBase+kPad); the unused low slots are never read.
  void reset_packed() {
    n_ = 0;
    keys_.resize(kBase + kPad);
    payload_.resize(kBase + kPad);
    std::uint64_t* k = keys_.data();
    for (std::size_t i = kBase; i < kBase + kPad; ++i) k[i] = ~std::uint64_t{0};
  }

  void heap_push(std::uint64_t key, std::uint64_t pay) {
    const std::size_t ext = n_ + 1 + kBase + kPad;
    if (ext > keys_.capacity()) {
      const std::size_t want = std::max<std::size_t>(2 * ext, 64);
      keys_.reserve(want);
      payload_.reserve(want);
    }
    keys_.resize(ext);
    payload_.resize(ext);
    keys_.data()[ext - 1] = ~std::uint64_t{0};  // keep the pad window full
    ++n_;
    sift_up(n_ + kBase - 1, key, pay);
  }

  void sift_up(std::size_t i, std::uint64_t key, std::uint64_t pay) {
    std::uint64_t* k = keys_.data();
    std::uint64_t* p = payload_.data();
    while (i > kBase) {
      const std::size_t parent = i / 8 + 6;
      if (k[parent] <= key) break;
      k[i] = k[parent];
      p[i] = p[parent];
      i = parent;
    }
    k[i] = key;
    p[i] = pay;
  }

  void sift_down(std::uint64_t key, std::uint64_t pay) {
    std::uint64_t* k = keys_.data();
    std::uint64_t* p = payload_.data();
    const std::size_t live_end = n_ + kBase - 1;
    std::size_t i = kBase;
    while (true) {
      const std::size_t c = 8 * i - 48;
      if (c > live_end) break;
      // The payload group's line is needed only if the move happens;
      // fetch it while argmin8 chews on the key line.
      simd::prefetch(p + c);
      const std::size_t j = c + simd::argmin8(k + c);
      if (k[j] >= key) break;  // padding is ~0, never taken
      k[i] = k[j];
      p[i] = p[j];
      i = j;
    }
    k[i] = key;
    p[i] = pay;
  }

  // -- Deadline staging ------------------------------------------------

  void stage_push(std::int64_t ds, std::uint64_t key, std::uint64_t pay) {
    const auto s = static_cast<std::size_t>(ds);
    if (s >= stage_head_.size()) {
      const std::size_t old = stage_head_.size();
      const std::size_t grown = std::max(s + 1, old * 2);
      stage_head_.resize(grown);
      for (std::size_t i = old; i < grown; ++i) stage_head_[i] = -1;
    }
    std::int32_t c = stage_head_[s];
    if (c < 0 ||
        stage_chunks_[static_cast<std::size_t>(c)].count == StageChunk::kCap) {
      std::int32_t fresh;
      if (stage_free_ >= 0) {
        fresh = stage_free_;
        stage_free_ = stage_chunks_[static_cast<std::size_t>(fresh)].next;
      } else {
        fresh = static_cast<std::int32_t>(stage_chunks_.size());
        stage_chunks_.push_back(StageChunk{});
      }
      StageChunk& ch = stage_chunks_[static_cast<std::size_t>(fresh)];
      ch.count = 0;
      ch.next = c;
      stage_head_[s] = fresh;
      c = fresh;
    }
    StageChunk& ch = stage_chunks_[static_cast<std::size_t>(c)];
    ch.key[ch.count] = key;
    ch.pay[ch.count] = pay;
    ++ch.count;
    ++staged_;
    if (ds < stage_min_) stage_min_ = ds;
  }

  /// Drains staged buckets while the earliest staged deadline slot is
  /// at or before the heap top's (or the heap is empty).  A bucket with
  /// a strictly later deadline slot cannot contain the next pop — the
  /// deadline is the key's most significant field — so leaving it
  /// staged never changes pop order.
  void maybe_drain() {
    while (staged_ != 0 &&
           (n_ == 0 || static_cast<std::int64_t>(
                           keys_.data()[kBase] >> shift_) >= stage_min_)) {
      drain_min_bucket();
    }
  }

  void drain_min_bucket() {
    const auto s = static_cast<std::size_t>(stage_min_);
    std::int32_t c = stage_head_[s];
    stage_head_[s] = -1;
    while (c >= 0) {
      StageChunk& ch = stage_chunks_[static_cast<std::size_t>(c)];
      for (std::int32_t i = 0; i < ch.count; ++i) {
        heap_push(ch.key[i], ch.pay[i]);
      }
      staged_ -= static_cast<std::size_t>(ch.count);
      const std::int32_t next = ch.next;
      ch.next = stage_free_;
      stage_free_ = c;
      c = next;
    }
    frontier_ = stage_min_ + 1;
    // Later pushes at already-drained slots go straight to the heap, so
    // the scan for the next nonempty bucket never revisits this range.
    if (staged_ == 0) {
      stage_min_ = kNoStage;
    } else {
      std::int64_t d = frontier_;
      while (stage_head_[static_cast<std::size_t>(d)] < 0) ++d;
      stage_min_ = d;
    }
  }

  struct Lower {
    const ReadyQueue* q;
    bool operator()(const SubtaskRef& a, const SubtaskRef& b) const {
      return q->order_->higher(b, a);
    }
  };

  // Packed mode: parallel 8-ary heap arrays (64-byte aligned so each
  // child group is one cache line); payload = task << 32 | seq.
  ArenaVector<std::uint64_t, 64> keys_;
  ArenaVector<std::uint64_t, 64> payload_;
  std::size_t n_ = 0;  // live heap entries
  // Deadline staging: [deadline slot] -> chunk list, plus a freelist.
  ArenaVector<std::int32_t> stage_head_;
  ArenaVector<StageChunk> stage_chunks_;
  std::int32_t stage_free_ = -1;
  std::size_t staged_ = 0;          // entries across all buckets
  std::int64_t frontier_ = 0;       // buckets below this are drained
  std::int64_t stage_min_ = kNoStage;  // earliest nonempty bucket
  int shift_ = 0;                   // PackedKeys::deadline_shift()
  // Fallback mode (PF / fit overflow): comparator binary heap.
  std::vector<SubtaskRef> fb_;
  const PriorityOrder* order_;
  const PackedKeys* pkeys_;
  bool packed_;
};

}  // namespace pfair
