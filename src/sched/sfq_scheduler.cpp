#include "sched/sfq_scheduler.hpp"

#include <optional>
#include <utility>

#include "obs/prof.hpp"
#include "sched/compressed_schedule.hpp"
#include "sched/simulator.hpp"

namespace pfair {

std::int64_t default_horizon(const TaskSystem& sys) {
  // An optimal policy finishes every feasible system by its max deadline.
  // Suboptimal policies (EPDF) and overutilized systems run longer; known
  // EPDF tardiness bounds are a small number of quanta, so a linear
  // allowance in the subtask count is a safe hard stop rather than a bound
  // we expect to reach.
  return sys.max_deadline() + sys.total_subtasks() + 16;
}

SlotSchedule schedule_sfq(const TaskSystem& sys, const SfqOptions& opts) {
  if (opts.cycle_detect && opts.trace == nullptr &&
      opts.metrics == nullptr && opts.quality == nullptr) {
    // The cyclic driver runs the same simulator and warps over proven
    // recurrences; materializing afterwards reproduces the full run
    // placement for placement (asserted by tests/cycle_test.cpp).
    CycleSchedule cyc = schedule_sfq_cyclic(sys, opts);
    if (cyc.stats().engaged) return cyc.materialize(cyc.horizon());
    return std::move(cyc).take_stored();
  }
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  // The simulator is not movable (its ready heap points into member
  // tables), so construct in place under the span.
  std::optional<SfqSimulator> sim;
  {
    PFAIR_PROF_SPAN(kConstruction);
    sim.emplace(sys, opts.policy, opts.arena);
  }
  if (opts.trace != nullptr) sim->set_trace_sink(opts.trace);
  if (opts.metrics != nullptr) sim->attach_metrics(*opts.metrics);
  if (opts.quality != nullptr) sim->set_quality(opts.quality);
  sim->run_until(limit);
  return std::move(*sim).take_schedule();
}

void schedule_sfq_into(const TaskSystem& sys, const SfqOptions& opts,
                       SlotSchedule& out) {
  out.clear_placements();
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  std::optional<SfqSimulator> sim;
  {
    PFAIR_PROF_SPAN(kConstruction);
    sim.emplace(sys, opts.policy, opts.arena, &out);
  }
  if (opts.trace != nullptr) sim->set_trace_sink(opts.trace);
  if (opts.metrics != nullptr) sim->attach_metrics(*opts.metrics);
  if (opts.quality != nullptr) sim->set_quality(opts.quality);
  sim->run_until(limit);
}

}  // namespace pfair
