// Slot-granularity schedules — the S : tau x N -> {0,1} of Eq. (1),
// stored as per-subtask placements (SFQ model: every allocation starts on a
// slot boundary and occupies one whole quantum).
#pragma once

#include <cstdint>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// Where one subtask was placed: the slot it occupies and the processor it
/// ran on.  `slot == kUnscheduled` means the scheduler never placed it
/// (only possible if the run hit its horizon limit).
struct SlotPlacement {
  static constexpr std::int64_t kUnscheduled = -1;
  std::int64_t slot = kUnscheduled;
  int proc = -1;

  [[nodiscard]] bool scheduled() const { return slot != kUnscheduled; }
};

/// A complete SFQ-model schedule for a task system.
class SlotSchedule {
 public:
  /// An empty (all-unscheduled) schedule shaped like `sys`.
  explicit SlotSchedule(const TaskSystem& sys);

  [[nodiscard]] const SlotPlacement& placement(const SubtaskRef& ref) const;
  void place(const SubtaskRef& ref, std::int64_t slot, int proc);

  /// True iff every materialized subtask received a slot.
  [[nodiscard]] bool complete() const;

  /// Number of slots used: 1 + latest occupied slot (0 if empty).
  [[nodiscard]] std::int64_t horizon() const { return horizon_; }

  /// Completion time of a subtask in the SFQ model: slot + 1.
  /// Requires the subtask to be scheduled.
  [[nodiscard]] std::int64_t completion_slot(const SubtaskRef& ref) const;

  /// All subtasks placed in `slot`, ordered by processor.
  [[nodiscard]] std::vector<SubtaskRef> slot_contents(std::int64_t slot) const;

  [[nodiscard]] std::int64_t num_tasks() const {
    return static_cast<std::int64_t>(placements_.size());
  }
  [[nodiscard]] std::int64_t num_subtasks(std::int64_t task) const {
    return static_cast<std::int64_t>(
        placements_[static_cast<std::size_t>(task)].size());
  }

 private:
  std::vector<std::vector<SlotPlacement>> placements_;  // [task][seq]
  std::int64_t horizon_ = 0;
};

}  // namespace pfair
