// Slot-granularity schedules — the S : tau x N -> {0,1} of Eq. (1),
// stored as per-subtask placements (SFQ model: every allocation starts on a
// slot boundary and occupies one whole quantum).
//
// Storage is a single calloc-backed cell block over all subtasks, with
// zero meaning "unscheduled" (slot and proc are stored shifted by +1).
// Construction therefore costs O(tasks) — the kernel hands back lazily
// mapped zero pages — and only cells that are actually written ever
// fault memory in.  That is what keeps the cycle fast-forward path
// (sched/compressed_schedule.hpp) O(prefix + cycle + tail): a warped
// run writes a few hundred slots of a multi-million-subtask schedule
// and never touches the rest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// Where one subtask was placed: the slot it occupies and the processor it
/// ran on.  `slot == kUnscheduled` means the scheduler never placed it
/// (only possible if the run hit its horizon limit).
struct SlotPlacement {
  static constexpr std::int64_t kUnscheduled = -1;
  std::int64_t slot = kUnscheduled;
  int proc = -1;

  [[nodiscard]] bool scheduled() const { return slot != kUnscheduled; }
};

/// A complete SFQ-model schedule for a task system.
class SlotSchedule {
 public:
  /// An empty (all-unscheduled) schedule shaped like `sys`.  O(tasks):
  /// the cell block is zero pages until written.
  explicit SlotSchedule(const TaskSystem& sys);

  SlotSchedule(const SlotSchedule& o);
  SlotSchedule& operator=(const SlotSchedule& o);
  SlotSchedule(SlotSchedule&&) noexcept = default;
  SlotSchedule& operator=(SlotSchedule&&) noexcept = default;

  [[nodiscard]] SlotPlacement placement(const SubtaskRef& ref) const;
  void place(const SubtaskRef& ref, std::int64_t slot, int proc);

  /// True iff every materialized subtask received a slot.  O(1).
  [[nodiscard]] bool complete() const { return placed_ == total(); }

  /// Number of slots used: 1 + latest occupied slot (0 if empty).
  [[nodiscard]] std::int64_t horizon() const { return horizon_; }

  /// Completion time of a subtask in the SFQ model: slot + 1.
  /// Requires the subtask to be scheduled.
  [[nodiscard]] std::int64_t completion_slot(const SubtaskRef& ref) const;

  /// All subtasks placed in `slot`, ordered by processor.
  [[nodiscard]] std::vector<SubtaskRef> slot_contents(std::int64_t slot) const;

  [[nodiscard]] std::int64_t num_tasks() const {
    return static_cast<std::int64_t>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::int64_t num_subtasks(std::int64_t task) const {
    return offsets_[static_cast<std::size_t>(task) + 1] -
           offsets_[static_cast<std::size_t>(task)];
  }

  /// Number of placements recorded so far.
  [[nodiscard]] std::int64_t placed_count() const { return placed_; }

  /// Reverts every placement (an O(total) memset over the cell block)
  /// so the schedule can be refilled in place — the reuse hook behind
  /// `schedule_sfq_into`, which keeps sweeps and throughput loops free
  /// of steady-state allocations.
  void clear_placements();

 private:
  // The uninstrumented hot path writes cells through a raw pointer —
  // the simulator's head cursor already guarantees place()'s
  // preconditions (valid ref, never placed twice), so the checked
  // accessor would only re-verify per placement what is invariant.
  friend class SfqSimulator;


  /// One subtask's placement, shifted so all-zero bytes == unscheduled.
  struct Cell {
    std::int64_t slot_p1 = 0;
    std::int32_t proc_p1 = 0;
  };

  [[nodiscard]] std::int64_t total() const { return offsets_.back(); }
  [[nodiscard]] const Cell& cell(const SubtaskRef& ref) const;

  std::vector<std::int64_t> offsets_;  // [task] -> first cell; sentinel end
  std::unique_ptr<Cell[], void (*)(Cell*)> cells_;
  std::int64_t horizon_ = 0;
  std::int64_t placed_ = 0;
};

}  // namespace pfair
