#include "sched/packed_key.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "obs/prof.hpp"
#include "tasks/window_table.hpp"

namespace pfair {

namespace {

// Bits needed to store values in [0, range]; 0 for a constant field
// (shifting by 0 keeps the key unchanged, so empty fields cost nothing).
int field_bits(std::uint64_t range) {
  return range == 0 ? 0 : static_cast<int>(std::bit_width(range));
}

}  // namespace

PackedKeys::PackedKeys(const TaskSystem& sys, Policy policy, Arena* arena)
    : sys_(&sys),
      policy_(policy),
      off_(arena),
      e_(arena),
      base_(arena),
      step_(arena) {
  PFAIR_PROF_SPAN(kKeyPrecompute);
  // PF's lexicographic successor-bit tie-break has no fixed-width
  // encoding; it keeps the PriorityOrder fallback.  The fault-injection
  // policy is deliberately left unpacked too — it is never hot.
  if (policy == Policy::kPf || policy == Policy::kBroken) return;

  const std::int64_t n = sys.num_tasks();
  const std::int64_t total = sys.total_subtasks();
  if (total == 0) {
    packable_ = true;
    return;
  }

  // Pass 1: field ranges.  Flyweight tasks are scanned through their
  // window table in O(min(count, e)): deadlines are strictly increasing,
  // so min/max come from the first/last subtask, and the b-gated group
  // deadline is maximal somewhere in the last period (D is nondecreasing
  // and b periodic).  Materialized tasks keep the per-subtask scan.
  std::int64_t min_d = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_d = std::numeric_limits<std::int64_t>::min();
  std::int64_t max_gd = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const Task& task = sys.task(k);
    const std::int64_t cnt = task.num_subtasks();
    if (cnt == 0) continue;
    if (task.flyweight()) {
      min_d = std::min(min_d, task.subtask_at(0).deadline);
      max_d = std::max(max_d, task.subtask_at(cnt - 1).deadline);
      if (task.window_table()->heavy()) {
        const std::int64_t first = std::max<std::int64_t>(
            1, cnt - task.window_table()->e() + 1);
        for (std::int64_t i = first; i <= cnt; ++i) {
          if (task.window_table()->bbit(i)) {
            max_gd = std::max(
                max_gd, task.phase() + task.window_table()->group_deadline(i));
          }
        }
      }
    } else {
      for (std::int64_t s = 0; s < cnt; ++s) {
        const Subtask sub = task.subtask_at(s);
        min_d = std::min(min_d, sub.deadline);
        max_d = std::max(max_d, sub.deadline);
        if (sub.group_deadline < 0) return;  // outside the packable domain
        if (sub.bbit) max_gd = std::max(max_gd, sub.group_deadline);
      }
    }
  }

  // PD refines b-bit ties by weight (heavier first): a dense rank over
  // the distinct weights, heaviest = 0, packs that comparison too.
  ArenaVector<std::uint64_t> weight_rank(arena);
  std::uint64_t max_rank = 0;
  if (policy_ == Policy::kPd) {
    ArenaVector<std::int64_t> by_weight(arena);
    by_weight.resize(static_cast<std::size_t>(n));
    std::iota(by_weight.begin(), by_weight.end(), std::int64_t{0});
    std::sort(by_weight.begin(), by_weight.end(),
              [&sys](std::int64_t a, std::int64_t b) {
                return sys.task(a).weight().value() >
                       sys.task(b).weight().value();
              });
    weight_rank.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < weight_rank.size(); ++i) weight_rank[i] = 0;
    for (std::size_t i = 1; i < by_weight.size(); ++i) {
      const bool same = sys.task(by_weight[i]).weight().value() ==
                        sys.task(by_weight[i - 1]).weight().value();
      weight_rank[static_cast<std::size_t>(by_weight[i])] =
          weight_rank[static_cast<std::size_t>(by_weight[i - 1])] +
          (same ? 0 : 1);
    }
    max_rank = *std::max_element(weight_rank.begin(), weight_rank.end());
  }

  const int bits_d =
      field_bits(static_cast<std::uint64_t>(max_d - min_d));
  const bool has_tiebreak_fields = policy_ != Policy::kEpdf;
  const int bits_b = has_tiebreak_fields ? 1 : 0;
  const int bits_gd =
      has_tiebreak_fields ? field_bits(static_cast<std::uint64_t>(max_gd))
                          : 0;
  const int bits_w = policy_ == Policy::kPd ? field_bits(max_rank) : 0;
  const int bits_t = field_bits(static_cast<std::uint64_t>(n - 1));
  if (bits_d + bits_b + bits_gd + bits_w + bits_t > 64) return;

  tie_bits_ = bits_t;
  // Field shifts inside the packed word (LSB side): the d field sits
  // above everything else, the gd field above the PD rank and task id.
  const int shift_gd = bits_w + bits_t;
  const int shift_d =
      (has_tiebreak_fields ? 1 + bits_gd : 0) + bits_w + bits_t;
  deadline_shift_ = shift_d;

  // Size the flat arrays: flyweight tasks contribute min(e, count)
  // in-period positions, materialized ones a position per subtask.
  off_.resize(static_cast<std::size_t>(n));
  e_.resize(static_cast<std::size_t>(n));
  std::size_t positions = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const Task& task = sys.task(k);
    const std::int64_t cnt = task.num_subtasks();
    off_[static_cast<std::size_t>(k)] = static_cast<std::uint32_t>(positions);
    if (cnt == 0) {
      e_[static_cast<std::size_t>(k)] = 0;
      continue;
    }
    if (const WindowTable* wt = task.window_table()) {
      // e is clamped to the subtask count: when e >= cnt every seq has
      // job 0 and rem == seq, so the clamp changes nothing — and the
      // stored value always fits 32 bits (cnt does, seq is int32).
      e_[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(std::min(wt->e(), cnt));
      positions += static_cast<std::size_t>(std::min(wt->e(), cnt));
    } else {
      e_[static_cast<std::size_t>(k)] = 0;
      positions += static_cast<std::size_t>(cnt);
    }
  }
  base_.resize(positions);
  step_.resize(positions);

  bool distinct = true;
  for (std::int64_t k = 0; k < n; ++k) {
    const Task& task = sys.task(k);
    const std::int64_t cnt = task.num_subtasks();
    if (cnt == 0) continue;
    const std::size_t off = off_[static_cast<std::size_t>(k)];
    std::uint64_t* base = base_.data() + off;
    std::uint64_t* step = step_.data() + off;
    const auto pack = [&](std::int64_t deadline, bool bbit, std::int64_t gd) {
      std::uint64_t key = static_cast<std::uint64_t>(deadline - min_d);
      if (has_tiebreak_fields) {
        // b = 1 beats b = 0; rules after the b-bit are consulted only
        // between two b = 1 subtasks, so they canonicalize to 0 at
        // b = 0 (equal keys exactly where compare() ties).
        key = (key << 1) | (bbit ? 0u : 1u);
        key = (key << bits_gd) |
              (bbit ? static_cast<std::uint64_t>(max_gd - gd) : 0u);
        if (policy_ == Policy::kPd) {
          key = (key << bits_w)
                    | (bbit ? weight_rank[static_cast<std::size_t>(k)]
                            : 0u);
        }
      }
      return (key << bits_t) | static_cast<std::uint64_t>(k);
    };
    if (const WindowTable* wt = task.window_table()) {
      // Compressed form: one base key (job 0) and per-job step per
      // in-period position.  A further job adds p to the deadline and
      // (for a heavy task's b = 1 subtasks, whose stored field is
      // max_gd - gd) subtracts p from the group-deadline field.
      const std::int64_t e = wt->e();
      const bool heavy = wt->heavy();
      const std::int64_t nrem = std::min(e, cnt);
      for (std::int64_t rem = 0; rem < nrem; ++rem) {
        const bool bbit = wt->bbit_at(rem);
        base[rem] =
            pack(task.phase() + wt->deadline_at(rem), bbit,
                 heavy ? task.phase() + wt->group_deadline_at(rem) : 0);
        const std::uint64_t up = static_cast<std::uint64_t>(wt->p())
                                 << shift_d;
        const std::uint64_t down =
            (has_tiebreak_fields && heavy && bbit)
                ? static_cast<std::uint64_t>(wt->p()) << shift_gd
                : 0;
        step[rem] = up - down;
      }
      // Within one task pseudo-deadlines strictly increase, so the keys
      // must too; a violation would make two live heap entries
      // indistinguishable.  Every adjacent-key difference is affine in
      // the job index, so strict increase across the first e + 1 and
      // the last e + 1 subtasks (both extreme jobs of every adjacent
      // position pair) implies strict increase everywhere between.
      const auto key_at = [&](std::int64_t s) {
        const std::int64_t job = s / e;
        const auto rem = static_cast<std::size_t>(s % e);
        return base[rem] + static_cast<std::uint64_t>(job) * step[rem];
      };
      for (std::int64_t s = 1; s < std::min(cnt, e + 1); ++s) {
        if (key_at(s) <= key_at(s - 1)) distinct = false;
      }
      for (std::int64_t s = std::max<std::int64_t>(1, cnt - e - 1); s < cnt;
           ++s) {
        if (key_at(s) <= key_at(s - 1)) distinct = false;
      }
    } else {
      std::uint64_t prev = 0;
      for (std::int64_t s = 0; s < cnt; ++s) {
        const Subtask sub = task.subtask_at(s);
        const std::uint64_t key =
            pack(sub.deadline, sub.bbit, sub.group_deadline);
        if (s > 0 && key <= prev) distinct = false;
        prev = key;
        base[static_cast<std::size_t>(s)] = key;
        step[static_cast<std::size_t>(s)] = 0;
      }
    }
  }
  packable_ = distinct;
  if (!packable_) {
    base_.clear();
    step_.clear();
    off_.clear();
    e_.clear();
  }
}

}  // namespace pfair
