// Algorithm PD^B (Sec. 3.1) — the SFQ-model algorithm that mimics, at slot
// granularity, the priority inversions PD2 suffers under the DVQ model.
//
// At each slot t the ready subtasks are partitioned (Eqs. (9)-(11)):
//   EB(t) — e(T_i) = t: could be *eligibility-blocked* under PD2-DVQ
//            (a processor freed just before t was handed to lower-priority
//            work);
//   PB(t) — e(T_i) < t and the predecessor executes right up to t (it was
//            scheduled in slot t-1): could be *predecessor-blocked*;
//   DB(t) — everything else: definitely not blocked.
// With p = |PB(t)|, the M scheduling decisions for the slot follow
// Table 1: in the first M-p decisions subtasks in PB are excluded and a DB
// subtask may be preferred over any EB subtask regardless of PD2 priority;
// the final p decisions are strictly by PD2 among all remaining ready
// subtasks.
//
// Table 1 leaves the EB-vs-DB preference in the first M-p decisions
// nondeterministic (both ⊑ directions hold when the DB subtask has lower
// PD2 priority).  Two resolutions are provided:
//   * kAdversarial (default) — always prefer DB, maximizing blocking; this
//     is the worst case the tardiness bound of Theorem 2 is proved
//     against, and the mode used to search for tardiness-1 witnesses;
//   * kBenign — schedule EB∪DB strictly by PD2, the mildest legal choice.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/priority.hpp"
#include "sched/schedule.hpp"

namespace pfair {

/// How the Table-1 nondeterminism is resolved (see header comment).
enum class PdbMode { kAdversarial, kBenign };

/// Which set a scheduled subtask was drawn from (for traces and tests).
enum class PdbSet { kEB, kPB, kDB };

[[nodiscard]] const char* to_string(PdbSet s);

/// One scheduling decision in a PD^B run.
struct PdbDecision {
  std::int64_t slot = 0;
  int decision = 0;  ///< r in Table 1, 1-based
  SubtaskRef chosen;
  PdbSet from = PdbSet::kDB;
  bool strict_phase = false;  ///< true for the final p decisions
};

/// Per-slot set sizes plus every decision — enough to audit a run against
/// Table 1 and Lemma 2.
struct PdbTrace {
  struct SlotInfo {
    std::int64_t slot = 0;
    std::int64_t eb = 0, pb = 0, db = 0;
    /// Ready subtasks left unscheduled in this slot, with their sets.
    std::vector<std::pair<SubtaskRef, PdbSet>> unserved;
  };
  std::vector<SlotInfo> slots;
  std::vector<PdbDecision> decisions;
};

struct PdbOptions {
  PdbMode mode = PdbMode::kAdversarial;
  std::int64_t horizon_limit = 0;  ///< 0 = automatic (same as SFQ)
  PdbTrace* trace = nullptr;       ///< optional, caller-owned
};

/// Runs PD^B over the task system.  The underlying tie-broken order is
/// always PD2, per the paper.
[[nodiscard]] SlotSchedule schedule_pdb(const TaskSystem& sys,
                                        const PdbOptions& opts = {});

}  // namespace pfair
