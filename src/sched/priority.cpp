#include "sched/priority.hpp"

#include "tasks/windows.hpp"

namespace pfair {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kEpdf:
      return "EPDF";
    case Policy::kPf:
      return "PF";
    case Policy::kPd:
      return "PD";
    case Policy::kPd2:
      return "PD2";
    case Policy::kBroken:
      return "BROKEN";
  }
  return "?";
}

std::optional<Policy> policy_from_string(std::string_view s) {
  auto eq = [s](std::string_view name) {
    if (s.size() != name.size()) return false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i] >= 'a' && s[i] <= 'z'
                         ? static_cast<char>(s[i] - 'a' + 'A')
                         : s[i];
      if (c != name[i]) return false;
    }
    return true;
  };
  if (eq("EPDF")) return Policy::kEpdf;
  if (eq("PF")) return Policy::kPf;
  if (eq("PD")) return Policy::kPd;
  if (eq("PD2")) return Policy::kPd2;
  if (eq("BROKEN")) return Policy::kBroken;
  return std::nullopt;
}

template <bool kExplain>
int PriorityOrder::compare_impl(const SubtaskRef& a, const SubtaskRef& b,
                                TieRule* decided_by) const {
  const Subtask& sa = sys_->subtask(a);
  const Subtask& sb = sys_->subtask(b);
  auto decide = [&](TieRule rule, int result) {
    if constexpr (kExplain) {
      if (decided_by != nullptr) *decided_by = rule;
    } else {
      (void)rule;
    }
    return result;
  };

  // Rule 1 (all policies): earlier pseudo-deadline first.
  if (sa.deadline != sb.deadline) {
    return decide(TieRule::kDeadline, sa.deadline < sb.deadline ? -1 : 1);
  }
  if (policy_ == Policy::kEpdf) return decide(TieRule::kTie, 0);

  if (policy_ == Policy::kPf) {
    const int c = compare_pf_bits(a, b);
    return decide(c == 0 ? TieRule::kTie : TieRule::kBBit, c);
  }

  if (policy_ == Policy::kBroken) {
    // Fault injection: PD2 with Rules 2 and 3 inverted (b-bit 0 beats 1,
    // *earlier* group deadline wins).  Exists so the invariant auditor
    // has a deterministic way to produce real deadline misses.
    if (sa.bbit != sb.bbit) return decide(TieRule::kBBit, sa.bbit ? 1 : -1);
    if (!sa.bbit) return decide(TieRule::kTie, 0);
    if (sa.group_deadline != sb.group_deadline) {
      return decide(TieRule::kGroupDeadline,
                    sa.group_deadline < sb.group_deadline ? -1 : 1);
    }
    return decide(TieRule::kTie, 0);
  }

  // Rule 2 (PD, PD2): b-bit 1 beats b-bit 0 — an overlapping window makes
  // postponement costlier.
  if (sa.bbit != sb.bbit) return decide(TieRule::kBBit, sa.bbit ? -1 : 1);
  if (!sa.bbit) return decide(TieRule::kTie, 0);

  // Rule 3 (PD, PD2): among b = 1 ties, the *later* group deadline wins —
  // the longer cascade is the harder one to serve later.  Light tasks
  // carry group deadline 0 and therefore lose to any heavy contender.
  if (sa.group_deadline != sb.group_deadline) {
    return decide(TieRule::kGroupDeadline,
                  sa.group_deadline > sb.group_deadline ? -1 : 1);
  }
  if (policy_ == Policy::kPd2) return decide(TieRule::kTie, 0);

  // PD refinement (see header): heavier weight first.
  const Rational wa = sys_->task(a.task).weight().value();
  const Rational wb = sys_->task(b.task).weight().value();
  if (wa != wb) return decide(TieRule::kWeight, wa > wb ? -1 : 1);
  return decide(TieRule::kTie, 0);
}

template int PriorityOrder::compare_impl<false>(const SubtaskRef& a,
                                                const SubtaskRef& b,
                                                TieRule* decided_by) const;
template int PriorityOrder::compare_impl<true>(const SubtaskRef& a,
                                               const SubtaskRef& b,
                                               TieRule* decided_by) const;

int PriorityOrder::compare_pf_bits(const SubtaskRef& a,
                                   const SubtaskRef& b) const {
  // PF breaks a deadline tie by comparing the b-bit strings of the two
  // subtasks and their successors lexicographically (1 > 0): if the bits
  // tie at 1, the comparison moves to the successors' deadlines and bits,
  // and so on.  A 0-0 bit tie is a genuine tie.  The successor windows are
  // taken on the as-early-as-possible continuation, matching the periodic
  // definition and its IS extension.
  const Weight& wa = sys_->task(a.task).weight();
  const Weight& wb = sys_->task(b.task).weight();
  const Subtask& sa = sys_->subtask(a);
  const Subtask& sb = sys_->subtask(b);

  std::int64_t ia = sa.index;
  std::int64_t ib = sb.index;
  // Bit strings of rational-weight tasks are eventually periodic with
  // period at most p; 128 steps is far beyond any distinguishing prefix
  // for the weights this library accepts, and a deeper tie is a true tie.
  for (int depth = 0; depth < 128; ++depth) {
    const bool ba = b_bit(wa, ia);
    const bool bb = b_bit(wb, ib);
    if (ba != bb) return ba ? -1 : 1;
    if (!ba) return 0;  // both windows detach from their successors: tie
    ++ia;
    ++ib;
    const std::int64_t da = sa.theta + pseudo_deadline(wa, ia);
    const std::int64_t db = sb.theta + pseudo_deadline(wb, ib);
    if (da != db) return da < db ? -1 : 1;
  }
  return 0;
}

}  // namespace pfair
