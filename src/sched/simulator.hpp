// Stepwise SFQ simulation — the incremental counterpart of
// `schedule_sfq` for interactive use, debuggers, and tests that want to
// inspect scheduler state mid-run (ready sets, per-task lags).
//
// One `step()` performs the scheduling decisions of exactly one slot.
// `schedule_sfq` is implemented on top of this class, so both paths are
// always behaviourally identical.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rational.hpp"
#include "obs/probe.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct SfqOptions;  // sched/sfq_scheduler.hpp

/// Incremental slot-by-slot Pfair scheduler.
/// The task system must outlive the simulator.
class SfqSimulator {
 public:
  SfqSimulator(const TaskSystem& sys, Policy policy = Policy::kPd2);

  /// Next slot to be scheduled (number of steps taken so far).
  [[nodiscard]] std::int64_t now() const { return now_; }
  /// True once every materialized subtask has been placed.
  [[nodiscard]] bool done() const { return remaining_ == 0; }

  /// The subtasks that would be ready if the current slot were scheduled
  /// now (unsorted, one per task at most).
  [[nodiscard]] std::vector<SubtaskRef> ready() const;

  /// Schedules slot now(), returns the chosen subtasks in priority order
  /// (at most M).
  std::vector<SubtaskRef> step();

  /// Runs until done() or `slot_limit` steps have been taken in total.
  void run_until(std::int64_t slot_limit);

  /// The schedule accumulated so far.
  [[nodiscard]] const SlotSchedule& schedule() const { return sched_; }
  /// Moves the schedule out; the simulator must not be used afterwards.
  [[nodiscard]] SlotSchedule take_schedule() && { return std::move(sched_); }

  /// lag(T, now()) = wt(T) * now() - quanta allocated so far — the fluid
  /// drift of task `task` at the current boundary.
  [[nodiscard]] Rational lag_of(std::int64_t task) const;

  /// Installs a structured trace sink (not owned; may be null to
  /// uninstall).  With no sink and no metrics attached, step() takes the
  /// uninstrumented path and the schedule produced is bit-identical.
  void set_trace_sink(TraceSink* sink) { probe_.set_sink(sink); }
  /// Accumulates sched.* metrics (see obs/probe.hpp) into `reg`, which
  /// must outlive the simulator.
  void attach_metrics(MetricsRegistry& reg) { probe_.attach_metrics(reg); }

 private:
  // Cold counterparts of step()'s plain sort / placement bookkeeping:
  // identical behaviour plus trace/metrics reporting, kept out of line so
  // the uninstrumented path stays compact.
  void sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                               std::size_t m, Time at);
  void note_placement(Time at, SubtaskRef ref, int proc);

  const TaskSystem* sys_;
  SchedProbe probe_;
  PriorityOrder order_;
  SlotSchedule sched_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> last_slot_;
  std::vector<std::int64_t> allocated_;
  std::int64_t now_ = 0;
  std::int64_t remaining_;
};

}  // namespace pfair
