// Stepwise SFQ simulation — the incremental counterpart of
// `schedule_sfq` for interactive use, debuggers, and tests that want to
// inspect scheduler state mid-run (ready sets, per-task lags).
//
// One `step()` performs the scheduling decisions of exactly one slot.
// `schedule_sfq` is implemented on top of this class, so both paths are
// always behaviourally identical.
//
// Per-decision cost is O(changes), not O(tasks): readiness transitions
// are indexed in a calendar of per-slot buckets (a task's head subtask
// becomes available at max(its eligibility, the slot after its
// predecessor ran) — a slot known the moment the predecessor is placed),
// and available heads wait in a priority heap ordered by packed 64-bit
// keys (see sched/packed_key.hpp and sched/ready_queue.hpp).  A slot
// decision drains one bucket and pops at most M winners.  The schedule
// is bit-identical to the retained naive reference
// (`schedule_sfq_reference`), which re-scans and re-sorts everything —
// the A/B equivalence suite asserts this across policies and workloads.
//
// With a probe attached (trace sink or metrics), step() instead takes
// the instrumented path: the naive full scan plus the event-reporting
// partial_sort, unchanged from before this optimization, so trace
// streams and metric values stay exactly stable.  Exception: a sink
// whose event_mask() fits inside kDecisionTraceEvents (e.g. the
// InvariantAuditor) is served from the fast path with only the
// decision-outcome events emitted.  Whatever the path, the placements
// are the same.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rational.hpp"
#include "obs/probe.hpp"
#include "sched/packed_key.hpp"
#include "sched/priority.hpp"
#include "sched/ready_queue.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct SfqOptions;       // sched/sfq_scheduler.hpp
struct QualityCounters;  // obs/quality.hpp

/// Incremental slot-by-slot Pfair scheduler.
/// The task system must outlive the simulator.
class SfqSimulator {
 public:
  SfqSimulator(const TaskSystem& sys, Policy policy = Policy::kPd2);

  /// Next slot to be scheduled (number of steps taken so far).
  [[nodiscard]] std::int64_t now() const { return now_; }
  /// True once every materialized subtask has been placed.
  [[nodiscard]] bool done() const { return remaining_ == 0; }

  /// The subtasks that would be ready if the current slot were scheduled
  /// now (unsorted, one per task at most).  Introspection only — a full
  /// scan, not the hot path.
  [[nodiscard]] std::vector<SubtaskRef> ready() const;

  /// Schedules slot now(), returns the chosen subtasks in priority order
  /// (at most M).
  std::vector<SubtaskRef> step();

  /// Runs until done() or `slot_limit` steps have been taken in total.
  void run_until(std::int64_t slot_limit);

  /// The schedule accumulated so far.
  [[nodiscard]] const SlotSchedule& schedule() const { return sched_; }
  /// Moves the schedule out; the simulator must not be used afterwards.
  [[nodiscard]] SlotSchedule take_schedule() && { return std::move(sched_); }

  /// lag(T, now()) = wt(T) * now() - quanta allocated so far — the fluid
  /// drift of task `task` at the current boundary.
  [[nodiscard]] Rational lag_of(std::int64_t task) const;

  /// The system being scheduled.
  [[nodiscard]] const TaskSystem& system() const { return *sys_; }
  /// Raw per-task counters, for state fingerprints (sched/state_hash.hpp).
  [[nodiscard]] std::int64_t head_of(std::int64_t task) const {
    return head_[static_cast<std::size_t>(task)];
  }
  [[nodiscard]] std::int64_t last_slot_of(std::int64_t task) const {
    return last_slot_[static_cast<std::size_t>(task)];
  }
  [[nodiscard]] std::int64_t allocated_of(std::int64_t task) const {
    return allocated_[static_cast<std::size_t>(task)];
  }
  /// True iff a probe (trace sink or metrics) is attached.
  [[nodiscard]] bool instrumented() const { return probe_.enabled(); }

  /// Fast-forwards `cycles` repetitions of a detected steady-state cycle
  /// of `cycle_slots` slots in which task k places exactly
  /// `cycle_allocs[k]` subtasks: counters jump, the availability calendar
  /// and ready heap are rebuilt, and simulation resumes at
  /// now() + cycles * cycle_slots as if every skipped slot had been
  /// stepped.  Callers (sched/compressed_schedule.cpp) are responsible
  /// for having *proved* the recurrence via fingerprints; the skipped
  /// placements are never materialized here.  Requires an uninstrumented
  /// simulator at a slot boundary.
  void warp(std::int64_t cycles, std::int64_t cycle_slots,
            const std::vector<std::int64_t>& cycle_allocs);

  /// Installs a structured trace sink (not owned; may be null to
  /// uninstall).  With no sink and no metrics attached, step() takes the
  /// uninstrumented path and the schedule produced is bit-identical.
  void set_trace_sink(TraceSink* sink) { probe_.set_sink(sink); }
  /// Accumulates sched.* metrics (see obs/probe.hpp) into `reg`, which
  /// must outlive the simulator.
  void attach_metrics(MetricsRegistry& reg) { probe_.attach_metrics(reg); }
  /// Accumulates scheduler-quality counters (obs/quality.hpp) into `q`
  /// incrementally, one O(M) update per slot, on every path (fast,
  /// traced, instrumented) — placements are unaffected.  Must be
  /// attached before the first step; `q` must outlive the simulator.
  /// analysis/recount.hpp recomputes the same numbers offline.
  void set_quality(QualityCounters* q);

 private:
  // One slot's decisions appended into `picks` (not cleared; reused as a
  // scratch buffer by run_until so the hot loop never reallocates).
  void step_into(std::vector<SubtaskRef>& picks);
  // The O(changes) slot body.  kTraced additionally reports the
  // decision-outcome events (slot begin, placements, migrations,
  // deadlines) — the kDecisionTraceEvents subset of the instrumented
  // stream — without the naive scan.
  template <bool kTraced>
  void step_fast(std::vector<SubtaskRef>& picks);
  // The pre-optimization slot body: naive scan + instrumented sort +
  // trace/metrics reporting.  Identical placements, full reporting.
  void step_instrumented(std::vector<SubtaskRef>& picks);
  void sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                               std::size_t m, Time at);
  void note_placement(Time at, SubtaskRef ref, int proc);
  // Folds one slot's decisions (already committed; now_ advanced) into
  // quality_.  `picks[r]` ran on processor r — true on every path.
  void note_quality(const std::vector<SubtaskRef>& picks);

  // Bookkeeping shared by both paths for one placement in slot now():
  // head/lag/progress counters plus the successor's calendar entry.
  void commit_placement(const SubtaskRef& ref);
  // Marks task `task`'s current head available from `slot` on.
  void mark_available(std::int32_t task, std::int64_t slot);
  // Moves every head that became available by now() into the ready heap.
  void drain_calendar();

  const TaskSystem* sys_;
  SchedProbe probe_;
  PriorityOrder order_;
  PackedKeys keys_;
  ReadyQueue ready_q_;
  SlotSchedule sched_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> last_slot_;
  std::vector<std::int64_t> allocated_;

  // Calendar of availability transitions: bucket_head_[slot] starts an
  // intrusive singly-linked list through bucket_next_ (at most one
  // pending transition per task, so no per-bucket allocation).
  std::vector<std::int32_t> bucket_head_;
  std::vector<std::int32_t> bucket_next_;
  std::int64_t drained_upto_ = -1;

  std::vector<SubtaskRef> scratch_picks_;
  std::int64_t now_ = 0;
  std::int64_t remaining_;

  // Quality accounting (null = off): the task occupying each processor
  // at the last slot that used it, and the tasks placed last slot (the
  // only preemption candidates).
  QualityCounters* quality_ = nullptr;
  std::vector<std::int32_t> proc_task_;
  std::vector<std::int32_t> prev_tasks_;
};

}  // namespace pfair
