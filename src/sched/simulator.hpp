// Stepwise SFQ simulation — the incremental counterpart of
// `schedule_sfq` for interactive use, debuggers, and tests that want to
// inspect scheduler state mid-run (ready sets, per-task lags).
//
// One `step()` performs the scheduling decisions of exactly one slot.
// `schedule_sfq` is implemented on top of this class, so both paths are
// always behaviourally identical.
//
// Per-decision cost is O(changes), not O(tasks): readiness transitions
// are indexed in a calendar of per-slot buckets (a task's head subtask
// becomes available at max(its eligibility, the slot after its
// predecessor ran) — a slot known the moment the predecessor is placed),
// and available heads wait in a priority heap ordered by packed 64-bit
// keys (see sched/packed_key.hpp and sched/ready_queue.hpp).  A slot
// decision drains one bucket and pops at most M winners.  The schedule
// is bit-identical to the retained naive reference
// (`schedule_sfq_reference`), which re-scans and re-sorts everything —
// the A/B equivalence suite asserts this across policies and workloads.
//
// The uninstrumented hot path is data-oriented.  All per-task mutable
// state a placement touches lives in one 64-byte HotTask record (head,
// last slot, the head's precomputed priority key, and the in-period
// cursor that advances it without division); the per-position
// constants (key base/step, eligibility base) sit in a flat PosRec
// table shared by flyweight jobs; the ready set is the SoA 8-ary SIMD
// heap of ready_queue.hpp; calendar buckets are contiguous 64-byte
// chunks recycled through a freelist, walked with explicit prefetch of
// the hot records they name; and schedule cells are written through a
// raw pointer (SlotSchedule befriends the simulator) instead of the
// checked `place`.  With an Arena supplied, every piece of working
// state is bump-allocated, so repeated schedule calls allocate nothing
// in steady state.  None of this changes placements: keys realize the
// same strict total order, so the A/B suite pins bit-identicality.
//
// With a probe attached (trace sink or metrics), step() instead takes
// the instrumented path: the naive full scan plus the event-reporting
// partial_sort, unchanged from before this optimization, so trace
// streams and metric values stay exactly stable.  Exception: a sink
// whose event_mask() fits inside kDecisionTraceEvents (e.g. the
// InvariantAuditor) is served from the fast path with only the
// decision-outcome events emitted.  Whatever the path, the placements
// are the same.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/arena.hpp"
#include "core/rational.hpp"
#include "obs/probe.hpp"
#include "sched/packed_key.hpp"
#include "sched/priority.hpp"
#include "sched/ready_queue.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct SfqOptions;       // sched/sfq_scheduler.hpp
struct QualityCounters;  // obs/quality.hpp

/// Incremental slot-by-slot Pfair scheduler.
/// The task system (and arena / external schedule, if supplied) must
/// outlive the simulator.
class SfqSimulator {
 public:
  /// With `arena`, all working state is bump-allocated there (the arena
  /// must be fresh or reset; the simulator never resets it).  With
  /// `out`, placements are written into `*out` — it must be shaped like
  /// `sys` and hold no placements (see SlotSchedule::clear_placements)
  /// — and take_schedule() must not be called.
  explicit SfqSimulator(const TaskSystem& sys, Policy policy = Policy::kPd2,
                        Arena* arena = nullptr, SlotSchedule* out = nullptr);

  /// Next slot to be scheduled (number of steps taken so far).
  [[nodiscard]] std::int64_t now() const { return now_; }
  /// True once every materialized subtask has been placed.
  [[nodiscard]] bool done() const { return remaining_ == 0; }

  /// The subtasks that would be ready if the current slot were scheduled
  /// now (unsorted, one per task at most).  Introspection only — a full
  /// scan, not the hot path.
  [[nodiscard]] std::vector<SubtaskRef> ready() const;

  /// Schedules slot now(), returns the chosen subtasks in priority order
  /// (at most M).
  std::vector<SubtaskRef> step();

  /// Runs until done() or `slot_limit` steps have been taken in total.
  void run_until(std::int64_t slot_limit);

  /// The schedule accumulated so far.
  [[nodiscard]] const SlotSchedule& schedule() const { return *sched_; }
  /// Moves the schedule out; the simulator must not be used afterwards.
  /// Requires an internally-owned schedule (no `out` at construction).
  [[nodiscard]] SlotSchedule take_schedule() &&;

  /// lag(T, now()) = wt(T) * now() - quanta allocated so far — the fluid
  /// drift of task `task` at the current boundary.
  [[nodiscard]] Rational lag_of(std::int64_t task) const;

  /// The system being scheduled.
  [[nodiscard]] const TaskSystem& system() const { return *sys_; }
  /// Raw per-task counters, for state fingerprints (sched/state_hash.hpp).
  [[nodiscard]] std::int64_t head_of(std::int64_t task) const {
    return hot_[static_cast<std::size_t>(task)].head;
  }
  [[nodiscard]] std::int64_t last_slot_of(std::int64_t task) const {
    return hot_[static_cast<std::size_t>(task)].last_slot;
  }
  [[nodiscard]] std::int64_t allocated_of(std::int64_t task) const {
    // Every head advance is an allocation (and vice versa), so the two
    // counters are one.
    return hot_[static_cast<std::size_t>(task)].head;
  }
  /// True iff a probe (trace sink or metrics) is attached.
  [[nodiscard]] bool instrumented() const { return probe_.enabled(); }

  /// Fast-forwards `cycles` repetitions of a detected steady-state cycle
  /// of `cycle_slots` slots in which task k places exactly
  /// `cycle_allocs[k]` subtasks: counters jump, the availability calendar
  /// and ready heap are rebuilt (head keys recomputed in one SIMD batch),
  /// and simulation resumes at now() + cycles * cycle_slots as if every
  /// skipped slot had been stepped.  Callers
  /// (sched/compressed_schedule.cpp) are responsible for having *proved*
  /// the recurrence via fingerprints; the skipped placements are never
  /// materialized here.  Requires an uninstrumented simulator at a slot
  /// boundary.
  void warp(std::int64_t cycles, std::int64_t cycle_slots,
            const std::vector<std::int64_t>& cycle_allocs);

  /// Installs a structured trace sink (not owned; may be null to
  /// uninstall).  With no sink and no metrics attached, step() takes the
  /// uninstrumented path and the schedule produced is bit-identical.
  void set_trace_sink(TraceSink* sink) { probe_.set_sink(sink); }
  /// Accumulates sched.* metrics (see obs/probe.hpp) into `reg`, which
  /// must outlive the simulator.
  void attach_metrics(MetricsRegistry& reg) { probe_.attach_metrics(reg); }
  /// Accumulates scheduler-quality counters (obs/quality.hpp) into `q`
  /// incrementally, one O(M) update per slot, on every path (fast,
  /// traced, instrumented) — placements are unaffected.  Must be
  /// attached before the first step; `q` must outlive the simulator.
  /// analysis/recount.hpp recomputes the same numbers offline.
  void set_quality(QualityCounters* q);

 private:
  /// All mutable per-task scheduling state, one cache line per task.
  /// The flyweight cursor (rem, job) tracks head = job * e + rem so a
  /// placement advances to the successor's key and eligibility with no
  /// division: next_key = pos[pos_off + rem].key_base + job * key_step,
  /// eligibility = pos[...].elig_base + job * elig_p.
  struct alignas(64) HotTask {
    std::uint64_t next_key;   // order key of subtask `head` (packed mode)
    std::int64_t last_slot;   // most recent placement slot; -1 if none
    std::int64_t elig_p;      // eligibility shift per job (0: job fixed 0)
    std::int64_t cell_base;   // flat schedule-cell index of subtask 0
    std::int32_t head;        // next unscheduled seq
    std::int32_t count;       // total subtasks
    std::int32_t rem;         // head % e
    std::int32_t job;         // head / e
    std::int32_t e;           // position period (see PosRec)
    std::int32_t pos_off;     // first PosRec of this task
  };
  static_assert(sizeof(HotTask) == 64);

  /// Immutable per-position constants.  A task owns min(e, count)
  /// consecutive records; e is the smallest period that makes *both*
  /// the packed key and the eligibility time affine in the job index
  /// (the reduced window period normally; the raw weight numerator for
  /// early-release tasks, whose job boundaries follow the raw (e, p);
  /// the subtask count for materialized tasks, pinning job = 0).
  struct PosRec {
    std::uint64_t key_base;
    std::uint64_t key_step;
    std::int64_t elig_base;
  };

  /// One calendar bucket fragment: up to 14 task ids in one cache line,
  /// chained by chunk index, recycled through a freelist.
  struct BucketChunk {
    static constexpr std::int32_t kCap = 14;
    std::int32_t count;
    std::int32_t next;  // next chunk index or -1
    std::int32_t tasks[kCap];
  };
  static_assert(sizeof(BucketChunk) == 64);

  // One slot's decisions appended into `picks` (not cleared; reused as a
  // scratch buffer by run_until so the hot loop never reallocates).
  void step_into(ArenaVector<SubtaskRef>& picks);
  // The O(changes) slot body.  kTraced additionally reports the
  // decision-outcome events (slot begin, placements, migrations,
  // deadlines) — the kDecisionTraceEvents subset of the instrumented
  // stream — without the naive scan.
  template <bool kTraced>
  void step_fast(ArenaVector<SubtaskRef>& picks);
  // The pre-optimization slot body: naive scan + instrumented sort +
  // trace/metrics reporting.  Identical placements, full reporting.
  void step_instrumented(ArenaVector<SubtaskRef>& picks);
  void sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                               std::size_t m, Time at);
  void note_placement(Time at, SubtaskRef ref, int proc);
  // Folds one slot's decisions (already committed; now_ advanced) into
  // quality_.  `picks[r]` ran on processor r — true on every path.
  void note_quality(const SubtaskRef* picks, std::size_t count);

  // Bookkeeping shared by both paths for one placement in slot now():
  // head/lag/progress counters plus the successor's calendar entry.
  void commit_placement(const SubtaskRef& ref);
  // Marks task `task`'s current head available from `slot` on.
  void mark_available(std::int32_t task, std::int64_t slot);
  // Moves every head that became available by now() into the ready heap.
  void drain_calendar();
  // Writes one placement cell directly (the unchecked fast-path
  // counterpart of SlotSchedule::place; same invariants by design).
  void place_fast(const HotTask& h, std::int32_t seq, int proc);

  const TaskSystem* sys_;
  SchedProbe probe_;
  PriorityOrder order_;
  PackedKeys keys_;
  ReadyQueue ready_q_;
  std::optional<SlotSchedule> owned_sched_;
  SlotSchedule* sched_;          // owned_sched_ or the external `out`
  SlotSchedule::Cell* cells_;    // sched_'s raw cell block

  ArenaVector<HotTask> hot_;
  ArenaVector<PosRec> pos_;

  // Calendar of availability transitions: bucket_head_[slot] chains
  // BucketChunks (at most one pending transition per task, so the pool
  // high-water is bounded by the task count).
  ArenaVector<std::int32_t> bucket_head_;
  ArenaVector<BucketChunk> chunks_;
  std::int32_t free_chunk_ = -1;
  std::int64_t drained_upto_ = -1;

  ArenaVector<SubtaskRef> scratch_picks_;
  std::vector<SubtaskRef> scratch_instr_;  // instrumented path only
  // Warp batch-recompute scratch (SIMD affine_keys operands).
  ArenaVector<std::uint64_t> warp_base_;
  ArenaVector<std::uint64_t> warp_step_;
  ArenaVector<std::uint64_t> warp_job_;
  ArenaVector<std::uint64_t> warp_key_;
  ArenaVector<std::int32_t> warp_task_;

  std::int64_t now_ = 0;
  std::int64_t remaining_;
  bool packed_;

  // Quality accounting (null = off): the task occupying each processor
  // at the last slot that used it, and the tasks placed last slot (the
  // only preemption candidates).
  QualityCounters* quality_ = nullptr;
  std::vector<std::int32_t> proc_task_;
  std::vector<std::int32_t> prev_tasks_;
};

}  // namespace pfair
