// An index-structured SFQ scheduler — the scalability ablation of
// DESIGN.md: identical schedules to `schedule_sfq`, different asymptotics.
//
// The per-slot scan in SfqSimulator touches every task each slot
// (O(slots x tasks)).  Here each subtask enters a priority queue exactly
// once — when it becomes available (its eligibility time, or the slot
// after its predecessor runs) — and leaves when scheduled, giving
// O(total subtasks x log tasks) overall.  Priorities are static per
// subtask (deadline, b-bit, group deadline are fixed), which is what
// makes the single-insertion design sound.
//
// `bench_micro_sched` compares the two implementations; the test suite
// asserts subtask-for-subtask equality across policies and workloads.
#pragma once

#include "sched/sfq_scheduler.hpp"

namespace pfair {

/// Drop-in replacement for `schedule_sfq` (same options, same result).
[[nodiscard]] SlotSchedule schedule_sfq_indexed(const TaskSystem& sys,
                                                const SfqOptions& opts = {});

}  // namespace pfair
