#include "sched/compressed_schedule.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/assert.hpp"
#include "obs/prof.hpp"
#include "obs/probe.hpp"
#include "sched/simulator.hpp"
#include "sched/state_hash.hpp"

namespace pfair {

CycleSchedule::CycleSchedule(SlotSchedule inner)
    : inner_(std::move(inner)),
      horizon_(inner_.horizon()),
      complete_(inner_.complete()) {}

CycleSchedule::CycleSchedule(SlotSchedule inner, CycleStats stats,
                             std::vector<TaskSplice> splices, bool complete)
    : inner_(std::move(inner)),
      stats_(stats),
      splices_(std::move(splices)),
      horizon_(inner_.horizon()),
      complete_(complete) {
  if (!stats_.engaged) return;
  PFAIR_REQUIRE(static_cast<std::int64_t>(splices_.size()) ==
                    inner_.num_tasks(),
                "one splice per task required");
  // The stored horizon misses the synthesized slots whenever the run
  // ended exactly at (or inside) the skipped window; fold in each
  // task's last synthesized placement.
  for (std::size_t k = 0; k < splices_.size(); ++k) {
    const TaskSplice& sp = splices_[k];
    if (sp.skip_count == 0) continue;
    const std::int64_t off = sp.skip_count - 1;
    const SubtaskRef last{static_cast<std::int32_t>(k),
                          static_cast<std::int32_t>(sp.skip_begin + off)};
    horizon_ = std::max(horizon_, placement(last).slot + 1);
  }
}

SlotPlacement CycleSchedule::placement(const SubtaskRef& ref) const {
  if (!stats_.engaged) return inner_.placement(ref);
  const TaskSplice& sp = splices_[static_cast<std::size_t>(ref.task)];
  if (!in_skip(sp, ref.seq)) return inner_.placement(ref);
  const std::int64_t off = ref.seq - sp.skip_begin;
  const std::int64_t j = off / sp.per_cycle;
  const std::int64_t rem = off % sp.per_cycle;
  const SlotPlacement base = inner_.placement(
      SubtaskRef{ref.task, static_cast<std::int32_t>(sp.cycle_begin + rem)});
  PFAIR_REQUIRE(base.scheduled(), "base cycle placement missing");
  return SlotPlacement{base.slot + (j + 1) * stats_.cycle_slots, base.proc};
}

std::int64_t CycleSchedule::completion_slot(const SubtaskRef& ref) const {
  const SlotPlacement pl = placement(ref);
  PFAIR_REQUIRE(pl.scheduled(), "completion_slot of unscheduled subtask");
  return pl.slot + 1;
}

std::vector<SubtaskRef> CycleSchedule::slot_contents(std::int64_t slot) const {
  const std::int64_t skip_lo = stats_.detect_slot;
  const std::int64_t skip_hi = stats_.detect_slot + stats_.slots_skipped;
  if (!stats_.engaged || slot < skip_lo || slot >= skip_hi) {
    return inner_.slot_contents(slot);
  }
  // A synthesized slot: its contents are the base cycle slot's, with
  // every seq advanced by the number of whole cycles in between.
  const std::int64_t j = (slot - skip_lo) / stats_.cycle_slots;
  const std::int64_t base_slot =
      stats_.prefix_slots + (slot - skip_lo) % stats_.cycle_slots;
  std::vector<SubtaskRef> refs = inner_.slot_contents(base_slot);
  for (SubtaskRef& ref : refs) {
    const TaskSplice& sp = splices_[static_cast<std::size_t>(ref.task)];
    ref.seq = static_cast<std::int32_t>(sp.skip_begin + j * sp.per_cycle +
                                        (ref.seq - sp.cycle_begin));
  }
  return refs;
}

SlotSchedule CycleSchedule::materialize(std::int64_t horizon) const {
  SlotSchedule out = inner_;
  if (!stats_.engaged) return out;
  for (std::size_t k = 0; k < splices_.size(); ++k) {
    const TaskSplice& sp = splices_[k];
    for (std::int64_t off = 0; off < sp.skip_count; ++off) {
      const SubtaskRef ref{static_cast<std::int32_t>(k),
                           static_cast<std::int32_t>(sp.skip_begin + off)};
      const SlotPlacement pl = placement(ref);
      if (pl.slot < horizon) out.place(ref, pl.slot, pl.proc);
    }
  }
  return out;
}

CycleSchedule schedule_sfq_cyclic(const TaskSystem& sys,
                                  const SfqOptions& opts) {
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  std::optional<SfqSimulator> sim_store;
  {
    PFAIR_PROF_SPAN(kConstruction);
    sim_store.emplace(sys, opts.policy, opts.arena);
  }
  SfqSimulator& sim = *sim_store;
  const bool probing = opts.trace == nullptr && opts.metrics == nullptr &&
                       opts.quality == nullptr;
  if (opts.trace != nullptr) sim.set_trace_sink(opts.trace);
  if (opts.metrics != nullptr) sim.attach_metrics(*opts.metrics);
  if (opts.quality != nullptr) sim.set_quality(opts.quality);

  CycleStats stats;
  std::vector<TaskSplice> splices;
  const std::int64_t hyper = probing ? fingerprint_period(sys) : 0;
  if (hyper > 0) {
    struct Snap {
      StateFingerprint fp;
      std::vector<std::int64_t> heads;
    };
    // Bounds the snapshot table (and the quadratic confirm scans) on
    // systems that never actually recur; in practice the match lands on
    // the first or second boundary.
    constexpr std::size_t kMaxSnaps = 64;
    std::vector<Snap> snaps;
    const auto n = static_cast<std::size_t>(sys.num_tasks());
    for (std::int64_t t = 0; t + hyper <= limit; t += hyper) {
      sim.run_until(t);
      if (sim.done() || sim.now() != t) break;
      std::vector<std::int64_t> heads(n);
      bool exhausted = false;
      for (std::size_t k = 0; k < n; ++k) {
        heads[k] = sim.head_of(static_cast<std::int64_t>(k));
        exhausted |=
            heads[k] >= sys.task(static_cast<std::int64_t>(k)).num_subtasks();
      }
      // Once any task's sequence runs dry the state can never recur
      // (its lag drifts monotonically) — stop paying for snapshots.
      if (exhausted) break;
      PFAIR_PROF_SPAN(kFingerprint);
      StateFingerprint fp = sfq_state_fingerprint(sim);
      const Snap* match = nullptr;
      for (const Snap& s : snaps) {
        if (s.fp.same_state(fp)) {
          match = &s;
          break;
        }
      }
      if (match != nullptr) {
        const std::int64_t cycle = t - match->fp.at;
        std::vector<std::int64_t> allocs(n);
        std::int64_t max_cycles = (limit - t) / cycle;
        for (std::size_t k = 0; k < n; ++k) {
          allocs[k] = heads[k] - match->heads[k];
          PFAIR_REQUIRE(allocs[k] > 0, "recurring task placed nothing");
          max_cycles = std::min(
              max_cycles,
              (sys.task(static_cast<std::int64_t>(k)).num_subtasks() -
               heads[k]) /
                  allocs[k]);
        }
        if (max_cycles > 0) {
          splices.resize(n);
          for (std::size_t k = 0; k < n; ++k) {
            splices[k] = TaskSplice{match->heads[k], heads[k], allocs[k],
                                    max_cycles * allocs[k]};
          }
          stats.engaged = true;
          stats.prefix_slots = match->fp.at;
          stats.cycle_slots = cycle;
          stats.detect_slot = t;
          stats.cycles_skipped = max_cycles;
          stats.slots_skipped = max_cycles * cycle;
          PFAIR_PROF_SPAN(kWarp);
          sim.warp(max_cycles, cycle, allocs);
        }
        break;
      }
      if (snaps.size() >= kMaxSnaps) break;
      snaps.push_back(Snap{std::move(fp), std::move(heads)});
    }
  }
  sim.run_until(limit);
  stats.sim_slots = sim.now() - stats.slots_skipped;
  const bool complete = sim.done();
  if (!stats.engaged) {
    return CycleSchedule(std::move(sim).take_schedule());
  }
  return CycleSchedule(std::move(sim).take_schedule(), stats,
                       std::move(splices), complete);
}

void replay_decisions(const TaskSystem& sys, const CycleSchedule& sched,
                      TraceSink& sink) {
  struct Placed {
    std::int64_t slot;
    int proc;
    SubtaskRef ref;
  };
  std::vector<Placed> placed;
  for (std::int64_t k = 0; k < sched.num_tasks(); ++k) {
    for (std::int64_t s = 0; s < sched.num_subtasks(k); ++s) {
      const SubtaskRef ref{static_cast<std::int32_t>(k),
                           static_cast<std::int32_t>(s)};
      const SlotPlacement pl = sched.placement(ref);
      if (pl.scheduled()) placed.push_back(Placed{pl.slot, pl.proc, ref});
    }
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) {
              return a.slot != b.slot ? a.slot < b.slot : a.proc < b.proc;
            });
  SchedProbe probe;
  probe.set_sink(&sink);
  std::size_t i = 0;
  for (std::int64_t slot = 0; slot < sched.horizon(); ++slot) {
    const Time at = Time::slots(slot);
    probe.begin_decision(TraceEventKind::kSlotBegin, at, slot);
    for (; i < placed.size() && placed[i].slot == slot; ++i) {
      const Placed& p = placed[i];
      probe.place(at, p.ref, p.proc, slot);
      if (p.ref.seq > 0) {
        const SlotPlacement prev =
            sched.placement(SubtaskRef{p.ref.task, p.ref.seq - 1});
        if (prev.proc >= 0 && prev.proc != p.proc) {
          probe.migrate(at, p.ref, prev.proc, p.proc);
        }
      }
      const std::int64_t tard = std::max<std::int64_t>(
          0, slot + 1 - sys.subtask(p.ref).deadline);
      probe.deadline(at, p.ref, tard * kTicksPerSlot);
    }
    probe.end_decision();
  }
}

}  // namespace pfair
