// Exact canonical fingerprints of scheduler state at slot boundaries —
// the detection half of steady-state cycle fast-forward.
//
// A deterministic Pfair policy on a synchronous periodic system is a
// function of a finite state: at a slot boundary t, the next decision
// depends only on, per task, (a) where the head subtask sits inside the
// task's window pattern (its sequence position mod the *raw* job length
// e, plus the release anchor relative to t), (b) when that head becomes
// available relative to t, and (c) the lag numerator (which fixes the
// number of whole periods consumed).  Priorities are static per subtask
// and shift uniformly by one period per job, so two boundaries with
// equal records make byte-identical decisions forever after.
//
// `StateFingerprint` captures exactly those records in canonical form
// (everything relative to t, availability clamped at t — a head already
// in the ready heap and a head whose calendar bucket is drained this
// very slot are behaviorally identical under SFQ).  The 64-bit hash is
// only a fast table probe; equality — `same_state` — always compares
// the full record vectors, so detection is collision-proof.
//
// Fingerprints are exact only for zero-phase periodic task systems
// (flyweight or eager; early release allowed): `fingerprintable` gates
// that, and `fingerprint_period` gives the hyperperiod H = lcm of the
// raw periods.  Release anchors can only agree at boundaries that are
// congruent mod every task's period, so recurrence is probed at
// multiples of H alone — O(n) bookkeeping per H simulated slots.
#pragma once

#include <cstdint>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

class SfqSimulator;
class SlotSchedule;

/// Canonical decision-relevant state of one task at a slot boundary t,
/// expressed relative to t.  A task whose subtask sequence is exhausted
/// holds the sentinel record (rem == kFinished).
struct TaskStateRecord {
  static constexpr std::int64_t kFinished = -1;

  std::int64_t rem = 0;        ///< head seq mod raw e (kFinished if done)
  std::int64_t anchor = 0;     ///< r(head) - t
  std::int64_t avail_rel = 0;  ///< max(0, availability slot - t)
  std::int64_t lag_num = 0;    ///< e_raw * t - allocated * p_raw

  friend bool operator==(const TaskStateRecord&,
                         const TaskStateRecord&) = default;
};

/// Full simulator state at boundary `at`: per-task records plus a mixing
/// hash for cheap table lookups.
struct StateFingerprint {
  std::uint64_t hash = 0;
  std::int64_t at = 0;
  std::vector<TaskStateRecord> records;

  /// Collision-proof equality: hash first (fast reject), then the full
  /// record vectors.
  [[nodiscard]] bool same_state(const StateFingerprint& o) const {
    return hash == o.hash && records == o.records;
  }
};

/// True iff exact fingerprints exist for `sys`: every task is a
/// zero-phase periodic task (window pattern strictly periodic in the
/// subtask sequence; early release preserves this).  IS/GIS tasks and
/// phased systems are rejected — their release patterns carry state the
/// records cannot normalize away.
[[nodiscard]] bool fingerprintable(const TaskSystem& sys);

/// The hyperperiod H = lcm of raw task periods — the only candidate
/// recurrence stride (see header note).  Returns 0 if the system is not
/// fingerprintable or H exceeds 2^40 slots.
[[nodiscard]] std::int64_t fingerprint_period(const TaskSystem& sys);

/// Snapshot of a live (quiescent, slot-boundary) SFQ simulator.
[[nodiscard]] StateFingerprint sfq_state_fingerprint(const SfqSimulator& sim);

/// Reconstructs boundary fingerprints from a *finished* schedule — the
/// offline counterpart used by the generalized periodicity check.  Heads
/// and allocation counts are recovered by counting placements before t;
/// availability from the predecessor's slot, exactly as the simulator
/// derives it.  Boundaries must be queried in nondecreasing order.
class ScheduleStateScanner {
 public:
  ScheduleStateScanner(const TaskSystem& sys, const SlotSchedule& sched);

  /// False if a task's scheduled slots are not strictly increasing in
  /// seq, or a scheduled subtask follows an unscheduled one — then
  /// fingerprints are meaningless and `at` must not be called.  A
  /// contiguous unscheduled *tail* (horizon-limited run) is fine.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Fingerprint at slot boundary `t` (>= any previous call's t).  With
  /// a truncated schedule, `t` must not exceed the covered horizon —
  /// every placement below the queried boundary must be present.
  [[nodiscard]] StateFingerprint at(std::int64_t t);

 private:
  const TaskSystem* sys_;
  std::vector<std::vector<std::int64_t>> slots_;  // [task][seq] -> slot
  std::vector<std::int64_t> head_;                // advanced with t
  std::int64_t last_t_ = 0;
  bool ok_ = true;
};

namespace detail {
/// One task's record from its raw counters; shared by the online and
/// offline paths so both produce byte-identical fingerprints.
[[nodiscard]] TaskStateRecord task_state_record(const Task& task,
                                                std::int64_t head,
                                                std::int64_t last_slot,
                                                std::int64_t allocated,
                                                std::int64_t t);
/// Hash over the record vector (splitmix64 mixing).
[[nodiscard]] std::uint64_t hash_records(
    const std::vector<TaskStateRecord>& records);
}  // namespace detail

}  // namespace pfair
