#include "sched/schedule.hpp"

#include <algorithm>

namespace pfair {

SlotSchedule::SlotSchedule(const TaskSystem& sys) {
  placements_.resize(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    placements_[static_cast<std::size_t>(k)].resize(
        static_cast<std::size_t>(sys.task(k).num_subtasks()));
  }
}

const SlotPlacement& SlotSchedule::placement(const SubtaskRef& ref) const {
  PFAIR_REQUIRE(ref.task >= 0 &&
                    static_cast<std::size_t>(ref.task) < placements_.size(),
                "bad task in " << ref);
  const auto& row = placements_[static_cast<std::size_t>(ref.task)];
  PFAIR_REQUIRE(ref.seq >= 0 && static_cast<std::size_t>(ref.seq) < row.size(),
                "bad seq in " << ref);
  return row[static_cast<std::size_t>(ref.seq)];
}

void SlotSchedule::place(const SubtaskRef& ref, std::int64_t slot, int proc) {
  PFAIR_REQUIRE(slot >= 0, "cannot place in negative slot");
  auto& p = const_cast<SlotPlacement&>(placement(ref));
  PFAIR_ASSERT_MSG(!p.scheduled(), "subtask " << ref << " placed twice");
  p.slot = slot;
  p.proc = proc;
  horizon_ = std::max(horizon_, slot + 1);
}

bool SlotSchedule::complete() const {
  for (const auto& row : placements_) {
    for (const auto& p : row) {
      if (!p.scheduled()) return false;
    }
  }
  return true;
}

std::int64_t SlotSchedule::completion_slot(const SubtaskRef& ref) const {
  const SlotPlacement& p = placement(ref);
  PFAIR_REQUIRE(p.scheduled(), "subtask " << ref << " not scheduled");
  return p.slot + 1;
}

std::vector<SubtaskRef> SlotSchedule::slot_contents(std::int64_t slot) const {
  std::vector<SubtaskRef> out;
  for (std::size_t k = 0; k < placements_.size(); ++k) {
    const auto& row = placements_[k];
    for (std::size_t s = 0; s < row.size(); ++s) {
      if (row[s].slot == slot) {
        out.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                                 static_cast<std::int32_t>(s)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [this](const SubtaskRef& a, const SubtaskRef& b) {
              return placement(a).proc < placement(b).proc;
            });
  return out;
}

}  // namespace pfair
