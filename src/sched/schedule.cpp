#include "sched/schedule.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/assert.hpp"

namespace pfair {

namespace {

template <typename Cell>
Cell* alloc_cells(std::int64_t total) {
  auto* data = static_cast<Cell*>(
      std::calloc(static_cast<std::size_t>(std::max<std::int64_t>(total, 1)),
                  sizeof(Cell)));
  PFAIR_REQUIRE(data != nullptr, "schedule allocation failed");
  return data;
}

}  // namespace

SlotSchedule::SlotSchedule(const TaskSystem& sys) : cells_(nullptr, nullptr) {
  offsets_.reserve(static_cast<std::size_t>(sys.num_tasks()) + 1);
  std::int64_t total = 0;
  offsets_.push_back(0);
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    total += sys.task(k).num_subtasks();
    offsets_.push_back(total);
  }
  // calloc: large blocks arrive as lazily mapped zero pages, so an
  // all-unscheduled schedule costs no physical memory until written.
  cells_ = std::unique_ptr<Cell[], void (*)(Cell*)>(
      alloc_cells<Cell>(total), +[](Cell* p) { std::free(p); });
}

SlotSchedule::SlotSchedule(const SlotSchedule& o)
    : offsets_(o.offsets_),
      cells_(alloc_cells<Cell>(o.total()), +[](Cell* p) { std::free(p); }),
      horizon_(o.horizon_),
      placed_(o.placed_) {
  std::memcpy(cells_.get(), o.cells_.get(),
              static_cast<std::size_t>(total()) * sizeof(Cell));
}

SlotSchedule& SlotSchedule::operator=(const SlotSchedule& o) {
  if (this != &o) *this = SlotSchedule(o);
  return *this;
}

const SlotSchedule::Cell& SlotSchedule::cell(const SubtaskRef& ref) const {
  PFAIR_REQUIRE(ref.task >= 0 && ref.task < num_tasks(),
                "bad task in " << ref);
  PFAIR_REQUIRE(ref.seq >= 0 && ref.seq < num_subtasks(ref.task),
                "bad seq in " << ref);
  return cells_[static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(ref.task)] + ref.seq)];
}

SlotPlacement SlotSchedule::placement(const SubtaskRef& ref) const {
  const Cell& c = cell(ref);
  return SlotPlacement{c.slot_p1 - 1, c.proc_p1 - 1};
}

void SlotSchedule::place(const SubtaskRef& ref, std::int64_t slot, int proc) {
  PFAIR_REQUIRE(slot >= 0, "cannot place in negative slot");
  auto& c = const_cast<Cell&>(cell(ref));
  PFAIR_ASSERT_MSG(c.slot_p1 == 0, "subtask " << ref << " placed twice");
  c.slot_p1 = slot + 1;
  c.proc_p1 = proc + 1;
  ++placed_;
  horizon_ = std::max(horizon_, slot + 1);
}

void SlotSchedule::clear_placements() {
  std::fill_n(cells_.get(), static_cast<std::size_t>(total()), Cell{});
  horizon_ = 0;
  placed_ = 0;
}

std::int64_t SlotSchedule::completion_slot(const SubtaskRef& ref) const {
  const SlotPlacement p = placement(ref);
  PFAIR_REQUIRE(p.scheduled(), "subtask " << ref << " not scheduled");
  return p.slot + 1;
}

std::vector<SubtaskRef> SlotSchedule::slot_contents(std::int64_t slot) const {
  std::vector<SubtaskRef> out;
  for (std::int64_t k = 0; k < num_tasks(); ++k) {
    const std::int64_t begin = offsets_[static_cast<std::size_t>(k)];
    const std::int64_t end = offsets_[static_cast<std::size_t>(k) + 1];
    for (std::int64_t i = begin; i < end; ++i) {
      if (cells_[static_cast<std::size_t>(i)].slot_p1 == slot + 1) {
        out.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                                 static_cast<std::int32_t>(i - begin)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [this](const SubtaskRef& a, const SubtaskRef& b) {
              return placement(a).proc < placement(b).proc;
            });
  return out;
}

}  // namespace pfair
