#include "sched/pdb_scheduler.hpp"

#include <algorithm>

#include "sched/sfq_scheduler.hpp"

namespace pfair {

const char* to_string(PdbSet s) {
  switch (s) {
    case PdbSet::kEB:
      return "EB";
    case PdbSet::kPB:
      return "PB";
    case PdbSet::kDB:
      return "DB";
  }
  return "?";
}

namespace {

struct Candidate {
  SubtaskRef ref;
  PdbSet set = PdbSet::kDB;
};

/// Removes and returns the highest-priority candidate among those matching
/// `want`; returns false if none match.
bool take_best(std::vector<Candidate>& cands, const PriorityOrder& order,
               bool (*want)(PdbSet), Candidate* out) {
  std::ptrdiff_t best = -1;
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(cands.size()); ++i) {
    if (!want(cands[static_cast<std::size_t>(i)].set)) continue;
    if (best < 0 ||
        order.higher(cands[static_cast<std::size_t>(i)].ref,
                     cands[static_cast<std::size_t>(best)].ref)) {
      best = i;
    }
  }
  if (best < 0) return false;
  *out = cands[static_cast<std::size_t>(best)];
  cands.erase(cands.begin() + best);
  return true;
}

bool is_db(PdbSet s) { return s == PdbSet::kDB; }
bool is_eb(PdbSet s) { return s == PdbSet::kEB; }
bool is_eb_or_db(PdbSet s) { return s != PdbSet::kPB; }
bool is_pb(PdbSet s) { return s == PdbSet::kPB; }
bool any_set(PdbSet) { return true; }

}  // namespace

SlotSchedule schedule_pdb(const TaskSystem& sys, const PdbOptions& opts) {
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  // PD^B's underlying priorities ≺/⪯ are PD2's (Sec. 3.1).
  const PriorityOrder order(sys, Policy::kPd2);
  SlotSchedule sched(sys);

  const auto n_tasks = static_cast<std::size_t>(sys.num_tasks());
  std::vector<std::int64_t> head(n_tasks, 0);
  std::vector<std::int64_t> last_slot(n_tasks, -1);
  std::int64_t remaining = sys.total_subtasks();

  std::vector<Candidate> cands;
  cands.reserve(n_tasks);

  for (std::int64_t t = 0; t < limit && remaining > 0; ++t) {
    cands.clear();
    std::int64_t n_eb = 0, n_pb = 0, n_db = 0;
    for (std::size_t k = 0; k < n_tasks; ++k) {
      const Task& task = sys.task(static_cast<std::int64_t>(k));
      const std::int64_t h = head[k];
      if (h >= task.num_subtasks()) continue;
      const Subtask& s = task.subtask(h);
      if (s.eligible > t) continue;
      if (h > 0 && last_slot[k] >= t) continue;
      Candidate c;
      c.ref = SubtaskRef{static_cast<std::int32_t>(k),
                         static_cast<std::int32_t>(h)};
      if (s.eligible == t) {
        c.set = PdbSet::kEB;  // Eq. (9)
        ++n_eb;
      } else if (h > 0 && last_slot[k] == t - 1) {
        // Predecessor executes up to t: predecessor-blockable, Eq. (10).
        c.set = PdbSet::kPB;
        ++n_pb;
      } else {
        c.set = PdbSet::kDB;  // Eq. (11)
        ++n_db;
      }
      cands.push_back(c);
    }
    if (cands.empty()) continue;
    if (opts.trace != nullptr) {
      opts.trace->slots.push_back(PdbTrace::SlotInfo{t, n_eb, n_pb, n_db, {}});
    }

    const int m = sys.processors();
    const std::int64_t p = n_pb;  // |PB(t)| before any decisions (Sec. 3.1)
    for (int r = 1; r <= m && !cands.empty(); ++r) {
      Candidate chosen;
      bool got = false;
      if (r <= m - p) {
        // First M-p decisions: PB excluded.  Adversarial mode prefers any
        // DB subtask over every EB subtask (legal per Table 1: for
        // r <= M-p, DB ⊑ EB holds unconditionally); benign mode merges
        // EB and DB under strict PD2.
        if (opts.mode == PdbMode::kAdversarial) {
          got = take_best(cands, order, is_db, &chosen) ||
                take_best(cands, order, is_eb, &chosen);
        } else {
          got = take_best(cands, order, is_eb_or_db, &chosen);
        }
        // Degenerate slot where only PB subtasks are ready: they cannot be
        // blocked by anything, so schedule them.
        if (!got) got = take_best(cands, order, is_pb, &chosen);
      } else {
        // Final p decisions: strictly by PD2 over everything remaining.
        got = take_best(cands, order, any_set, &chosen);
      }
      if (!got) break;
      sched.place(chosen.ref, t, r - 1);
      const auto k = static_cast<std::size_t>(chosen.ref.task);
      ++head[k];
      last_slot[k] = t;
      --remaining;
      if (opts.trace != nullptr) {
        opts.trace->decisions.push_back(
            PdbDecision{t, r, chosen.ref, chosen.set, r > m - p});
      }
    }
    if (opts.trace != nullptr) {
      for (const Candidate& c : cands) {
        opts.trace->slots.back().unserved.emplace_back(c.ref, c.set);
      }
    }
  }
  return sched;
}

}  // namespace pfair
