#include "sched/state_hash.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"
#include "sched/schedule.hpp"
#include "sched/simulator.hpp"

namespace pfair {

namespace {

// Hyperperiods beyond this are useless for fast-forward (no horizon we
// simulate reaches two of them) and risk overflow in slot arithmetic.
constexpr std::int64_t kPeriodBound = std::int64_t{1} << 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

TaskStateRecord task_state_record(const Task& task, std::int64_t head,
                                  std::int64_t last_slot,
                                  std::int64_t allocated, std::int64_t t) {
  TaskStateRecord rec;
  const Weight& w = task.weight();
  rec.lag_num = w.e * t - allocated * w.p;
  if (head >= task.num_subtasks()) {
    rec.rem = TaskStateRecord::kFinished;
    return rec;
  }
  rec.rem = head % w.e;
  rec.anchor = task.subtask_at(head).release - t;
  // Availability exactly as the simulator computes it (constructor for
  // head 0, commit_placement afterwards), clamped at t: a head whose
  // bucket predates t is already in — or about to drain into — the
  // ready heap, and those are behaviorally identical at boundary t.
  const std::int64_t avail =
      head == 0 ? std::max<std::int64_t>(task.eligible_at(0), 0)
                : std::max<std::int64_t>(task.eligible_at(head), last_slot + 1);
  rec.avail_rel = std::max<std::int64_t>(avail - t, 0);
  return rec;
}

std::uint64_t hash_records(const std::vector<TaskStateRecord>& records) {
  std::uint64_t h = 0x51ab7cee1db316a5ull;
  for (const TaskStateRecord& r : records) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.rem));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.anchor));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.avail_rel));
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.lag_num));
  }
  return h;
}

}  // namespace detail

bool fingerprintable(const TaskSystem& sys) {
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    if (task.kind() != TaskKind::kPeriodic) return false;
    if (task.phase() != 0) return false;
  }
  return sys.num_tasks() > 0;
}

std::int64_t fingerprint_period(const TaskSystem& sys) {
  if (!fingerprintable(sys)) return 0;
  std::int64_t l = 1;
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const std::int64_t p = sys.task(k).weight().p;
    l = l / std::gcd(l, p);
    if (l > kPeriodBound / p) return 0;
    l *= p;
  }
  return l;
}

StateFingerprint sfq_state_fingerprint(const SfqSimulator& sim) {
  const TaskSystem& sys = sim.system();
  StateFingerprint fp;
  fp.at = sim.now();
  fp.records.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    fp.records.push_back(detail::task_state_record(
        sys.task(k), sim.head_of(k), sim.last_slot_of(k), sim.allocated_of(k),
        fp.at));
  }
  fp.hash = detail::hash_records(fp.records);
  return fp;
}

ScheduleStateScanner::ScheduleStateScanner(const TaskSystem& sys,
                                           const SlotSchedule& sched)
    : sys_(&sys),
      slots_(static_cast<std::size_t>(sys.num_tasks())),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0) {
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    auto& slots = slots_[static_cast<std::size_t>(k)];
    const std::int64_t n = sched.num_subtasks(k);
    slots.reserve(static_cast<std::size_t>(n));
    std::int64_t prev = -1;
    bool truncated = false;
    for (std::int64_t s = 0; s < n; ++s) {
      const SlotPlacement& pl = sched.placement(
          SubtaskRef{static_cast<std::int32_t>(k), static_cast<std::int32_t>(s)});
      // A horizon-limited run leaves a contiguous unscheduled tail; that
      // is fine as long as no boundary beyond the covered range is
      // queried (the placements below any queried t are all present).
      // A scheduled subtask after an unscheduled one, or out-of-order
      // slots, make head reconstruction meaningless.
      if (!pl.scheduled()) {
        truncated = true;
        continue;
      }
      if (truncated || pl.slot <= prev) {
        ok_ = false;
        return;
      }
      prev = pl.slot;
      slots.push_back(pl.slot);
    }
  }
}

StateFingerprint ScheduleStateScanner::at(std::int64_t t) {
  PFAIR_REQUIRE(ok_, "fingerprint from a broken schedule");
  PFAIR_REQUIRE(t >= last_t_, "scanner boundaries must be nondecreasing");
  last_t_ = t;
  StateFingerprint fp;
  fp.at = t;
  fp.records.reserve(slots_.size());
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    const auto& slots = slots_[k];
    std::int64_t& head = head_[k];
    while (head < static_cast<std::int64_t>(slots.size()) &&
           slots[static_cast<std::size_t>(head)] < t) {
      ++head;
    }
    const std::int64_t last =
        head > 0 ? slots[static_cast<std::size_t>(head - 1)] : -1;
    fp.records.push_back(detail::task_state_record(
        sys_->task(static_cast<std::int64_t>(k)), head, last, head, t));
  }
  fp.hash = detail::hash_records(fp.records);
  return fp;
}

}  // namespace pfair
