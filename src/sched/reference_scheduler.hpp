// The naive SFQ scheduler, retained verbatim as a correctness oracle.
//
// This is the pre-optimization hot path of SfqSimulator: at every slot,
// scan all n tasks for ready heads into a fresh vector and partial_sort
// the M winners with the branchy PriorityOrder comparator — O(n) per
// decision.  The production scheduler (`schedule_sfq` / SfqSimulator)
// replaced that with incremental ready-set maintenance and packed keys;
// the A/B equivalence suite asserts both produce bit-identical
// schedules over randomized task systems, and `bench_scaling` measures
// the gap.  Deliberately simple, allocation-happy and probe-free — do
// not optimize this function.
#pragma once

#include "sched/sfq_scheduler.hpp"

namespace pfair {

/// Reference counterpart of `schedule_sfq` (same options; `trace` and
/// `metrics` are ignored — the oracle is unobserved by design).
[[nodiscard]] SlotSchedule schedule_sfq_reference(const TaskSystem& sys,
                                                  const SfqOptions& opts = {});

}  // namespace pfair
