#include "sched/reference_scheduler.hpp"

#include <algorithm>
#include <vector>

namespace pfair {

SlotSchedule schedule_sfq_reference(const TaskSystem& sys,
                                    const SfqOptions& opts) {
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  const PriorityOrder order(sys, opts.policy);
  SlotSchedule sched(sys);

  const auto n = static_cast<std::size_t>(sys.num_tasks());
  std::vector<std::int64_t> head(n, 0);
  std::vector<std::int64_t> last_slot(n, -1);
  std::int64_t remaining = sys.total_subtasks();

  for (std::int64_t now = 0; now < limit && remaining > 0; ++now) {
    // Full ready scan: each task's next unscheduled subtask, provided it
    // is eligible and its predecessor ran in an earlier slot.
    std::vector<SubtaskRef> ready;
    for (std::size_t k = 0; k < n; ++k) {
      const Task& task = sys.task(static_cast<std::int64_t>(k));
      const std::int64_t h = head[k];
      if (h >= task.num_subtasks()) continue;
      const Subtask& s = task.subtask(h);
      if (s.eligible > now) continue;
      if (h > 0 && last_slot[k] >= now) continue;
      ready.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                                 static_cast<std::int32_t>(h)});
    }
    const auto m = std::min<std::size_t>(
        static_cast<std::size_t>(sys.processors()), ready.size());
    std::partial_sort(ready.begin(),
                      ready.begin() + static_cast<std::ptrdiff_t>(m),
                      ready.end(),
                      [&order](const SubtaskRef& a, const SubtaskRef& b) {
                        return order.higher(a, b);
                      });
    for (std::size_t r = 0; r < m; ++r) {
      const SubtaskRef ref = ready[r];
      sched.place(ref, now, static_cast<int>(r));
      const auto k = static_cast<std::size_t>(ref.task);
      ++head[k];
      last_slot[k] = now;
      --remaining;
    }
  }
  return sched;
}

}  // namespace pfair
