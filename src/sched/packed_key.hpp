// Packed integer priority keys — constant-time priority comparison.
//
// EPDF, PD and PD2 order subtasks by a short lexicographic tuple of
// per-subtask integers that never change once the task system is built
// (pseudo-deadline; b-bit; group deadline; for PD a weight rank).  That
// makes the whole tuple packable into one 64-bit integer per subtask,
// field by field from the most significant bit down, such that
//
//   policy_key(a) <  policy_key(b)  <=>  PriorityOrder::compare(a,b) < 0
//   policy_key(a) == policy_key(b)  <=>  PriorityOrder::compare(a,b) == 0
//
// and the branchy multi-field comparison of `compare_impl` becomes one
// unsigned compare in the scheduler's hot loop.  `order_key` appends the
// task id as the final field, yielding the same strict total order as
// `PriorityOrder::higher` (the per-task seq is not needed: a task's
// pseudo-deadlines are strictly increasing, so two subtasks of one task
// never collide on the policy fields — asserted during construction).
//
// Field widths are sized per task system (bit_width of each field's
// range) and biased so every field is a small non-negative integer.
// Fields that a policy consults only conditionally are *canonicalized*:
// when b = 0, PD/PD2 compare neither group deadline nor weight, so both
// fields are stored as 0 — equal keys exactly where `compare` ties.
//
// For flyweight (strictly periodic) tasks the table is compressed to
// O(e) per task: within a job the per-position fields repeat, and each
// further job shifts the deadline field up and the group-deadline field
// down by exactly p, so key(seq) = base[seq % e] + (seq / e) * step[seq
// % e].  Both the memory and the construction cost become O(sum of e),
// independent of the horizon — this is what keeps simulator setup out
// of the cycle fast-forward path's O(prefix + cycle + tail) budget.
// Materialized (IS/GIS-perturbed) tasks keep the per-subtask table.
//
// PF's tie-break walks the successor b-bit string lexicographically and
// is not a fixed-width tuple; it keeps `compare_pf_bits`.  `packable()`
// is false for PF (and in the astronomically-unlikely case the summed
// field widths exceed 64 bits); callers fall back to PriorityOrder.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/priority.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Precomputed packed priority keys for every subtask of one task
/// system under one policy.  The system must outlive the keys.
class PackedKeys {
 public:
  PackedKeys(const TaskSystem& sys, Policy policy);

  /// True iff keys were built (policy is EPDF/PD/PD2 and all fields fit
  /// in 64 bits).  When false the key accessors must not be called.
  [[nodiscard]] bool packable() const { return packable_; }
  [[nodiscard]] Policy policy() const { return policy_; }

  /// The policy fields alone: mirrors PriorityOrder::compare exactly
  /// (including genuine ties, which map to equal keys).
  [[nodiscard]] std::uint64_t policy_key(const SubtaskRef& ref) const {
    return order_key(ref) >> tie_bits_;
  }

  /// Policy fields plus the task-id tie-break: a strict total order
  /// identical to PriorityOrder::higher over co-ready subtasks (smaller
  /// key = higher priority).
  [[nodiscard]] std::uint64_t order_key(const SubtaskRef& ref) const {
    const TaskKeys& tk = tasks_[static_cast<std::size_t>(ref.task)];
    if (tk.e == 0) return tk.base[static_cast<std::size_t>(ref.seq)];
    const std::int64_t job = ref.seq / tk.e;
    const auto rem = static_cast<std::size_t>(ref.seq % tk.e);
    return tk.base[rem] + static_cast<std::uint64_t>(job) * tk.step[rem];
  }

 private:
  /// One task's compressed keys: `e == 0` means `base` holds one key
  /// per subtask (materialized task); otherwise `base`/`step` hold one
  /// entry per in-period position.
  struct TaskKeys {
    std::int64_t e = 0;
    std::vector<std::uint64_t> base;
    std::vector<std::uint64_t> step;
  };

  const TaskSystem* sys_;
  Policy policy_;
  std::vector<TaskKeys> tasks_;
  int tie_bits_ = 0;
  bool packable_ = false;
};

}  // namespace pfair
