// Packed integer priority keys — constant-time priority comparison.
//
// EPDF, PD and PD2 order subtasks by a short lexicographic tuple of
// per-subtask integers that never change once the task system is built
// (pseudo-deadline; b-bit; group deadline; for PD a weight rank).  That
// makes the whole tuple packable into one 64-bit integer per subtask,
// field by field from the most significant bit down, such that
//
//   policy_key(a) <  policy_key(b)  <=>  PriorityOrder::compare(a,b) < 0
//   policy_key(a) == policy_key(b)  <=>  PriorityOrder::compare(a,b) == 0
//
// and the branchy multi-field comparison of `compare_impl` becomes one
// unsigned compare in the scheduler's hot loop.  `order_key` appends the
// task id as the final field, yielding the same strict total order as
// `PriorityOrder::higher` (the per-task seq is not needed: a task's
// pseudo-deadlines are strictly increasing, so two subtasks of one task
// never collide on the policy fields — asserted during construction).
//
// Field widths are sized per task system (bit_width of each field's
// range) and biased so every field is a small non-negative integer.
// Fields that a policy consults only conditionally are *canonicalized*:
// when b = 0, PD/PD2 compare neither group deadline nor weight, so both
// fields are stored as 0 — equal keys exactly where `compare` ties.
//
// For flyweight (strictly periodic) tasks the table is compressed to
// O(e) per task: within a job the per-position fields repeat, and each
// further job shifts the deadline field up and the group-deadline field
// down by exactly p, so key(seq) = base[seq % e] + (seq / e) * step[seq
// % e].  Both the memory and the construction cost become O(sum of e),
// independent of the horizon — this is what keeps simulator setup out
// of the cycle fast-forward path's O(prefix + cycle + tail) budget.
// Materialized (IS/GIS-perturbed) tasks keep the per-subtask table.
//
// Storage is structure-of-arrays: all bases in one flat array, all
// steps in another, one (offset, e) pair per task.  Data-oriented
// consumers (the simulators' position tables, the SIMD batch
// recompute in warp) read the flat spans directly; `order_key` stays
// the scalar accessor.  When an Arena is supplied the arrays live
// there, so repeated constructions are allocation-free in steady
// state.
//
// PF's tie-break walks the successor b-bit string lexicographically and
// is not a fixed-width tuple; it keeps `compare_pf_bits`.  `packable()`
// is false for PF (and in the astronomically-unlikely case the summed
// field widths exceed 64 bits); callers fall back to PriorityOrder.
#pragma once

#include <cstdint>

#include "core/arena.hpp"
#include "sched/priority.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Precomputed packed priority keys for every subtask of one task
/// system under one policy.  The system (and arena, if any) must
/// outlive the keys.
class PackedKeys {
 public:
  PackedKeys(const TaskSystem& sys, Policy policy, Arena* arena = nullptr);

  /// True iff keys were built (policy is EPDF/PD/PD2 and all fields fit
  /// in 64 bits).  When false the key accessors must not be called.
  [[nodiscard]] bool packable() const { return packable_; }
  [[nodiscard]] Policy policy() const { return policy_; }

  /// The policy fields alone: mirrors PriorityOrder::compare exactly
  /// (including genuine ties, which map to equal keys).
  [[nodiscard]] std::uint64_t policy_key(const SubtaskRef& ref) const {
    return order_key(ref) >> tie_bits_;
  }

  /// Policy fields plus the task-id tie-break: a strict total order
  /// identical to PriorityOrder::higher over co-ready subtasks (smaller
  /// key = higher priority).
  [[nodiscard]] std::uint64_t order_key(const SubtaskRef& ref) const {
    const auto k = static_cast<std::size_t>(ref.task);
    const std::size_t off = off_[k];
    const std::int32_t e = e_[k];
    if (e == 0) return base_[off + static_cast<std::size_t>(ref.seq)];
    const std::int32_t job = ref.seq / e;
    const auto pos = off + static_cast<std::size_t>(ref.seq % e);
    return base_[pos] + static_cast<std::uint64_t>(job) * step_[pos];
  }

  // -- Flat structure-of-arrays access (valid only while packable()) --

  /// Key compression period of task `k`: 0 means one entry per subtask
  /// (materialized task, step identically 0); otherwise `e` entries,
  /// one per in-period position, key(seq) = base[seq%e] + (seq/e) *
  /// step[seq%e].
  [[nodiscard]] std::int32_t task_e(std::int64_t k) const {
    return e_[static_cast<std::size_t>(k)];
  }
  /// Offset of task `k`'s entries in base_data()/step_data().
  [[nodiscard]] std::size_t task_offset(std::int64_t k) const {
    return off_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] const std::uint64_t* base_data() const { return base_.data(); }
  [[nodiscard]] const std::uint64_t* step_data() const { return step_.data(); }

  /// Bit position of the pseudo-deadline field inside the packed key
  /// (valid only while packable()).  `key >> deadline_shift()` is the
  /// biased deadline d - min_d; the deadline is the most significant
  /// field, so every key with a larger shifted value compares greater
  /// than every key with a smaller one regardless of the low bits.
  /// The ready queue's deadline staging relies on exactly this.
  [[nodiscard]] int deadline_shift() const { return deadline_shift_; }

 private:
  const TaskSystem* sys_;
  Policy policy_;
  // [task] -> (offset, e); entries at base_[off..off+n): n = e entries
  // for flyweight tasks (capped at the subtask count), one per subtask
  // for materialized ones.
  ArenaVector<std::uint32_t> off_;
  ArenaVector<std::int32_t> e_;
  ArenaVector<std::uint64_t> base_;
  ArenaVector<std::uint64_t> step_;
  int tie_bits_ = 0;
  int deadline_shift_ = 0;
  bool packable_ = false;
};

}  // namespace pfair
