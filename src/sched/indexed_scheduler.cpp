#include "sched/indexed_scheduler.hpp"

#include <queue>
#include <vector>

namespace pfair {

SlotSchedule schedule_sfq_indexed(const TaskSystem& sys,
                                  const SfqOptions& opts) {
  const std::int64_t limit =
      opts.horizon_limit > 0 ? opts.horizon_limit : default_horizon(sys);
  const PriorityOrder order(sys, opts.policy);
  SlotSchedule sched(sys);

  // Max-heap on priority: top() is the highest-priority available head.
  const auto lower = [&order](const SubtaskRef& a, const SubtaskRef& b) {
    return order.higher(b, a);
  };
  std::priority_queue<SubtaskRef, std::vector<SubtaskRef>, decltype(lower)>
      pq(lower);

  // arrivals[t]: heads becoming available exactly at slot t.
  std::vector<std::vector<SubtaskRef>> arrivals(
      static_cast<std::size_t>(limit) + 1);
  auto push_arrival = [&arrivals, limit](const SubtaskRef& ref,
                                         std::int64_t at) {
    if (at >= limit) return;  // can never be scheduled within the horizon
    arrivals[static_cast<std::size_t>(std::max<std::int64_t>(at, 0))]
        .push_back(ref);
  };

  std::int64_t remaining = sys.total_subtasks();
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    if (task.num_subtasks() > 0) {
      push_arrival(SubtaskRef{k, 0}, task.eligible_at(0));
    }
  }

  for (std::int64_t t = 0; t < limit && remaining > 0; ++t) {
    for (const SubtaskRef& ref : arrivals[static_cast<std::size_t>(t)]) {
      pq.push(ref);
    }
    arrivals[static_cast<std::size_t>(t)].clear();
    for (int r = 0; r < sys.processors() && !pq.empty(); ++r) {
      const SubtaskRef ref = pq.top();
      pq.pop();
      sched.place(ref, t, r);
      --remaining;
      const Task& task = sys.task(ref.task);
      const std::int32_t next = ref.seq + 1;
      if (next < task.num_subtasks()) {
        // The successor becomes available at the later of its eligibility
        // time and the slot after its predecessor's quantum.
        push_arrival(SubtaskRef{ref.task, next},
                     std::max<std::int64_t>(task.eligible_at(next),
                                            t + 1));
      }
    }
  }
  return sched;
}

}  // namespace pfair
