#include "sched/simulator.hpp"

#include <algorithm>

namespace pfair {

SfqSimulator::SfqSimulator(const TaskSystem& sys, Policy policy)
    : sys_(&sys),
      order_(sys, policy),
      sched_(sys),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0),
      last_slot_(static_cast<std::size_t>(sys.num_tasks()), -1),
      allocated_(static_cast<std::size_t>(sys.num_tasks()), 0),
      remaining_(sys.total_subtasks()) {}

std::vector<SubtaskRef> SfqSimulator::ready() const {
  std::vector<SubtaskRef> out;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    const std::int64_t h = head_[k];
    if (h >= task.num_subtasks()) continue;
    const Subtask& s = task.subtask(h);
    // Ready at now(): eligible, predecessor (if any) completed by now().
    if (s.eligible > now_) continue;
    if (h > 0 && last_slot_[k] >= now_) continue;
    out.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                             static_cast<std::int32_t>(h)});
  }
  return out;
}

std::vector<SubtaskRef> SfqSimulator::step() {
  std::vector<SubtaskRef> picks = ready();
  const auto m = std::min<std::size_t>(
      static_cast<std::size_t>(sys_->processors()), picks.size());
  std::partial_sort(picks.begin(),
                    picks.begin() + static_cast<std::ptrdiff_t>(m),
                    picks.end(),
                    [this](const SubtaskRef& a, const SubtaskRef& b) {
                      return order_.higher(a, b);
                    });
  picks.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = picks[r];
    sched_.place(ref, now_, static_cast<int>(r));
    const auto k = static_cast<std::size_t>(ref.task);
    ++head_[k];
    last_slot_[k] = now_;
    ++allocated_[k];
    --remaining_;
  }
  ++now_;
  return picks;
}

void SfqSimulator::run_until(std::int64_t slot_limit) {
  while (!done() && now_ < slot_limit) step();
}

Rational SfqSimulator::lag_of(std::int64_t task) const {
  const Rational w = sys_->task(task).weight().value();
  return w * Rational(now_) -
         Rational(allocated_[static_cast<std::size_t>(task)]);
}

}  // namespace pfair
