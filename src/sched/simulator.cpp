#include "sched/simulator.hpp"

#include <algorithm>

#include "core/simd.hpp"
#include "obs/prof.hpp"
#include "obs/quality.hpp"
#include "tasks/window_table.hpp"

namespace pfair {

SfqSimulator::SfqSimulator(const TaskSystem& sys, Policy policy, Arena* arena,
                           SlotSchedule* out)
    : sys_(&sys),
      order_(sys, policy),
      keys_(sys, policy, arena),
      ready_q_(order_, keys_, arena),
      hot_(arena),
      pos_(arena),
      bucket_head_(arena),
      chunks_(arena),
      scratch_picks_(arena),
      warp_base_(arena),
      warp_step_(arena),
      warp_job_(arena),
      warp_key_(arena),
      warp_task_(arena),
      remaining_(sys.total_subtasks()),
      packed_(keys_.packable()) {
  if (out != nullptr) {
    PFAIR_REQUIRE(out->num_tasks() == sys.num_tasks() &&
                      out->placed_count() == 0 &&
                      out->total() == sys.total_subtasks(),
                  "external schedule does not match the task system");
    sched_ = out;
  } else {
    owned_sched_.emplace(sys);
    sched_ = &*owned_sched_;
  }
  cells_ = sched_->cells_.get();

  const std::int64_t n = sys.num_tasks();
  hot_.resize(static_cast<std::size_t>(n));
  ready_q_.reserve(static_cast<std::size_t>(n));

  // Size the position table (one pass), then fill it (second pass).
  std::size_t positions = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const Task& task = sys.task(k);
    const std::int64_t cnt = task.num_subtasks();
    if (cnt == 0) continue;
    std::int64_t period = cnt;
    if (const WindowTable* wt = task.window_table()) {
      period = task.early_release() ? task.weight().e : wt->e();
    }
    positions += static_cast<std::size_t>(std::min(period, cnt));
  }
  pos_.resize(positions);

  positions = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    const Task& task = sys.task(k);
    const std::int64_t cnt = task.num_subtasks();
    HotTask& h = hot_[static_cast<std::size_t>(k)];
    h.next_key = 0;
    h.last_slot = -1;
    h.elig_p = 0;
    h.cell_base = sys.subtask_offset(k);
    h.head = 0;
    h.count = static_cast<std::int32_t>(cnt);
    h.rem = 0;
    h.job = 0;
    h.e = 1;
    h.pos_off = static_cast<std::int32_t>(positions);
    if (cnt == 0) continue;

    // The position period: the smallest stride that makes both the key
    // and the eligibility affine in the job index (see PosRec).  When
    // it is not smaller than the subtask count, job stays 0 for every
    // seq and the table is truncated to one record per subtask.
    const WindowTable* wt = task.window_table();
    std::int64_t e_red = 0;
    std::int64_t e_pos = cnt;
    if (wt != nullptr) {
      e_red = wt->e();
      const std::int64_t period =
          task.early_release() ? task.weight().e : e_red;
      e_pos = std::min(period, cnt);
      if (e_pos < cnt) h.elig_p = (e_pos / e_red) * wt->p();
    }
    h.e = static_cast<std::int32_t>(e_pos);

    const std::size_t pk_off = packed_ ? keys_.task_offset(k) : 0;
    const std::uint64_t* pk_step = packed_ ? keys_.step_data() : nullptr;
    for (std::int64_t r = 0; r < e_pos; ++r) {
      PosRec& pr = pos_[positions + static_cast<std::size_t>(r)];
      pr.elig_base = task.eligible_at(r);
      pr.key_base = 0;
      pr.key_step = 0;
      if (packed_) {
        pr.key_base = keys_.order_key(SubtaskRef{
            static_cast<std::int32_t>(k), static_cast<std::int32_t>(r)});
        if (e_pos < cnt && wt != nullptr) {
          // key(seq = j * e_pos + r) steps by (e_pos / e_red) times the
          // reduced-period step each job (e_pos is a multiple of e_red).
          pr.key_step =
              static_cast<std::uint64_t>(e_pos / e_red) *
              pk_step[pk_off + static_cast<std::size_t>(r % e_red)];
        }
      }
    }
    h.next_key = pos_[positions].key_base;  // head = 0: job 0, rem 0
    mark_available(static_cast<std::int32_t>(k),
                   std::max<std::int64_t>(pos_[positions].elig_base, 0));
    positions += static_cast<std::size_t>(e_pos);
  }
}

SlotSchedule SfqSimulator::take_schedule() && {
  PFAIR_REQUIRE(owned_sched_.has_value(),
                "take_schedule with an externally owned schedule");
  return std::move(*owned_sched_);
}

void SfqSimulator::mark_available(std::int32_t task, std::int64_t slot) {
  const auto s = static_cast<std::size_t>(slot);
  if (s >= bucket_head_.size()) {
    const std::size_t old = bucket_head_.size();
    const std::size_t grown = std::max(s + 1, old * 2);
    bucket_head_.resize(grown);
    for (std::size_t i = old; i < grown; ++i) bucket_head_[i] = -1;
  }
  std::int32_t c = bucket_head_[s];
  if (c < 0 || chunks_[static_cast<std::size_t>(c)].count == BucketChunk::kCap) {
    std::int32_t fresh;
    if (free_chunk_ >= 0) {
      fresh = free_chunk_;
      free_chunk_ = chunks_[static_cast<std::size_t>(fresh)].next;
    } else {
      fresh = static_cast<std::int32_t>(chunks_.size());
      chunks_.push_back(BucketChunk{});  // geometric growth
    }
    BucketChunk& ch = chunks_[static_cast<std::size_t>(fresh)];
    ch.count = 0;
    ch.next = c;
    bucket_head_[s] = fresh;
    c = fresh;
  }
  BucketChunk& ch = chunks_[static_cast<std::size_t>(c)];
  ch.tasks[ch.count++] = task;
}

void SfqSimulator::drain_calendar() {
  const HotTask* hot = hot_.data();
  while (drained_upto_ < now_) {
    ++drained_upto_;
    const auto s = static_cast<std::size_t>(drained_upto_);
    if (s >= bucket_head_.size()) continue;
    std::int32_t c = bucket_head_[s];
    if (c < 0) continue;
    bucket_head_[s] = -1;
    // A bucket entry always names its task's *current* head: the entry
    // was created when the predecessor was placed (or at construction),
    // and the head cannot be scheduled again before this drain.
    while (c >= 0) {
      BucketChunk& ch = chunks_[static_cast<std::size_t>(c)];
      if (ch.next >= 0) {
        simd::prefetch(&chunks_[static_cast<std::size_t>(ch.next)]);
      }
      for (std::int32_t i = 0; i < ch.count; ++i) {
        simd::prefetch(&hot[ch.tasks[i]]);
      }
      if (packed_) {
        for (std::int32_t i = 0; i < ch.count; ++i) {
          const std::int32_t k = ch.tasks[i];
          const HotTask& h = hot[static_cast<std::size_t>(k)];
          ready_q_.push_key(h.next_key, k, h.head);
        }
      } else {
        for (std::int32_t i = 0; i < ch.count; ++i) {
          const std::int32_t k = ch.tasks[i];
          ready_q_.push(SubtaskRef{k, hot[static_cast<std::size_t>(k)].head});
        }
      }
      const std::int32_t next = ch.next;
      ch.next = free_chunk_;
      free_chunk_ = c;
      c = next;
    }
  }
}

void SfqSimulator::place_fast(const HotTask& h, std::int32_t seq, int proc) {
  SlotSchedule::Cell& c =
      cells_[static_cast<std::size_t>(h.cell_base + seq)];
  PFAIR_ASSERT(c.slot_p1 == 0);
  c.slot_p1 = now_ + 1;
  c.proc_p1 = proc + 1;
  ++sched_->placed_;
  sched_->horizon_ = std::max(sched_->horizon_, now_ + 1);
}

void SfqSimulator::commit_placement(const SubtaskRef& ref) {
  HotTask& h = hot_[static_cast<std::size_t>(ref.task)];
  h.last_slot = now_;
  --remaining_;
  const std::int32_t head = ++h.head;
  if (head >= h.count) return;
  std::int32_t rem = h.rem + 1;
  std::int32_t job = h.job;
  if (rem == h.e) {
    rem = 0;
    ++job;
  }
  h.rem = rem;
  h.job = job;
  const PosRec& pr =
      pos_[static_cast<std::size_t>(h.pos_off) + static_cast<std::size_t>(rem)];
  h.next_key = pr.key_base + static_cast<std::uint64_t>(job) * pr.key_step;
  // The successor becomes available at the later of its eligibility
  // time and the slot after its predecessor's quantum.
  const std::int64_t elig =
      pr.elig_base + static_cast<std::int64_t>(job) * h.elig_p;
  mark_available(ref.task, std::max<std::int64_t>(elig, now_ + 1));
}

std::vector<SubtaskRef> SfqSimulator::ready() const {
  std::vector<SubtaskRef> out;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const HotTask& h = hot_[k];
    if (h.head >= h.count) continue;
    // Ready at now(): eligible, predecessor (if any) completed by now().
    const PosRec& pr = pos_[static_cast<std::size_t>(h.pos_off) +
                            static_cast<std::size_t>(h.rem)];
    if (pr.elig_base + static_cast<std::int64_t>(h.job) * h.elig_p > now_) {
      continue;
    }
    if (h.head > 0 && h.last_slot >= now_) continue;
    out.push_back(SubtaskRef{static_cast<std::int32_t>(k), h.head});
  }
  return out;
}

std::vector<SubtaskRef> SfqSimulator::step() {
  scratch_picks_.clear();
  step_into(scratch_picks_);
  return std::vector<SubtaskRef>(scratch_picks_.begin(), scratch_picks_.end());
}

void SfqSimulator::step_into(ArenaVector<SubtaskRef>& picks) {
  {
    PFAIR_PROF_SPAN(kCalendarWalk);
    drain_calendar();
  }
  {
    PFAIR_PROF_SPAN(kReadyHeap);
    if (probe_.enabled()) [[unlikely]] {
      if (probe_.wants_full_instrumentation()) {
        step_instrumented(picks);
      } else {
        step_fast<true>(picks);
      }
    } else {
      step_fast<false>(picks);
    }
  }
  if (quality_ != nullptr) [[unlikely]] {
    note_quality(picks.data(), picks.size());
  }
}

void SfqSimulator::set_quality(QualityCounters* q) {
  PFAIR_REQUIRE(q == nullptr || now_ == 0,
                "attach quality counters before the first step");
  quality_ = q;
  if (q != nullptr) {
    const auto procs = static_cast<std::size_t>(sys_->processors());
    q->resize_procs(procs);
    proc_task_.assign(procs, -1);
    prev_tasks_.clear();
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::note_quality(const SubtaskRef* picks, std::size_t count) {
  const std::int64_t t = now_ - 1;  // the slot just decided
  QualityCounters& q = *quality_;
  ++q.decision_points;
  const auto procs = static_cast<std::size_t>(sys_->processors());
  q.idle_slots += static_cast<std::int64_t>(procs - count);
  for (std::size_t r = 0; r < count; ++r) {
    const SubtaskRef ref = picks[r];
    if (ref.seq > 0) {
      const int prev =
          sched_->placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
      if (prev >= 0 && prev != static_cast<int>(r)) ++q.migrations;
    }
    std::int32_t& occupant = proc_task_[r];
    if (occupant != ref.task) {
      if (occupant >= 0) {
        ++q.context_switches;
        ++q.per_proc_switches[r];
      }
      occupant = ref.task;
    }
  }
  // A task that held a processor in the previous slot, is still ready
  // here (eligible, work left) and was not placed, was preempted.  Only
  // last slot's picks are candidates; a placement this slot would have
  // advanced last_slot to t.
  for (const std::int32_t k : prev_tasks_) {
    const HotTask& h = hot_[static_cast<std::size_t>(k)];
    if (h.last_slot != t - 1) continue;
    if (h.head >= h.count) continue;
    const PosRec& pr = pos_[static_cast<std::size_t>(h.pos_off) +
                            static_cast<std::size_t>(h.rem)];
    if (pr.elig_base + static_cast<std::int64_t>(h.job) * h.elig_p > t) {
      continue;
    }
    ++q.preemptions;
  }
  prev_tasks_.clear();
  for (std::size_t r = 0; r < count; ++r) prev_tasks_.push_back(picks[r].task);
}

template <bool kTraced>
void SfqSimulator::step_fast(ArenaVector<SubtaskRef>& picks) {
  [[maybe_unused]] const Time at = Time::slots(now_);
  if constexpr (kTraced) {
    probe_.begin_decision(TraceEventKind::kSlotBegin, at, now_);
  }
  const auto m = static_cast<std::size_t>(sys_->processors());
  const HotTask* hot = hot_.data();
  while (picks.size() < m && !ready_q_.empty()) {
    // Overlap the root task's hot-record fetch with the pop's sift-down.
    if (packed_) {
      simd::prefetch(&hot[static_cast<std::size_t>(ready_q_.peek_task())]);
    }
    const SubtaskRef ref = ready_q_.pop_best();
    // Skip entries scheduled behind the heap's back by an instrumented
    // step (the head moved on).
    const HotTask& h = hot[static_cast<std::size_t>(ref.task)];
    if (h.head != ref.seq) continue;
    const int proc = static_cast<int>(picks.size());
    place_fast(h, ref.seq, proc);
    if constexpr (kTraced) note_placement(at, ref, proc);
    commit_placement(ref);
    picks.push_back(ref);
  }
  ++now_;
  if constexpr (kTraced) probe_.end_decision();
}

// noinline: instrumented-path-only code; folding these into step() costs
// the *uninstrumented* path measurable icache pressure.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::step_instrumented(ArenaVector<SubtaskRef>& picks) {
  const Time at = Time::slots(now_);
  probe_.begin_decision(TraceEventKind::kSlotBegin, at, now_);
  scratch_instr_ = ready();
  const auto m = std::min<std::size_t>(
      static_cast<std::size_t>(sys_->processors()), scratch_instr_.size());
  sort_picks_instrumented(scratch_instr_, m, at);
  scratch_instr_.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = scratch_instr_[r];
    sched_->place(ref, now_, static_cast<int>(r));
    note_placement(at, ref, static_cast<int>(r));
    commit_placement(ref);
    picks.push_back(ref);
  }
  ++now_;
  probe_.end_decision();
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                                           std::size_t m, Time at) {
  probe_.ready_set(at, static_cast<std::int64_t>(picks.size()));
  // Instrumented comparator: identical ordering (same compare + same id
  // tie-break), with the comparison count and — when tracing — the
  // deciding rule reported on the side.
  std::int64_t ncmp = 0;
  const bool tracing = probe_.tracing();
  std::partial_sort(
      picks.begin(), picks.begin() + static_cast<std::ptrdiff_t>(m),
      picks.end(),
      [this, at, tracing, &ncmp](const SubtaskRef& a, const SubtaskRef& b) {
        ++ncmp;
        TieRule rule = TieRule::kTie;
        const int c = order_.compare(a, b, &rule);
        const bool a_wins = c != 0 ? c < 0 : a < b;
        if (tracing) {
          probe_.compare_outcome(at, a_wins ? a : b, a_wins ? b : a, rule);
        }
        return a_wins;
      });
  probe_.comparisons(ncmp);
  // Tasks that held a processor in the previous slot and are ready but
  // lost out in this one were preempted; unused capacity is idle.
  for (std::size_t r = m; r < picks.size(); ++r) {
    const auto k = static_cast<std::size_t>(picks[r].task);
    if (hot_[k].last_slot == now_ - 1) probe_.preempt(at, picks[r]);
  }
  const auto procs = static_cast<std::size_t>(sys_->processors());
  if (m < procs) {
    probe_.idle(at, static_cast<std::int64_t>(procs - m));
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::note_placement(Time at, SubtaskRef ref, int proc) {
  probe_.place(at, ref, proc, now_);
  if (ref.seq > 0) {
    const int prev = sched_->placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
    if (prev >= 0 && prev != proc) probe_.migrate(at, ref, prev, proc);
  }
  const std::int64_t tard_slots =
      std::max<std::int64_t>(0, now_ + 1 - sys_->subtask(ref).deadline);
  probe_.deadline(at, ref, tard_slots * kTicksPerSlot);
}

void SfqSimulator::run_until(std::int64_t slot_limit) {
  while (!done() && now_ < slot_limit) {
    scratch_picks_.clear();
    step_into(scratch_picks_);
  }
}

void SfqSimulator::warp(std::int64_t cycles, std::int64_t cycle_slots,
                        const std::vector<std::int64_t>& cycle_allocs) {
  PFAIR_REQUIRE(!probe_.enabled(), "warp would skip trace events");
  PFAIR_REQUIRE(quality_ == nullptr, "warp would skip quality accounting");
  PFAIR_REQUIRE(cycles >= 0 && cycle_slots > 0, "bad warp parameters");
  if (cycles == 0) return;
  const std::int64_t shift = cycles * cycle_slots;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  warp_task_.clear();
  warp_base_.clear();
  warp_step_.clear();
  warp_job_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    HotTask& h = hot_[k];
    const std::int64_t adv = cycles * cycle_allocs[k];
    PFAIR_REQUIRE(h.head + adv <= h.count,
                  "warp overruns task "
                      << sys_->task(static_cast<std::int64_t>(k)).name());
    h.head = static_cast<std::int32_t>(h.head + adv);
    remaining_ -= adv;
    // The task's most recent quantum moved forward with the cycle; a
    // task idle through the whole cycle keeps its (pre-t0) last slot.
    if (adv > 0) h.last_slot += shift;
    if (h.head >= h.count) continue;
    // Re-derive the in-period cursor (the one place a division is paid)
    // and queue the head key for the SIMD batch recompute below.
    h.job = h.head / h.e;
    h.rem = h.head % h.e;
    if (packed_) {
      const PosRec& pr = pos_[static_cast<std::size_t>(h.pos_off) +
                              static_cast<std::size_t>(h.rem)];
      warp_task_.push_back(static_cast<std::int32_t>(k));
      warp_base_.push_back(pr.key_base);
      warp_step_.push_back(pr.key_step);
      warp_job_.push_back(static_cast<std::uint64_t>(h.job));
    }
  }
  now_ += shift;
  if (!warp_task_.empty()) {
    warp_key_.resize(warp_task_.size());
    simd::affine_keys(warp_base_.data(), warp_step_.data(), warp_job_.data(),
                      warp_key_.data(), warp_task_.size());
    for (std::size_t i = 0; i < warp_task_.size(); ++i) {
      hot_[static_cast<std::size_t>(warp_task_[i])].next_key = warp_key_[i];
    }
  }
  // Rebuild the availability structures: every queued or bucketed entry
  // names a pre-warp head seq, so drop them all and re-derive each
  // task's availability from the counters (exactly as the constructor
  // and commit_placement would have).
  ready_q_.clear();
  for (std::size_t i = 0; i < bucket_head_.size(); ++i) bucket_head_[i] = -1;
  chunks_.clear();
  free_chunk_ = -1;
  drained_upto_ = now_ - 1;
  for (std::size_t k = 0; k < n; ++k) {
    const HotTask& h = hot_[k];
    if (h.head >= h.count) continue;
    const PosRec& pr = pos_[static_cast<std::size_t>(h.pos_off) +
                            static_cast<std::size_t>(h.rem)];
    const std::int64_t elig =
        pr.elig_base + static_cast<std::int64_t>(h.job) * h.elig_p;
    const std::int64_t avail =
        h.head == 0 ? std::max<std::int64_t>(elig, 0)
                    : std::max<std::int64_t>(elig, h.last_slot + 1);
    mark_available(static_cast<std::int32_t>(k),
                   std::max<std::int64_t>(avail, now_));
  }
}

Rational SfqSimulator::lag_of(std::int64_t task) const {
  const Rational w = sys_->task(task).weight().value();
  return w * Rational(now_) -
         Rational(hot_[static_cast<std::size_t>(task)].head);
}

}  // namespace pfair
