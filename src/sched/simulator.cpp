#include "sched/simulator.hpp"

#include <algorithm>

namespace pfair {

SfqSimulator::SfqSimulator(const TaskSystem& sys, Policy policy)
    : sys_(&sys),
      order_(sys, policy),
      sched_(sys),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0),
      last_slot_(static_cast<std::size_t>(sys.num_tasks()), -1),
      allocated_(static_cast<std::size_t>(sys.num_tasks()), 0),
      remaining_(sys.total_subtasks()) {}

std::vector<SubtaskRef> SfqSimulator::ready() const {
  std::vector<SubtaskRef> out;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    const std::int64_t h = head_[k];
    if (h >= task.num_subtasks()) continue;
    const Subtask& s = task.subtask(h);
    // Ready at now(): eligible, predecessor (if any) completed by now().
    if (s.eligible > now_) continue;
    if (h > 0 && last_slot_[k] >= now_) continue;
    out.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                             static_cast<std::int32_t>(h)});
  }
  return out;
}

std::vector<SubtaskRef> SfqSimulator::step() {
  const bool obs = probe_.enabled();
  const Time at = Time::slots(now_);
  if (obs) probe_.begin_decision(TraceEventKind::kSlotBegin, at, now_);
  std::vector<SubtaskRef> picks = ready();
  const auto m = std::min<std::size_t>(
      static_cast<std::size_t>(sys_->processors()), picks.size());
  if (!obs) [[likely]] {
    std::partial_sort(picks.begin(),
                      picks.begin() + static_cast<std::ptrdiff_t>(m),
                      picks.end(),
                      [this](const SubtaskRef& a, const SubtaskRef& b) {
                        return order_.higher(a, b);
                      });
  } else {
    sort_picks_instrumented(picks, m, at);
  }
  picks.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = picks[r];
    sched_.place(ref, now_, static_cast<int>(r));
    if (obs) [[unlikely]] note_placement(at, ref, static_cast<int>(r));
    const auto k = static_cast<std::size_t>(ref.task);
    ++head_[k];
    last_slot_[k] = now_;
    ++allocated_[k];
    --remaining_;
  }
  ++now_;
  if (obs) probe_.end_decision();
  return picks;
}

// noinline: instrumented-path-only code; folding these into step() costs
// the *uninstrumented* path measurable icache pressure.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                                           std::size_t m, Time at) {
  probe_.ready_set(at, static_cast<std::int64_t>(picks.size()));
  // Instrumented comparator: identical ordering (same compare + same id
  // tie-break), with the comparison count and — when tracing — the
  // deciding rule reported on the side.
  std::int64_t ncmp = 0;
  const bool tracing = probe_.tracing();
  std::partial_sort(
      picks.begin(), picks.begin() + static_cast<std::ptrdiff_t>(m),
      picks.end(),
      [this, at, tracing, &ncmp](const SubtaskRef& a, const SubtaskRef& b) {
        ++ncmp;
        TieRule rule = TieRule::kTie;
        const int c = order_.compare(a, b, &rule);
        const bool a_wins = c != 0 ? c < 0 : a < b;
        if (tracing) {
          probe_.compare_outcome(at, a_wins ? a : b, a_wins ? b : a, rule);
        }
        return a_wins;
      });
  probe_.comparisons(ncmp);
  // Tasks that held a processor in the previous slot and are ready but
  // lost out in this one were preempted; unused capacity is idle.
  for (std::size_t r = m; r < picks.size(); ++r) {
    const auto k = static_cast<std::size_t>(picks[r].task);
    if (last_slot_[k] == now_ - 1) probe_.preempt(at, picks[r]);
  }
  const auto procs = static_cast<std::size_t>(sys_->processors());
  if (m < procs) {
    probe_.idle(at, static_cast<std::int64_t>(procs - m));
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::note_placement(Time at, SubtaskRef ref, int proc) {
  probe_.place(at, ref, proc, now_);
  if (ref.seq > 0) {
    const int prev = sched_.placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
    if (prev >= 0 && prev != proc) probe_.migrate(at, ref, prev, proc);
  }
  const std::int64_t tard_slots =
      std::max<std::int64_t>(0, now_ + 1 - sys_->subtask(ref).deadline);
  probe_.deadline(at, ref, tard_slots * kTicksPerSlot);
}

void SfqSimulator::run_until(std::int64_t slot_limit) {
  while (!done() && now_ < slot_limit) step();
}

Rational SfqSimulator::lag_of(std::int64_t task) const {
  const Rational w = sys_->task(task).weight().value();
  return w * Rational(now_) -
         Rational(allocated_[static_cast<std::size_t>(task)]);
}

}  // namespace pfair
