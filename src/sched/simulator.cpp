#include "sched/simulator.hpp"

#include <algorithm>

#include "obs/prof.hpp"
#include "obs/quality.hpp"

namespace pfair {

SfqSimulator::SfqSimulator(const TaskSystem& sys, Policy policy)
    : sys_(&sys),
      order_(sys, policy),
      keys_(sys, policy),
      ready_q_(order_, keys_),
      sched_(sys),
      head_(static_cast<std::size_t>(sys.num_tasks()), 0),
      last_slot_(static_cast<std::size_t>(sys.num_tasks()), -1),
      allocated_(static_cast<std::size_t>(sys.num_tasks()), 0),
      bucket_next_(static_cast<std::size_t>(sys.num_tasks()), -1),
      remaining_(sys.total_subtasks()) {
  ready_q_.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    if (task.num_subtasks() > 0) {
      mark_available(k, std::max<std::int64_t>(task.eligible_at(0), 0));
    }
  }
}

void SfqSimulator::mark_available(std::int32_t task, std::int64_t slot) {
  const auto s = static_cast<std::size_t>(slot);
  if (s >= bucket_head_.size()) {
    bucket_head_.resize(std::max(s + 1, bucket_head_.size() * 2), -1);
  }
  bucket_next_[static_cast<std::size_t>(task)] = bucket_head_[s];
  bucket_head_[s] = task;
}

void SfqSimulator::drain_calendar() {
  while (drained_upto_ < now_) {
    ++drained_upto_;
    const auto s = static_cast<std::size_t>(drained_upto_);
    if (s >= bucket_head_.size()) continue;
    // A bucket entry always names its task's *current* head: the entry
    // was created when the predecessor was placed (or at construction),
    // and the head cannot be scheduled again before this drain.
    for (std::int32_t k = bucket_head_[s]; k != -1;) {
      const std::int32_t next = bucket_next_[static_cast<std::size_t>(k)];
      ready_q_.push(SubtaskRef{
          k, static_cast<std::int32_t>(head_[static_cast<std::size_t>(k)])});
      k = next;
    }
    bucket_head_[s] = -1;
  }
}

void SfqSimulator::commit_placement(const SubtaskRef& ref) {
  const auto k = static_cast<std::size_t>(ref.task);
  ++head_[k];
  last_slot_[k] = now_;
  ++allocated_[k];
  --remaining_;
  const Task& task = sys_->task(ref.task);
  if (head_[k] < task.num_subtasks()) {
    // The successor becomes available at the later of its eligibility
    // time and the slot after its predecessor's quantum.
    mark_available(ref.task,
                   std::max<std::int64_t>(
                       task.eligible_at(head_[k]), now_ + 1));
  }
}

std::vector<SubtaskRef> SfqSimulator::ready() const {
  std::vector<SubtaskRef> out;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    const std::int64_t h = head_[k];
    if (h >= task.num_subtasks()) continue;
    const Subtask& s = task.subtask(h);
    // Ready at now(): eligible, predecessor (if any) completed by now().
    if (s.eligible > now_) continue;
    if (h > 0 && last_slot_[k] >= now_) continue;
    out.push_back(SubtaskRef{static_cast<std::int32_t>(k),
                             static_cast<std::int32_t>(h)});
  }
  return out;
}

std::vector<SubtaskRef> SfqSimulator::step() {
  std::vector<SubtaskRef> picks;
  step_into(picks);
  return picks;
}

void SfqSimulator::step_into(std::vector<SubtaskRef>& picks) {
  {
    PFAIR_PROF_SPAN(kCalendarWalk);
    drain_calendar();
  }
  {
    PFAIR_PROF_SPAN(kReadyHeap);
    if (probe_.enabled()) [[unlikely]] {
      if (probe_.wants_full_instrumentation()) {
        step_instrumented(picks);
      } else {
        step_fast<true>(picks);
      }
    } else {
      step_fast<false>(picks);
    }
  }
  if (quality_ != nullptr) [[unlikely]] {
    note_quality(picks);
  }
}

void SfqSimulator::set_quality(QualityCounters* q) {
  PFAIR_REQUIRE(q == nullptr || now_ == 0,
                "attach quality counters before the first step");
  quality_ = q;
  if (q != nullptr) {
    const auto procs = static_cast<std::size_t>(sys_->processors());
    q->resize_procs(procs);
    proc_task_.assign(procs, -1);
    prev_tasks_.clear();
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::note_quality(const std::vector<SubtaskRef>& picks) {
  const std::int64_t t = now_ - 1;  // the slot just decided
  QualityCounters& q = *quality_;
  ++q.decision_points;
  const auto procs = static_cast<std::size_t>(sys_->processors());
  q.idle_slots += static_cast<std::int64_t>(procs - picks.size());
  for (std::size_t r = 0; r < picks.size(); ++r) {
    const SubtaskRef ref = picks[r];
    if (ref.seq > 0) {
      const int prev =
          sched_.placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
      if (prev >= 0 && prev != static_cast<int>(r)) ++q.migrations;
    }
    std::int32_t& occupant = proc_task_[r];
    if (occupant != ref.task) {
      if (occupant >= 0) {
        ++q.context_switches;
        ++q.per_proc_switches[r];
      }
      occupant = ref.task;
    }
  }
  // A task that held a processor in the previous slot, is still ready
  // here (eligible, work left) and was not placed, was preempted.  Only
  // last slot's picks are candidates; a placement this slot would have
  // advanced last_slot_ to t.
  for (const std::int32_t k : prev_tasks_) {
    const auto ks = static_cast<std::size_t>(k);
    if (last_slot_[ks] != t - 1) continue;
    const Task& task = sys_->task(k);
    const std::int64_t h = head_[ks];
    if (h >= task.num_subtasks()) continue;
    if (task.eligible_at(h) > t) continue;
    ++q.preemptions;
  }
  prev_tasks_.clear();
  for (const SubtaskRef& ref : picks) prev_tasks_.push_back(ref.task);
}

template <bool kTraced>
void SfqSimulator::step_fast(std::vector<SubtaskRef>& picks) {
  [[maybe_unused]] const Time at = Time::slots(now_);
  if constexpr (kTraced) {
    probe_.begin_decision(TraceEventKind::kSlotBegin, at, now_);
  }
  const auto m = static_cast<std::size_t>(sys_->processors());
  while (picks.size() < m && !ready_q_.empty()) {
    const SubtaskRef ref = ready_q_.pop_best();
    // Skip entries scheduled behind the heap's back by an instrumented
    // step (the head moved on).
    if (head_[static_cast<std::size_t>(ref.task)] != ref.seq) continue;
    const int proc = static_cast<int>(picks.size());
    sched_.place(ref, now_, proc);
    if constexpr (kTraced) note_placement(at, ref, proc);
    commit_placement(ref);
    picks.push_back(ref);
  }
  ++now_;
  if constexpr (kTraced) probe_.end_decision();
}

// noinline: instrumented-path-only code; folding these into step() costs
// the *uninstrumented* path measurable icache pressure.
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::step_instrumented(std::vector<SubtaskRef>& picks) {
  const Time at = Time::slots(now_);
  probe_.begin_decision(TraceEventKind::kSlotBegin, at, now_);
  picks = ready();
  const auto m = std::min<std::size_t>(
      static_cast<std::size_t>(sys_->processors()), picks.size());
  sort_picks_instrumented(picks, m, at);
  picks.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const SubtaskRef ref = picks[r];
    sched_.place(ref, now_, static_cast<int>(r));
    note_placement(at, ref, static_cast<int>(r));
    commit_placement(ref);
  }
  ++now_;
  probe_.end_decision();
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::sort_picks_instrumented(std::vector<SubtaskRef>& picks,
                                           std::size_t m, Time at) {
  probe_.ready_set(at, static_cast<std::int64_t>(picks.size()));
  // Instrumented comparator: identical ordering (same compare + same id
  // tie-break), with the comparison count and — when tracing — the
  // deciding rule reported on the side.
  std::int64_t ncmp = 0;
  const bool tracing = probe_.tracing();
  std::partial_sort(
      picks.begin(), picks.begin() + static_cast<std::ptrdiff_t>(m),
      picks.end(),
      [this, at, tracing, &ncmp](const SubtaskRef& a, const SubtaskRef& b) {
        ++ncmp;
        TieRule rule = TieRule::kTie;
        const int c = order_.compare(a, b, &rule);
        const bool a_wins = c != 0 ? c < 0 : a < b;
        if (tracing) {
          probe_.compare_outcome(at, a_wins ? a : b, a_wins ? b : a, rule);
        }
        return a_wins;
      });
  probe_.comparisons(ncmp);
  // Tasks that held a processor in the previous slot and are ready but
  // lost out in this one were preempted; unused capacity is idle.
  for (std::size_t r = m; r < picks.size(); ++r) {
    const auto k = static_cast<std::size_t>(picks[r].task);
    if (last_slot_[k] == now_ - 1) probe_.preempt(at, picks[r]);
  }
  const auto procs = static_cast<std::size_t>(sys_->processors());
  if (m < procs) {
    probe_.idle(at, static_cast<std::int64_t>(procs - m));
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void SfqSimulator::note_placement(Time at, SubtaskRef ref, int proc) {
  probe_.place(at, ref, proc, now_);
  if (ref.seq > 0) {
    const int prev = sched_.placement(SubtaskRef{ref.task, ref.seq - 1}).proc;
    if (prev >= 0 && prev != proc) probe_.migrate(at, ref, prev, proc);
  }
  const std::int64_t tard_slots =
      std::max<std::int64_t>(0, now_ + 1 - sys_->subtask(ref).deadline);
  probe_.deadline(at, ref, tard_slots * kTicksPerSlot);
}

void SfqSimulator::run_until(std::int64_t slot_limit) {
  while (!done() && now_ < slot_limit) {
    scratch_picks_.clear();
    step_into(scratch_picks_);
  }
}

void SfqSimulator::warp(std::int64_t cycles, std::int64_t cycle_slots,
                        const std::vector<std::int64_t>& cycle_allocs) {
  PFAIR_REQUIRE(!probe_.enabled(), "warp would skip trace events");
  PFAIR_REQUIRE(quality_ == nullptr, "warp would skip quality accounting");
  PFAIR_REQUIRE(cycles >= 0 && cycle_slots > 0, "bad warp parameters");
  if (cycles == 0) return;
  const std::int64_t shift = cycles * cycle_slots;
  const auto n = static_cast<std::size_t>(sys_->num_tasks());
  for (std::size_t k = 0; k < n; ++k) {
    const std::int64_t adv = cycles * cycle_allocs[k];
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    PFAIR_REQUIRE(head_[k] + adv <= task.num_subtasks(),
                  "warp overruns task " << task.name());
    head_[k] += adv;
    allocated_[k] += adv;
    remaining_ -= adv;
    // The task's most recent quantum moved forward with the cycle; a
    // task idle through the whole cycle keeps its (pre-t0) last slot.
    if (adv > 0) last_slot_[k] += shift;
  }
  now_ += shift;
  // Rebuild the availability structures: every queued or bucketed entry
  // names a pre-warp head seq, so drop them all and re-derive each
  // task's availability from the counters (exactly as the constructor
  // and commit_placement would have).
  ready_q_.clear();
  std::fill(bucket_head_.begin(), bucket_head_.end(), -1);
  drained_upto_ = now_ - 1;
  for (std::size_t k = 0; k < n; ++k) {
    const Task& task = sys_->task(static_cast<std::int64_t>(k));
    if (head_[k] >= task.num_subtasks()) continue;
    const std::int64_t avail =
        head_[k] == 0
            ? std::max<std::int64_t>(task.eligible_at(0), 0)
            : std::max<std::int64_t>(task.eligible_at(head_[k]),
                                     last_slot_[k] + 1);
    mark_available(static_cast<std::int32_t>(k),
                   std::max<std::int64_t>(avail, now_));
  }
}

Rational SfqSimulator::lag_of(std::int64_t task) const {
  const Rational w = sys_->task(task).weight().value();
  return w * Rational(now_) -
         Rational(allocated_[static_cast<std::size_t>(task)]);
}

}  // namespace pfair
