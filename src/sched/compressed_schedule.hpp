// Cycle-compressed SFQ schedules — the representation half of
// steady-state fast-forward (detection lives in sched/state_hash.hpp).
//
// Once the simulator state at boundary t1 is proven equal to the state
// at t0 (< t1), the slots [t0, t1) repeat verbatim forever: instead of
// simulating m further cycles, `schedule_sfq_cyclic` *warps* the live
// simulator m cycles ahead and resumes real simulation for the tail.
// The warp cap — no task may exhaust its finite subtask sequence inside
// the skipped region — is what makes the splice exact: a finite run
// only diverges from the infinite periodic schedule after some task
// runs dry and frees contention, and every slot from that point on is
// simulated for real.
//
// The result is a `CycleSchedule`: the inner SlotSchedule holds the real
// prefix [0, t1) and the real tail [t1 + m*C, ...); placements inside
// the skipped window are synthesized on demand by shifting their
// base-cycle counterparts j*C slots (same processor — the decision
// sequence is identical, so the processor assignment is too).  The
// class satisfies the SlotSchedule accessor surface, so the validity /
// lag / tardiness analyses and the InvariantAuditor consume it
// unchanged; `materialize(h)` expands to a plain SlotSchedule for the
// reference oracles.  Building and storing a CycleSchedule is
// O(prefix + cycle + tail + tasks) regardless of the horizon.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {

class TraceSink;

/// Splice parameters of one task: which seqs are synthesized and where
/// their base copies live.
struct TaskSplice {
  std::int64_t cycle_begin = 0;  ///< head at t0: first seq of the base cycle
  std::int64_t skip_begin = 0;   ///< head at t1: first synthesized seq
  std::int64_t per_cycle = 0;    ///< subtasks this task places per cycle
  std::int64_t skip_count = 0;   ///< cycles_skipped * per_cycle
};

/// What the cycle detector did for one run.
struct CycleStats {
  bool engaged = false;          ///< a cycle was found and skipped
  std::int64_t prefix_slots = 0;    ///< t0: slots before the cycle starts
  std::int64_t cycle_slots = 0;     ///< C = t1 - t0
  std::int64_t detect_slot = 0;     ///< t1: boundary where recurrence confirmed
  std::int64_t cycles_skipped = 0;  ///< m
  std::int64_t slots_skipped = 0;   ///< m * C
  std::int64_t sim_slots = 0;       ///< slots actually simulated
};

/// A schedule stored as real prefix + one stored cycle + repeat count +
/// real tail.  Mirrors the SlotSchedule read surface (placement by
/// value — synthesized placements have no storage to reference).
class CycleSchedule {
 public:
  /// A plain (non-engaged) wrapping of a fully stored schedule.
  explicit CycleSchedule(SlotSchedule inner);
  /// An engaged splice.  `complete` is the simulator's own completion
  /// verdict (every subtask placed), which the constructor cannot
  /// recount without O(horizon) work.
  CycleSchedule(SlotSchedule inner, CycleStats stats,
                std::vector<TaskSplice> splices, bool complete);

  [[nodiscard]] SlotPlacement placement(const SubtaskRef& ref) const;
  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] std::int64_t horizon() const { return horizon_; }
  [[nodiscard]] std::int64_t completion_slot(const SubtaskRef& ref) const;
  [[nodiscard]] std::vector<SubtaskRef> slot_contents(std::int64_t slot) const;
  [[nodiscard]] std::int64_t num_tasks() const { return inner_.num_tasks(); }
  [[nodiscard]] std::int64_t num_subtasks(std::int64_t task) const {
    return inner_.num_subtasks(task);
  }

  [[nodiscard]] const CycleStats& stats() const { return stats_; }
  /// The physically stored placements (prefix + base cycle + tail).
  [[nodiscard]] const SlotSchedule& stored() const { return inner_; }
  [[nodiscard]] SlotSchedule take_stored() && { return std::move(inner_); }

  /// Expands into a plain SlotSchedule containing every placement whose
  /// slot is < `horizon` plus everything already stored.  O(subtasks).
  [[nodiscard]] SlotSchedule materialize(std::int64_t horizon) const;

 private:
  [[nodiscard]] bool in_skip(const TaskSplice& sp, std::int64_t seq) const {
    return stats_.engaged && seq >= sp.skip_begin &&
           seq < sp.skip_begin + sp.skip_count;
  }

  SlotSchedule inner_;
  CycleStats stats_;
  std::vector<TaskSplice> splices_;  // one per task; empty if !engaged
  std::int64_t horizon_ = 0;
  bool complete_ = false;
};

/// Runs the SFQ scheduler with steady-state cycle detection: simulates
/// normally while probing the state fingerprint at every hyperperiod
/// boundary, and on a confirmed recurrence warps over as many whole
/// cycles as the horizon and the tasks' subtask counts allow.  Falls
/// back to a plain full run (stats().engaged == false) whenever the
/// system is not fingerprintable, the horizon never reaches a second
/// hyperperiod boundary, no recurrence shows up, or the run is
/// instrumented (opts.trace / opts.metrics) — instrumented streams are
/// never elided.  Ignores opts.cycle_detect (callers gate on it).
[[nodiscard]] CycleSchedule schedule_sfq_cyclic(const TaskSystem& sys,
                                                const SfqOptions& opts = {});

/// Re-emits the decision-outcome trace stream (slot begins, placements,
/// migrations, deadline outcomes — the kDecisionTraceEvents shapes the
/// simulators produce) of an already-computed schedule into `sink`.
/// This is how a CycleSchedule-backed run feeds the InvariantAuditor
/// without materializing.  O(horizon + subtasks log subtasks).
void replay_decisions(const TaskSystem& sys, const CycleSchedule& sched,
                      TraceSink& sink);

}  // namespace pfair
