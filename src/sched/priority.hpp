// Pfair priority policies (Sec. 2): EPDF, PF, PD and PD2.
//
// All four prioritize earlier pseudo-deadlines; they differ in how they
// break deadline ties:
//   * EPDF  — no tie-breaks (suboptimal on M >= 3 processors);
//   * PF    — compares the successor b-bit string lexicographically
//             (Baruah et al. [6]);
//   * PD2   — b-bit, then group deadline (Anderson & Srinivasan [3]);
//   * PD    — historically PD2's rules plus further rules; here realized as
//             PD2 refined by task weight.  Because PD2's tie-breaking rules
//             are a *subset* of PD's and PD2's optimality proof permits
//             arbitrary resolution of any remaining ties, every
//             deterministic refinement of PD2 — including this one — is an
//             optimal member of the PD family.
//
// `compare` exposes genuine ties (return 0) because PD^B (Sec. 3.1) needs
// the paper's non-strict order ⪯; `higher` is the strict total order used
// for deterministic scheduling (ties resolved by task id, then index).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "obs/trace.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Which priority policy drives the scheduler.  kBroken is a
/// deliberately faulty PD2 (inverted Rules 2 and 3) kept as a fault
/// injection target for the invariant auditor — never use it for real
/// scheduling.
enum class Policy { kEpdf, kPf, kPd, kPd2, kBroken };

[[nodiscard]] const char* to_string(Policy p);
/// Inverse of to_string, case-insensitive ("pd2", "EPDF", "broken", ...);
/// nullopt for an unknown name.
[[nodiscard]] std::optional<Policy> policy_from_string(std::string_view s);

/// Priority comparisons over the subtasks of one task system.
/// Holds a reference to the system; the system must outlive the order.
class PriorityOrder {
 public:
  PriorityOrder(const TaskSystem& sys, Policy policy)
      : sys_(&sys), policy_(policy) {}

  [[nodiscard]] Policy policy() const { return policy_; }

  /// <0: a has strictly higher priority; 0: genuine tie under the policy's
  /// rules; >0: a strictly lower.  This is the paper's ≺ / ⪯.
  [[nodiscard]] int compare(const SubtaskRef& a, const SubtaskRef& b) const {
    return compare_impl<false>(a, b, nullptr);
  }

  /// `compare` that additionally reports which rule decided the outcome
  /// (TieRule::kTie for a genuine tie).  Both overloads share one rule
  /// body (the explain bookkeeping compiles out of the plain one), so
  /// the returned ordering is identical and tracing a run cannot change
  /// its schedule.
  [[nodiscard]] int compare(const SubtaskRef& a, const SubtaskRef& b,
                            TieRule* decided_by) const {
    return compare_impl<true>(a, b, decided_by);
  }

  /// Paper's T_a ⪯ T_b: "priority of a is at least that of b".
  [[nodiscard]] bool at_least(const SubtaskRef& a, const SubtaskRef& b) const {
    return compare(a, b) <= 0;
  }
  /// Paper's T_a ≺ T_b (strictly higher priority).
  [[nodiscard]] bool strictly_higher(const SubtaskRef& a,
                                     const SubtaskRef& b) const {
    return compare(a, b) < 0;
  }

  /// Deterministic strict total order: policy rules, remaining ties by
  /// (task, seq).  Suitable as a sort comparator.
  [[nodiscard]] bool higher(const SubtaskRef& a, const SubtaskRef& b) const {
    const int c = compare(a, b);
    if (c != 0) return c < 0;
    return a < b;
  }

 private:
  template <bool kExplain>
  [[nodiscard]] int compare_impl(const SubtaskRef& a, const SubtaskRef& b,
                                 TieRule* decided_by) const;

  [[nodiscard]] int compare_pf_bits(const SubtaskRef& a,
                                    const SubtaskRef& b) const;

  const TaskSystem* sys_;
  Policy policy_;
};

}  // namespace pfair
