// The quantum-length unit of Pfair scheduling (Sec. 2).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace pfair {

/// Identifies a subtask inside a TaskSystem: task index + position in that
/// task's materialized subtask sequence.  `seq` (not the Pfair index `i`)
/// is used so that GIS systems with absent subtasks still have dense,
/// O(1)-indexable sequences; `seq - 1` is always the predecessor.
struct SubtaskRef {
  std::int32_t task = -1;
  std::int32_t seq = -1;

  [[nodiscard]] bool valid() const { return task >= 0 && seq >= 0; }

  friend bool operator==(const SubtaskRef&, const SubtaskRef&) = default;
  friend auto operator<=>(const SubtaskRef&, const SubtaskRef&) = default;
};

std::ostream& operator<<(std::ostream& os, const SubtaskRef& ref);

/// Fully-resolved timing parameters of one subtask T_i.  All times are slot
/// indices (integers), per the paper: the task model — and hence releases,
/// eligibility times and deadlines — is the same under SFQ and DVQ.
struct Subtask {
  std::int64_t index = 1;     ///< Pfair index i >= 1 (may skip under GIS)
  std::int64_t theta = 0;     ///< IS offset, Eq. (3)-(5)
  std::int64_t release = 0;   ///< r(T_i), Eq. (3)
  std::int64_t deadline = 1;  ///< d(T_i), Eq. (4)
  std::int64_t eligible = 0;  ///< e(T_i), Eq. (6); e <= r
  bool bbit = false;          ///< PD2 b-bit
  std::int64_t group_deadline = 0;  ///< absolute PD2 group deadline; 0=light

  /// PF-window [r, d) length.
  [[nodiscard]] std::int64_t window_length() const {
    return deadline - release;
  }
};

}  // namespace pfair
