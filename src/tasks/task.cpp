#include "tasks/task.hpp"

#include <ostream>
#include <utility>

#include "tasks/group_deadline.hpp"
#include "tasks/windows.hpp"

namespace pfair {

std::ostream& operator<<(std::ostream& os, const SubtaskRef& ref) {
  return os << "(task " << ref.task << ", seq " << ref.seq << ")";
}

const char* to_string(TaskKind k) {
  switch (k) {
    case TaskKind::kPeriodic:
      return "periodic";
    case TaskKind::kSporadic:
      return "sporadic";
    case TaskKind::kIntraSporadic:
      return "intra-sporadic";
    case TaskKind::kGeneralizedIS:
      return "generalized-IS";
  }
  return "?";
}

namespace {

/// Fills the derived fields of a subtask from (weight, index, theta).
Subtask make_subtask(const Weight& w, std::int64_t index, std::int64_t theta,
                     std::int64_t eligible_or_minus1) {
  Subtask s;
  s.index = index;
  s.theta = theta;
  s.release = theta + pseudo_release(w, index);
  s.deadline = theta + pseudo_deadline(w, index);
  s.eligible = eligible_or_minus1 < 0 ? s.release : eligible_or_minus1;
  s.bbit = b_bit(w, index);
  const std::int64_t gd = group_deadline(w, index);
  s.group_deadline = gd == 0 ? 0 : theta + gd;
  return s;
}

}  // namespace

Task::Task(std::string name, Weight w, TaskKind kind,
           std::vector<Subtask> subtasks)
    : name_(std::move(name)),
      weight_(w),
      kind_(kind),
      subtasks_(std::move(subtasks)) {
  validate();
}

Task::Task(std::string name, Weight w, TaskKind kind, std::int64_t phase,
           std::int64_t count, std::shared_ptr<const WindowTable> table,
           bool early_release)
    : name_(std::move(name)),
      weight_(w),
      kind_(kind),
      table_(std::move(table)),
      phase_(phase),
      count_(count),
      early_release_(early_release) {
  PFAIR_ASSERT(table_ != nullptr && count_ >= 0 && phase_ >= 0);
}

Subtask Task::synthesize(std::int64_t seq) const {
  const WindowTable& t = *table_;
  const std::int64_t e = t.e();
  const std::int64_t q = seq / e;
  const std::int64_t rem = seq % e;  // subtask index q*e + rem + 1
  const std::int64_t shift = phase_ + q * t.p();
  Subtask s;
  s.index = seq + 1;
  s.theta = phase_;
  s.release = shift + t.release_at(rem);
  s.deadline = shift + t.deadline_at(rem);
  s.bbit = t.bbit_at(rem);
  s.group_deadline = t.heavy() ? shift + t.group_deadline_at(rem) : 0;
  // Early release: every subtask of job j (delimited by the *raw* (e, p)
  // pair) is eligible at the job's release theta + (j-1)p.
  s.eligible = early_release_
                   ? phase_ + (seq / weight_.e) * weight_.p
                   : s.release;
  return s;
}

std::int64_t Task::eligible_at(std::int64_t seq) const {
  PFAIR_REQUIRE(seq >= 0 && seq < num_subtasks(),
                "subtask seq " << seq << " out of range for task " << name_);
  if (table_ == nullptr) {
    return subtasks_[static_cast<std::size_t>(seq)].eligible;
  }
  if (early_release_) return phase_ + (seq / weight_.e) * weight_.p;
  const WindowTable& t = *table_;
  return phase_ + (seq / t.e()) * t.p() + t.release_at(seq % t.e());
}

void Task::validate() const {
  const Subtask* prev = nullptr;
  for (const Subtask& s : subtasks_) {
    PFAIR_REQUIRE(s.index >= 1, "task " << name_ << ": subtask index < 1");
    PFAIR_REQUIRE(s.eligible <= s.release,
                  "task " << name_ << ", subtask " << s.index
                          << ": e > r violates Eq. (6)");
    if (prev != nullptr) {
      PFAIR_REQUIRE(s.index > prev->index,
                    "task " << name_ << ": subtask indices not increasing");
      PFAIR_REQUIRE(s.theta >= prev->theta,
                    "task " << name_ << ", subtask " << s.index
                            << ": offsets decrease, violates Eq. (5)");
      PFAIR_REQUIRE(prev->eligible <= s.eligible,
                    "task " << name_ << ", subtask " << s.index
                            << ": eligibility times decrease, violates"
                               " Eq. (6)");
      // GIS release rule (Sec. 2): r(T_k) - r(T_i) >= floor((k-1)/wt) -
      // floor((i-1)/wt).  With r = theta + floor(.) this is exactly the
      // offset condition already checked; we assert the composite form too
      // as a belt-and-braces invariant.
      const std::int64_t min_gap = pseudo_release(weight_, s.index) -
                                   pseudo_release(weight_, prev->index);
      PFAIR_ASSERT_MSG(s.release - prev->release >= min_gap,
                       "task " << name_ << ": GIS release rule violated at"
                               << " subtask " << s.index);
    }
    prev = &s;
  }
}

Task Task::periodic(std::string name, Weight w, std::int64_t horizon,
                    WindowTableCache* cache) {
  return periodic_phased(std::move(name), w, 0, horizon, cache);
}

Task Task::periodic_phased(std::string name, Weight w, std::int64_t phase,
                           std::int64_t horizon, WindowTableCache* cache) {
  PFAIR_REQUIRE(phase >= 0, "phase must be >= 0");
  PFAIR_REQUIRE(horizon >= phase, "horizon must cover the phase");
  const std::int64_t n = subtasks_before(w, horizon - phase);
  auto table =
      (cache != nullptr ? *cache : WindowTableCache::global()).get(w);
  return Task(std::move(name), w,
              phase == 0 ? TaskKind::kPeriodic : TaskKind::kSporadic, phase,
              n, std::move(table), /*early_release=*/false);
}

Task Task::periodic_phased_eager(std::string name, Weight w,
                                 std::int64_t phase, std::int64_t horizon) {
  PFAIR_REQUIRE(phase >= 0, "phase must be >= 0");
  PFAIR_REQUIRE(horizon >= phase, "horizon must cover the phase");
  const std::int64_t n = subtasks_before(w, horizon - phase);
  std::vector<Subtask> subs;
  subs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 1; i <= n; ++i) {
    subs.push_back(make_subtask(w, i, phase, -1));
  }
  return Task(std::move(name), w,
              phase == 0 ? TaskKind::kPeriodic : TaskKind::kSporadic,
              std::move(subs));
}

Task Task::intra_sporadic(std::string name, Weight w,
                          const std::vector<std::int64_t>& offsets,
                          std::int64_t count) {
  PFAIR_REQUIRE(count >= 0, "count must be >= 0");
  std::vector<Subtask> subs;
  subs.reserve(static_cast<std::size_t>(count));
  std::int64_t theta = 0;
  for (std::int64_t i = 1; i <= count; ++i) {
    const auto oi = static_cast<std::size_t>(i - 1);
    if (oi < offsets.size()) theta = offsets[oi];
    subs.push_back(make_subtask(w, i, theta, -1));
  }
  return Task(std::move(name), w, TaskKind::kIntraSporadic, std::move(subs));
}

Task Task::gis(std::string name, Weight w,
               const std::vector<SubtaskSpec>& specs) {
  std::vector<Subtask> subs;
  subs.reserve(specs.size());
  for (const SubtaskSpec& sp : specs) {
    subs.push_back(make_subtask(w, sp.index, sp.theta, sp.eligible));
  }
  return Task(std::move(name), w, TaskKind::kGeneralizedIS, std::move(subs));
}

Task Task::with_early_release() const {
  if (table_ != nullptr) {
    return Task(name_, weight_, kind_, phase_, count_, table_,
                /*early_release=*/true);
  }
  std::vector<Subtask> subs = subtasks_;
  for (Subtask& s : subs) {
    // Job number j of subtask index i: j = ceil(i / e).
    const std::int64_t job = (s.index + weight_.e - 1) / weight_.e;
    const std::int64_t job_release = s.theta + (job - 1) * weight_.p;
    PFAIR_ASSERT(job_release <= s.release);
    s.eligible = job_release;
  }
  return Task(name_, weight_, kind_, std::move(subs));
}

std::int64_t Task::max_deadline() const {
  const std::int64_t n = num_subtasks();
  if (n == 0) return 0;
  if (table_ != nullptr) {
    // Deadlines are strictly increasing in the index (Eq. (2)).
    return synthesize(n - 1).deadline;
  }
  std::int64_t m = 0;
  for (const Subtask& s : subtasks_) m = std::max(m, s.deadline);
  return m;
}

}  // namespace pfair
