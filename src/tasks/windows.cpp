#include "tasks/windows.hpp"

#include "tasks/window_table.hpp"

namespace pfair {

// Thin wrappers: the arithmetic lives in winarith (tasks/window_table.hpp),
// the one implementation of Eqs. (2)-(4).

std::int64_t pseudo_release(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  return winarith::release(w.e, w.p, i);
}

std::int64_t pseudo_deadline(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  return winarith::deadline(w.e, w.p, i);
}

std::int64_t window_length(const Weight& w, std::int64_t i) {
  return pseudo_deadline(w, i) - pseudo_release(w, i);
}

bool b_bit(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  return winarith::bbit(w.e, w.p, i);
}

std::int64_t subtasks_before(const Weight& w, std::int64_t horizon) {
  PFAIR_REQUIRE(horizon >= 0, "horizon must be >= 0");
  if (horizon == 0) return 0;
  // r(T_i) < horizon  <=>  floor((i-1)p/e) < horizon  <=>  (i-1)p <=
  // horizon*e - 1, so the largest such i is floor((horizon*e - 1)/p) + 1.
  // horizon*e overflows int64 for horizons past ~2^63/e, so the remainder
  // test runs in 128 bits like the floor_div_mul it pairs with.
  return floor_div_mul(horizon, w.e, w.p) +
         ((static_cast<__int128>(horizon) * w.e) % w.p != 0 ? 1 : 0);
}

}  // namespace pfair
