#include "tasks/windows.hpp"

namespace pfair {

std::int64_t pseudo_release(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  return floor_div_mul(i - 1, w.p, w.e);
}

std::int64_t pseudo_deadline(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  return ceil_div_mul(i, w.p, w.e);
}

std::int64_t window_length(const Weight& w, std::int64_t i) {
  return pseudo_deadline(w, i) - pseudo_release(w, i);
}

bool b_bit(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  // d(T_i) > r(T_{i+1})  <=>  ceil(i*p/e) > floor(i*p/e)  <=>  e does not
  // divide i*p.
  const __int128 prod = static_cast<__int128>(i) * w.p;
  return prod % w.e != 0;
}

std::int64_t subtasks_before(const Weight& w, std::int64_t horizon) {
  PFAIR_REQUIRE(horizon >= 0, "horizon must be >= 0");
  if (horizon == 0) return 0;
  // r(T_i) < horizon  <=>  floor((i-1)p/e) < horizon  <=>  (i-1)p <=
  // horizon*e - 1, so the largest such i is floor((horizon*e - 1)/p) + 1.
  return floor_div_mul(horizon, w.e, w.p) +
         ((horizon * w.e) % w.p != 0 ? 1 : 0);
}

}  // namespace pfair
