#include "tasks/task_system.hpp"

#include <set>
#include <sstream>
#include <utility>

namespace pfair {

TaskSystem::TaskSystem(std::vector<Task> tasks, int processors)
    : tasks_(std::move(tasks)), processors_(processors) {
  PFAIR_REQUIRE(processors_ >= 1, "need at least one processor");
  PFAIR_REQUIRE(
      tasks_.size() <= static_cast<std::size_t>(INT32_MAX),
      "too many tasks");
  subtask_offsets_.reserve(tasks_.size() + 1);
  subtask_offsets_.push_back(0);
  for (const Task& t : tasks_) {
    subtask_offsets_.push_back(subtask_offsets_.back() + t.num_subtasks());
  }
}

Rational TaskSystem::total_utilization() const {
  Rational sum;
  for (const Task& t : tasks_) sum += t.weight().value();
  return sum;
}

bool TaskSystem::feasible() const {
  return total_utilization() <= Rational(processors_);
}

std::int64_t TaskSystem::max_deadline() const {
  std::int64_t m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.max_deadline());
  return m;
}

TaskSystem TaskSystem::with_early_release() const {
  std::vector<Task> er;
  er.reserve(tasks_.size());
  for (const Task& t : tasks_) er.push_back(t.with_early_release());
  return TaskSystem(std::move(er), processors_);
}

std::size_t TaskSystem::subtask_memory_bytes() const {
  std::size_t bytes = 0;
  std::set<const WindowTable*> tables;
  for (const Task& t : tasks_) {
    bytes += t.subtask_memory_bytes();
    if (const WindowTable* w = t.window_table()) tables.insert(w);
  }
  for (const WindowTable* w : tables) bytes += w->memory_bytes();
  return bytes;
}

std::string TaskSystem::summary() const {
  std::ostringstream os;
  os << num_tasks() << " tasks, M=" << processors_
     << ", util=" << total_utilization().str() << " ("
     << total_utilization().to_double() << "), " << total_subtasks()
     << " subtasks, max deadline " << max_deadline();
  return os.str();
}

}  // namespace pfair
