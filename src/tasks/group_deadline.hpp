// PD2 group deadlines.
//
// For a *heavy* task (wt >= 1/2), scheduling subtask T_j in the last slot
// of its length-2 window forces T_{j+1} into the last slot of *its* window
// whenever the two windows overlap (b(T_j) = 1); this cascade continues
// until it reaches either a subtask with b = 0 (no overlap) or a successor
// window of length 3 (one slot of slack).  The *group deadline* D(T_i) is
// the time at which the cascade starting at T_i must have ended:
//
//   D(T_i) = theta(T_i) + d(T_j)   for the smallest j >= i such that
//            b(T_j) = 0  or  |w(T_{j+1})| = 3,
//
// with windows taken on the as-early-as-possible (periodic) continuation of
// the task from T_i, as in the IS/GIS literature.  For light tasks
// (wt < 1/2), D(T_i) = 0: light windows always leave slack, so no cascade
// forms and PD2 treats all light ties alike.
//
// PD2 breaks deadline+b-bit ties in favor of the *larger* group deadline
// (the longer cascade is the more urgent one).
#pragma once

#include <cstdint>

#include "tasks/weight.hpp"

namespace pfair {

/// Group deadline of subtask index `i` of a zero-offset task.  Returns 0
/// for light tasks.  For heavy tasks the cascade scan provably terminates
/// within one period (and is asserted to).
[[nodiscard]] std::int64_t group_deadline(const Weight& w, std::int64_t i);

}  // namespace pfair
