#include "tasks/window_table.hpp"

#include <numeric>

#include "core/assert.hpp"

namespace pfair {

std::shared_ptr<const WindowTable> WindowTable::build(const Weight& w) {
  const std::int64_t g = std::gcd(w.e, w.p);
  const std::int64_t e = w.e / g;
  const std::int64_t p = w.p / g;

  auto t = std::shared_ptr<WindowTable>(new WindowTable());
  t->e_ = e;
  t->p_ = p;
  t->heavy_ = w.heavy();
  const auto n = static_cast<std::size_t>(e);
  t->release_.resize(n);
  t->deadline_.resize(n);
  t->bbit_.resize(n);
  for (std::int64_t rem = 0; rem < e; ++rem) {
    const std::int64_t i = rem + 1;
    const auto r = static_cast<std::size_t>(rem);
    t->release_[r] = winarith::release(e, p, i);
    t->deadline_[r] = winarith::deadline(e, p, i);
    t->bbit_[r] = winarith::bbit(e, p, i) ? 1 : 0;
  }

  if (t->heavy_) {
    // Backward pass for the PD2 group deadline: the cascade from index i
    // ends at the smallest j >= i with b(T_j) = 0 or |w(T_{j+1})| = 3, so
    //   D(T_i) = d(T_i)      if the cascade stops at i,
    //   D(T_i) = D(T_{i+1})  otherwise.
    // b(T_e) = 0 (e*p mod e = 0), so index e always stops and the
    // recurrence stays inside one period.
    t->group_deadline_.resize(n);
    PFAIR_ASSERT(t->bbit_[n - 1] == 0);
    for (std::int64_t rem = e - 1; rem >= 0; --rem) {
      const auto r = static_cast<std::size_t>(rem);
      const bool stops =
          t->bbit_[r] == 0 ||
          winarith::deadline(e, p, rem + 2) - winarith::release(e, p, rem + 2) >=
              3;
      t->group_deadline_[r] =
          stops ? t->deadline_[r] : t->group_deadline_[r + 1];
    }
  }
  return t;
}

std::size_t WindowTable::memory_bytes() const {
  return sizeof(WindowTable) +
         (release_.capacity() + deadline_.capacity() +
          group_deadline_.capacity()) *
             sizeof(std::int64_t) +
         bbit_.capacity() * sizeof(std::uint8_t);
}

WindowTableCache& WindowTableCache::global() {
  // Leaked singleton: tables may be referenced from static-duration task
  // objects, so the cache must never run a destructor racing teardown.
  static auto* cache = new WindowTableCache();
  return *cache;
}

std::shared_ptr<const WindowTable> WindowTableCache::get(const Weight& w) {
  const std::int64_t g = std::gcd(w.e, w.p);
  const std::int64_t e = w.e / g;
  const std::int64_t p = w.p / g;
  const Key key{e, p};
  Shard& shard = shards_[KeyHash{}(key) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.tables.find(key);
  if (it != shard.tables.end()) return it->second;
  auto table = WindowTable::build(Weight(e, p));
  shard.tables.emplace(key, table);
  return table;
}

std::size_t WindowTableCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.tables.size();
  }
  return n;
}

void WindowTableCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.tables.clear();
  }
}

}  // namespace pfair
