// Flyweight per-weight window tables — the single implementation of the
// Pfair window parameters, Eqs. (2)-(4) of the paper, plus the PD2 b-bit
// and group deadline.
//
// Every window parameter of a zero-offset task is exactly periodic in the
// subtask index with period e (reduced):
//
//   r(T_{i+e}) = r(T_i) + p      (Eq. (2) left)
//   d(T_{i+e}) = d(T_i) + p      (Eq. (2) right)
//   b(T_{i+e}) = b(T_i)
//   D(T_{i+e}) = D(T_i) + p      (group deadline)
//
// so one immutable table of e entries determines every subtask of every
// periodic/sporadic task sharing that weight — the flyweight analogue of
// precomputed release tables in real RTOS schedulers.  All parameters
// depend only on the *reduced* rate e/p (the quotients i*p/e are
// representation-independent), so tables are built and cached once per
// distinct rate: a 2/4 task and a 1/2 task share one table.  (Job
// boundaries — early-release eligibility — do depend on the raw (e, p)
// pair and are computed by `Task`, not here.)
//
// Group deadlines are filled by a single O(e) backward pass over the
// period instead of the O(e) forward cascade scan per index: the cascade
// from index i ends at the smallest j >= i with b(T_j) = 0 or
// |w(T_{j+1})| = 3, so D(T_i) = d(T_i) if the cascade stops at i and
// D(T_i) = D(T_{i+1}) otherwise.  b(T_e) = 0 always (e*p mod e = 0), so
// no cascade crosses a period boundary and the recurrence never wraps.
//
// `WindowTableCache` shares tables process-wide: thread-safe (sharded
// mutexes — bench sweeps build thousands of task systems on the thread
// pool, all drawing from a small weight universe), keyed by reduced
// weight, each table built exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/rational.hpp"
#include "tasks/weight.hpp"

namespace pfair {

/// Raw window arithmetic on an (e, p) pair — the one place Eqs. (2)-(4)
/// are spelled out.  `tasks/windows.hpp` and the table builder below are
/// thin wrappers.  All intermediates are 128-bit, so any (index, e, p)
/// whose result fits in 64 bits is exact.
namespace winarith {

/// r(T_i) = floor((i-1) * p / e), Eq. (2) left (zero offset).
[[nodiscard]] inline std::int64_t release(std::int64_t e, std::int64_t p,
                                          std::int64_t i) {
  return floor_div_mul(i - 1, p, e);
}

/// d(T_i) = ceil(i * p / e), Eq. (2) right (zero offset).
[[nodiscard]] inline std::int64_t deadline(std::int64_t e, std::int64_t p,
                                           std::int64_t i) {
  return ceil_div_mul(i, p, e);
}

/// b(T_i) = 1 iff d(T_i) > r(T_{i+1}) iff e does not divide i*p.
[[nodiscard]] inline bool bbit(std::int64_t e, std::int64_t p,
                               std::int64_t i) {
  return (static_cast<__int128>(i) * p) % e != 0;
}

}  // namespace winarith

/// One period of window parameters for a reduced weight.  Immutable after
/// construction; shared across tasks via `shared_ptr<const WindowTable>`.
/// Entry slot `rem` in [0, e) holds the parameters of subtask index
/// `rem + 1`; an arbitrary index i >= 1 decomposes as
/// i = q*e + (rem + 1), and every time parameter shifts by q*p.
class WindowTable {
 public:
  /// Builds the table for the reduced form of `w` (O(e reduced) time and
  /// memory).  Prefer `WindowTableCache::get` for shared construction.
  [[nodiscard]] static std::shared_ptr<const WindowTable> build(
      const Weight& w);

  /// Reduced numerator (the table period).
  [[nodiscard]] std::int64_t e() const { return e_; }
  /// Reduced denominator.
  [[nodiscard]] std::int64_t p() const { return p_; }
  [[nodiscard]] bool heavy() const { return heavy_; }

  /// r(T_i) of a zero-offset task, any i >= 1.
  [[nodiscard]] std::int64_t release(std::int64_t i) const {
    const std::int64_t q = (i - 1) / e_;
    return q * p_ + release_[static_cast<std::size_t>((i - 1) % e_)];
  }
  /// d(T_i) of a zero-offset task, any i >= 1.
  [[nodiscard]] std::int64_t deadline(std::int64_t i) const {
    const std::int64_t q = (i - 1) / e_;
    return q * p_ + deadline_[static_cast<std::size_t>((i - 1) % e_)];
  }
  /// b(T_i), any i >= 1.
  [[nodiscard]] bool bbit(std::int64_t i) const {
    return bbit_[static_cast<std::size_t>((i - 1) % e_)] != 0;
  }
  /// D(T_i) of a zero-offset task, any i >= 1; 0 for light weights.
  [[nodiscard]] std::int64_t group_deadline(std::int64_t i) const {
    if (!heavy_) return 0;
    const std::int64_t q = (i - 1) / e_;
    return q * p_ + group_deadline_[static_cast<std::size_t>((i - 1) % e_)];
  }

  /// Per-period entries for callers that walk indices sequentially (the
  /// packed-key precompute): parameters of index rem+1, rem in [0, e).
  [[nodiscard]] std::int64_t release_at(std::int64_t rem) const {
    return release_[static_cast<std::size_t>(rem)];
  }
  [[nodiscard]] std::int64_t deadline_at(std::int64_t rem) const {
    return deadline_[static_cast<std::size_t>(rem)];
  }
  [[nodiscard]] bool bbit_at(std::int64_t rem) const {
    return bbit_[static_cast<std::size_t>(rem)] != 0;
  }
  /// Group deadline entry (meaningful for heavy weights only).
  [[nodiscard]] std::int64_t group_deadline_at(std::int64_t rem) const {
    return group_deadline_[static_cast<std::size_t>(rem)];
  }

  /// Heap bytes held by the table (for memory accounting in benches).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  WindowTable() = default;

  std::int64_t e_ = 1;
  std::int64_t p_ = 1;
  bool heavy_ = false;
  std::vector<std::int64_t> release_;         // [e]
  std::vector<std::int64_t> deadline_;        // [e]
  std::vector<std::int64_t> group_deadline_;  // [e]; empty for light
  std::vector<std::uint8_t> bbit_;            // [e]
};

/// Process-wide, thread-safe, sharded cache of window tables keyed by
/// reduced weight.  `get` builds a missing table under its shard lock;
/// every later request for the same rate returns the shared instance.
class WindowTableCache {
 public:
  WindowTableCache() = default;
  WindowTableCache(const WindowTableCache&) = delete;
  WindowTableCache& operator=(const WindowTableCache&) = delete;

  /// The process-wide cache used when no explicit cache is supplied.
  [[nodiscard]] static WindowTableCache& global();

  /// The table for `w`'s reduced rate, building it on first use.
  [[nodiscard]] std::shared_ptr<const WindowTable> get(const Weight& w);

  /// Number of distinct tables currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops all cached tables (tables still referenced by tasks live on).
  void clear();

 private:
  static constexpr std::size_t kShards = 16;

  /// Reduced (e, p) — coprime with e <= p, so it identifies the rate.
  struct Key {
    std::int64_t e;
    std::int64_t p;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const {
      // splitmix-style mix of both halves; shard selection reuses it.
      std::uint64_t h = static_cast<std::uint64_t>(k.e) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::uint64_t>(k.p) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const WindowTable>, KeyHash>
        tables;
  };

  Shard shards_[kShards];
};

}  // namespace pfair
