// Task weight wt(T) = T.e / T.p, Sec. 2 of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "core/assert.hpp"
#include "core/rational.hpp"

namespace pfair {

/// The rate parameter of a Pfair task: `e` quanta of execution every `p`
/// slots, with 0 < e <= p.  Kept as the raw (e, p) pair rather than a
/// reduced Rational because window formulas (Eqs. (2)-(4)) are stated in
/// terms of e and p; `value()` gives the reduced rational weight.
struct Weight {
  std::int64_t e = 1;  ///< per-"job" execution cost, in quanta
  std::int64_t p = 1;  ///< period, in slots

  Weight() = default;
  Weight(std::int64_t exec, std::int64_t period) : e(exec), p(period) {
    PFAIR_REQUIRE(e >= 1 && p >= 1 && e <= p,
                  "weight must satisfy 1 <= e <= p, got e=" << e
                                                            << " p=" << p);
  }

  [[nodiscard]] Rational value() const { return Rational(e, p); }

  /// Heavy tasks (wt >= 1/2) have nontrivial group deadlines under PD2.
  [[nodiscard]] bool heavy() const { return 2 * e >= p; }
  [[nodiscard]] bool light() const { return !heavy(); }
  /// Full-rate task (wt == 1) occupies every slot.
  [[nodiscard]] bool unit() const { return e == p; }

  [[nodiscard]] std::string str() const {
    return std::to_string(e) + "/" + std::to_string(p);
  }

  friend bool operator==(const Weight& a, const Weight& b) {
    // Equality of *rates*, not of representations: 1/2 == 2/4.
    return a.value() == b.value();
  }
};

}  // namespace pfair
