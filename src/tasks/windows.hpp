// Pfair window arithmetic — Eqs. (2)-(4) and the b-bit.
//
// For a task with weight wt = e/p and subtask index i >= 1 (offset theta):
//   r(T_i) = theta + floor((i-1) / wt) = theta + floor((i-1) * p / e)
//   d(T_i) = theta + ceil(i / wt)      = theta + ceil(i * p / e)
// computed in exact integer arithmetic with 128-bit intermediates.
#pragma once

#include <cstdint>

#include "tasks/weight.hpp"

namespace pfair {

/// Pseudo-release of subtask index `i` of a zero-offset task (Eq. (2) left).
[[nodiscard]] std::int64_t pseudo_release(const Weight& w, std::int64_t i);

/// Pseudo-deadline of subtask index `i` of a zero-offset task (Eq. (2)
/// right).
[[nodiscard]] std::int64_t pseudo_deadline(const Weight& w, std::int64_t i);

/// Window length |w(T_i)| = d(T_i) - r(T_i).
[[nodiscard]] std::int64_t window_length(const Weight& w, std::int64_t i);

/// The PD2 b-bit: b(T_i) = 1 iff the window of T_i overlaps the window of
/// T_{i+1} when both are released as early as possible, i.e. iff
/// d(T_i) > r(T_{i+1}), i.e. iff i*p is not a multiple of e.
[[nodiscard]] bool b_bit(const Weight& w, std::int64_t i);

/// Number of subtasks whose earliest-possible release is < `horizon` slots;
/// i.e. how many subtasks a periodic task materializes over [0, horizon).
[[nodiscard]] std::int64_t subtasks_before(const Weight& w,
                                           std::int64_t horizon);

}  // namespace pfair
