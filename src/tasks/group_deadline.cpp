#include "tasks/group_deadline.hpp"

#include "tasks/window_table.hpp"

namespace pfair {

std::int64_t group_deadline(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  // One table lookup: the cascade recurrence is solved once per distinct
  // rate by WindowTable's O(e) backward pass, then every index is O(1).
  // Repeated queries for one weight (materializing an IS/GIS task, the
  // PD2 comparators) hit the shared cache instead of rescanning the
  // cascade per index (previously O(e) per call, O(e^2) per period).
  return WindowTableCache::global().get(w)->group_deadline(i);
}

}  // namespace pfair
