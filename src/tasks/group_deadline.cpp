#include "tasks/group_deadline.hpp"

#include "tasks/windows.hpp"

namespace pfair {

std::int64_t group_deadline(const Weight& w, std::int64_t i) {
  PFAIR_REQUIRE(i >= 1, "subtask index must be >= 1, got " << i);
  if (w.light()) return 0;
  if (w.unit()) {
    // wt = 1: every window is a single slot, b = 0 everywhere; the cascade
    // is the window itself.
    return pseudo_deadline(w, i);
  }
  // Scan the cascade.  Within any window of e consecutive indices the
  // pattern of (b-bit, window length) repeats with period e (both depend
  // only on i*p mod e), and a heavy non-unit task has at least one index
  // per period with b = 0 or a following length-3 window, so the scan ends
  // within i + e steps; we assert a generous bound.
  const std::int64_t limit = i + 2 * w.e + 2;
  for (std::int64_t j = i; j <= limit; ++j) {
    if (!b_bit(w, j)) return pseudo_deadline(w, j);
    if (window_length(w, j + 1) >= 3) return pseudo_deadline(w, j);
  }
  PFAIR_ASSERT_MSG(false, "group deadline cascade did not terminate for wt="
                              << w.str() << " i=" << i);
  return 0;  // unreachable
}

}  // namespace pfair
