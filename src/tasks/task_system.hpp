// A set of tasks plus the processor count — the unit of every experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rational.hpp"
#include "tasks/task.hpp"

namespace pfair {

/// Value-semantic container for a task set to be scheduled on `processors`
/// identical processors.
class TaskSystem {
 public:
  TaskSystem(std::vector<Task> tasks, int processors);

  [[nodiscard]] int processors() const { return processors_; }
  [[nodiscard]] std::int64_t num_tasks() const {
    return static_cast<std::int64_t>(tasks_.size());
  }
  [[nodiscard]] const Task& task(std::int64_t idx) const {
    PFAIR_REQUIRE(idx >= 0 && idx < num_tasks(),
                  "task index " << idx << " out of range");
    return tasks_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// The referenced subtask, by value: flyweight tasks synthesize it in
  /// O(1) (see tasks/window_table.hpp); binds to `const Subtask&` at call
  /// sites as before.
  [[nodiscard]] Subtask subtask(const SubtaskRef& ref) const {
    return task(ref.task).subtask_at(ref.seq);
  }

  /// Exact sum of task weights.
  [[nodiscard]] Rational total_utilization() const;

  /// Feasibility on `processors()` processors: sum(wt) <= M (Sec. 2).
  [[nodiscard]] bool feasible() const;

  /// Latest subtask deadline across all tasks.
  [[nodiscard]] std::int64_t max_deadline() const;

  /// Total number of materialized subtasks (precomputed; O(1)).
  [[nodiscard]] std::int64_t total_subtasks() const {
    return subtask_offsets_.back();
  }

  /// Position of task `idx`'s first subtask in the flat, task-major
  /// enumeration of all subtasks — the indexing scheme shared by every
  /// per-subtask side table (packed priority keys, schedules, exports).
  /// `subtask_offset(num_tasks()) == total_subtasks()`.
  [[nodiscard]] std::int64_t subtask_offset(std::int64_t idx) const {
    PFAIR_REQUIRE(idx >= 0 && idx <= num_tasks(),
                  "task index " << idx << " out of range");
    return subtask_offsets_[static_cast<std::size_t>(idx)];
  }

  /// Flat index of one subtask (see subtask_offset).
  [[nodiscard]] std::int64_t flat_index(const SubtaskRef& ref) const {
    return subtask_offset(ref.task) + ref.seq;
  }

  /// Applies the early-release transform to every task.
  [[nodiscard]] TaskSystem with_early_release() const;

  /// Heap bytes held for subtask storage across the system: materialized
  /// vectors plus each *distinct* window table once (tables are shared
  /// flyweights).  For memory accounting in benches and soak guards.
  [[nodiscard]] std::size_t subtask_memory_bytes() const;

  /// One-line summary for experiment logs.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Task> tasks_;
  std::vector<std::int64_t> subtask_offsets_;  // size num_tasks() + 1
  int processors_;
};

}  // namespace pfair
