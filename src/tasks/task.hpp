// Recurrent tasks: periodic, sporadic, intra-sporadic (IS) and generalized
// intra-sporadic (GIS) — Sec. 2 of the paper.
//
// A Task owns its weight plus the finite sequence of subtasks to be
// scheduled in an experiment.  Periodic/sporadic tasks are *flyweights*:
// they store only (weight, phase, count, shared window table) and
// synthesize Subtask values on demand in O(1) — construction is
// O(distinct weights) across a task system instead of O(horizon * util)
// (see tasks/window_table.hpp).  IS/GIS tasks, whose per-subtask offsets
// and eligibility times are irregular, keep a materialized vector behind
// the same accessors.  Builders enforce the model constraints by
// construction and by validation:
//   * Eq. (5): offsets nondecreasing in the subtask index;
//   * Eq. (6): eligibility times e(T_i) <= r(T_i), nondecreasing;
//   * GIS release rule: r(T_k) - r(T_i) >= floor((k-1)/wt) - floor((i-1)/wt)
//     for consecutive materialized subtasks T_i, T_k (automatic given (5)).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tasks/subtask.hpp"
#include "tasks/weight.hpp"
#include "tasks/window_table.hpp"

namespace pfair {

/// Which model produced the task (informational; the scheduler treats all
/// kinds uniformly through the subtask sequence).
enum class TaskKind { kPeriodic, kSporadic, kIntraSporadic, kGeneralizedIS };

[[nodiscard]] const char* to_string(TaskKind k);

/// One recurrent task and its subtask sequence (flyweight or
/// materialized; see the header comment).
class Task {
 public:
  /// Specification of one subtask for the GIS builder.
  struct SubtaskSpec {
    std::int64_t index;          ///< Pfair index i (>= 1, strictly increasing)
    std::int64_t theta = 0;      ///< offset (Eq. (5): nondecreasing)
    std::int64_t eligible = -1;  ///< e(T_i); -1 means "use r(T_i)"
  };

  /// A synchronous periodic task: subtasks 1..n released as early as
  /// possible, where n covers releases in [0, horizon).  O(1) beyond the
  /// (cached) per-weight window table; `cache` defaults to the
  /// process-wide WindowTableCache.
  [[nodiscard]] static Task periodic(std::string name, Weight w,
                                     std::int64_t horizon,
                                     WindowTableCache* cache = nullptr);

  /// A periodic task whose first subtask is released at `phase` (all
  /// windows shifted right by `phase`); models asynchronous/sporadic
  /// arrival of the whole task.
  [[nodiscard]] static Task periodic_phased(std::string name, Weight w,
                                            std::int64_t phase,
                                            std::int64_t horizon,
                                            WindowTableCache* cache = nullptr);

  /// The pre-flyweight construction path: identical subtask sequence to
  /// `periodic_phased`, but eagerly materialized and re-validated.
  /// Retained as the equivalence oracle for tests and construction
  /// benchmarks — not for production use.
  [[nodiscard]] static Task periodic_phased_eager(std::string name, Weight w,
                                                  std::int64_t phase,
                                                  std::int64_t horizon);

  /// An IS task: subtasks 1..n with explicit per-subtask offsets
  /// (validated nondecreasing).  `offsets` may be shorter than the number
  /// of subtasks; the last offset persists.
  [[nodiscard]] static Task intra_sporadic(std::string name, Weight w,
                                           const std::vector<std::int64_t>& offsets,
                                           std::int64_t count);

  /// A GIS task from an explicit subtask list (indices may skip).
  [[nodiscard]] static Task gis(std::string name, Weight w,
                                const std::vector<SubtaskSpec>& specs);

  /// Early-release transform (Anderson & Srinivasan [1]): every subtask of
  /// a job becomes eligible at the job's release, i.e. e(T_i) = theta(T_i)
  /// + (j-1)p for T_i in job j (indices (j-1)e+1 .. je).  Returns a copy
  /// (for flyweight tasks, a flag flip — jobs are delimited by the *raw*
  /// (e, p) pair, so eligibility stays O(1) arithmetic).
  [[nodiscard]] Task with_early_release() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Weight& weight() const { return weight_; }
  [[nodiscard]] TaskKind kind() const { return kind_; }

  [[nodiscard]] std::int64_t num_subtasks() const {
    return table_ != nullptr
               ? count_
               : static_cast<std::int64_t>(subtasks_.size());
  }

  /// The subtask at position `seq` in the dense sequence.  O(1): a table
  /// lookup plus a period offset for flyweight tasks, a vector read for
  /// materialized ones.  Returns by value; the synthesized Subtask is a
  /// few words and binds to `const Subtask&` at call sites.
  [[nodiscard]] Subtask subtask_at(std::int64_t seq) const {
    PFAIR_REQUIRE(seq >= 0 && seq < num_subtasks(),
                  "subtask seq " << seq << " out of range for task " << name_);
    return table_ != nullptr ? synthesize(seq)
                             : subtasks_[static_cast<std::size_t>(seq)];
  }
  /// Alias of `subtask_at` (the historical accessor name).
  [[nodiscard]] Subtask subtask(std::int64_t seq) const {
    return subtask_at(seq);
  }

  /// e(T) of the subtask at `seq` without synthesizing the full Subtask —
  /// the only field the simulators' uninstrumented hot paths read.
  [[nodiscard]] std::int64_t eligible_at(std::int64_t seq) const;

  /// True iff subtasks are synthesized from a shared window table.
  [[nodiscard]] bool flyweight() const { return table_ != nullptr; }
  /// The shared window table (null for materialized tasks).
  [[nodiscard]] const WindowTable* window_table() const {
    return table_.get();
  }
  /// Offset of every subtask of a flyweight task (theta; 0 if
  /// materialized — those carry per-subtask offsets instead).
  [[nodiscard]] std::int64_t phase() const { return phase_; }
  /// True iff the early-release transform is applied (flyweight path).
  [[nodiscard]] bool early_release() const { return early_release_; }

  /// Heap bytes held for subtask storage: the materialized vector, or the
  /// task's share of nothing at all (flyweight tasks hold one shared_ptr;
  /// count shared tables separately via window_table()).
  [[nodiscard]] std::size_t subtask_memory_bytes() const {
    return subtasks_.capacity() * sizeof(Subtask);
  }

  /// Latest deadline over the subtask sequence (0 if none).
  [[nodiscard]] std::int64_t max_deadline() const;

 private:
  Task(std::string name, Weight w, TaskKind kind,
       std::vector<Subtask> subtasks);
  Task(std::string name, Weight w, TaskKind kind, std::int64_t phase,
       std::int64_t count, std::shared_ptr<const WindowTable> table,
       bool early_release);

  /// Synthesizes subtask `seq` from the window table (flyweight path).
  [[nodiscard]] Subtask synthesize(std::int64_t seq) const;

  /// Enforces Eqs. (5), (6) and the GIS release rule; throws on violation.
  /// Materialized path only — flyweight sequences satisfy all three by
  /// construction (releases follow Eq. (2), which is monotone).
  void validate() const;

  std::string name_;
  Weight weight_;
  TaskKind kind_;
  std::vector<Subtask> subtasks_;  // materialized path; empty if flyweight

  // Flyweight path (periodic/sporadic): subtask seq >= 0 has index
  // seq + 1, offset phase_, and window parameters table ⊕ period shift.
  std::shared_ptr<const WindowTable> table_;
  std::int64_t phase_ = 0;
  std::int64_t count_ = 0;
  bool early_release_ = false;
};

}  // namespace pfair
