// Recurrent tasks: periodic, sporadic, intra-sporadic (IS) and generalized
// intra-sporadic (GIS) — Sec. 2 of the paper.
//
// A Task owns its weight plus the *materialized* finite sequence of
// subtasks to be scheduled in an experiment.  Builders enforce the model
// constraints by construction and by validation:
//   * Eq. (5): offsets nondecreasing in the subtask index;
//   * Eq. (6): eligibility times e(T_i) <= r(T_i), nondecreasing;
//   * GIS release rule: r(T_k) - r(T_i) >= floor((k-1)/wt) - floor((i-1)/wt)
//     for consecutive materialized subtasks T_i, T_k (automatic given (5)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tasks/subtask.hpp"
#include "tasks/weight.hpp"

namespace pfair {

/// Which model produced the task (informational; the scheduler treats all
/// kinds uniformly through the subtask sequence).
enum class TaskKind { kPeriodic, kSporadic, kIntraSporadic, kGeneralizedIS };

[[nodiscard]] const char* to_string(TaskKind k);

/// One recurrent task and its materialized subtask sequence.
class Task {
 public:
  /// Specification of one subtask for the GIS builder.
  struct SubtaskSpec {
    std::int64_t index;          ///< Pfair index i (>= 1, strictly increasing)
    std::int64_t theta = 0;      ///< offset (Eq. (5): nondecreasing)
    std::int64_t eligible = -1;  ///< e(T_i); -1 means "use r(T_i)"
  };

  /// A synchronous periodic task: subtasks 1..n released as early as
  /// possible, where n covers releases in [0, horizon).
  [[nodiscard]] static Task periodic(std::string name, Weight w,
                                     std::int64_t horizon);

  /// A periodic task whose first subtask is released at `phase` (all
  /// windows shifted right by `phase`); models asynchronous/sporadic
  /// arrival of the whole task.
  [[nodiscard]] static Task periodic_phased(std::string name, Weight w,
                                            std::int64_t phase,
                                            std::int64_t horizon);

  /// An IS task: subtasks 1..n with explicit per-subtask offsets
  /// (validated nondecreasing).  `offsets` may be shorter than the number
  /// of subtasks; the last offset persists.
  [[nodiscard]] static Task intra_sporadic(std::string name, Weight w,
                                           const std::vector<std::int64_t>& offsets,
                                           std::int64_t count);

  /// A GIS task from an explicit subtask list (indices may skip).
  [[nodiscard]] static Task gis(std::string name, Weight w,
                                const std::vector<SubtaskSpec>& specs);

  /// Early-release transform (Anderson & Srinivasan [1]): every subtask of
  /// a job becomes eligible at the job's release, i.e. e(T_i) = theta(T_i)
  /// + (j-1)p for T_i in job j (indices (j-1)e+1 .. je).  Returns a copy.
  [[nodiscard]] Task with_early_release() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Weight& weight() const { return weight_; }
  [[nodiscard]] TaskKind kind() const { return kind_; }

  [[nodiscard]] std::int64_t num_subtasks() const {
    return static_cast<std::int64_t>(subtasks_.size());
  }
  [[nodiscard]] const Subtask& subtask(std::int64_t seq) const {
    PFAIR_REQUIRE(seq >= 0 && seq < num_subtasks(),
                  "subtask seq " << seq << " out of range for task " << name_);
    return subtasks_[static_cast<std::size_t>(seq)];
  }
  [[nodiscard]] const std::vector<Subtask>& subtasks() const {
    return subtasks_;
  }

  /// Latest deadline over materialized subtasks (0 if none).
  [[nodiscard]] std::int64_t max_deadline() const;

 private:
  Task(std::string name, Weight w, TaskKind kind,
       std::vector<Subtask> subtasks);

  /// Enforces Eqs. (5), (6) and the GIS release rule; throws on violation.
  void validate() const;

  std::string name_;
  Weight weight_;
  TaskKind kind_;
  std::vector<Subtask> subtasks_;
};

}  // namespace pfair
