#include "analysis/validity.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "dvq/dvq_cycle.hpp"
#include "sched/compressed_schedule.hpp"

namespace pfair {

const char* to_string(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::kUnscheduled:
      return "unscheduled";
    case Violation::Kind::kBeforeEligible:
      return "before-eligible";
    case Violation::Kind::kDeadlineMiss:
      return "deadline-miss";
    case Violation::Kind::kIntraTaskParallel:
      return "intra-task-parallelism";
    case Violation::Kind::kOverloadedSlot:
      return "overloaded-slot";
    case Violation::Kind::kPrecedence:
      return "precedence";
    case Violation::Kind::kLagBound:
      return "lag-bound";
  }
  return "?";
}

std::string ValidityReport::str(std::size_t max_items) const {
  if (valid()) return "valid";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (std::size_t i = 0; i < violations.size() && i < max_items; ++i) {
    const Violation& v = violations[i];
    os << "\n  [" << to_string(v.kind) << "] " << v.ref << ": " << v.detail;
  }
  if (violations.size() > max_items) os << "\n  ...";
  return os.str();
}

namespace {

void add(ValidityReport& rep, Violation::Kind kind, SubtaskRef ref,
         const std::string& detail) {
  rep.violations.push_back(Violation{kind, ref, detail});
}

// Both checkers read schedules only through placement() — templating
// over the schedule type lets cycle-compressed schedules run the
// identical checks with synthesized placements resolved on demand.
template <class Sched>
ValidityReport check_slot_impl(const TaskSystem& sys, const Sched& sched,
                               std::int64_t tardiness_allowance) {
  ValidityReport rep;
  std::map<std::int64_t, std::int64_t> slot_load;

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::int64_t prev_slot = -1;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const Subtask& sub = task.subtask(s);
      const SlotPlacement p = sched.placement(ref);
      if (!p.scheduled()) {
        add(rep, Violation::Kind::kUnscheduled, ref,
            "never placed (horizon reached?)");
        continue;
      }
      ++slot_load[p.slot];
      if (p.slot < sub.eligible) {
        std::ostringstream os;
        os << "slot " << p.slot << " < e = " << sub.eligible;
        add(rep, Violation::Kind::kBeforeEligible, ref, os.str());
      }
      // Completion in the SFQ model is slot + 1.
      if (p.slot + 1 > sub.deadline + tardiness_allowance) {
        std::ostringstream os;
        os << "completes at " << p.slot + 1 << " > d = " << sub.deadline
           << " + allowance " << tardiness_allowance;
        add(rep, Violation::Kind::kDeadlineMiss, ref, os.str());
      }
      if (s > 0 && p.slot <= prev_slot) {
        std::ostringstream os;
        if (p.slot == prev_slot) {
          os << "shares slot " << p.slot << " with its predecessor";
          add(rep, Violation::Kind::kIntraTaskParallel, ref, os.str());
        } else {
          os << "slot " << p.slot << " precedes predecessor slot "
             << prev_slot;
          add(rep, Violation::Kind::kPrecedence, ref, os.str());
        }
      }
      prev_slot = p.slot;
    }
  }

  for (const auto& [slot, load] : slot_load) {
    if (load > sys.processors()) {
      std::ostringstream os;
      os << "slot " << slot << " holds " << load << " subtasks on "
         << sys.processors() << " processors";
      add(rep, Violation::Kind::kOverloadedSlot, SubtaskRef{}, os.str());
    }
  }
  return rep;
}

template <class Sched>
ValidityReport check_dvq_impl(const TaskSystem& sys, const Sched& sched,
                              Time tardiness_allowance) {
  ValidityReport rep;

  // Per-processor occupancy for overlap checking.
  struct Busy {
    Time start, end;
    SubtaskRef ref;
  };
  std::vector<std::vector<Busy>> per_proc(
      static_cast<std::size_t>(sys.processors()));

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    Time prev_completion;
    bool has_prev = false;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const Subtask& sub = task.subtask(s);
      const DvqPlacement p = sched.placement(ref);
      if (!p.placed) {
        add(rep, Violation::Kind::kUnscheduled, ref,
            "never placed (horizon reached?)");
        continue;
      }
      if (p.start < Time::slots(sub.eligible)) {
        std::ostringstream os;
        os << "starts at " << p.start << " < e = " << sub.eligible;
        add(rep, Violation::Kind::kBeforeEligible, ref, os.str());
      }
      if (p.completion() > Time::slots(sub.deadline) + tardiness_allowance) {
        std::ostringstream os;
        os << "completes at " << p.completion() << " > d = " << sub.deadline
           << " + allowance " << tardiness_allowance;
        add(rep, Violation::Kind::kDeadlineMiss, ref, os.str());
      }
      if (has_prev && p.start < prev_completion) {
        std::ostringstream os;
        os << "starts at " << p.start << " before predecessor completes at "
           << prev_completion;
        // Overlapping execution of one task = illegal parallelism; a
        // non-overlapping but out-of-order start cannot happen with
        // sequence-ordered placements, so report as parallelism.
        add(rep, Violation::Kind::kIntraTaskParallel, ref, os.str());
      }
      prev_completion = p.completion();
      has_prev = true;
      if (p.proc >= 0 &&
          static_cast<std::size_t>(p.proc) < per_proc.size()) {
        per_proc[static_cast<std::size_t>(p.proc)].push_back(
            Busy{p.start, p.completion(), ref});
      }
    }
  }

  // No two allocations may overlap on one processor ("overloaded"
  // here means a processor double-booked at some instant).
  for (auto& lane : per_proc) {
    std::sort(lane.begin(), lane.end(),
              [](const Busy& a, const Busy& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < lane.size(); ++i) {
      if (lane[i].start < lane[i - 1].end) {
        std::ostringstream os;
        os << "overlaps " << lane[i - 1].ref << " on processor (starts "
           << lane[i].start << " before " << lane[i - 1].end << ")";
        add(rep, Violation::Kind::kOverloadedSlot, lane[i].ref, os.str());
      }
    }
  }
  return rep;
}

}  // namespace

ValidityReport check_slot_schedule(const TaskSystem& sys,
                                   const SlotSchedule& sched,
                                   std::int64_t tardiness_allowance) {
  return check_slot_impl(sys, sched, tardiness_allowance);
}

ValidityReport check_slot_schedule(const TaskSystem& sys,
                                   const CycleSchedule& sched,
                                   std::int64_t tardiness_allowance) {
  return check_slot_impl(sys, sched, tardiness_allowance);
}

ValidityReport check_dvq_schedule(const TaskSystem& sys,
                                  const DvqSchedule& sched,
                                  Time tardiness_allowance) {
  return check_dvq_impl(sys, sched, tardiness_allowance);
}

ValidityReport check_dvq_schedule(const TaskSystem& sys,
                                  const DvqCycleSchedule& sched,
                                  Time tardiness_allowance) {
  return check_dvq_impl(sys, sched, tardiness_allowance);
}

}  // namespace pfair
