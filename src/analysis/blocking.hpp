// Priority-inversion analysis of DVQ schedules — Sec. 3.1.
//
// The DVQ model trades the SFQ model's idling for bounded priority
// inversions.  At an integral time t a ready subtask U_j may wait while a
// lower-priority subtask executes; the paper distinguishes
//   * eligibility blocking  — e(U_j) = t: a processor freed just before t
//     was handed to lower-priority work that now runs past t;
//   * predecessor blocking  — e(U_j) < t but U_j's predecessor executed
//     right up to t, and the processor it frees goes to a higher-priority
//     subtask released exactly at t.
// Lemma 1 limits how predecessor blocking can arise (Property PB): every
// subtask U_j in the blocked set U has a predecessor completing exactly at
// t, and there is a set V, |V| >= |U|, of subtasks with e = t that are
// scheduled at t with priority at least every U_j's.
//
// This module detects both blocking kinds in a recorded DVQ schedule and
// verifies Lemma 1(a)/(b) empirically at every applicable instant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvq/dvq_schedule.hpp"
#include "sched/priority.hpp"

namespace pfair {

struct BlockingReport {
  std::int64_t instants_checked = 0;       ///< integral times examined
  std::int64_t eligibility_blocked = 0;    ///< (subtask, t) instances
  std::int64_t predecessor_blocked = 0;    ///< (subtask, t) instances
  std::int64_t lemma1_applications = 0;    ///< times U was nonempty
  std::int64_t lemma1a_violations = 0;     ///< U_j ready before t
  std::int64_t lemma1b_violations = 0;     ///< |V| < |U| or priority fail
  std::vector<std::string> details;        ///< first few violations

  [[nodiscard]] bool property_pb_holds() const {
    return lemma1a_violations == 0 && lemma1b_violations == 0;
  }
};

/// Scans every integral instant in [1, ceil(makespan)] of a DVQ schedule
/// under the given policy's priorities (the paper analyzes PD2).
[[nodiscard]] BlockingReport analyze_blocking(const TaskSystem& sys,
                                              const DvqSchedule& sched,
                                              Policy policy = Policy::kPd2);

}  // namespace pfair
