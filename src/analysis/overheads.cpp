#include "analysis/overheads.hpp"

#include <algorithm>

namespace pfair {

Rational overhead_budget(const TaskSystem& sys) {
  PFAIR_REQUIRE(sys.num_tasks() > 0, "overhead budget of an empty system");
  const Rational util_slack =
      Rational(1) - sys.total_utilization() / Rational(sys.processors());
  Rational weight_slack(1);
  for (const Task& t : sys.tasks()) {
    weight_slack = std::min(weight_slack, Rational(1) - t.weight().value());
  }
  const Rational budget = std::min(util_slack, weight_slack);
  return std::max(budget, Rational(0));
}

TaskSystem inflate_for_overheads(const TaskSystem& sys, const Rational& f,
                                 std::int64_t horizon) {
  PFAIR_REQUIRE(f >= Rational(0) && f < Rational(1),
                "overhead fraction " << f.str() << " outside [0, 1)");
  PFAIR_REQUIRE(f <= overhead_budget(sys),
                "overhead " << f.str() << " exceeds the budget "
                            << overhead_budget(sys).str());
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (const Task& t : sys.tasks()) {
    const Rational w = t.weight().value() / (Rational(1) - f);
    PFAIR_ASSERT(w <= Rational(1));
    tasks.push_back(Task::periodic(t.name() + "^", Weight(w.num(), w.den()),
                                   horizon));
  }
  return TaskSystem(std::move(tasks), sys.processors());
}

}  // namespace pfair
