// Offline recount of the scheduler-quality counters (obs/quality.hpp)
// from a finished schedule — an O(schedule) oracle for the incremental
// accounting both simulators perform per decision.
//
// The recount derives every number from the placements alone (plus the
// task system's eligibility times), replaying the decision-instant
// structure the simulator walked: slot boundaries for SFQ, the distinct
// readiness/completion instants for DVQ.  By construction it is
// path-independent, so
//   incremental (fast path) == incremental (instrumented path) == recount
// is asserted in tests/prof_test.cpp across policies and workloads, and
// `pfairsim --profile` re-verifies it on every run.
//
// Both overloads require a *complete* schedule (every subtask placed) —
// a truncated run's counters depend on where the horizon cut it.
#pragma once

#include "dvq/dvq_schedule.hpp"
#include "obs/quality.hpp"
#include "sched/schedule.hpp"

namespace pfair {

/// Recounts quality for an SFQ (slot-synchronous) schedule:
/// decision_points = horizon (one decision per slot), idle =
/// horizon x M - placements, preemptions from consecutive-placement
/// gaps with a ready successor, switches from per-processor placement
/// order.
[[nodiscard]] QualityCounters recount_quality(const TaskSystem& sys,
                                              const SlotSchedule& sched);

/// Recounts quality for a DVQ (event-driven) schedule by sweeping the
/// distinct decision instants — every subtask-readiness instant plus
/// every completion instant up to the last start.
[[nodiscard]] QualityCounters recount_quality(const TaskSystem& sys,
                                              const DvqSchedule& sched);

}  // namespace pfair
