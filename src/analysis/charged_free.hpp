// The Aligned / Olapped / Free classification of Sec. 3.2 (Fig. 4).
//
// Given a DVQ schedule S_DQ:
//   Aligned — subtasks commencing exactly on a slot boundary;
//   Olapped — subtasks that neither commence nor complete on a boundary
//             but straddle one (start non-integral, completion
//             non-integral, completion > floor(start) + 1);
//   Free    — everything else: subtasks executing strictly inside one
//             slot (or touching its end exactly).
// Charged = Aligned ∪ Olapped is the set retained in the reduced task
// system tau' on which S_B is built.
#pragma once

#include <cstdint>
#include <vector>

#include "dvq/dvq_schedule.hpp"

namespace pfair {

enum class SubtaskClass { kAligned, kOlapped, kFree, kUnplaced };

[[nodiscard]] const char* to_string(SubtaskClass c);

/// Classification of every subtask of a DVQ schedule.
struct Classification {
  std::vector<std::vector<SubtaskClass>> cls;  // [task][seq]
  std::int64_t aligned = 0, olapped = 0, free = 0, unplaced = 0;

  [[nodiscard]] SubtaskClass of(const SubtaskRef& ref) const {
    return cls[static_cast<std::size_t>(ref.task)]
              [static_cast<std::size_t>(ref.seq)];
  }
  [[nodiscard]] bool charged(const SubtaskRef& ref) const {
    const SubtaskClass c = of(ref);
    return c == SubtaskClass::kAligned || c == SubtaskClass::kOlapped;
  }
};

/// Classifies one placed subtask.
[[nodiscard]] SubtaskClass classify_placement(const DvqPlacement& p);

/// Classifies every subtask of `sched`.
[[nodiscard]] Classification classify(const TaskSystem& sys,
                                      const DvqSchedule& sched);

}  // namespace pfair
