// Construction of S_B from a DVQ schedule — Sec. 3.2 (Figs. 4, 5).
//
// tau' is the GIS task system consisting of the Charged subtasks of a DVQ
// run (removing the Free subtasks of a GIS system yields another GIS
// system).  S_B places each Charged subtask at its DVQ commencement time
// if that is integral (Aligned), and otherwise postpones it to the next
// slot boundary (Olapped); costs and processors are preserved.  The paper
// proves:
//   Lemma 3 — starts and completions in S_B are >= their S_DQ values;
//   Lemma 4 — every subtask's S_DQ tardiness is at most the ceiling of
//             some Charged subtask's S_B tardiness;
//   Lemma 5 — S_B is a valid PD^B schedule for tau'.
// `build_sb` performs the construction and *checks* the structural parts
// (postponed allocations never collide on a processor, precedence is
// preserved, Lemma 3 holds); `check_lemma4` verifies the tardiness
// accounting subtask by subtask.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/charged_free.hpp"
#include "dvq/dvq_schedule.hpp"

namespace pfair {

/// The reduced system tau', its S_B schedule, and the subtask mapping.
struct SbConstruction {
  TaskSystem charged_system;  ///< tau' (Charged subtasks only)
  DvqSchedule sb;             ///< S_B: integral starts, original costs
  Classification classes;     ///< classification of the source schedule
  /// new_seq[task][seq] = seq within charged_system, or -1 if Free.
  std::vector<std::vector<std::int32_t>> new_seq;

  bool lemma3_holds = true;     ///< starts/completions only move later
  bool structure_valid = true;  ///< no per-processor collisions, precedence
  std::string failure;          ///< first structural problem, if any
};

/// Builds tau' and S_B from a *complete* DVQ schedule.
[[nodiscard]] SbConstruction build_sb(const TaskSystem& sys,
                                      const DvqSchedule& dvq);

/// Empirical check of Lemma 4: for every subtask T_i of the original
/// system, tardiness(T_i, S_DQ) <= ceil(tardiness(U_j, S_B)) for the
/// mapped Charged subtask U_j (T_i itself when Charged; the subtask
/// executing at slot start on the same processor when Free).
struct Lemma4Report {
  std::int64_t checked = 0;
  std::int64_t free_mapped = 0;     ///< Free subtasks with a same-proc U_j
  std::int64_t free_fallback = 0;   ///< Free subtasks mapped via predecessor
  std::int64_t violations = 0;
  std::vector<std::string> details;

  [[nodiscard]] bool holds() const { return violations == 0; }
};

[[nodiscard]] Lemma4Report check_lemma4(const TaskSystem& sys,
                                        const DvqSchedule& dvq,
                                        const SbConstruction& sbc);

}  // namespace pfair
