// Lag analysis for slot schedules.
//
// The fluid ("proportionate") allocation gives task T exactly wt(T)
// processor time per slot; lag(T, t) = wt(T)*t - allocated(T, [0, t))
// measures how far a discrete schedule has drifted from the fluid one.
// For a synchronous periodic task, a schedule is Pfair in the classical
// sense iff -1 < lag(T, t) < 1 at every slot boundary — scheduling every
// subtask inside its window enforces exactly this.  The lag checker is an
// independent cross-check of the window-based validity checker.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rational.hpp"
#include "sched/schedule.hpp"

namespace pfair {

class CycleSchedule;  // sched/compressed_schedule.hpp

/// lag(T, t) for one task at a slot boundary, using the task's fluid rate
/// wt(T) from time 0 (meaningful for synchronous periodic tasks).
[[nodiscard]] Rational lag(const TaskSystem& sys, const SlotSchedule& sched,
                           std::int64_t task, std::int64_t t);
[[nodiscard]] Rational lag(const TaskSystem& sys, const CycleSchedule& sched,
                           std::int64_t task, std::int64_t t);

/// Extremes of lag over all tasks and all boundaries in [0, horizon].
struct LagRange {
  Rational min;  ///< most negative (over-served)
  Rational max;  ///< most positive (under-served)
};
[[nodiscard]] LagRange lag_range(const TaskSystem& sys,
                                 const SlotSchedule& sched,
                                 std::int64_t horizon);
[[nodiscard]] LagRange lag_range(const TaskSystem& sys,
                                 const CycleSchedule& sched,
                                 std::int64_t horizon);

/// True iff -1 < lag < 1 everywhere — the classical Pfairness property.
[[nodiscard]] bool is_pfair(const TaskSystem& sys, const SlotSchedule& sched,
                            std::int64_t horizon);
[[nodiscard]] bool is_pfair(const TaskSystem& sys, const CycleSchedule& sched,
                            std::int64_t horizon);

}  // namespace pfair
