#include "analysis/sb_construction.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/tardiness.hpp"

namespace pfair {

namespace {

/// tau': one task per original task, keeping only Charged subtasks with
/// their indices, offsets and eligibility times intact.
TaskSystem make_charged_system(const TaskSystem& sys,
                               const Classification& cls,
                               std::vector<std::vector<std::int32_t>>* map) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  map->assign(static_cast<std::size_t>(sys.num_tasks()), {});
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    auto& row = (*map)[static_cast<std::size_t>(k)];
    row.assign(static_cast<std::size_t>(task.num_subtasks()), -1);
    std::vector<Task::SubtaskSpec> specs;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      if (!cls.charged(SubtaskRef{k, s})) continue;
      const Subtask& sub = task.subtask(s);
      row[static_cast<std::size_t>(s)] =
          static_cast<std::int32_t>(specs.size());
      specs.push_back(
          Task::SubtaskSpec{sub.index, sub.theta, sub.eligible});
    }
    tasks.push_back(
        Task::gis(task.name() + "'", task.weight(), specs));
  }
  return TaskSystem(std::move(tasks), sys.processors());
}

}  // namespace

SbConstruction build_sb(const TaskSystem& sys, const DvqSchedule& dvq) {
  PFAIR_REQUIRE(dvq.complete(),
                "S_B construction requires a complete DVQ schedule");
  Classification cls = classify(sys, dvq);
  std::vector<std::vector<std::int32_t>> map;
  TaskSystem charged = make_charged_system(sys, cls, &map);
  DvqSchedule sb(charged);

  SbConstruction out{std::move(charged), std::move(sb), std::move(cls),
                     std::move(map),     true,           true,
                     std::string()};

  // Place every Charged subtask; postpone Olapped ones to the boundary
  // they straddle.
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const std::int32_t ns =
          out.new_seq[static_cast<std::size_t>(k)]
                     [static_cast<std::size_t>(s)];
      if (ns < 0) continue;
      const DvqPlacement& p = dvq.placement(ref);
      Time start = p.start;
      if (out.classes.of(ref) == SubtaskClass::kOlapped) {
        start = Time::slots(p.start.slot_floor() + 1);  // ceil(S_DQ(T_i))
      }
      out.sb.place(SubtaskRef{k, ns}, start, p.cost, p.proc);
      // Lemma 3, by construction: start (hence completion) never moves
      // earlier.  Assert rather than trust.
      if (start < p.start) out.lemma3_holds = false;
    }
  }

  // Structural checks: (a) per-processor allocations in S_B must not
  // overlap — the paper's argument is that a subtask straddling boundary
  // t occupies its processor at t, so nothing else can start there;
  // (b) precedence must be preserved.
  struct Busy {
    Time start, end;
  };
  std::vector<std::vector<Busy>> lanes(
      static_cast<std::size_t>(sys.processors()));
  for (std::int32_t k = 0; k < out.charged_system.num_tasks(); ++k) {
    const Task& task = out.charged_system.task(k);
    Time prev_completion;
    bool has_prev = false;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const DvqPlacement& p = out.sb.placement(SubtaskRef{k, s});
      PFAIR_ASSERT(p.placed);
      if (has_prev && p.start < prev_completion) {
        out.structure_valid = false;
        if (out.failure.empty()) {
          std::ostringstream os;
          os << "precedence broken for task " << task.name() << " seq "
             << s;
          out.failure = os.str();
        }
      }
      prev_completion = p.completion();
      has_prev = true;
      lanes[static_cast<std::size_t>(p.proc)].push_back(
          Busy{p.start, p.completion()});
    }
  }
  for (std::size_t pi = 0; pi < lanes.size(); ++pi) {
    auto& lane = lanes[pi];
    std::sort(lane.begin(), lane.end(),
              [](const Busy& a, const Busy& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < lane.size(); ++i) {
      if (lane[i].start < lane[i - 1].end) {
        out.structure_valid = false;
        if (out.failure.empty()) {
          std::ostringstream os;
          os << "processor " << pi << " double-booked at " << lane[i].start;
          out.failure = os.str();
        }
      }
    }
  }
  return out;
}

Lemma4Report check_lemma4(const TaskSystem& sys, const DvqSchedule& dvq,
                          const SbConstruction& sbc) {
  Lemma4Report rep;

  auto sb_tardiness_ticks = [&](const SubtaskRef& orig) {
    const std::int32_t ns =
        sbc.new_seq[static_cast<std::size_t>(orig.task)]
                   [static_cast<std::size_t>(orig.seq)];
    PFAIR_ASSERT(ns >= 0);
    return subtask_tardiness_ticks(sbc.charged_system, sbc.sb,
                                   SubtaskRef{orig.task, ns});
  };
  auto ceil_quanta_ticks = [](std::int64_t ticks) {
    return (ticks + kTicksPerSlot - 1) / kTicksPerSlot * kTicksPerSlot;
  };

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = dvq.placement(ref);
      if (!p.placed) continue;
      ++rep.checked;
      const std::int64_t tard = subtask_tardiness_ticks(sys, dvq, ref);

      if (sbc.classes.charged(ref)) {
        // Charged: completion in S_B >= completion in S_DQ (Lemma 3), so
        // the bound holds with U_j = T_i itself.
        if (tard > sb_tardiness_ticks(ref)) {
          ++rep.violations;
          if (rep.details.size() < 8) {
            std::ostringstream os;
            os << ref << " (charged): S_DQ tardiness exceeds S_B tardiness";
            rep.details.push_back(os.str());
          }
        }
        continue;
      }

      // Free: U_j is the subtask executing at slot start t on the same
      // processor (necessarily Charged).  If the processor was idle at t
      // (possible when readiness arrived mid-slot from another
      // processor's completion), fall back to T_i's predecessor, whose
      // completion bounds T_i's start.
      const std::int64_t t = p.start.slot_floor();
      const Time tt = Time::slots(t);
      SubtaskRef u;
      for (std::int32_t k2 = 0; k2 < sys.num_tasks() && !u.valid(); ++k2) {
        const Task& t2 = sys.task(k2);
        for (std::int32_t s2 = 0; s2 < t2.num_subtasks(); ++s2) {
          const SubtaskRef r2{k2, s2};
          const DvqPlacement& p2 = dvq.placement(r2);
          if (!p2.placed || p2.proc != p.proc) continue;
          if (p2.start > Time::slots(t - 1) && p2.start <= tt &&
              p2.completion() > tt) {
            u = r2;
            break;
          }
        }
      }
      bool fallback = false;
      if (u.valid()) {
        ++rep.free_mapped;
      } else if (s > 0) {
        u = SubtaskRef{k, s - 1};
        fallback = true;
        ++rep.free_fallback;
      } else {
        // A Free first subtask with an idle processor at the slot start:
        // it started the moment it became eligible mid-slot, which cannot
        // happen (eligibility is integral) — so it started when a
        // processor freed, and that processor's occupant was found above.
        ++rep.free_fallback;
        continue;
      }

      // Lemma 4: tardiness(T_i, S_DQ) <= ceil(tardiness(U_j, S_B)).
      // When U_j is Free itself (fallback chain), bound by the ceiling of
      // its S_DQ tardiness instead, which Lemma 4 in turn bounds.
      std::int64_t bound;
      if (sbc.classes.charged(u)) {
        bound = ceil_quanta_ticks(sb_tardiness_ticks(u));
      } else {
        PFAIR_ASSERT(fallback);
        bound = ceil_quanta_ticks(subtask_tardiness_ticks(sys, dvq, u));
      }
      if (tard > bound) {
        ++rep.violations;
        if (rep.details.size() < 8) {
          std::ostringstream os;
          os << ref << " (free): tardiness " << tard << " > bound " << bound
             << " via " << u;
          rep.details.push_back(os.str());
        }
      }
    }
  }
  return rep;
}

}  // namespace pfair
