#include "analysis/compliance.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {

namespace {

/// The k-compliant task system: every window right-shifted by one slot
/// (theta + 1, hence r + 1 and d + 1), eligibility advanced back to its
/// tau^B value for subtasks of rank <= k.
TaskSystem make_k_compliant_system(
    const TaskSystem& tau_b,
    const std::vector<std::vector<std::int64_t>>& rank, std::int64_t k) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(tau_b.num_tasks()));
  for (std::int32_t ti = 0; ti < tau_b.num_tasks(); ++ti) {
    const Task& task = tau_b.task(ti);
    std::vector<Task::SubtaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(task.num_subtasks()));
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const Subtask& sub = task.subtask(s);
      const bool advanced =
          rank[static_cast<std::size_t>(ti)][static_cast<std::size_t>(s)] <=
          k;
      specs.push_back(Task::SubtaskSpec{
          sub.index, sub.theta + 1,
          advanced ? sub.eligible : sub.eligible + 1});
    }
    tasks.push_back(Task::gis(task.name() + "+1", task.weight(), specs));
  }
  return TaskSystem(std::move(tasks), tau_b.processors());
}

/// PD2 with the first-k subtasks pinned to their S_B slots: pinned
/// subtasks are placed unconditionally at their slots; the remaining
/// processors go to the highest-PD2-priority ready unpinned subtasks.
SlotSchedule schedule_pinned_pd2(
    const TaskSystem& sys,
    const std::vector<std::vector<std::int64_t>>& pin_slot) {
  const std::int64_t limit = default_horizon(sys) + 2;
  const PriorityOrder order(sys, Policy::kPd2);
  SlotSchedule sched(sys);

  const auto n_tasks = static_cast<std::size_t>(sys.num_tasks());
  std::vector<std::int64_t> head(n_tasks, 0);
  std::vector<std::int64_t> last_slot(n_tasks, -1);
  std::int64_t remaining = sys.total_subtasks();

  std::vector<SubtaskRef> ready;
  for (std::int64_t t = 0; t < limit && remaining > 0; ++t) {
    int used = 0;
    // 1. Pinned subtasks due at t.
    for (std::size_t kk = 0; kk < n_tasks; ++kk) {
      const Task& task = sys.task(static_cast<std::int64_t>(kk));
      const std::int64_t h = head[kk];
      if (h >= task.num_subtasks()) continue;
      if (pin_slot[kk][static_cast<std::size_t>(h)] != t) continue;
      sched.place(SubtaskRef{static_cast<std::int32_t>(kk),
                             static_cast<std::int32_t>(h)},
                  t, used++);
      ++head[kk];
      last_slot[kk] = t;
      --remaining;
    }
    // 2. PD2 over ready unpinned heads.
    ready.clear();
    for (std::size_t kk = 0; kk < n_tasks; ++kk) {
      const Task& task = sys.task(static_cast<std::int64_t>(kk));
      const std::int64_t h = head[kk];
      if (h >= task.num_subtasks()) continue;
      if (pin_slot[kk][static_cast<std::size_t>(h)] >= 0) continue;
      const Subtask& s = task.subtask(h);
      if (s.eligible > t) continue;
      if (h > 0 && last_slot[kk] >= t) continue;
      ready.push_back(SubtaskRef{static_cast<std::int32_t>(kk),
                                 static_cast<std::int32_t>(h)});
    }
    const auto capacity = static_cast<std::size_t>(
        std::max(0, sys.processors() - used));
    const auto m = std::min(capacity, ready.size());
    std::partial_sort(ready.begin(),
                      ready.begin() + static_cast<std::ptrdiff_t>(m),
                      ready.end(),
                      [&order](const SubtaskRef& a, const SubtaskRef& b) {
                        return order.higher(a, b);
                      });
    for (std::size_t r = 0; r < m; ++r) {
      const SubtaskRef ref = ready[r];
      sched.place(ref, t, used++);
      const auto kk = static_cast<std::size_t>(ref.task);
      ++head[kk];
      last_slot[kk] = t;
      --remaining;
    }
  }
  return sched;
}

}  // namespace

ComplianceResult run_compliance(const TaskSystem& tau_b,
                                const ComplianceOptions& opts) {
  ComplianceResult res;

  // 1. PD^B schedule of tau^B, with the decision order defining ranks.
  PdbTrace trace;
  PdbOptions pdb_opts;
  pdb_opts.mode = opts.pdb_mode;
  pdb_opts.trace = &trace;
  const SlotSchedule sb = schedule_pdb(tau_b, pdb_opts);
  if (!sb.complete()) {
    res.failure = "PD^B did not schedule every subtask within the horizon";
    return res;
  }
  res.sb_max_tardiness =
      measure_tardiness(tau_b, sb).max_ticks / kTicksPerSlot;

  const auto n_tasks = static_cast<std::size_t>(tau_b.num_tasks());
  std::vector<std::vector<std::int64_t>> rank(n_tasks);
  std::vector<std::vector<std::int64_t>> sb_slot(n_tasks);
  for (std::size_t ti = 0; ti < n_tasks; ++ti) {
    const auto n = static_cast<std::size_t>(
        tau_b.task(static_cast<std::int64_t>(ti)).num_subtasks());
    rank[ti].assign(n, -1);
    sb_slot[ti].assign(n, -1);
  }
  std::int64_t next_rank = 1;
  std::vector<SubtaskRef> by_rank(
      static_cast<std::size_t>(tau_b.total_subtasks()) + 1);
  for (const PdbDecision& d : trace.decisions) {
    rank[static_cast<std::size_t>(d.chosen.task)]
        [static_cast<std::size_t>(d.chosen.seq)] = next_rank;
    by_rank[static_cast<std::size_t>(next_rank)] = d.chosen;
    sb_slot[static_cast<std::size_t>(d.chosen.task)]
           [static_cast<std::size_t>(d.chosen.seq)] = d.slot;
    ++next_rank;
  }
  res.ranks = next_rank - 1;
  PFAIR_ASSERT(res.ranks == tau_b.total_subtasks());

  // 2. Induction on k.  pin_slot holds the S_B slot for ranks <= k.
  std::vector<std::vector<std::int64_t>> pin(n_tasks);
  for (std::size_t ti = 0; ti < n_tasks; ++ti) {
    pin[ti].assign(rank[ti].size(), -1);
  }

  SlotSchedule prev = [&] {
    const TaskSystem tau0 = make_k_compliant_system(tau_b, rank, 0);
    return schedule_pinned_pd2(tau0, pin);
  }();
  {
    const TaskSystem tau0 = make_k_compliant_system(tau_b, rank, 0);
    const ValidityReport rep = check_slot_schedule(tau0, prev, 0);
    ++res.steps_checked;
    if (!rep.valid()) {
      std::ostringstream os;
      os << "0-compliant PD2 schedule invalid: " << rep.str();
      res.failure = os.str();
      return res;
    }
  }

  for (std::int64_t k = 1; k <= res.ranks; ++k) {
    const SubtaskRef t_i = by_rank[static_cast<std::size_t>(k)];
    const auto ti = static_cast<std::size_t>(t_i.task);
    const auto si = static_cast<std::size_t>(t_i.seq);
    const std::int64_t target = sb_slot[ti][si];
    pin[ti][si] = target;

    // Classify the step against the proof's cases using S_k (= prev).
    // Only meaningful when prev is refreshed at every step.
    if (opts.check_all_steps) {
      const SlotPlacement& was = prev.placement(t_i);
      if (was.slot == target) {
        ++res.already_placed;
      } else {
        const auto load = static_cast<std::int64_t>(
            prev.slot_contents(target).size());
        if (load < tau_b.processors()) {
          ++res.holes_used;  // case C1
        } else {
          ++res.swaps_used;  // cases C2/C3
        }
      }
    }

    const bool check = opts.check_all_steps || k == res.ranks;
    if (!check) continue;

    const TaskSystem tau_k = make_k_compliant_system(tau_b, rank, k);
    const SlotSchedule sk = schedule_pinned_pd2(tau_k, pin);
    const ValidityReport rep = check_slot_schedule(tau_k, sk, 0);
    ++res.steps_checked;
    if (!rep.valid()) {
      std::ostringstream os;
      os << k << "-compliant schedule invalid: " << rep.str();
      res.failure = os.str();
      return res;
    }
    prev = sk;
  }

  res.ok = true;
  return res;
}

}  // namespace pfair
