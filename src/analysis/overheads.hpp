// Overhead accounting — Sec. 3's assumption made concrete.
//
// The paper assumes zero preemption/migration cost and notes that "such
// costs can be easily accounted for by inflating task execution costs
// appropriately [10]" (Holman).  If every quantum loses the fraction f
// of its capacity to overheads, a task of weight w needs an inflated
// share w / (1 - f); the system stays feasible iff the inflated total
// utilization is at most M.  This module computes the admissible
// overhead budget and performs the inflation.
#pragma once

#include "core/rational.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// The largest per-quantum overhead fraction f such that inflating every
/// weight by 1/(1-f) keeps the system feasible AND every individual
/// weight at most 1: f* = min(1 - U/M, 1 - w_max).
[[nodiscard]] Rational overhead_budget(const TaskSystem& sys);

/// Inflates every weight w -> w / (1 - f) and re-materializes the system
/// as synchronous periodic tasks over `horizon` slots.  Requires f to be
/// within the overhead budget (checked).
[[nodiscard]] TaskSystem inflate_for_overheads(const TaskSystem& sys,
                                               const Rational& f,
                                               std::int64_t horizon);

}  // namespace pfair
