#include "analysis/blocking.hpp"

#include <algorithm>
#include <sstream>

namespace pfair {

namespace {

/// Flat view of one placed subtask with readiness information.
struct Item {
  SubtaskRef ref;
  Time start;
  Time completion;
  Time ready;       ///< max(slots(e), predecessor completion)
  bool has_pred = false;
  Time pred_completion;
  std::int64_t eligible = 0;
};

}  // namespace

BlockingReport analyze_blocking(const TaskSystem& sys,
                                const DvqSchedule& sched, Policy policy) {
  const PriorityOrder order(sys, policy);
  BlockingReport rep;

  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(sys.total_subtasks()));
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    Time prev_completion;
    bool has_prev = false;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = sched.placement(ref);
      if (!p.placed) continue;  // truncated run: skip
      Item it;
      it.ref = ref;
      it.start = p.start;
      it.completion = p.completion();
      it.eligible = task.subtask(s).eligible;
      it.has_pred = has_prev;
      if (has_prev) it.pred_completion = prev_completion;
      it.ready = std::max(Time::slots(it.eligible),
                          has_prev ? prev_completion : Time());
      items.push_back(it);
      prev_completion = it.completion;
      has_prev = true;
    }
  }

  const std::int64_t end = sched.makespan().slot_ceil();
  for (std::int64_t t = 1; t <= end; ++t) {
    ++rep.instants_checked;
    const Time tt = Time::slots(t);

    // Subtasks executing at t: scheduled in (t-1, t].
    std::vector<const Item*> exec;
    for (const Item& it : items) {
      if (it.start > Time::slots(t - 1) && it.start <= tt) exec.push_back(&it);
    }
    if (exec.empty()) continue;

    // Waiting subtasks at t: ready at or before t, not yet started.
    // Blocked iff some executing subtask has strictly lower priority.
    std::vector<const Item*> blocked_pred;  // the paper's U (e <= t-1)
    for (const Item& it : items) {
      if (it.start <= tt || it.ready > tt) continue;
      const bool inverted =
          std::any_of(exec.begin(), exec.end(), [&](const Item* e) {
            return order.strictly_higher(it.ref, e->ref);
          });
      if (!inverted) continue;
      if (it.eligible == t) {
        ++rep.eligibility_blocked;
      } else if (it.eligible < t) {
        ++rep.predecessor_blocked;
        blocked_pred.push_back(&it);
      }
    }

    if (blocked_pred.empty()) continue;
    ++rep.lemma1_applications;

    // Lemma 1(a): each U_j must not be ready until exactly t — its
    // predecessor exists and completes at t.
    for (const Item* u : blocked_pred) {
      if (!u->has_pred || u->pred_completion != tt) {
        ++rep.lemma1a_violations;
        if (rep.details.size() < 8) {
          std::ostringstream os;
          os << "t=" << t << ": " << u->ref
             << " predecessor does not complete at t (ready " << u->ready
             << ")";
          rep.details.push_back(os.str());
        }
      }
    }

    // Lemma 1(b): a set V with e(V_k) = t, S(V_k) = t, |V| >= |U|, and
    // every V_k with priority at least every U_j.
    std::int64_t v_count = 0;
    for (const Item& v : items) {
      if (v.eligible != t || v.start != tt) continue;
      const bool dominates_all = std::all_of(
          blocked_pred.begin(), blocked_pred.end(), [&](const Item* u) {
            return order.at_least(v.ref, u->ref);
          });
      if (dominates_all) ++v_count;
    }
    if (v_count < static_cast<std::int64_t>(blocked_pred.size())) {
      ++rep.lemma1b_violations;
      if (rep.details.size() < 8) {
        std::ostringstream os;
        os << "t=" << t << ": |V|=" << v_count << " < |U|="
           << blocked_pred.size();
        rep.details.push_back(os.str());
      }
    }
  }
  return rep;
}

}  // namespace pfair
