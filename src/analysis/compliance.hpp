// k-compliance — the inductive machinery of Sec. 3.3 (Lemma 6, Fig. 6)
// behind Theorem 2 (PD^B tardiness <= 1 quantum).
//
// Given a PD^B schedule S_B for tau^B, the paper right-shifts every
// subtask's window by one slot to obtain tau (0-compliant: PD2 schedules
// it with no misses because PD2 is optimal), then lowers the eligibility
// time of one subtask at a time — in schedule order ("rank") — pinning
// each processed subtask to its S_B slot.  Lemma 6: at every step a valid
// schedule exists in which the first k subtasks sit in their S_B slots and
// the rest are scheduled by PD2.  After all n steps the schedule *is* S_B
// read against deadlines d+1, i.e. PD^B misses deadlines by at most one
// quantum.
//
// `run_compliance` executes this construction: for each k it builds the
// k-compliant task system and the pinned-PD2 schedule, validates it
// (every subtask within [e, d), at most M per slot, precedence respected),
// and reports which mechanism of the proof each step exercised — a hole in
// the target slot (case C1) or displacing an equal-or-lower-priority
// subtask (cases C2/C3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/pdb_scheduler.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct ComplianceOptions {
  PdbMode pdb_mode = PdbMode::kAdversarial;
  /// Check every intermediate k (O(n^2) subtask-slot work); when false,
  /// only k = 0 and k = n are validated.
  bool check_all_steps = true;
};

struct ComplianceResult {
  bool ok = false;
  std::int64_t ranks = 0;        ///< n = number of subtasks
  std::int64_t steps_checked = 0;
  std::int64_t holes_used = 0;   ///< steps where the S_B slot had a hole
  std::int64_t swaps_used = 0;   ///< steps displacing another subtask
  std::int64_t already_placed = 0;  ///< S_k already had T'_i at its slot
  /// Max tardiness of S_B against the *original* deadlines, in slots —
  /// Theorem 2 asserts <= 1.
  std::int64_t sb_max_tardiness = 0;
  std::string failure;
};

/// Runs the full induction for `tau_b` (every subtask of which must be
/// schedulable by PD^B within the default horizon).
[[nodiscard]] ComplianceResult run_compliance(const TaskSystem& tau_b,
                                              const ComplianceOptions& opts = {});

}  // namespace pfair
