#include "analysis/charged_free.hpp"

namespace pfair {

const char* to_string(SubtaskClass c) {
  switch (c) {
    case SubtaskClass::kAligned:
      return "Aligned";
    case SubtaskClass::kOlapped:
      return "Olapped";
    case SubtaskClass::kFree:
      return "Free";
    case SubtaskClass::kUnplaced:
      return "unplaced";
  }
  return "?";
}

SubtaskClass classify_placement(const DvqPlacement& p) {
  PFAIR_REQUIRE(p.placed, "cannot classify an unplaced subtask");
  if (p.start.is_slot_boundary()) return SubtaskClass::kAligned;
  const Time completion = p.completion();
  const Time next_boundary = Time::slots(p.start.slot_floor() + 1);
  if (!completion.is_slot_boundary() && completion > next_boundary) {
    return SubtaskClass::kOlapped;
  }
  return SubtaskClass::kFree;
}

Classification classify(const TaskSystem& sys, const DvqSchedule& sched) {
  Classification out;
  out.cls.resize(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    auto& row = out.cls[static_cast<std::size_t>(k)];
    row.reserve(static_cast<std::size_t>(task.num_subtasks()));
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const DvqPlacement& p = sched.placement(SubtaskRef{k, s});
      SubtaskClass c = SubtaskClass::kUnplaced;
      if (p.placed) c = classify_placement(p);
      row.push_back(c);
      switch (c) {
        case SubtaskClass::kAligned:
          ++out.aligned;
          break;
        case SubtaskClass::kOlapped:
          ++out.olapped;
          break;
        case SubtaskClass::kFree:
          ++out.free;
          break;
        case SubtaskClass::kUnplaced:
          ++out.unplaced;
          break;
      }
    }
  }
  return out;
}

}  // namespace pfair
