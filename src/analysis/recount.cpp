#include "analysis/recount.hpp"

#include <algorithm>
#include <vector>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace pfair {

namespace {

struct ProcCell {
  int proc;
  std::int64_t at;
  std::int32_t task;
};

// Context switches from placements alone: sort each processor's
// placements by time; every adjacent pair with different tasks is one
// switch (idle gaps do not reset the previous occupant).
void count_switches(std::vector<ProcCell>& cells, QualityCounters& q) {
  std::sort(cells.begin(), cells.end(),
            [](const ProcCell& a, const ProcCell& b) {
              return a.proc != b.proc ? a.proc < b.proc : a.at < b.at;
            });
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (cells[i].proc != cells[i - 1].proc) continue;
    if (cells[i].task == cells[i - 1].task) continue;
    ++q.context_switches;
    ++q.per_proc_switches[static_cast<std::size_t>(cells[i].proc)];
  }
}

}  // namespace

QualityCounters recount_quality(const TaskSystem& sys,
                                const SlotSchedule& sched) {
  PFAIR_REQUIRE(sched.complete(), "quality recount requires a complete "
                                  "schedule");
  QualityCounters q;
  const std::int64_t procs = sys.processors();
  q.resize_procs(static_cast<std::size_t>(procs));
  // The simulator steps one decision per slot and stops the step after
  // the last placement.
  q.decision_points = sched.horizon();
  std::int64_t placed_total = 0;
  std::vector<ProcCell> cells;
  for (std::int64_t k = 0; k < sched.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int64_t s = 0; s < sched.num_subtasks(k); ++s) {
      const SubtaskRef ref{static_cast<std::int32_t>(k),
                           static_cast<std::int32_t>(s)};
      const SlotPlacement pl = sched.placement(ref);
      ++placed_total;
      cells.push_back(
          ProcCell{pl.proc, pl.slot, static_cast<std::int32_t>(k)});
      if (s == 0) continue;
      const SlotPlacement prev =
          sched.placement(SubtaskRef{ref.task, ref.seq - 1});
      if (prev.proc != pl.proc) ++q.migrations;
      // The task ran at prev.slot, its next subtask was ready at
      // prev.slot + 1 (eligible, predecessor done) but did not run
      // there: one preemption, charged at that slot.  Later waiting
      // slots are not re-charged — the incremental path only considers
      // the previous slot's occupants.
      if (pl.slot > prev.slot + 1 && task.eligible_at(s) <= prev.slot + 1) {
        ++q.preemptions;
      }
    }
  }
  q.idle_slots = q.decision_points * procs - placed_total;
  count_switches(cells, q);
  return q;
}

QualityCounters recount_quality(const TaskSystem& sys,
                                const DvqSchedule& sched) {
  PFAIR_REQUIRE(sched.complete(), "quality recount requires a complete "
                                  "schedule");
  QualityCounters q;
  const std::int64_t procs = sys.processors();
  q.resize_procs(static_cast<std::size_t>(procs));

  // Gather (readiness, start, end) per subtask in ticks, reproducing the
  // simulator's readiness rule: max of the slot-aligned eligibility and
  // the predecessor's completion.  Migrations and preemptions fall out
  // of the per-task scan directly: a preemption is a subtask that was
  // ready the instant its predecessor completed (eligibility already
  // passed) yet starts strictly later.
  std::vector<std::int64_t> readies;
  std::vector<std::int64_t> starts;
  std::vector<std::int64_t> ends;
  std::vector<ProcCell> cells;
  for (std::int64_t k = 0; k < sched.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::int64_t prev_end = 0;
    for (std::int64_t s = 0; s < sched.num_subtasks(k); ++s) {
      const SubtaskRef ref{static_cast<std::int32_t>(k),
                           static_cast<std::int32_t>(s)};
      const DvqPlacement& pl = sched.placement(ref);
      const std::int64_t elig =
          Time::slots(task.eligible_at(s)).raw_ticks();
      const std::int64_t start = pl.start.raw_ticks();
      readies.push_back(s == 0 ? elig : std::max(elig, prev_end));
      starts.push_back(start);
      ends.push_back(pl.completion().raw_ticks());
      cells.push_back(
          ProcCell{pl.proc, start, static_cast<std::int32_t>(k)});
      if (s > 0) {
        if (sched.placement(SubtaskRef{ref.task, ref.seq - 1}).proc !=
            pl.proc) {
          ++q.migrations;
        }
        if (start > prev_end && elig <= prev_end) ++q.preemptions;
      }
      prev_end = pl.completion().raw_ticks();
    }
  }
  count_switches(cells, q);
  if (starts.empty()) return q;

  // Decision instants: every readiness instant, plus every completion at
  // or before the last start (the simulator stops once all work is
  // placed, so later completions are never stepped).
  const std::int64_t t_last =
      *std::max_element(starts.begin(), starts.end());
  std::vector<std::int64_t> instants;
  instants.reserve(readies.size() + ends.size());
  instants.insert(instants.end(), readies.begin(), readies.end());
  for (const std::int64_t e : ends) {
    if (e <= t_last) instants.push_back(e);
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());

  std::sort(readies.begin(), readies.end());
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());

  // One sweep, three monotone cursors, for decision points and idle
  // capacity.  At each instant t (before that instant's dispatch):
  // busy = started strictly before t and not yet completed; placed =
  // the batch dispatched exactly at t.  Every free processor the batch
  // leaves unfilled idles for this decision instant.
  std::size_t i_start_lt = 0; // start < t
  std::size_t i_start_le = 0; // start <= t
  std::size_t i_end_le = 0;   // completion <= t
  for (const std::int64_t t : instants) {
    while (i_start_lt < starts.size() && starts[i_start_lt] < t) {
      ++i_start_lt;
    }
    while (i_start_le < starts.size() && starts[i_start_le] <= t) {
      ++i_start_le;
    }
    while (i_end_le < ends.size() && ends[i_end_le] <= t) ++i_end_le;

    ++q.decision_points;
    const std::int64_t busy = static_cast<std::int64_t>(i_start_lt) -
                              static_cast<std::int64_t>(i_end_le);
    const std::int64_t free0 = procs - busy;
    if (free0 <= 0) continue;  // readiness event with every CPU busy
    const std::int64_t placed = static_cast<std::int64_t>(i_start_le) -
                                static_cast<std::int64_t>(i_start_lt);
    if (placed < free0) q.idle_slots += free0 - placed;
  }
  return q;
}

}  // namespace pfair
