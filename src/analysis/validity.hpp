// Schedule validity — the three conditions of Sec. 3.3, plus the
// continuous-time analogues for DVQ schedules.
//
// A slot schedule is *valid in slot t* iff (i) every subtask is scheduled
// within [e(T_i), d(T_i)), (ii) no two subtasks of the same task share a
// slot, and (iii) at most M subtasks occupy the slot.  When studying
// tardiness we relax (i) to a bound: scheduled within [e(T_i), d(T_i) +
// kappa).  Predecessor ordering (a subtask never before its predecessor's
// completion) is checked as well — it is implicit in the paper's readiness
// definition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvq/dvq_schedule.hpp"
#include "sched/schedule.hpp"

namespace pfair {

class CycleSchedule;     // sched/compressed_schedule.hpp
class DvqCycleSchedule;  // dvq/dvq_cycle.hpp

/// One violation, with a human-readable description.
struct Violation {
  enum class Kind {
    kUnscheduled,       ///< subtask never placed
    kBeforeEligible,    ///< scheduled before e(T_i)
    kDeadlineMiss,      ///< completes after d(T_i) + allowance
    kIntraTaskParallel, ///< two subtasks of one task overlap / share a slot
    kOverloadedSlot,    ///< more than M subtasks in a slot / instant
    kPrecedence,        ///< scheduled before predecessor completion
    kLagBound,          ///< per-task lag left (-1, 1) (online auditor only)
  };
  Kind kind;
  SubtaskRef ref;
  std::string detail;
};

[[nodiscard]] const char* to_string(Violation::Kind k);

/// Result of a validity check.
struct ValidityReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool valid() const { return violations.empty(); }
  [[nodiscard]] std::string str(std::size_t max_items = 8) const;
};

/// Checks a slot (SFQ-model) schedule.  `tardiness_allowance` relaxes the
/// deadline condition: a subtask may complete up to that many slots late.
[[nodiscard]] ValidityReport check_slot_schedule(
    const TaskSystem& sys, const SlotSchedule& sched,
    std::int64_t tardiness_allowance = 0);

/// Checks a DVQ/staggered schedule.  `tardiness_allowance_ticks` relaxes
/// the deadline condition; Theorem 3 corresponds to kQuantum.
[[nodiscard]] ValidityReport check_dvq_schedule(
    const TaskSystem& sys, const DvqSchedule& sched,
    Time tardiness_allowance = Time());

/// Cycle-compressed schedules run through the identical checks —
/// synthesized placements are resolved on demand, never materialized.
[[nodiscard]] ValidityReport check_slot_schedule(
    const TaskSystem& sys, const CycleSchedule& sched,
    std::int64_t tardiness_allowance = 0);
[[nodiscard]] ValidityReport check_dvq_schedule(
    const TaskSystem& sys, const DvqCycleSchedule& sched,
    Time tardiness_allowance = Time());

}  // namespace pfair
