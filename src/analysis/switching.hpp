// Context-switch, preemption and migration accounting.
//
// The implementation studies the paper builds on (Holman's thesis, the
// LITMUS lineage) evaluate Pfair variants by how much scheduler
// mechanism they invoke: how often a processor switches occupants, how
// often a task resumes on a *different* processor (migration — cache
// refill cost), and how often a task is preempted mid-job.  These
// metrics are derived purely from a finished schedule, for both slot
// (SFQ/PD^B) and continuous (DVQ/staggered) schedules, so every model
// comparison in the bench suite can report them.
#pragma once

#include <cstdint>

#include "dvq/dvq_schedule.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct SwitchingStats {
  /// Occupant changes on a processor between two consecutive quanta it
  /// executes (idle gaps count as a change only when the occupant
  /// differs across the gap).
  std::int64_t context_switches = 0;
  /// Subtask scheduled on a different processor than its predecessor.
  std::int64_t migrations = 0;
  /// Subtask NOT executed back-to-back with its predecessor (the task
  /// was set aside while still having work) — a preemption-style break.
  std::int64_t job_breaks = 0;
  std::int64_t subtasks = 0;

  [[nodiscard]] double migrations_per_subtask() const {
    return subtasks == 0 ? 0.0
                         : static_cast<double>(migrations) /
                               static_cast<double>(subtasks);
  }
};

/// Stats for a slot-granularity schedule.
[[nodiscard]] SwitchingStats measure_switching(const TaskSystem& sys,
                                               const SlotSchedule& sched);

/// Stats for a continuous-time schedule.
[[nodiscard]] SwitchingStats measure_switching(const TaskSystem& sys,
                                               const DvqSchedule& sched);

}  // namespace pfair
