// Lemma 2 — the PD^B counterpart of Lemma 1 (Sec. 3.1).
//
// In a PD^B schedule, whenever a subtask T_i scheduled at an integral
// time t has a nonempty set U of *higher-priority* subtasks that were
// ready at or before t, eligible by t-1, and yet scheduled after t (a
// slot-granularity priority inversion), the lemma asserts the existence
// of a witness set V with
//   |V| >= |U|,  every V_k released-and-scheduled exactly at t
//   (e(V_k) = t and S(V_k) = t),  V_k ⪯ U_j for all pairs,
// and T_i selected *before* every V_k within slot t's decision sequence.
//
// This module detects such inversions in a traced PD^B run and verifies
// the witness conditions — the executable form of Lemma 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/pdb_scheduler.hpp"
#include "sched/schedule.hpp"

namespace pfair {

struct Lemma2Report {
  std::int64_t slots_checked = 0;
  std::int64_t inversions = 0;       ///< (T_i, t) pairs with nonempty U
  std::int64_t blocked_subtasks = 0; ///< total |U| across inversions
  std::int64_t violations = 0;       ///< witness-set failures
  std::vector<std::string> details;

  [[nodiscard]] bool holds() const { return violations == 0; }
};

/// Verifies Lemma 2 on every slot of a traced PD^B schedule.  The trace
/// must come from the same run as `sched` (pass the same PdbOptions).
[[nodiscard]] Lemma2Report check_lemma2(const TaskSystem& sys,
                                        const SlotSchedule& sched,
                                        const PdbTrace& trace);

}  // namespace pfair
