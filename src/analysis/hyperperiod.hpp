// Hyperperiod analysis for synchronous periodic systems.
//
// The schedule produced by a deterministic Pfair policy for a synchronous
// periodic system is itself eventually periodic: at multiples of the
// hyperperiod H = lcm of the task periods, the scheduler state (per-task
// window position, availability, lag) can recur, and from the first
// recurrence onward the slot pattern — idle slots included — repeats
// with period H.  Fully utilized systems recur at t = 0 (all lags are
// zero at every multiple of H); under-utilized systems may need a
// transient prefix before the idle pattern locks in.  This gives an
// exact, finite verification horizon: validity over one established
// cycle implies validity forever.  `check_schedule_periodicity` verifies
// the repetition property on a concrete schedule using the same
// canonical state fingerprints that drive online cycle detection.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// lcm of the task periods.  Requires at least one task; throws if the
/// lcm overflows a practical bound (2^40 slots).
[[nodiscard]] std::int64_t hyperperiod(const TaskSystem& sys);

/// Result of the periodicity check.
struct PeriodicityReport {
  bool applicable = false;     ///< zero-phase periodic, horizon covers 2H
  bool periodic = false;       ///< slot pattern of period H confirmed
  bool fully_utilized = false; ///< util == M (recurrence forced at t = 0)
  std::int64_t hyper = 0;
  std::int64_t prefix_slots = 0;  ///< first boundary t0 where state recurs
  std::int64_t periods_compared = 0;
};

/// Verifies that a (complete, valid) schedule of a zero-phase synchronous
/// periodic system repeats with the hyperperiod: scanning state
/// fingerprints at multiples of H, it finds the first boundary t0 with
/// fp(t0) == fp(t0 + H) and then confirms explicitly that for every
/// subtask placed in [t0, t0 + H) the successor-by-allocation subtask is
/// placed exactly H slots later.  Idle slots are part of the repeating
/// pattern, so utilization < M is supported; fully utilized systems are
/// additionally cross-checked with the direct [0, H) vs [H, 2H) slot-set
/// comparison.  Requires the schedule to cover t0 + 2H slots.
[[nodiscard]] PeriodicityReport check_schedule_periodicity(
    const TaskSystem& sys, const SlotSchedule& sched);

}  // namespace pfair
