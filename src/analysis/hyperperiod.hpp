// Hyperperiod analysis for synchronous periodic systems.
//
// The schedule produced by a deterministic Pfair policy for a synchronous
// periodic system is itself periodic: at every multiple of the
// hyperperiod H = lcm of the task periods, all fully-loaded systems
// return to the initial state (every task's allocation count equals its
// fluid share, so all lags are zero), and the slot pattern repeats.
// This gives an exact, finite verification horizon: validity over [0, H)
// implies validity forever.  `check_schedule_periodicity` verifies the
// repetition property on a concrete schedule.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// lcm of the task periods.  Requires at least one task; throws if the
/// lcm overflows a practical bound (2^40 slots).
[[nodiscard]] std::int64_t hyperperiod(const TaskSystem& sys);

/// Result of the periodicity check.
struct PeriodicityReport {
  bool applicable = false;  ///< synchronous periodic, util == M, horizon OK
  bool periodic = false;    ///< slot pattern of period H confirmed
  std::int64_t hyper = 0;
  std::int64_t periods_compared = 0;
};

/// Verifies that a (complete, valid) schedule of a *fully utilized*
/// synchronous periodic system repeats with the hyperperiod: the subtask
/// scheduled for task T in slot t + H is exactly the successor-by-e of
/// the one in slot t.  Requires the schedule to cover at least two
/// hyperperiods.
[[nodiscard]] PeriodicityReport check_schedule_periodicity(
    const TaskSystem& sys, const SlotSchedule& sched);

}  // namespace pfair
