#include "analysis/switching.hpp"

#include <algorithm>
#include <vector>

namespace pfair {

namespace {

/// One executed quantum, normalized across schedule kinds.
struct Exec {
  std::int64_t start_ticks;
  std::int64_t end_ticks;
  int proc;
  std::int32_t task;
};

SwitchingStats from_execs(std::vector<Exec> execs, int processors) {
  SwitchingStats st;
  st.subtasks = static_cast<std::int64_t>(execs.size());

  // Context switches: per processor, occupant changes in time order.
  std::sort(execs.begin(), execs.end(), [](const Exec& a, const Exec& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    return a.start_ticks < b.start_ticks;
  });
  for (int p = 0; p < processors; ++p) {
    std::int32_t occupant = -1;
    for (const Exec& e : execs) {
      if (e.proc != p) continue;
      if (occupant != -1 && occupant != e.task) ++st.context_switches;
      occupant = e.task;
    }
  }
  return st;
}

}  // namespace

SwitchingStats measure_switching(const TaskSystem& sys,
                                 const SlotSchedule& sched) {
  std::vector<Exec> execs;
  SwitchingStats extra;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    SlotPlacement prev;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement p = sched.placement(SubtaskRef{k, s});
      if (!p.scheduled()) continue;
      execs.push_back(Exec{p.slot * kTicksPerSlot,
                           (p.slot + 1) * kTicksPerSlot, p.proc, k});
      if (prev.scheduled()) {
        if (p.proc != prev.proc) ++extra.migrations;
        if (p.slot != prev.slot + 1) ++extra.job_breaks;
      }
      prev = p;
    }
  }
  SwitchingStats st = from_execs(std::move(execs), sys.processors());
  st.migrations = extra.migrations;
  st.job_breaks = extra.job_breaks;
  return st;
}

SwitchingStats measure_switching(const TaskSystem& sys,
                                 const DvqSchedule& sched) {
  std::vector<Exec> execs;
  SwitchingStats extra;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    const DvqPlacement* prev = nullptr;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const DvqPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.placed) continue;
      execs.push_back(Exec{p.start.raw_ticks(), p.completion().raw_ticks(),
                           p.proc, k});
      if (prev != nullptr) {
        if (p.proc != prev->proc) ++extra.migrations;
        if (p.start != prev->completion()) ++extra.job_breaks;
      }
      prev = &p;
    }
  }
  SwitchingStats st = from_execs(std::move(execs), sys.processors());
  st.migrations = extra.migrations;
  st.job_breaks = extra.job_breaks;
  return st;
}

}  // namespace pfair
