#include "analysis/tardiness.hpp"

#include <algorithm>

#include "dvq/dvq_cycle.hpp"
#include "sched/compressed_schedule.hpp"

namespace pfair {

std::int64_t subtask_tardiness(const TaskSystem& sys,
                               const SlotSchedule& sched,
                               const SubtaskRef& ref) {
  const Subtask& sub = sys.subtask(ref);
  const std::int64_t completion = sched.completion_slot(ref);
  return std::max<std::int64_t>(0, completion - sub.deadline);
}

std::int64_t subtask_tardiness_ticks(const TaskSystem& sys,
                                     const DvqSchedule& sched,
                                     const SubtaskRef& ref) {
  const Subtask& sub = sys.subtask(ref);
  const DvqPlacement& p = sched.placement(ref);
  PFAIR_REQUIRE(p.placed, "subtask " << ref << " not scheduled");
  const Time late = p.completion() - Time::slots(sub.deadline);
  return std::max<std::int64_t>(0, late.raw_ticks());
}

namespace {

template <class Sched, class TardFn, class PlacedFn>
TardinessSummary measure(const TaskSystem& sys, const Sched& sched,
                         TardFn tard_ticks, PlacedFn placed) {
  TardinessSummary sum;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      ++sum.total_subtasks;
      if (!placed(sched, ref)) {
        ++sum.unscheduled;
        continue;
      }
      const std::int64_t t = tard_ticks(sys, sched, ref);
      if (t > 0) {
        ++sum.late_subtasks;
        sum.total_ticks += t;
        if (t > sum.max_ticks) {
          sum.max_ticks = t;
          sum.worst = ref;
        }
      }
    }
  }
  return sum;
}

}  // namespace

TardinessSummary measure_tardiness(const TaskSystem& sys,
                                   const SlotSchedule& sched) {
  return measure(
      sys, sched,
      [](const TaskSystem& y, const SlotSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness(y, c, r) * kTicksPerSlot;
      },
      [](const SlotSchedule& c, const SubtaskRef& r) {
        return c.placement(r).scheduled();
      });
}

TardinessSummary measure_tardiness(const TaskSystem& sys,
                                   const DvqSchedule& sched) {
  return measure(
      sys, sched,
      [](const TaskSystem& y, const DvqSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness_ticks(y, c, r);
      },
      [](const DvqSchedule& c, const SubtaskRef& r) {
        return c.placement(r).placed;
      });
}

namespace {

template <class Sched, class TardFn, class PlacedFn>
std::vector<std::int64_t> values(const TaskSystem& sys, const Sched& sched,
                                 TardFn tard_ticks, PlacedFn placed) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(sys.total_subtasks()));
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (!placed(sched, ref)) continue;
      out.push_back(tard_ticks(sys, sched, ref));
    }
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> tardiness_values_ticks(const TaskSystem& sys,
                                                 const SlotSchedule& sched) {
  return values(
      sys, sched,
      [](const TaskSystem& y, const SlotSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness(y, c, r) * kTicksPerSlot;
      },
      [](const SlotSchedule& c, const SubtaskRef& r) {
        return c.placement(r).scheduled();
      });
}

std::vector<std::int64_t> tardiness_values_ticks(const TaskSystem& sys,
                                                 const DvqSchedule& sched) {
  return values(
      sys, sched,
      [](const TaskSystem& y, const DvqSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness_ticks(y, c, r);
      },
      [](const DvqSchedule& c, const SubtaskRef& r) {
        return c.placement(r).placed;
      });
}

namespace {

template <class Sched, class TardFn, class PlacedFn>
void record_metrics(const TaskSystem& sys, const Sched& sched,
                    MetricsRegistry& reg, TardFn tard_ticks,
                    PlacedFn placed) {
  Histogram& overall = reg.histogram("sched.tardiness_ticks");
  std::int64_t max_ticks = 0, unscheduled = 0;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    Histogram& per_task =
        reg.histogram("task." + task.name() + ".tardiness_ticks");
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (!placed(sched, ref)) {
        ++unscheduled;
        continue;
      }
      const std::int64_t t = tard_ticks(sys, sched, ref);
      overall.add(t);
      per_task.add(t);
      max_ticks = std::max(max_ticks, t);
    }
  }
  reg.gauge("sched.tardiness_max_ticks").set_max(max_ticks);
  reg.gauge("sched.unscheduled_subtasks").set(unscheduled);
}

}  // namespace

void record_tardiness_metrics(const TaskSystem& sys,
                              const SlotSchedule& sched,
                              MetricsRegistry& reg) {
  record_metrics(
      sys, sched, reg,
      [](const TaskSystem& y, const SlotSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness(y, c, r) * kTicksPerSlot;
      },
      [](const SlotSchedule& c, const SubtaskRef& r) {
        return c.placement(r).scheduled();
      });
}

void record_tardiness_metrics(const TaskSystem& sys,
                              const DvqSchedule& sched,
                              MetricsRegistry& reg) {
  record_metrics(
      sys, sched, reg,
      [](const TaskSystem& y, const DvqSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness_ticks(y, c, r);
      },
      [](const DvqSchedule& c, const SubtaskRef& r) {
        return c.placement(r).placed;
      });
}

std::int64_t subtask_tardiness(const TaskSystem& sys,
                               const CycleSchedule& sched,
                               const SubtaskRef& ref) {
  const Subtask& sub = sys.subtask(ref);
  const std::int64_t completion = sched.completion_slot(ref);
  return std::max<std::int64_t>(0, completion - sub.deadline);
}

std::int64_t subtask_tardiness_ticks(const TaskSystem& sys,
                                     const DvqCycleSchedule& sched,
                                     const SubtaskRef& ref) {
  const Subtask& sub = sys.subtask(ref);
  const DvqPlacement p = sched.placement(ref);
  PFAIR_REQUIRE(p.placed, "subtask " << ref << " not scheduled");
  const Time late = p.completion() - Time::slots(sub.deadline);
  return std::max<std::int64_t>(0, late.raw_ticks());
}

TardinessSummary measure_tardiness(const TaskSystem& sys,
                                   const CycleSchedule& sched) {
  return measure(
      sys, sched,
      [](const TaskSystem& y, const CycleSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness(y, c, r) * kTicksPerSlot;
      },
      [](const CycleSchedule& c, const SubtaskRef& r) {
        return c.placement(r).scheduled();
      });
}

TardinessSummary measure_tardiness(const TaskSystem& sys,
                                   const DvqCycleSchedule& sched) {
  return measure(
      sys, sched,
      [](const TaskSystem& y, const DvqCycleSchedule& c,
         const SubtaskRef& r) { return subtask_tardiness_ticks(y, c, r); },
      [](const DvqCycleSchedule& c, const SubtaskRef& r) {
        return c.placement(r).placed;
      });
}

std::vector<std::int64_t> tardiness_values_ticks(const TaskSystem& sys,
                                                 const CycleSchedule& sched) {
  return values(
      sys, sched,
      [](const TaskSystem& y, const CycleSchedule& c, const SubtaskRef& r) {
        return subtask_tardiness(y, c, r) * kTicksPerSlot;
      },
      [](const CycleSchedule& c, const SubtaskRef& r) {
        return c.placement(r).scheduled();
      });
}

std::vector<std::int64_t> tardiness_values_ticks(
    const TaskSystem& sys, const DvqCycleSchedule& sched) {
  return values(
      sys, sched,
      [](const TaskSystem& y, const DvqCycleSchedule& c,
         const SubtaskRef& r) { return subtask_tardiness_ticks(y, c, r); },
      [](const DvqCycleSchedule& c, const SubtaskRef& r) {
        return c.placement(r).placed;
      });
}

}  // namespace pfair
