// Tardiness — Eq. (7): tardiness(T_i, S) = max(0, completion - d(T_i)).
#pragma once

#include <cstdint>
#include <vector>

#include "dvq/dvq_schedule.hpp"
#include "obs/metrics.hpp"
#include "sched/schedule.hpp"

namespace pfair {

class CycleSchedule;     // sched/compressed_schedule.hpp
class DvqCycleSchedule;  // dvq/dvq_cycle.hpp

/// Tardiness summary of one run.  Slot schedules report in whole slots;
/// DVQ schedules in ticks (one quantum = kTicksPerSlot ticks).
struct TardinessSummary {
  std::int64_t max_ticks = 0;       ///< max subtask tardiness
  std::int64_t total_ticks = 0;     ///< sum over subtasks
  std::int64_t late_subtasks = 0;   ///< subtasks with tardiness > 0
  std::int64_t total_subtasks = 0;
  std::int64_t unscheduled = 0;     ///< never placed (horizon hit)
  SubtaskRef worst;                 ///< a subtask attaining max_ticks

  [[nodiscard]] bool none_late() const {
    return late_subtasks == 0 && unscheduled == 0;
  }
  /// max tardiness in quanta, rounded up (for "at most one quantum").
  [[nodiscard]] std::int64_t max_quanta_ceil() const {
    return (max_ticks + kTicksPerSlot - 1) / kTicksPerSlot;
  }
  [[nodiscard]] double max_quanta() const {
    return static_cast<double>(max_ticks) /
           static_cast<double>(kTicksPerSlot);
  }
};

/// Tardiness of one subtask in a slot schedule, in slots (completion is
/// slot + 1).  Requires the subtask to be scheduled.
[[nodiscard]] std::int64_t subtask_tardiness(const TaskSystem& sys,
                                             const SlotSchedule& sched,
                                             const SubtaskRef& ref);

/// Tardiness of one subtask in a DVQ schedule, in ticks.
[[nodiscard]] std::int64_t subtask_tardiness_ticks(const TaskSystem& sys,
                                                   const DvqSchedule& sched,
                                                   const SubtaskRef& ref);

/// Whole-schedule summaries.
[[nodiscard]] TardinessSummary measure_tardiness(const TaskSystem& sys,
                                                 const SlotSchedule& sched);
[[nodiscard]] TardinessSummary measure_tardiness(const TaskSystem& sys,
                                                 const DvqSchedule& sched);

/// Per-subtask tardiness values in ticks (slot schedules are scaled), for
/// distribution plots.  Unscheduled subtasks are skipped.
[[nodiscard]] std::vector<std::int64_t> tardiness_values_ticks(
    const TaskSystem& sys, const SlotSchedule& sched);
[[nodiscard]] std::vector<std::int64_t> tardiness_values_ticks(
    const TaskSystem& sys, const DvqSchedule& sched);

/// Records the schedule's tardiness distribution into `reg`: the overall
/// "sched.tardiness_ticks" histogram plus one
/// "task.<name>.tardiness_ticks" histogram per task, and gauges
/// "sched.tardiness_max_ticks" / "sched.unscheduled_subtasks" — the
/// snapshot the per-run metrics JSON reports.  Unscheduled subtasks are
/// counted, not histogrammed.
void record_tardiness_metrics(const TaskSystem& sys,
                              const SlotSchedule& sched,
                              MetricsRegistry& reg);
void record_tardiness_metrics(const TaskSystem& sys,
                              const DvqSchedule& sched,
                              MetricsRegistry& reg);

/// Cycle-compressed schedules run through the identical measurements —
/// synthesized placements are resolved on demand, never materialized.
[[nodiscard]] std::int64_t subtask_tardiness(const TaskSystem& sys,
                                             const CycleSchedule& sched,
                                             const SubtaskRef& ref);
[[nodiscard]] std::int64_t subtask_tardiness_ticks(
    const TaskSystem& sys, const DvqCycleSchedule& sched,
    const SubtaskRef& ref);
[[nodiscard]] TardinessSummary measure_tardiness(const TaskSystem& sys,
                                                 const CycleSchedule& sched);
[[nodiscard]] TardinessSummary measure_tardiness(
    const TaskSystem& sys, const DvqCycleSchedule& sched);
[[nodiscard]] std::vector<std::int64_t> tardiness_values_ticks(
    const TaskSystem& sys, const CycleSchedule& sched);
[[nodiscard]] std::vector<std::int64_t> tardiness_values_ticks(
    const TaskSystem& sys, const DvqCycleSchedule& sched);

}  // namespace pfair
