#include "analysis/lag.hpp"

#include "sched/compressed_schedule.hpp"

namespace pfair {

namespace {

// The lag analyses read schedules only through placement(); templating
// lets cycle-compressed schedules reuse them unchanged (synthesized
// placements resolved on demand).
template <class Sched>
Rational lag_impl(const TaskSystem& sys, const Sched& sched,
                  std::int64_t task, std::int64_t t) {
  PFAIR_REQUIRE(t >= 0, "lag at negative time");
  const Task& tk = sys.task(task);
  std::int64_t allocated = 0;
  for (std::int64_t s = 0; s < tk.num_subtasks(); ++s) {
    const SlotPlacement p = sched.placement(
        SubtaskRef{static_cast<std::int32_t>(task),
                   static_cast<std::int32_t>(s)});
    if (p.scheduled() && p.slot < t) ++allocated;
  }
  return tk.weight().value() * Rational(t) - Rational(allocated);
}

template <class Sched>
LagRange lag_range_impl(const TaskSystem& sys, const Sched& sched,
                        std::int64_t horizon) {
  LagRange range;
  bool first = true;
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& tk = sys.task(k);
    const Rational w = tk.weight().value();
    // Incremental: lag(t+1) = lag(t) + w - scheduled_in_slot(t).
    std::vector<bool> in_slot(static_cast<std::size_t>(horizon), false);
    for (std::int64_t s = 0; s < tk.num_subtasks(); ++s) {
      const SlotPlacement p = sched.placement(
          SubtaskRef{static_cast<std::int32_t>(k),
                     static_cast<std::int32_t>(s)});
      if (p.scheduled() && p.slot < horizon) {
        in_slot[static_cast<std::size_t>(p.slot)] = true;
      }
    }
    Rational cur;  // lag at t = 0 is 0
    for (std::int64_t t = 0; t <= horizon; ++t) {
      if (first || cur < range.min) range.min = cur;
      if (first || cur > range.max) range.max = cur;
      first = false;
      if (t < horizon) {
        cur += w;
        if (in_slot[static_cast<std::size_t>(t)]) cur -= Rational(1);
      }
    }
  }
  return range;
}

}  // namespace

Rational lag(const TaskSystem& sys, const SlotSchedule& sched,
             std::int64_t task, std::int64_t t) {
  return lag_impl(sys, sched, task, t);
}

Rational lag(const TaskSystem& sys, const CycleSchedule& sched,
             std::int64_t task, std::int64_t t) {
  return lag_impl(sys, sched, task, t);
}

LagRange lag_range(const TaskSystem& sys, const SlotSchedule& sched,
                   std::int64_t horizon) {
  return lag_range_impl(sys, sched, horizon);
}

LagRange lag_range(const TaskSystem& sys, const CycleSchedule& sched,
                   std::int64_t horizon) {
  return lag_range_impl(sys, sched, horizon);
}

bool is_pfair(const TaskSystem& sys, const SlotSchedule& sched,
              std::int64_t horizon) {
  const LagRange r = lag_range(sys, sched, horizon);
  return r.min > Rational(-1) && r.max < Rational(1);
}

bool is_pfair(const TaskSystem& sys, const CycleSchedule& sched,
              std::int64_t horizon) {
  const LagRange r = lag_range(sys, sched, horizon);
  return r.min > Rational(-1) && r.max < Rational(1);
}

}  // namespace pfair
