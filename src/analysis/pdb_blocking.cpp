#include "analysis/pdb_blocking.hpp"

#include <map>
#include <sstream>

namespace pfair {

Lemma2Report check_lemma2(const TaskSystem& sys, const SlotSchedule& sched,
                          const PdbTrace& trace) {
  Lemma2Report rep;
  const PriorityOrder order(sys, Policy::kPd2);

  // Group the trace's decisions by slot, in decision order.
  std::map<std::int64_t, std::vector<const PdbDecision*>> by_slot;
  for (const PdbDecision& d : trace.decisions) by_slot[d.slot].push_back(&d);

  // Flat subtask view with readiness data.
  struct Item {
    SubtaskRef ref;
    std::int64_t eligible;
    std::int64_t slot;       // own placement
    std::int64_t pred_slot;  // -1 when first subtask
  };
  std::vector<Item> items;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::int64_t prev = -1;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.scheduled()) continue;  // truncated run
      items.push_back(
          Item{SubtaskRef{k, s}, task.subtask(s).eligible, p.slot, prev});
      prev = p.slot;
    }
  }

  for (const auto& [t, decs] : by_slot) {
    ++rep.slots_checked;
    for (std::size_t r = 0; r < decs.size(); ++r) {
      const SubtaskRef ti = decs[r]->chosen;
      // Lemma 2 hypothesis (20): e(T_i) <= t - 1.
      if (sys.subtask(ti).eligible > t - 1) continue;

      // U: eligible by t-1, ready at or before t (predecessor completed
      // by t), scheduled strictly after t, strictly higher priority.
      std::vector<const Item*> u;
      for (const Item& it : items) {
        if (it.eligible > t - 1) continue;
        if (it.pred_slot >= t && it.pred_slot != -1) continue;
        if (it.slot <= t) continue;
        if (!order.strictly_higher(it.ref, ti)) continue;
        u.push_back(&it);
      }
      if (u.empty()) continue;
      ++rep.inversions;
      rep.blocked_subtasks += static_cast<std::int64_t>(u.size());

      // V: subtasks decided in this slot *after* T_i, with e = t, each
      // with priority at least every member of U.
      std::int64_t v = 0;
      for (std::size_t r2 = r + 1; r2 < decs.size(); ++r2) {
        const SubtaskRef vk = decs[r2]->chosen;
        if (sys.subtask(vk).eligible != t) continue;
        bool dominates = true;
        for (const Item* uj : u) {
          if (!order.at_least(vk, uj->ref)) {
            dominates = false;
            break;
          }
        }
        if (dominates) ++v;
      }
      if (v < static_cast<std::int64_t>(u.size())) {
        ++rep.violations;
        if (rep.details.size() < 8) {
          std::ostringstream os;
          os << "slot " << t << ", " << ti << ": |U|=" << u.size()
             << " but only " << v << " witnesses";
          rep.details.push_back(os.str());
        }
      }
    }
  }
  return rep;
}

}  // namespace pfair
