#include "analysis/hyperperiod.hpp"

#include <numeric>

#include "core/rational.hpp"
#include "sched/state_hash.hpp"

namespace pfair {

std::int64_t hyperperiod(const TaskSystem& sys) {
  PFAIR_REQUIRE(sys.num_tasks() > 0, "hyperperiod of an empty system");
  std::int64_t h = 1;
  constexpr std::int64_t kBound = std::int64_t{1} << 40;
  for (const Task& t : sys.tasks()) {
    h = std::lcm(h, t.weight().p);
    PFAIR_REQUIRE(h <= kBound, "hyperperiod exceeds 2^40 slots");
  }
  return h;
}

namespace {

// Cross-check used for fully utilized systems when the state recurs at
// t = 0 — the original, fingerprint-free formulation: the slot set in
// [H, 2H) must equal the slot set in [0, H) shifted by H.
bool slot_sets_repeat(const TaskSystem& sys, const SlotSchedule& sched,
                      std::int64_t hyper) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::vector<std::int64_t> first, second;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.scheduled()) continue;  // beyond the covered horizon
      if (p.slot < hyper) {
        first.push_back(p.slot);
      } else if (p.slot < 2 * hyper) {
        second.push_back(p.slot - hyper);
      }
    }
    if (first != second) return false;
  }
  return true;
}

// Explicit repetition proof from a state match at t0: every subtask
// placed in [t0, t0 + H) must have its successor-by-allocation (seq + A
// where A = e_raw * H / p_raw is the fluid share per hyperperiod) placed
// exactly H slots later.  Combined with strict per-task slot ordering
// (ScheduleStateScanner::ok), this pins the whole window's repetition.
bool window_repeats(const TaskSystem& sys, const SlotSchedule& sched,
                    std::int64_t t0, std::int64_t hyper) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    const std::int64_t per_cycle =
        task.weight().e * (hyper / task.weight().p);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement& p = sched.placement(SubtaskRef{k, s});
      // Unscheduled subtasks sit beyond the covered horizon — past the
      // window under test (the scanner's ok() already pinned them to a
      // contiguous tail).
      if (!p.scheduled()) continue;
      if (p.slot < t0 || p.slot >= t0 + hyper) continue;
      const std::int64_t succ = s + per_cycle;
      if (succ >= task.num_subtasks()) return false;
      const SlotPlacement& q =
          sched.placement(SubtaskRef{k, static_cast<std::int32_t>(succ)});
      if (!q.scheduled() || q.slot != p.slot + hyper) return false;
    }
  }
  return true;
}

}  // namespace

PeriodicityReport check_schedule_periodicity(const TaskSystem& sys,
                                             const SlotSchedule& sched) {
  PeriodicityReport rep;
  rep.hyper = hyperperiod(sys);
  rep.fully_utilized =
      sys.total_utilization() == Rational(sys.processors());

  // Applicability: exact state fingerprints must exist (zero-phase
  // periodic tasks) and the schedule must cover at least two
  // hyperperiods so one candidate recurrence can be confirmed.
  if (!fingerprintable(sys)) return rep;
  if (fingerprint_period(sys) != rep.hyper) return rep;  // overflow guard
  if (sched.horizon() < 2 * rep.hyper) return rep;
  ScheduleStateScanner scan(sys, sched);
  if (!scan.ok()) return rep;
  rep.applicable = true;

  // Scan boundaries t0 = 0, H, 2H, ... for the first state recurrence
  // fp(t0) == fp(t0 + H); idle slots carry no state, so matching records
  // make the whole slot pattern — idle included — repeat.
  StateFingerprint prev = scan.at(0);
  for (std::int64_t t0 = 0; t0 + 2 * rep.hyper <= sched.horizon();
       t0 += rep.hyper) {
    StateFingerprint next = scan.at(t0 + rep.hyper);
    const bool match = prev.same_state(next);
    prev = std::move(next);
    if (!match) continue;
    rep.prefix_slots = t0;
    rep.periodic = window_repeats(sys, sched, t0, rep.hyper);
    if (rep.periodic && rep.fully_utilized && t0 == 0) {
      // Fully utilized systems recur from the start; the historical
      // slot-set comparison must agree with the fingerprint path.
      rep.periodic = slot_sets_repeat(sys, sched, rep.hyper);
    }
    rep.periods_compared = 2;
    return rep;
  }
  return rep;
}

}  // namespace pfair
