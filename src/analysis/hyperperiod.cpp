#include "analysis/hyperperiod.hpp"

#include <numeric>

#include "core/rational.hpp"

namespace pfair {

std::int64_t hyperperiod(const TaskSystem& sys) {
  PFAIR_REQUIRE(sys.num_tasks() > 0, "hyperperiod of an empty system");
  std::int64_t h = 1;
  constexpr std::int64_t kBound = std::int64_t{1} << 40;
  for (const Task& t : sys.tasks()) {
    h = std::lcm(h, t.weight().p);
    PFAIR_REQUIRE(h <= kBound, "hyperperiod exceeds 2^40 slots");
  }
  return h;
}

PeriodicityReport check_schedule_periodicity(const TaskSystem& sys,
                                             const SlotSchedule& sched) {
  PeriodicityReport rep;
  rep.hyper = hyperperiod(sys);

  // Applicability: synchronous periodic tasks, utilization exactly M
  // (with slack, the greedy scheduler's idle patterns need not repeat),
  // and at least two hyperperiods of schedule.
  for (const Task& t : sys.tasks()) {
    if (t.kind() != TaskKind::kPeriodic) return rep;
  }
  if (sys.total_utilization() != Rational(sys.processors())) return rep;
  if (sched.horizon() < 2 * rep.hyper) return rep;
  rep.applicable = true;

  // Per task: the slot set in window [H, 2H) must equal the slot set in
  // [0, H) shifted by H.
  rep.periodic = true;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    std::vector<std::int64_t> first, second;
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const SlotPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.scheduled()) {
        rep.periodic = false;
        return rep;
      }
      if (p.slot < rep.hyper) {
        first.push_back(p.slot);
      } else if (p.slot < 2 * rep.hyper) {
        second.push_back(p.slot - rep.hyper);
      }
    }
    if (first != second) {
      rep.periodic = false;
      return rep;
    }
  }
  rep.periods_compared = 2;
  return rep;
}

}  // namespace pfair
