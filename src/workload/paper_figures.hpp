// The exact task systems and yield scripts behind the paper's figures.
//
// Figures 1, 2 and 6 fully specify their task systems in the text; this
// module reconstructs them verbatim.  Figure 3's weights are not given in
// the text, so `fig3_scenario` *synthesizes* a task system with the same
// structure (documented in DESIGN.md): a subtask B_2 whose predecessor
// runs to an integral time t while another processor, freed early, is
// handed lower-priority work — producing predecessor blocking at t,
// witnessed by a higher-priority subtask released exactly at t.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "dvq/yield.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Fig. 1(a): one periodic task of weight 3/4 (windows [0,2) [1,3) [2,4)
/// repeating each period).  `jobs` controls how many periods are
/// materialized.
[[nodiscard]] TaskSystem fig1_periodic(std::int64_t jobs = 2);

/// Fig. 1(b): the IS variant — subtask T_3 released one slot late.
[[nodiscard]] TaskSystem fig1_intra_sporadic();

/// Fig. 1(c): the GIS variant — T_2 absent, T_3 one slot late.
[[nodiscard]] TaskSystem fig1_gis();

/// A figure task system paired with the yield script that drives it.
struct FigureScenario {
  TaskSystem system;
  std::shared_ptr<ScriptedYield> yields;
};

/// Fig. 2: A, B, C of weight 1/6 and D, E, F of weight 1/2 on M = 2;
/// the subtasks scheduled in slot 1 (A_1 and F_1 under PD2) yield `delta`
/// before the slot ends.  `periods` repeats the 6-slot pattern.
[[nodiscard]] FigureScenario fig2_scenario(Time delta = kTick,
                                           std::int64_t periods = 1);

/// Fig. 3-style predecessor-blocking scenario on M = 3 (see header note).
[[nodiscard]] FigureScenario fig3_scenario(Time delta = kTick);

/// Fig. 6: same weights as Fig. 2 (used for the k-compliance walkthrough).
[[nodiscard]] TaskSystem fig6_system();

/// Looks up a figure scenario by name — "fig1a", "fig1b", "fig1c",
/// "fig2", "fig3" or "fig6" — so CLI tools and scripts can name the
/// paper's systems directly.  Figures without a yield script come back
/// with a null `yields` (schedule them with FullQuantumYield, or under
/// the SFQ model).  Unknown names return nullopt.
[[nodiscard]] std::optional<FigureScenario> figure_scenario_by_name(
    std::string_view name);

/// Comma-separated list of the names figure_scenario_by_name accepts.
[[nodiscard]] const char* figure_scenario_names();

}  // namespace pfair
