#include "workload/generator.hpp"

#include <array>
#include <string>

namespace pfair {

const char* to_string(WeightClass c) {
  switch (c) {
    case WeightClass::kLight:
      return "light";
    case WeightClass::kHeavy:
      return "heavy";
    case WeightClass::kMixed:
      return "mixed";
    case WeightClass::kUniform:
      return "uniform";
  }
  return "?";
}

namespace {

/// Periods that all divide kBase, so any partial utilization sum has a
/// denominator dividing kBase and the filler weight below is exact.
constexpr std::int64_t kBase = 240;
constexpr std::array<std::int64_t, 10> kPeriods = {4,  5,  6,  8,  10,
                                                   12, 15, 16, 20, 24};

Weight draw_weight(Rng& rng, WeightClass cls) {
  const std::int64_t p = kPeriods[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(kPeriods.size()) - 1))];
  WeightClass c = cls;
  if (c == WeightClass::kMixed) {
    c = rng.chance(1, 2) ? WeightClass::kLight : WeightClass::kHeavy;
  }
  std::int64_t e;
  switch (c) {
    case WeightClass::kLight:
      e = rng.uniform(1, std::max<std::int64_t>(1, (p - 1) / 2));
      break;
    case WeightClass::kHeavy:
      e = rng.uniform((p + 1) / 2, p - 1);
      break;
    default:
      e = rng.uniform(1, p - 1);
      break;
  }
  return Weight(e, p);
}

}  // namespace

TaskSystem generate_periodic(const GeneratorConfig& cfg) {
  PFAIR_REQUIRE(cfg.target_util > Rational(0) &&
                    cfg.target_util <= Rational(cfg.processors),
                "target utilization " << cfg.target_util.str()
                                      << " out of (0, M]");
  PFAIR_REQUIRE(cfg.horizon >= 1, "horizon must be >= 1");
  Rng rng(cfg.seed);

  std::vector<Task> tasks;
  Rational remaining = cfg.target_util;
  int id = 0;
  // Draw until the remainder fits in a single filler task.  Every drawn
  // weight is < 1, so while remaining > 1 any draw is acceptable.
  while (remaining > Rational(1)) {
    const Weight w = draw_weight(rng, cfg.weights);
    tasks.push_back(Task::periodic("T" + std::to_string(id++), w,
                                   cfg.horizon, cfg.cache));
    remaining -= Rational(w.e, w.p);
  }
  // Exact filler: remaining = a/b with b | kBase (all drawn periods divide
  // kBase), so remaining = (a * kBase / b) / kBase.
  if (remaining > Rational(0)) {
    PFAIR_ASSERT_MSG(kBase % remaining.den() == 0,
                     "filler remainder " << remaining.str()
                                         << " has a period outside the set");
    const std::int64_t e = remaining.num() * (kBase / remaining.den());
    PFAIR_ASSERT(e >= 1 && e <= kBase);
    tasks.push_back(Task::periodic("T" + std::to_string(id++),
                                   Weight(e, kBase), cfg.horizon,
                                   cfg.cache));
  }
  TaskSystem sys(std::move(tasks), cfg.processors);
  PFAIR_ASSERT(sys.total_utilization() == cfg.target_util);
  return sys;
}

TaskSystem add_is_jitter(const TaskSystem& sys, std::int64_t max_jitter,
                         std::int64_t num, std::int64_t den,
                         std::uint64_t seed) {
  PFAIR_REQUIRE(max_jitter >= 0, "max_jitter must be >= 0");
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& t = sys.task(k);
    Rng trng = rng.split();
    std::vector<std::int64_t> offsets;
    offsets.reserve(static_cast<std::size_t>(t.num_subtasks()));
    std::int64_t theta = 0;
    for (std::int64_t s = 0; s < t.num_subtasks(); ++s) {
      theta = std::max(theta, t.subtask(s).theta);
      if (trng.chance(num, den)) theta += trng.uniform(0, max_jitter);
      offsets.push_back(theta);
    }
    tasks.push_back(Task::intra_sporadic(t.name() + "~", t.weight(), offsets,
                                         t.num_subtasks()));
  }
  return TaskSystem(std::move(tasks), sys.processors());
}

TaskSystem drop_subtasks(const TaskSystem& sys, std::int64_t num,
                         std::int64_t den, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& t = sys.task(k);
    Rng trng = rng.split();
    std::vector<Task::SubtaskSpec> specs;
    for (std::int64_t s = 0; s < t.num_subtasks(); ++s) {
      const Subtask& sub = t.subtask(s);
      if (s > 0 && trng.chance(num, den)) continue;
      specs.push_back(Task::SubtaskSpec{sub.index, sub.theta, sub.eligible});
    }
    tasks.push_back(Task::gis(t.name() + "-", t.weight(), specs));
  }
  return TaskSystem(std::move(tasks), sys.processors());
}

TaskSystem advance_eligibility(const TaskSystem& sys,
                               std::int64_t max_advance, std::int64_t num,
                               std::int64_t den, std::uint64_t seed) {
  PFAIR_REQUIRE(max_advance >= 0, "max_advance must be >= 0");
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(sys.num_tasks()));
  for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& t = sys.task(k);
    Rng trng = rng.split();
    std::vector<Task::SubtaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(t.num_subtasks()));
    std::int64_t floor_e = 0;  // keep Eq. (6): e nondecreasing
    for (std::int64_t s = 0; s < t.num_subtasks(); ++s) {
      const Subtask& sub = t.subtask(s);
      std::int64_t e = sub.eligible;
      if (trng.chance(num, den)) {
        e = std::max<std::int64_t>(0, sub.release -
                                          trng.uniform(0, max_advance));
      }
      e = std::min(e, sub.release);
      e = std::max(e, floor_e);
      floor_e = e;
      specs.push_back(Task::SubtaskSpec{sub.index, sub.theta, e});
    }
    tasks.push_back(Task::gis(t.name() + "<", t.weight(), specs));
  }
  return TaskSystem(std::move(tasks), sys.processors());
}

}  // namespace pfair
