#include "workload/dynamic.hpp"

#include <algorithm>
#include <sstream>

#include "tasks/group_deadline.hpp"
#include "tasks/windows.hpp"

namespace pfair {

std::int64_t retire_time(const DynamicTaskSpec& spec) {
  PFAIR_REQUIRE(spec.count >= 1, "task must release at least one subtask");
  const std::int64_t last = spec.count;  // final subtask index
  const std::int64_t local =
      spec.weight.heavy() ? group_deadline(spec.weight, last)
                          : pseudo_deadline(spec.weight, last);
  return spec.join + local;
}

DynamicBuildResult build_dynamic(std::vector<DynamicTaskSpec> specs,
                                 int processors) {
  PFAIR_REQUIRE(processors >= 1, "need at least one processor");
  DynamicBuildResult res;

  // Admission: process joins in time order; at each join, the retained
  // utilization is the sum over tasks whose [join, retire) interval
  // contains this instant (including the joiner itself).
  std::sort(specs.begin(), specs.end(),
            [](const DynamicTaskSpec& a, const DynamicTaskSpec& b) {
              if (a.join != b.join) return a.join < b.join;
              return a.name < b.name;
            });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Rational retained;
    const std::int64_t now = specs[i].join;
    for (std::size_t j = 0; j <= i; ++j) {
      if (retire_time(specs[j]) > now) {
        retained += specs[j].weight.value();
      }
    }
    res.peak_util = std::max(res.peak_util, retained);
    if (retained > Rational(processors)) {
      std::ostringstream os;
      os << "join of " << specs[i].name << " (wt "
         << specs[i].weight.str() << ") at t=" << now
         << " would raise retained utilization to " << retained.str()
         << " > M=" << processors;
      res.rejection = os.str();
      return res;
    }
  }
  res.admitted = true;

  // Materialize each admitted task as a GIS task: subtasks 1..count,
  // all offset by the join time.
  for (const DynamicTaskSpec& spec : specs) {
    std::vector<Task::SubtaskSpec> subs;
    const std::int64_t n = spec.count;
    subs.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 1; i <= n; ++i) {
      subs.push_back(Task::SubtaskSpec{i, spec.join, -1});
    }
    res.tasks.push_back(Task::gis(spec.name, spec.weight, subs));
  }
  return res;
}

TaskSystem build_dynamic_system(std::vector<DynamicTaskSpec> specs,
                                int processors) {
  DynamicBuildResult res = build_dynamic(std::move(specs), processors);
  PFAIR_REQUIRE(res.admitted, "dynamic scenario rejected: " << res.rejection);
  return TaskSystem(std::move(res.tasks), processors);
}

}  // namespace pfair
