// Randomized task-system generation for the experiment harness.
//
// Weights are drawn from class-constrained rationals with periods from a
// divisor-friendly set (all dividing 240), so that exact utilization
// targets can be hit with a single filler task and all window arithmetic
// stays small.  IS jitter and GIS drops are applied as transforms on a
// generated periodic system, preserving Eqs. (5)/(6) by construction.
#pragma once

#include <cstdint>

#include "core/rational.hpp"
#include "core/rng.hpp"
#include "tasks/task_system.hpp"

namespace pfair {

/// Which part of the weight range tasks are drawn from.
enum class WeightClass {
  kLight,    ///< wt <  1/2
  kHeavy,    ///< wt in [1/2, 1)
  kMixed,    ///< coin-flip between light and heavy
  kUniform,  ///< e uniform in [1, p-1]
};

[[nodiscard]] const char* to_string(WeightClass c);

struct GeneratorConfig {
  int processors = 2;
  /// Exact total utilization; Rational(processors) = fully loaded.
  /// Must be > 0 and <= processors.
  Rational target_util = Rational(2);
  WeightClass weights = WeightClass::kMixed;
  /// Subtasks are materialized for releases in [0, horizon).
  std::int64_t horizon = 48;
  std::uint64_t seed = 1;
  /// Window-table cache shared by the generated tasks; nullptr uses the
  /// process-wide WindowTableCache::global().
  WindowTableCache* cache = nullptr;
};

/// Generates a synchronous periodic system whose total utilization equals
/// `target_util` exactly (a final filler task absorbs the remainder).
[[nodiscard]] TaskSystem generate_periodic(const GeneratorConfig& cfg);

/// IS transform: each subtask's offset grows by a random increment in
/// [0, max_jitter] with probability num/den (offsets stay nondecreasing —
/// Eq. (5) — by construction).
[[nodiscard]] TaskSystem add_is_jitter(const TaskSystem& sys,
                                       std::int64_t max_jitter,
                                       std::int64_t num, std::int64_t den,
                                       std::uint64_t seed);

/// GIS transform: each subtask after the first is removed with
/// probability num/den.
[[nodiscard]] TaskSystem drop_subtasks(const TaskSystem& sys,
                                       std::int64_t num, std::int64_t den,
                                       std::uint64_t seed);

/// IS-eligibility transform: with probability num/den a subtask becomes
/// eligible up to `max_advance` slots *before* its release — the e < r
/// freedom of Eq. (6) ("a subtask can become eligible before its
/// 'release' time"), kept nondecreasing across the sequence.
[[nodiscard]] TaskSystem advance_eligibility(const TaskSystem& sys,
                                             std::int64_t max_advance,
                                             std::int64_t num,
                                             std::int64_t den,
                                             std::uint64_t seed);

}  // namespace pfair
