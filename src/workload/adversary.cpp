#include "workload/adversary.hpp"

#include <tuple>
#include <vector>

#include "analysis/tardiness.hpp"
#include "dvq/dvq_scheduler.hpp"

namespace pfair {

namespace {

/// Search objective, compared lexicographically: the max tardiness is
/// what we report; total tardiness and the sum of completion times act
/// as gradient on the zero-miss plateau (later completions = closer to
/// a miss).
struct Objective {
  std::int64_t max_ticks = 0;
  std::int64_t total_ticks = 0;
  std::int64_t completion_sum = 0;

  friend bool operator>(const Objective& a, const Objective& b) {
    return std::tie(a.max_ticks, a.total_ticks, a.completion_sum) >
           std::tie(b.max_ticks, b.total_ticks, b.completion_sum);
  }
};

/// Dense yield mask over all subtasks, evaluated by one DVQ run.
struct Candidate {
  std::vector<std::vector<bool>> yields;  // [task][seq]: true = early

  explicit Candidate(const TaskSystem& sys) {
    yields.resize(static_cast<std::size_t>(sys.num_tasks()));
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      yields[static_cast<std::size_t>(k)].assign(
          static_cast<std::size_t>(sys.task(k).num_subtasks()), false);
    }
  }

  void flip(const SubtaskRef& ref) {
    auto cell = yields[static_cast<std::size_t>(ref.task)].begin() +
                ref.seq;
    *cell = !*cell;
  }

  [[nodiscard]] std::shared_ptr<ScriptedYield> to_script(
      const TaskSystem& sys, Time delta) const {
    auto script = std::make_shared<ScriptedYield>();
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        if (yields[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(s)]) {
          script->set(SubtaskRef{k, s}, kQuantum - delta);
        }
      }
    }
    return script;
  }
};

}  // namespace

AdversaryResult find_adversarial_yields(const TaskSystem& sys,
                                        const AdversaryOptions& opts) {
  PFAIR_REQUIRE(opts.delta > Time() && opts.delta < kQuantum,
                "delta must lie in (0, 1)");
  PFAIR_REQUIRE(opts.sweeps >= 1 && opts.random_restarts >= 0,
                "bad search parameters");

  AdversaryResult best;
  best.max_tardiness_ticks = -1;

  std::vector<SubtaskRef> all;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      all.push_back(SubtaskRef{k, s});
    }
  }

  auto evaluate = [&](const Candidate& c) {
    ++best.evaluations;
    const auto script = c.to_script(sys, opts.delta);
    DvqOptions dopts;
    dopts.policy = opts.policy;
    const DvqSchedule sched = schedule_dvq(sys, *script, dopts);
    Objective obj;
    const TardinessSummary sum = measure_tardiness(sys, sched);
    obj.max_ticks = sum.max_ticks;
    obj.total_ticks = sum.total_ticks;
    for (const SubtaskRef& ref : all) {
      const DvqPlacement& p = sched.placement(ref);
      if (p.placed) obj.completion_sum += p.completion().raw_ticks();
    }
    return obj;
  };

  Rng rng(opts.seed);
  for (int restart = 0; restart <= opts.random_restarts; ++restart) {
    Candidate cur(sys);
    if (restart > 0) {
      for (auto& row : cur.yields) {
        for (std::size_t i = 0; i < row.size(); ++i) {
          row[i] = rng.chance(1, 2);
        }
      }
    }
    Objective cur_val = evaluate(cur);

    for (int sweep = 0; sweep < opts.sweeps; ++sweep) {
      bool improved = false;
      // Single toggles.
      for (const SubtaskRef& ref : all) {
        cur.flip(ref);
        const Objective val = evaluate(cur);
        if (val > cur_val) {
          cur_val = val;
          improved = true;
        } else {
          cur.flip(ref);
        }
      }
      // Pair toggles, only to escape a plateau.
      if (!improved && opts.pair_pass) {
        for (std::size_t i = 0; i < all.size() && !improved; ++i) {
          for (std::size_t j = i + 1; j < all.size() && !improved; ++j) {
            cur.flip(all[i]);
            cur.flip(all[j]);
            const Objective val = evaluate(cur);
            if (val > cur_val) {
              cur_val = val;
              improved = true;
            } else {
              cur.flip(all[i]);
              cur.flip(all[j]);
            }
          }
        }
      }
      if (!improved) break;
    }
    if (cur_val.max_ticks > best.max_tardiness_ticks) {
      best.max_tardiness_ticks = cur_val.max_ticks;
      best.script = cur.to_script(sys, opts.delta);
    }
  }
  PFAIR_ASSERT(best.script != nullptr);
  return best;
}

}  // namespace pfair
