#include "workload/paper_figures.hpp"

#include <utility>

#include "analysis/blocking.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {

TaskSystem fig1_periodic(std::int64_t jobs) {
  PFAIR_REQUIRE(jobs >= 1, "need at least one job");
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(3, 4), 4 * jobs));
  return TaskSystem(std::move(tasks), 1);
}

TaskSystem fig1_intra_sporadic() {
  // Subtask T_3 becomes eligible (and is released) one time unit late:
  // offsets 0, 0, 1 — windows [0,2), [1,3), [3,5).
  std::vector<Task> tasks;
  tasks.push_back(
      Task::intra_sporadic("T", Weight(3, 4), {0, 0, 1}, 3));
  return TaskSystem(std::move(tasks), 1);
}

TaskSystem fig1_gis() {
  // T_2 is absent and T_3 is released one time unit late.
  std::vector<Task> tasks;
  tasks.push_back(Task::gis("T", Weight(3, 4),
                            {Task::SubtaskSpec{1, 0, -1},
                             Task::SubtaskSpec{3, 1, -1}}));
  return TaskSystem(std::move(tasks), 1);
}

FigureScenario fig2_scenario(Time delta, std::int64_t periods) {
  PFAIR_REQUIRE(delta > Time() && delta < kQuantum, "delta must be in (0,1)");
  PFAIR_REQUIRE(periods >= 1, "need at least one period");
  const std::int64_t horizon = 6 * periods;
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 6), horizon));
  tasks.push_back(Task::periodic("B", Weight(1, 6), horizon));
  tasks.push_back(Task::periodic("C", Weight(1, 6), horizon));
  tasks.push_back(Task::periodic("D", Weight(1, 2), horizon));
  tasks.push_back(Task::periodic("E", Weight(1, 2), horizon));
  tasks.push_back(Task::periodic("F", Weight(1, 2), horizon));
  FigureScenario sc{TaskSystem(std::move(tasks), 2),
                    std::make_shared<ScriptedYield>()};
  // Under PD2, slot 1 holds A_1 and F_1 (D_1, E_1 win slot 0 by their
  // earlier deadline 2; at t = 1, F_1 still has deadline 2 and A_1 is the
  // first of the weight-1/6 tasks).  Both yield delta before the slot
  // ends — the paper's Fig. 2(b) trigger.
  sc.yields->set(SubtaskRef{0, 0}, kQuantum - delta);  // A_1
  sc.yields->set(SubtaskRef{5, 0}, kQuantum - delta);  // F_1
  return sc;
}

FigureScenario fig3_scenario(Time delta) {
  PFAIR_REQUIRE(delta > Time() && delta < kQuantum, "delta must be in (0,1)");
  // The paper's Fig. 3 does not specify its task weights, so this is a
  // reconstruction with the same structure, engineered so that under
  // PD2-DVQ subtask B_3 is *predecessor-blocked* at time 2:
  //
  //   slot 0: Y_1 [0,2) and B_1 [0,3) run full quanta;
  //   slot 1: Y_2 (deadline 3) and B_2 (ready at 1 via its IS eligibility
  //           time e = 1 < r = 2) are scheduled; Y_2 yields delta early;
  //   2-delta: the freed processor goes to L_1 (deadline 12 — far lower
  //           priority than the still-unready B_3), which runs a full
  //           quantum;
  //   t = 2:  B_2 completes exactly at 2, releasing B_3 (e = 1 < 2);
  //           the freed processor is taken by V_1, released exactly at 2
  //           with deadline 4 < d(B_3) = 8.  B_3 waits until 3 - delta
  //           while the lower-priority L_1 executes: predecessor
  //           blocking, with V = {V_1} witnessing Property PB.
  //
  // Total utilization 1/2 + 2/5 + 2/3 + 1/12 = 1.65 <= M = 2: feasible.
  std::vector<Task> tasks;
  // V: weight 1/2 arriving at time 2 — the higher-priority subtask
  // released exactly at the blocking instant.
  tasks.push_back(Task::periodic_phased("V", Weight(1, 2), 2, 10));
  // B: weight 2/5 GIS task; eligibility times pulled ahead of the
  // releases (legal under Eq. (6)) so B_2 runs [1,2) and B_3 is ready the
  // moment B_2 completes.
  tasks.push_back(Task::gis("B", Weight(2, 5),
                            {Task::SubtaskSpec{1, 0, 0},
                             Task::SubtaskSpec{2, 0, 1},
                             Task::SubtaskSpec{3, 0, 1}}));
  // Y: weight 2/3; its second subtask is the early yielder.
  tasks.push_back(Task::periodic("Y", Weight(2, 3), 9));
  // L: weight 1/12 background task — the lower-priority work that makes
  // the wait at t = 2 a genuine priority inversion.
  tasks.push_back(Task::periodic("L", Weight(1, 12), 12));

  FigureScenario sc{TaskSystem(std::move(tasks), 2),
                    std::make_shared<ScriptedYield>()};
  sc.yields->set(SubtaskRef{2, 1}, kQuantum - delta);  // Y_2
  return sc;
}

TaskSystem fig6_system() {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 6), 6));
  tasks.push_back(Task::periodic("B", Weight(1, 6), 6));
  tasks.push_back(Task::periodic("C", Weight(1, 6), 6));
  tasks.push_back(Task::periodic("D", Weight(1, 2), 6));
  tasks.push_back(Task::periodic("E", Weight(1, 2), 6));
  tasks.push_back(Task::periodic("F", Weight(1, 2), 6));
  return TaskSystem(std::move(tasks), 2);
}

std::optional<FigureScenario> figure_scenario_by_name(std::string_view name) {
  if (name == "fig1a") return FigureScenario{fig1_periodic(), nullptr};
  if (name == "fig1b") return FigureScenario{fig1_intra_sporadic(), nullptr};
  if (name == "fig1c") return FigureScenario{fig1_gis(), nullptr};
  if (name == "fig2") return fig2_scenario();
  if (name == "fig3") return fig3_scenario();
  if (name == "fig6") return FigureScenario{fig6_system(), nullptr};
  return std::nullopt;
}

const char* figure_scenario_names() {
  return "fig1a, fig1b, fig1c, fig2, fig3, fig6";
}

}  // namespace pfair
