// Dynamic task systems: tasks that join and leave at run time.
//
// The IS/GIS model already expresses dynamics — a joining task is a task
// whose offsets start at the join time, and a leaving task simply stops
// releasing subtasks.  What needs care is *admission*: when may a new
// task join without endangering the guarantees of the tasks already
// present?  Following the dynamic-task results in the Pfair literature
// (Srinivasan & Anderson), a departed task's weight cannot be reused
// immediately: a light task's share is held until the deadline of its
// last subtask, a heavy task's until that subtask's group deadline (its
// final cascade must be allowed to finish).  A join is admitted iff the
// *retained* utilization — weights of all tasks whose [join, retire)
// interval contains the join instant — stays within M.
//
// `build_dynamic` performs this admission test and materializes the
// admitted tasks as a GIS task system that any scheduler in the library
// can run; `bench_dynamic` shows that admitted systems meet every
// deadline under PD2 while violating the retirement rule breaks them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tasks/task_system.hpp"

namespace pfair {

/// One dynamic task: joins at `join`, releases `count` subtasks, leaves.
/// A departure mid-job (count not a multiple of e) is legal in the GIS
/// model and is exactly the case where the heavy-task retention rule
/// matters: a final subtask with b = 1 leaves a live cascade behind.
struct DynamicTaskSpec {
  std::string name;
  Weight weight;
  std::int64_t join = 0;   ///< slot at which the task joins (theta)
  std::int64_t count = 1;  ///< subtasks released before leaving
};

/// The instant at which a departed task's share may be reused: the
/// deadline (light) or group deadline (heavy) of its final subtask,
/// shifted by the join offset.  For complete-job departures d = D, so
/// the distinction only shows for mid-cascade leaves.
[[nodiscard]] std::int64_t retire_time(const DynamicTaskSpec& spec);

struct DynamicBuildResult {
  bool admitted = false;      ///< every join passed the admission test
  std::string rejection;      ///< first failing join, if any
  std::vector<Task> tasks;    ///< materialized GIS tasks (when admitted)
  /// Peak retained utilization observed at any join instant.
  Rational peak_util;
};

/// Admission-tests and materializes the scenario on `processors`
/// processors.  Specs may be given in any order.
[[nodiscard]] DynamicBuildResult build_dynamic(
    std::vector<DynamicTaskSpec> specs, int processors);

/// Convenience: throws unless admitted, then wraps into a TaskSystem.
[[nodiscard]] TaskSystem build_dynamic_system(
    std::vector<DynamicTaskSpec> specs, int processors);

}  // namespace pfair
