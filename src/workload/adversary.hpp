// Adversarial yield-script search — probing the tightness of Theorem 3.
//
// The paper proves tardiness under PD2-DVQ is at most one quantum and
// notes the bound is tight (misses are known to occur).  Fig. 2 realizes
// 1 - delta by hand; this module *searches* for high-tardiness yield
// scripts on arbitrary systems: a greedy coordinate ascent that toggles
// one subtask's yield at a time (full quantum <-> yield delta early) and
// keeps the change when the system's maximum tardiness grows.  The
// result is a concrete witness script plus the tardiness it attains —
// never reaching one quantum, per the theorem, but often approaching it.
#pragma once

#include <cstdint>
#include <memory>

#include "dvq/yield.hpp"
#include "sched/priority.hpp"

namespace pfair {

struct AdversaryOptions {
  /// The early-yield amount used for toggled subtasks (cost = 1 - delta).
  Time delta = kTick;
  /// Coordinate-ascent sweeps over all subtasks.
  int sweeps = 2;
  /// Restarts from random initial scripts (0 = start from all-full only).
  int random_restarts = 2;
  /// When a single-toggle sweep plateaus, try toggling *pairs* of
  /// subtasks once (O(n^2) evaluations) — needed because the canonical
  /// Fig. 2 miss requires two simultaneous yields and is invisible to
  /// single toggles.
  bool pair_pass = true;
  std::uint64_t seed = 1;
  Policy policy = Policy::kPd2;
};

struct AdversaryResult {
  std::shared_ptr<ScriptedYield> script;  ///< the best script found
  std::int64_t max_tardiness_ticks = 0;   ///< tardiness it attains
  std::int64_t evaluations = 0;           ///< DVQ runs performed
};

/// Searches for a yield script maximizing PD2-DVQ tardiness on `sys`.
[[nodiscard]] AdversaryResult find_adversarial_yields(
    const TaskSystem& sys, const AdversaryOptions& opts = {});

}  // namespace pfair
