// pfairtrace — offline tooling over pfairsim trace and metrics output.
//
//   pfairtrace validate (--tasks=FILE | --demo=NAME) TRACE.jsonl
//       Replays a `pfairsim --trace` JSONL stream through the online
//       invariant auditor (obs/audit.hpp).  Exit 0 and "clean" when no
//       invariant is violated; exit 1 and one line per finding otherwise.
//
//   pfairtrace stats [--metrics=PATH] [--trace=PATH]
//       Renders a `pfairsim --metrics` snapshot (counters, gauges and
//       log2-bucket histograms as ASCII bars) and/or summarizes a trace:
//       events per kind, the deadline-outcome tardiness timeline per
//       task.
//
//   pfairtrace diff A.jsonl B.jsonl
//       First divergence between two trace streams (exit 1 if they
//       diverge) — for pinning down where two runs stopped agreeing.
//
//   pfairtrace chrome (--tasks=FILE | --demo=NAME) TRACE.jsonl [--out=F]
//       Reconstructs the schedule from the trace's placement events and
//       wraps it as Chrome trace-event JSON (open in Perfetto via
//       "Open legacy trace").
//
// Task files use the format of src/io/parse.hpp; --demo accepts the
// paper-figure names (fig1a, fig1b, fig1c, fig2, fig3, fig6).
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "pfair/pfair.hpp"

namespace {

using namespace pfair;

[[noreturn]] void usage(const std::string& err) {
  if (!err.empty()) std::cerr << "pfairtrace: " << err << "\n";
  std::cerr
      << "usage: pfairtrace validate (--tasks=FILE | --demo=NAME) TRACE\n"
         "       pfairtrace stats [--metrics=PATH] [--trace=PATH]\n"
         "       pfairtrace diff A.jsonl B.jsonl\n"
         "       pfairtrace chrome (--tasks=FILE | --demo=NAME) TRACE "
         "[--out=FILE]\n"
         "demo names: "
      << figure_scenario_names() << "\n";
  std::exit(2);
}

TaskSystem load_system(const std::string& tasks_path,
                       const std::string& demo_name) {
  if (!demo_name.empty()) {
    auto sc = figure_scenario_by_name(demo_name);
    if (!sc.has_value()) {
      usage("unknown demo '" + demo_name + "' (have " +
            figure_scenario_names() + ")");
    }
    return std::move(sc->system);
  }
  if (tasks_path.empty()) usage("need --tasks=FILE or --demo=NAME");
  std::ifstream f(tasks_path);
  if (!f.good()) usage("cannot open " + tasks_path);
  return parse_task_file(f).build();
}

std::vector<TraceEvent> load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) usage("cannot open " + path);
  return read_trace_jsonl(f);
}

int cmd_validate(const TaskSystem& sys, const std::string& trace_path) {
  const std::vector<TraceEvent> events = load_trace(trace_path);
  InvariantAuditor auditor(sys);
  for (const TraceEvent& e : events) auditor.on_event(e);
  if (auditor.clean()) {
    std::cout << "validate: clean (" << events.size() << " events, "
              << auditor.model() << " model)\n";
    return 0;
  }
  std::cout << "validate: " << auditor.total_findings() << " finding(s) in "
            << events.size() << " events (" << auditor.model()
            << " model):\n";
  for (const AuditFinding& f : auditor.findings()) {
    std::cout << "  " << f.str() << "\n";
  }
  if (static_cast<std::size_t>(auditor.total_findings()) >
      auditor.findings().size()) {
    std::cout << "  ... ("
              << auditor.total_findings() -
                     static_cast<std::int64_t>(auditor.findings().size())
              << " more)\n";
  }
  return 1;
}

// [2^(b-1), 2^b) for b >= 1; bucket 0 collects x <= 0 (and 0-width).
std::string bucket_label(int b) {
  if (b == 0) return "<=0";
  std::ostringstream os;
  os << (std::int64_t{1} << (b - 1)) << "..";
  if (b >= 63) {
    os << "max";
  } else {
    os << (std::int64_t{1} << b) - 1;
  }
  return os.str();
}

void print_metrics(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) usage("cannot open " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const JsonValue root = parse_json(buf.str());
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr) {
    std::cout << "counters:\n";
    for (const auto& [name, v] : counters->object) {
      std::cout << "  " << name << " = " << v.integer << "\n";
    }
  }
  if (const JsonValue* gauges = root.find("gauges"); gauges != nullptr) {
    std::cout << "gauges:\n";
    for (const auto& [name, v] : gauges->object) {
      std::cout << "  " << name << " = " << v.integer << "\n";
    }
  }
  const JsonValue* hists = root.find("histograms");
  if (hists == nullptr) return;
  std::cout << "histograms:\n";
  for (const auto& [name, h] : hists->object) {
    std::cout << "  " << name << ": count " << h.at("count").integer
              << ", sum " << h.at("sum").integer << ", min "
              << h.at("min").integer << ", max " << h.at("max").integer
              << "\n";
    const JsonValue* buckets = h.find("buckets");
    if (buckets == nullptr) continue;
    std::int64_t largest = 1;
    for (const JsonValue& b : buckets->array) {
      largest = std::max(largest, b.array.at(1).integer);
    }
    for (const JsonValue& b : buckets->array) {
      const int idx = static_cast<int>(b.array.at(0).integer);
      const std::int64_t n = b.array.at(1).integer;
      const auto width = static_cast<std::size_t>(40 * n / largest);
      std::cout << "    " << bucket_label(idx) << ": "
                << std::string(width == 0 ? 1 : width, '#') << " " << n
                << "\n";
    }
  }
}

void print_trace_stats(const std::string& path) {
  const std::vector<TraceEvent> events = load_trace(path);
  std::map<std::string, std::int64_t> per_kind;
  struct TaskTardiness {
    std::int64_t outcomes = 0;
    std::int64_t misses = 0;
    std::int64_t max_ticks = 0;
  };
  std::map<std::int32_t, TaskTardiness> per_task;
  Time first, last;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    ++per_kind[to_string(e.kind)];
    if (i == 0 || e.at < first) first = e.at;
    if (i == 0 || last < e.at) last = e.at;
    if (e.kind == TraceEventKind::kDeadlineHit ||
        e.kind == TraceEventKind::kDeadlineMiss) {
      TaskTardiness& t = per_task[e.subject.task];
      ++t.outcomes;
      if (e.kind == TraceEventKind::kDeadlineMiss) ++t.misses;
      t.max_ticks = std::max(t.max_ticks, e.detail);
    }
  }
  std::cout << "trace: " << events.size() << " events over [" << first
            << ", " << last << "]\n";
  std::cout << "events per kind:\n";
  for (const auto& [kind, n] : per_kind) {
    std::cout << "  " << kind << " = " << n << "\n";
  }
  if (per_task.empty()) return;
  std::cout << "deadline outcomes per task (tardiness in slots):\n";
  for (const auto& [task, t] : per_task) {
    std::cout << "  task " << task << ": " << t.outcomes << " outcomes, "
              << t.misses << " miss(es), max tardiness "
              << Time::ticks(t.max_ticks) << "\n";
  }
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const std::vector<TraceEvent> a = load_trace(a_path);
  const std::vector<TraceEvent> b = load_trace(b_path);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string ja = trace_event_json(a[i]);
    const std::string jb = trace_event_json(b[i]);
    if (ja != jb) {
      std::cout << "diverge at event " << i << ":\n  a: " << ja
                << "\n  b: " << jb << "\n";
      return 1;
    }
  }
  if (a.size() != b.size()) {
    std::cout << "common prefix of " << n << " events, then " << a_path
              << " has " << a.size() << " and " << b_path << " has "
              << b.size() << "\n";
    return 1;
  }
  std::cout << "identical (" << n << " events)\n";
  return 0;
}

int cmd_chrome(const TaskSystem& sys, const std::string& trace_path,
               const std::string& out_path) {
  const std::vector<TraceEvent> events = load_trace(trace_path);
  // Model inference mirrors the auditor: slot boundaries mean SFQ.
  bool dvq = false;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kSlotBegin) break;
    if (e.kind == TraceEventKind::kEventBegin) {
      dvq = true;
      break;
    }
  }
  std::string json;
  if (dvq) {
    DvqSchedule sched(sys);
    for (const TraceEvent& e : events) {
      if (e.kind != TraceEventKind::kPlace) continue;
      sched.place(e.subject, e.at, Time::ticks(e.detail), e.proc);
    }
    json = export_chrome_trace(sys, sched, events);
  } else {
    SlotSchedule sched(sys);
    for (const TraceEvent& e : events) {
      if (e.kind != TraceEventKind::kPlace) continue;
      sched.place(e.subject, e.at.slot_floor(), e.proc);
    }
    json = export_chrome_trace(sys, sched, events);
  }
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(out_path);
    if (!f.good()) usage("cannot open " + out_path);
    f << json;
    std::cout << "chrome trace written to " << out_path << "\n";
  }
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) usage("no subcommand");
  const std::string cmd = argv[1];
  std::string tasks_path, demo_name, metrics_path, trace_flag, out_path;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tasks=", 0) == 0) {
      tasks_path = arg.substr(8);
    } else if (arg.rfind("--demo=", 0) == 0) {
      demo_name = arg.substr(7);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_flag = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      usage("");
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown option '" + arg + "'");
    } else {
      positional.push_back(arg);
    }
  }

  if (cmd == "validate") {
    if (positional.size() != 1) usage("validate needs exactly one TRACE");
    const TaskSystem sys = load_system(tasks_path, demo_name);
    return cmd_validate(sys, positional[0]);
  }
  if (cmd == "stats") {
    if (metrics_path.empty() && trace_flag.empty() && positional.size() == 1) {
      metrics_path = positional[0];  // bare arg: treat as metrics JSON
      positional.clear();
    }
    if (!positional.empty()) usage("stats takes --metrics/--trace only");
    if (metrics_path.empty() && trace_flag.empty()) {
      usage("stats needs --metrics=PATH and/or --trace=PATH");
    }
    if (!metrics_path.empty()) print_metrics(metrics_path);
    if (!trace_flag.empty()) print_trace_stats(trace_flag);
    return 0;
  }
  if (cmd == "diff") {
    if (positional.size() != 2) usage("diff needs exactly two traces");
    return cmd_diff(positional[0], positional[1]);
  }
  if (cmd == "chrome") {
    if (positional.size() != 1) usage("chrome needs exactly one TRACE");
    const TaskSystem sys = load_system(tasks_path, demo_name);
    return cmd_chrome(sys, positional[0], out_path);
  }
  usage("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const pfair::ContractViolation& e) {
    std::cerr << "pfairtrace: " << e.what() << "\n";
    return 2;
  }
}
