// pfairsim — command-line Pfair scheduling simulator.
//
//   pfairsim [options] <taskfile>
//   pfairsim --demo            # run the paper's Fig. 6 system
//   pfairsim --demo=fig2       # any figure: fig1a/fig1b/fig1c/fig2/fig3/fig6
//
// Options:
//   --policy=pd2|pd|pf|epdf|broken  priority policy      (default pd2;
//                              "broken" inverts the PD2 tie-breaks — a
//                              deliberately faulty policy for exercising
//                              the auditor)
//   --model=sfq|dvq|stag       quantum model             (default sfq)
//   --yield=full               every subtask runs a full quantum
//   --yield=fixed:<num>/<den>  every subtask uses num/den of its quantum
//   --yield=bern:<num>/<den>   that fraction of subtasks yields early
//   --seed=<n>                 RNG seed for bern yields  (default 1)
//   --csv=<path>               export the schedule as CSV
//   --trace=<path>             structured scheduler trace, JSONL
//                              (one event per line; see obs/trace.hpp)
//   --chrome-trace=<path>      Chrome trace-event JSON (placements as
//                              complete events, decisions as instants;
//                              open with Perfetto "legacy trace")
//   --metrics=<path>           per-run metrics snapshot as JSON
//   --prom=<path>              same snapshot in Prometheus text format
//                              (exposition 0.0.4; see io/prometheus.hpp)
//   --svg=<path>               export the schedule as an SVG figure
//   --profile                  run under the self-profiler and print a
//                              per-phase time breakdown (obs/prof.hpp);
//                              with --chrome-trace the spans land in the
//                              trace as a second "profiler" process
//   --audit                    run the online invariant auditor alongside
//                              the scheduler (obs/audit.hpp); findings are
//                              printed and force a nonzero exit
//   --capture=<path>           with --audit: on the first finding, write a
//                              shrunk replayable pfair-capture-v1 bundle
//   --fast-forward             detect the steady-state cycle and skip
//                              whole hyperperiods instead of simulating
//                              them (sfq and dvq; exact — the result is
//                              bit-identical to the full run).  Prints
//                              the detected prefix/cycle split.
//   --quiet                    suppress the rendered schedule
//
// --trace/--metrics/--prom/--chrome-trace/--audit cover sfq and dvq;
// the staggered model keeps its own loop and is not instrumented.
// Under --fast-forward the sfq trace/audit sinks are fed by replaying
// the decision stream of the compressed schedule (--metrics/--prom
// still need a live run and are ignored); the dvq fast-forward path has
// no replay, so observability flags are ignored there.
//
// Live sfq/dvq runs additionally maintain scheduler-quality counters
// (preemptions, migrations, idle capacity, context switches) and verify
// them against the offline recount (analysis/recount.hpp); a mismatch
// is a scheduler bug and forces a nonzero exit.
//
// The task file format is documented in src/io/parse.hpp.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "pfair/pfair.hpp"

namespace {

using namespace pfair;

struct CliOptions {
  Policy policy = Policy::kPd2;
  enum class Model { kSfq, kDvq, kStaggered } model = Model::kSfq;
  std::string yield_spec = "full";
  std::uint64_t seed = 1;
  std::string csv_path;
  std::string trace_path;
  std::string chrome_path;
  std::string metrics_path;
  std::string prom_path;
  std::string svg_path;
  std::string capture_path;
  bool audit = false;
  bool fast_forward = false;
  bool profile = false;
  bool quiet = false;
  bool demo = false;
  std::string demo_name = "fig6";
  std::string file;
};

[[noreturn]] void usage(const std::string& err) {
  if (!err.empty()) std::cerr << "pfairsim: " << err << "\n";
  std::cerr << "usage: pfairsim [--policy=pd2|pd|pf|epdf|broken] "
               "[--model=sfq|dvq|stag]\n"
               "                [--yield=full|fixed:n/d|bern:n/d] "
               "[--seed=N] [--csv=PATH]\n"
               "                [--trace=PATH] [--chrome-trace=PATH] "
               "[--metrics=PATH]\n"
               "                [--prom=PATH] [--svg=PATH] [--audit] "
               "[--capture=PATH]\n"
               "                [--fast-forward] [--profile] [--quiet] "
               "(<taskfile> | --demo[=NAME])\n"
               "demo names: " << figure_scenario_names() << "\n";
  std::exit(2);
}

std::pair<std::int64_t, std::int64_t> parse_frac(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) usage("bad fraction '" + s + "'");
  try {
    const std::int64_t n = std::stoll(s.substr(0, slash));
    const std::int64_t d = std::stoll(s.substr(slash + 1));
    if (n < 0 || d <= 0 || n > d) usage("fraction out of range: " + s);
    return {n, d};
  } catch (...) {
    usage("bad fraction '" + s + "'");
  }
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--policy=", 0) == 0) {
      const std::string v = value("--policy=");
      const auto p = policy_from_string(v);
      if (!p.has_value()) usage("unknown policy '" + v + "'");
      o.policy = *p;
    } else if (arg.rfind("--model=", 0) == 0) {
      const std::string v = value("--model=");
      if (v == "sfq") {
        o.model = CliOptions::Model::kSfq;
      } else if (v == "dvq") {
        o.model = CliOptions::Model::kDvq;
      } else if (v == "stag") {
        o.model = CliOptions::Model::kStaggered;
      } else {
        usage("unknown model '" + v + "'");
      }
    } else if (arg.rfind("--yield=", 0) == 0) {
      o.yield_spec = value("--yield=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--csv=", 0) == 0) {
      o.csv_path = value("--csv=");
    } else if (arg.rfind("--trace=", 0) == 0) {
      o.trace_path = value("--trace=");
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      o.chrome_path = value("--chrome-trace=");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      o.metrics_path = value("--metrics=");
    } else if (arg.rfind("--prom=", 0) == 0) {
      o.prom_path = value("--prom=");
    } else if (arg.rfind("--svg=", 0) == 0) {
      o.svg_path = value("--svg=");
    } else if (arg.rfind("--capture=", 0) == 0) {
      o.capture_path = value("--capture=");
      o.audit = true;
    } else if (arg == "--audit") {
      o.audit = true;
    } else if (arg == "--fast-forward") {
      o.fast_forward = true;
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--demo") {
      o.demo = true;
    } else if (arg.rfind("--demo=", 0) == 0) {
      o.demo = true;
      o.demo_name = value("--demo=");
    } else if (arg == "--help" || arg == "-h") {
      usage("");
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown option '" + arg + "'");
    } else if (o.file.empty()) {
      o.file = arg;
    } else {
      usage("more than one task file given");
    }
  }
  if (o.file.empty() && !o.demo) usage("no task file");
  return o;
}

std::unique_ptr<YieldModel> make_yields(const CliOptions& o) {
  if (o.yield_spec == "full") return std::make_unique<FullQuantumYield>();
  if (o.yield_spec.rfind("fixed:", 0) == 0) {
    const auto [n, d] = parse_frac(o.yield_spec.substr(6));
    if (n == 0) usage("fixed yield fraction must be > 0");
    return std::make_unique<FixedYield>(kQuantum -
                                        Time::slots_frac(0, n, d));
  }
  if (o.yield_spec.rfind("bern:", 0) == 0) {
    const auto [n, d] = parse_frac(o.yield_spec.substr(5));
    return std::make_unique<BernoulliYield>(
        o.seed, n, d, Time::ticks(kTicksPerSlot / 4), kQuantum - kTick);
  }
  usage("unknown yield spec '" + o.yield_spec + "'");
}

// Serializes an arbitrary yield model for a capture bundle.  The common
// CLI specs map to their exact kinds; anything else (e.g. a figure's
// scripted yields) is enumerated subtask by subtask — finite and exact.
CaptureBundle::YieldSpec yield_spec_for_capture(const CliOptions& o,
                                                const TaskSystem& sys,
                                                const YieldModel& yields) {
  CaptureBundle::YieldSpec spec;
  if (o.yield_spec == "full") return spec;  // kind defaults to "full"
  if (o.yield_spec.rfind("fixed:", 0) == 0) {
    const auto [n, d] = parse_frac(o.yield_spec.substr(6));
    spec.kind = "fixed";
    spec.delta_ticks = (kQuantum - Time::slots_frac(0, n, d)).raw_ticks();
    return spec;
  }
  if (o.yield_spec.rfind("bern:", 0) == 0) {
    const auto [n, d] = parse_frac(o.yield_spec.substr(5));
    spec.kind = "bern";
    spec.seed = o.seed;
    spec.num = n;
    spec.den = d;
    spec.min_ticks = kTicksPerSlot / 4;
    spec.max_ticks = (kQuantum - kTick).raw_ticks();
    return spec;
  }
  spec.kind = "scripted";
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const Time c = yields.cost(sys, ref);
      if (c != kQuantum) spec.costs.push_back({k, s, c.raw_ticks()});
    }
  }
  return spec;
}

void print_cycle_stats(const CycleStats& st) {
  if (st.engaged) {
    std::cout << "fast-forward: prefix " << st.prefix_slots << " + cycle "
              << st.cycle_slots << " slots x " << st.cycles_skipped
              << " skipped (" << st.slots_skipped << " slots); "
              << st.sim_slots << " slots simulated\n";
  } else {
    std::cout << "fast-forward: did not engage; full simulation\n";
  }
}

int run(const CliOptions& o) {
  // Calibrate the profiling clock before the measured window opens, so
  // the one-time steady_clock comparison is not attributed to a phase
  // (or charged against the wall time the breakdown is judged by).
  prof::Profiler profiler;
  std::optional<prof::ProfScope> prof_scope;
  if (o.profile) {
    (void)prof::ns_per_tick();
    prof_scope.emplace(&profiler);
  }
  const auto wall0 = std::chrono::steady_clock::now();

  std::optional<TaskSystem> sys;
  std::shared_ptr<ScriptedYield> demo_yields;
  {
    PFAIR_PROF_SPAN(kParse);
    if (o.demo) {
      auto scenario = figure_scenario_by_name(o.demo_name);
      if (!scenario.has_value()) {
        usage("unknown demo '" + o.demo_name + "' (have " +
              figure_scenario_names() + ")");
      }
      sys.emplace(std::move(scenario->system));
      demo_yields = std::move(scenario->yields);
    } else {
      std::ifstream f(o.file);
      if (!f.good()) {
        std::cerr << "pfairsim: cannot open " << o.file << "\n";
        return 2;
      }
      sys.emplace(parse_task_file(f).build());
    }
  }

  {
    PFAIR_PROF_SPAN(kRender);
    std::cout << "system: " << sys->summary() << "\n";
    std::cout << "policy: " << to_string(o.policy) << ", feasible: "
              << std::boolalpha << sys->feasible() << "\n\n";
  }

  // A figure's scripted yields drive the run unless --yield overrides.
  std::unique_ptr<YieldModel> cli_yields;
  const YieldModel* yields = nullptr;
  if (demo_yields != nullptr && o.yield_spec == "full") {
    yields = demo_yields.get();
  } else {
    cli_yields = make_yields(o);
    yields = cli_yields.get();
  }

  // Observability plumbing: --trace streams JSONL, --chrome-trace keeps
  // a bounded ring of events for the decision instants, --metrics fills
  // a registry, --audit runs the invariant auditor inline (and --capture
  // additionally records a replayable counterexample bundle).  The
  // staggered model runs its own loop and supports none of them.
  const bool stag = o.model == CliOptions::Model::kStaggered;
  const bool dvq_ff = o.fast_forward && o.model == CliOptions::Model::kDvq;
  const bool wants_obs = !o.trace_path.empty() || !o.chrome_path.empty() ||
                         !o.metrics_path.empty() || !o.prom_path.empty() ||
                         o.audit;
  if (stag && wants_obs) {
    std::cerr << "pfairsim: warning: --trace/--chrome-trace/--metrics/"
                 "--audit are not supported for --model=stag; ignoring\n";
  }
  if (stag && o.fast_forward) {
    std::cerr << "pfairsim: warning: --fast-forward is not supported for "
                 "--model=stag; ignoring\n";
  }
  if (dvq_ff && wants_obs) {
    std::cerr << "pfairsim: warning: the dvq fast-forward path has no "
                 "decision replay; ignoring --trace/--chrome-trace/"
                 "--metrics/--audit\n";
  }
  if (o.fast_forward && o.model == CliOptions::Model::kSfq &&
      (!o.metrics_path.empty() || !o.prom_path.empty())) {
    std::cerr << "pfairsim: warning: --metrics/--prom need a live "
                 "instrumented run; ignoring them under --fast-forward\n";
  }
  // Observability sinks are built for live sfq/dvq runs and for the sfq
  // fast-forward path (fed by decision replay).  --metrics/--prom count
  // scheduler internals a replay cannot reconstruct, so they are
  // live-only; the same goes for the quality counters.
  const bool obs = !stag && !dvq_ff;
  MetricsRegistry reg;
  MetricsRegistry* metrics =
      obs && !o.fast_forward &&
              (!o.metrics_path.empty() || !o.prom_path.empty())
          ? &reg
          : nullptr;
  const bool want_quality = obs && !o.fast_forward;
  QualityCounters qual;
  bool quality_ok = true;
  // Prints the counters and verifies them against the offline recount —
  // a mismatch means the incremental accounting diverged from the
  // schedule itself, i.e. a bug.
  const auto verify_quality = [&](const auto& sched) {
    if (!want_quality) return;
    PFAIR_PROF_SPAN(kAnalysis);
    std::cout << "quality: " << quality_to_string(qual);
    if (!sched.complete()) {
      std::cout << " (recount skipped: incomplete schedule)\n";
      return;
    }
    const QualityCounters recount = recount_quality(*sys, sched);
    if (qual == recount) {
      std::cout << " (recount: match)\n";
    } else {
      quality_ok = false;
      std::cout << " (recount: MISMATCH)\n";
      std::cout << "recount: " << quality_to_string(recount) << "\n";
    }
  };
  std::ofstream trace_f;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<RingBufferSink> ring;
  std::unique_ptr<InvariantAuditor> auditor;
  std::unique_ptr<CounterexampleRecorder> recorder;
  std::vector<std::unique_ptr<TeeSink>> tees;
  TraceSink* sink = nullptr;
  {
    // Sink setup is real work — the chrome-trace ring alone zero-fills
    // megabytes — so it gets a construction span of its own.
    PFAIR_PROF_SPAN(kConstruction);
    if (obs && !o.trace_path.empty()) {
      trace_f.open(o.trace_path);
      if (!trace_f) {
        std::cerr << "pfairsim: cannot open " << o.trace_path << "\n";
        return 2;
      }
      jsonl = std::make_unique<JsonlSink>(trace_f);
    }
    if (obs && !o.chrome_path.empty()) {
      // With --metrics the ring also publishes its drop count.
      ring = metrics != nullptr
                 ? std::make_unique<RingBufferSink>(std::size_t{1} << 18,
                                                    reg)
                 : std::make_unique<RingBufferSink>(std::size_t{1} << 18);
    }
    if (obs && o.audit) {
      auditor = std::make_unique<InvariantAuditor>(*sys);
      if (metrics != nullptr) auditor->attach_metrics(reg);
      if (!o.capture_path.empty()) {
        const bool dvq = o.model == CliOptions::Model::kDvq;
        CaptureBundle proto = CaptureBundle::prototype(
            *sys, dvq ? "dvq" : "sfq", o.policy, /*horizon_limit=*/0,
            o.seed);
        if (dvq) proto.yields = yield_spec_for_capture(o, *sys, *yields);
        recorder =
            std::make_unique<CounterexampleRecorder>(std::move(proto));
        auditor->set_finding_callback(
            [&r = *recorder](const AuditFinding& f) { r.record(f); });
      }
    }

    // Fold the active sinks into one tee chain.  The recorder sits
    // first so the triggering event is already in its prefix when the
    // auditor's finding callback fires.
    std::vector<TraceSink*> sinks;
    if (recorder != nullptr) sinks.push_back(recorder.get());
    if (auditor != nullptr) sinks.push_back(auditor.get());
    if (jsonl != nullptr) sinks.push_back(jsonl.get());
    if (ring != nullptr) sinks.push_back(ring.get());
    for (TraceSink* s : sinks) {
      if (sink == nullptr) {
        sink = s;
      } else {
        tees.push_back(std::make_unique<TeeSink>(sink, s));
        sink = tees.back().get();
      }
    }
  }

  // With --chrome-trace the export also carries the ring's drop count
  // and (under --profile) the profiler spans, on a second process row.
  prof::ProfileSnapshot psnap;
  const auto chrome_extras = [&](const std::vector<TraceEvent>& events) {
    ChromeTraceExtras ex;
    ex.events = events;
    if (ring != nullptr) ex.events_dropped = ring->dropped();
    if (o.profile) {
      psnap = profiler.snapshot();
      ex.profile = &psnap;
    }
    return ex;
  };

  TardinessSummary tard;
  if (o.model == CliOptions::Model::kSfq) {
    SfqOptions so;
    so.policy = o.policy;
    const SlotSchedule sched = [&]() -> SlotSchedule {
      PFAIR_PROF_SPAN(kSimulate);
      if (!o.fast_forward) {
        so.trace = sink;
        so.metrics = metrics;
        so.quality = want_quality ? &qual : nullptr;
        return schedule_sfq(*sys, so);
      }
      // Compressed run first; the trace/audit sinks then see the exact
      // decision stream replayed from the compressed schedule.
      const CycleSchedule cyc = schedule_sfq_cyclic(*sys, so);
      print_cycle_stats(cyc.stats());
      if (sink != nullptr) replay_decisions(*sys, cyc, *sink);
      return cyc.materialize(cyc.horizon());
    }();
    if (!o.quiet) {
      PFAIR_PROF_SPAN(kRender);
      std::cout << render_slot_schedule(*sys, sched) << "\n\n";
    }
    {
      PFAIR_PROF_SPAN(kAnalysis);
      const ValidityReport rep = check_slot_schedule(*sys, sched);
      std::cout << "validity: " << rep.str() << "\n";
      tard = measure_tardiness(*sys, sched);
      if (metrics != nullptr) record_tardiness_metrics(*sys, sched, reg);
    }
    verify_quality(sched);
    if (!o.csv_path.empty()) {
      PFAIR_PROF_SPAN(kExport);
      export_slot_schedule(*sys, sched).write_file(o.csv_path);
    }
    if (!o.chrome_path.empty()) {
      PFAIR_PROF_SPAN(kExport);
      std::ofstream f(o.chrome_path);
      const std::vector<TraceEvent> events =
          ring != nullptr ? ring->snapshot() : std::vector<TraceEvent>{};
      f << export_chrome_trace(*sys, sched, chrome_extras(events));
    }
    if (!o.svg_path.empty()) {
      PFAIR_PROF_SPAN(kRender);
      std::ofstream f(o.svg_path);
      f << render_slot_schedule_svg(*sys, sched);
    }
  } else {
    DvqSchedule sched = [&]() -> DvqSchedule {
      PFAIR_PROF_SPAN(kSimulate);
      if (o.model == CliOptions::Model::kDvq) {
        DvqOptions dopts;
        dopts.policy = o.policy;
        if (o.fast_forward) {
          const DvqCycleSchedule cyc =
              schedule_dvq_cyclic(*sys, *yields, dopts);
          print_cycle_stats(cyc.stats());
          const std::int64_t slots =
              cyc.makespan().raw_ticks() / kTicksPerSlot + 1;
          return cyc.materialize(slots);
        }
        dopts.trace = sink;
        dopts.metrics = metrics;
        dopts.quality = want_quality ? &qual : nullptr;
        return schedule_dvq(*sys, *yields, dopts);
      }
      StaggeredOptions sopts;
      sopts.policy = o.policy;
      return schedule_staggered(*sys, *yields, sopts);
    }();
    if (!o.quiet) {
      PFAIR_PROF_SPAN(kRender);
      std::cout << render_dvq_schedule(*sys, sched) << "\n\n";
    }
    {
      PFAIR_PROF_SPAN(kAnalysis);
      std::cout << "validity (one-quantum allowance): "
                << check_dvq_schedule(*sys, sched, kQuantum).str() << "\n";
      tard = measure_tardiness(*sys, sched);
      if (metrics != nullptr) record_tardiness_metrics(*sys, sched, reg);
    }
    verify_quality(sched);
    if (!o.csv_path.empty()) {
      PFAIR_PROF_SPAN(kExport);
      export_dvq_schedule(*sys, sched).write_file(o.csv_path);
    }
    if (!o.chrome_path.empty()) {
      PFAIR_PROF_SPAN(kExport);
      std::ofstream f(o.chrome_path);
      const std::vector<TraceEvent> events =
          ring != nullptr ? ring->snapshot() : std::vector<TraceEvent>{};
      f << export_chrome_trace(*sys, sched, chrome_extras(events));
    }
    if (!o.svg_path.empty()) {
      PFAIR_PROF_SPAN(kRender);
      std::ofstream f(o.svg_path);
      f << render_dvq_schedule_svg(*sys, sched);
    }
  }
  if (jsonl != nullptr) {
    PFAIR_PROF_SPAN(kRender);
    std::cout << "trace: " << jsonl->lines() << " events -> " << o.trace_path
              << "\n";
  }
  if (metrics != nullptr) {
    PFAIR_PROF_SPAN(kExport);
    // One exposition carries everything: scheduler internals, the
    // quality counters, and (under --profile) the per-phase profile.
    if (want_quality) publish_quality(qual, reg);
    if (o.profile) prof::publish_profile(profiler.snapshot(), reg);
    if (!o.metrics_path.empty()) {
      std::ofstream f(o.metrics_path);
      f << metrics_to_json(reg.snapshot(), 2) << "\n";
      std::cout << "metrics written to " << o.metrics_path << "\n";
    }
    if (!o.prom_path.empty()) {
      std::ofstream f(o.prom_path);
      f << metrics_to_prometheus(reg.snapshot());
      std::cout << "prometheus metrics written to " << o.prom_path << "\n";
    }
  }
  bool audit_failed = false;
  if (auditor != nullptr) {
    PFAIR_PROF_SPAN(kRender);
    if (auditor->clean()) {
      std::cout << "audit: clean (" << auditor->model() << " model)\n";
    } else {
      audit_failed = true;
      std::cout << "audit: " << auditor->total_findings()
                << " finding(s):\n";
      std::size_t shown = 0;
      for (const AuditFinding& f : auditor->findings()) {
        if (++shown > 8) {
          std::cout << "  ...\n";
          break;
        }
        std::cout << "  " << f.str() << "\n";
      }
      if (recorder != nullptr && recorder->captured()) {
        const CaptureBundle shrunk = shrink_bundle(recorder->bundle());
        std::ofstream f(o.capture_path);
        if (!f) {
          std::cerr << "pfairsim: cannot open " << o.capture_path << "\n";
          return 2;
        }
        f << capture_to_json(shrunk);
        std::cout << "counterexample (" << shrunk.tasks.size()
                  << " task(s)) written to " << o.capture_path << "\n";
      }
    }
  }

  {
    PFAIR_PROF_SPAN(kRender);
    std::cout << "tardiness: max " << tard.max_quanta() << " quanta, "
              << tard.late_subtasks << "/" << tard.total_subtasks
              << " subtasks late";
    if (tard.unscheduled > 0) {
      std::cout << ", " << tard.unscheduled << " UNSCHEDULED";
    }
    std::cout << "\n";
    if (!o.csv_path.empty()) {
      std::cout << "schedule exported to " << o.csv_path << "\n";
    }
  }

  if (o.profile) {
    // Wall time is clocked before snapshotting so the breakdown is
    // judged against the work it actually covered.
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    prof_scope.reset();
    const prof::ProfileSnapshot snap = profiler.snapshot();
    const double attr_ms = snap.attributed_ns() / 1e6;
    char line[160];
    std::snprintf(line, sizeof line,
                  "\nprofile (%s): wall %.3f ms, attributed %.3f ms "
                  "(%.1f%%)\n",
                  snap.clock.c_str(), wall_ms, attr_ms,
                  wall_ms > 0 ? 100.0 * attr_ms / wall_ms : 0.0);
    std::cout << line << snap.table();
  }

  if (!quality_ok) {
    std::cerr << "pfairsim: quality counters diverged from the offline "
                 "recount\n";
  }
  return tard.none_late() && !audit_failed && quality_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const pfair::ContractViolation& e) {
    std::cerr << "pfairsim: " << e.what() << "\n";
    return 2;
  }
}
