// pfairstat — compare two profile/metrics dumps and say what moved.
//
//   pfairstat show FILE [--bench=NAME]
//       Renders the per-phase profile and scalar values of one dump.
//
//   pfairstat diff BASE CURRENT [--bench=NAME] [--threshold=PCT]
//                  [--fail-above=PCT]
//       Per-phase self-time deltas between two dumps, the attributed
//       total shift, and the phase that moved most — the first place to
//       look when a perf guard trips.  Scalar values (bench `values`,
//       metrics counters/gauges) are diffed too; only moves of at least
//       --threshold percent (default 5) are printed.  With
//       --fail-above=PCT the exit code is 1 when attributed time
//       regressed by more than PCT percent (otherwise always 0 unless
//       the inputs are unreadable).
//
// Accepted input shapes, auto-detected per file:
//   * a pfair-bench-v1 report (bench_scaling --json …): profile from its
//     "profile" section, scalars from "values" and "metrics";
//   * a pfair-perf-baseline-v1 bundle (scripts/perf_guard.py baseline):
//     one report selected with --bench=NAME (unneeded when the bundle
//     holds exactly one);
//   * a metrics snapshot (pfairsim --metrics …): profile reconstructed
//     from the prof.<phase>.* counters published by publish_profile;
//   * a bare profile object (the "profile" section on its own).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pfair/pfair.hpp"

namespace {

using namespace pfair;

[[noreturn]] void usage(const std::string& err) {
  if (!err.empty()) std::cerr << "pfairstat: " << err << "\n";
  std::cerr << "usage: pfairstat show FILE [--bench=NAME]\n"
               "       pfairstat diff BASE CURRENT [--bench=NAME]\n"
               "                 [--threshold=PCT] [--fail-above=PCT]\n";
  std::exit(2);
}

struct PhaseRow {
  std::int64_t count = 0;
  double total_ns = 0.0;
  double self_ns = 0.0;
};

/// Flattened view of one dump: per-phase profile rows (profile order
/// preserved) plus every scalar (bench values, counters, gauges).
struct Dump {
  std::string path;
  bool has_profile = false;
  std::vector<std::pair<std::string, PhaseRow>> phases;
  std::vector<std::pair<std::string, double>> scalars;

  [[nodiscard]] double attributed_ns() const {
    double sum = 0.0;
    for (const auto& [name, row] : phases) sum += row.self_ns;
    return sum;
  }
  [[nodiscard]] const PhaseRow* phase(const std::string& name) const {
    for (const auto& [n, row] : phases) {
      if (n == name) return &row;
    }
    return nullptr;
  }
  [[nodiscard]] const double* scalar(const std::string& name) const {
    for (const auto& [n, v] : scalars) {
      if (n == name) return &v;
    }
    return nullptr;
  }
};

double as_number(const JsonValue& v) {
  return v.is_integer ? static_cast<double>(v.integer) : v.number;
}

void take_profile(const JsonValue& profile, Dump& out) {
  const JsonValue* phases = profile.find("phases");
  if (phases == nullptr || !phases->is(JsonValue::Kind::kObject)) return;
  out.has_profile = true;
  for (const auto& [name, entry] : phases->object) {
    PhaseRow row;
    if (const JsonValue* c = entry.find("count")) {
      row.count = static_cast<std::int64_t>(as_number(*c));
    }
    if (const JsonValue* t = entry.find("total_ns")) {
      row.total_ns = as_number(*t);
    }
    if (const JsonValue* s = entry.find("self_ns")) {
      row.self_ns = as_number(*s);
    }
    out.phases.emplace_back(name, row);
  }
}

/// Reassembles prof.<phase>.{count,total_ns,self_ns} counters into
/// profile rows; every other counter/gauge becomes a scalar.
void take_metrics(const JsonValue& metrics, Dump& out) {
  std::vector<std::pair<std::string, PhaseRow>> prof_rows;
  auto prof_row = [&prof_rows](const std::string& phase) -> PhaseRow& {
    for (auto& [n, row] : prof_rows) {
      if (n == phase) return row;
    }
    return prof_rows.emplace_back(phase, PhaseRow{}).second;
  };
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* obj = metrics.find(section);
    if (obj == nullptr || !obj->is(JsonValue::Kind::kObject)) continue;
    for (const auto& [name, value] : obj->object) {
      if (name.rfind("prof.", 0) == 0) {
        const std::size_t dot = name.rfind('.');
        const std::string phase = name.substr(5, dot - 5);
        const std::string field = name.substr(dot + 1);
        if (field == "count") {
          prof_row(phase).count = static_cast<std::int64_t>(as_number(value));
          continue;
        }
        if (field == "total_ns") {
          prof_row(phase).total_ns = as_number(value);
          continue;
        }
        if (field == "self_ns") {
          prof_row(phase).self_ns = as_number(value);
          continue;
        }
      }
      out.scalars.emplace_back(name, as_number(value));
    }
  }
  if (!prof_rows.empty() && !out.has_profile) {
    out.has_profile = true;
    out.phases = std::move(prof_rows);
  }
}

void take_report(const JsonValue& report, Dump& out) {
  if (const JsonValue* profile = report.find("profile")) {
    if (profile->is(JsonValue::Kind::kObject)) take_profile(*profile, out);
  }
  if (const JsonValue* values = report.find("values")) {
    if (values->is(JsonValue::Kind::kObject)) {
      for (const auto& [name, value] : values->object) {
        out.scalars.emplace_back(name, as_number(value));
      }
    }
  }
  if (const JsonValue* metrics = report.find("metrics")) {
    if (metrics->is(JsonValue::Kind::kObject)) take_metrics(*metrics, out);
  }
}

Dump load_dump(const std::string& path, const std::string& bench) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "pfairstat: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  Dump out;
  out.path = path;
  const JsonValue doc = parse_json(buf.str());
  if (!doc.is(JsonValue::Kind::kObject)) {
    std::cerr << "pfairstat: " << path << ": not a JSON object\n";
    std::exit(2);
  }
  if (const JsonValue* reports = doc.find("reports")) {
    // perf-baseline bundle: pick one report.
    if (!reports->is(JsonValue::Kind::kObject) || reports->object.empty()) {
      std::cerr << "pfairstat: " << path << ": empty baseline bundle\n";
      std::exit(2);
    }
    const JsonValue* chosen = nullptr;
    if (!bench.empty()) {
      chosen = reports->find(bench);
      if (chosen == nullptr) {
        std::cerr << "pfairstat: " << path << ": no bench '" << bench
                  << "' (have";
        for (const auto& [name, r] : reports->object) {
          std::cerr << " " << name;
        }
        std::cerr << ")\n";
        std::exit(2);
      }
    } else if (reports->object.size() == 1) {
      chosen = &reports->object.front().second;
    } else {
      std::cerr << "pfairstat: " << path
                << " holds several reports; pick one with --bench=NAME "
                   "(have";
      for (const auto& [name, r] : reports->object) {
        std::cerr << " " << name;
      }
      std::cerr << ")\n";
      std::exit(2);
    }
    take_report(*chosen, out);
    return out;
  }
  if (doc.find("phases") != nullptr) {
    take_profile(doc, out);  // bare profile section
    return out;
  }
  if (doc.find("counters") != nullptr || doc.find("gauges") != nullptr) {
    take_metrics(doc, out);  // pfairsim --metrics snapshot
    return out;
  }
  take_report(doc, out);  // pfair-bench-v1 report
  return out;
}

std::string fmt_ms(double ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", ns / 1e6);
  return buf;
}

std::string fmt_pct(double frac) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * frac);
  return buf;
}

std::string fmt_val(double v) {
  char buf[48];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

int cmd_show(const Dump& d) {
  if (d.has_profile) {
    TextTable t;
    t.header({"phase", "count", "total (ms)", "self (ms)"});
    for (const auto& [name, row] : d.phases) {
      t.row({name, std::to_string(row.count), fmt_ms(row.total_ns),
             fmt_ms(row.self_ns)});
    }
    std::cout << d.path << ": profile\n" << t.str();
    std::cout << "attributed: " << fmt_ms(d.attributed_ns()) << " ms\n";
  } else {
    std::cout << d.path << ": no profile section\n";
  }
  if (!d.scalars.empty()) {
    TextTable t;
    t.header({"value", ""});
    for (const auto& [name, value] : d.scalars) {
      t.row({name, fmt_val(value)});
    }
    std::cout << "\n" << t.str();
  }
  return 0;
}

int cmd_diff(const Dump& base, const Dump& cur, double threshold_pct,
             double fail_above_pct) {
  // Union of phase names, base order first so the table stays stable.
  std::vector<std::string> names;
  for (const auto& [name, row] : base.phases) names.push_back(name);
  for (const auto& [name, row] : cur.phases) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }

  double worst_delta = 0.0;
  std::string worst_phase;
  if (!names.empty()) {
    TextTable t;
    t.header({"phase", "base self (ms)", "cur self (ms)", "delta (ms)",
              "delta"});
    for (const std::string& name : names) {
      const PhaseRow* b = base.phase(name);
      const PhaseRow* c = cur.phase(name);
      const double b_ns = b != nullptr ? b->self_ns : 0.0;
      const double c_ns = c != nullptr ? c->self_ns : 0.0;
      const double delta = c_ns - b_ns;
      if (delta > worst_delta) {
        worst_delta = delta;
        worst_phase = name;
      }
      t.row({name, b != nullptr ? fmt_ms(b_ns) : "-",
             c != nullptr ? fmt_ms(c_ns) : "-", fmt_ms(delta),
             b_ns > 0.0 ? fmt_pct(delta / b_ns) : "new"});
    }
    std::cout << "profile: " << base.path << " -> " << cur.path << "\n"
              << t.str();
  } else {
    std::cout << "no profile in either input; scalar diff only\n";
  }

  const double b_attr = base.attributed_ns();
  const double c_attr = cur.attributed_ns();
  double regression = 0.0;
  if (b_attr > 0.0) {
    regression = (c_attr - b_attr) / b_attr;
    std::cout << "attributed: " << fmt_ms(b_attr) << " ms -> "
              << fmt_ms(c_attr) << " ms (" << fmt_pct(regression) << ")\n";
    if (!worst_phase.empty() && c_attr > b_attr) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "largest mover: %s (%+.3f ms, %.0f%% of the shift)\n",
                    worst_phase.c_str(), worst_delta / 1e6,
                    100.0 * worst_delta / (c_attr - b_attr));
      std::cout << buf;
    }
  }

  // Scalars: print moves of at least `threshold_pct`, and every key
  // present on only one side (silently vanished metrics hide bugs).
  std::size_t shown = 0;
  TextTable t;
  t.header({"value", "base", "cur", "delta"});
  for (const auto& [name, b_val] : base.scalars) {
    const double* c_val = cur.scalar(name);
    if (c_val == nullptr) {
      t.row({name, fmt_val(b_val), "-", "removed"});
      ++shown;
      continue;
    }
    const double delta = *c_val - b_val;
    if (delta == 0.0) continue;
    const double rel = b_val != 0.0 ? delta / std::abs(b_val) : 1.0;
    if (std::abs(rel) * 100.0 < threshold_pct) continue;
    t.row({name, fmt_val(b_val), fmt_val(*c_val), fmt_pct(rel)});
    ++shown;
  }
  for (const auto& [name, c_val] : cur.scalars) {
    if (base.scalar(name) == nullptr) {
      t.row({name, "-", fmt_val(c_val), "added"});
      ++shown;
    }
  }
  if (shown > 0) {
    std::cout << "\nvalues moving >= " << fmt_val(threshold_pct) << "%\n"
              << t.str();
  }

  if (fail_above_pct >= 0.0 && regression * 100.0 > fail_above_pct) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "pfairstat: attributed time regressed %+.1f%% "
                  "(budget %.1f%%)\n",
                  100.0 * regression, fail_above_pct);
    std::cerr << buf;
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string bench;
  double threshold_pct = 5.0;
  double fail_above_pct = -1.0;
  std::string cmd;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--bench=", 0) == 0) {
      bench = a.substr(8);
    } else if (a.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::stod(a.substr(12));
    } else if (a.rfind("--fail-above=", 0) == 0) {
      fail_above_pct = std::stod(a.substr(13));
    } else if (a.rfind("--", 0) == 0) {
      usage("unknown option '" + a + "'");
    } else if (cmd.empty()) {
      cmd = a;
    } else {
      pos.push_back(a);
    }
  }
  try {
    if (cmd == "show") {
      if (pos.size() != 1) usage("show takes exactly one file");
      return cmd_show(load_dump(pos[0], bench));
    }
    if (cmd == "diff") {
      if (pos.size() != 2) usage("diff takes exactly two files");
      return cmd_diff(load_dump(pos[0], bench), load_dump(pos[1], bench),
                      threshold_pct, fail_above_pct);
    }
  } catch (const std::exception& e) {
    std::cerr << "pfairstat: " << e.what() << "\n";
    return 2;
  }
  usage(cmd.empty() ? "need a command (show | diff)"
                    : "unknown command '" + cmd + "'");
}
