#!/usr/bin/env sh
# Machine-readable bench smoke: Release build, a few representative
# benches with --json, and a schema check on every report produced.
# Usage: scripts/bench_smoke.sh [build-dir]   (default build-rel)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-rel}"

cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target \
  bench_fig2_models bench_table1_pdb bench_micro_sched bench_scaling \
  bench_throughput pfairsim >/dev/null

OUT="$BUILD/bench-reports"
mkdir -p "$OUT"
"$BUILD/bench/bench_fig2_models" --json="$OUT/BENCH_fig2_models.json" \
  >/dev/null
"$BUILD/bench/bench_table1_pdb" --json="$OUT/BENCH_table1_pdb.json" \
  >/dev/null
# Sustained-throughput bench: exercises the arena-backed steady-state
# path and its own shape checks (bit-identical schedules, zero arena
# growth after warmup, a conservative decisions/sec floor).
"$BUILD/bench/bench_throughput" --json="$OUT/BENCH_throughput.json" \
  >/dev/null
# Keep the google-benchmark run fast: one cheap case is enough to prove
# the report path.
"$BUILD/bench/bench_micro_sched" --json="$OUT/BENCH_micro_sched.json" \
  --benchmark_filter=BM_WindowMath >/dev/null 2>&1
# One profiled run: fills the report's "profile" section, writes a
# Prometheus dump, and arms the bench's own < 1.05x span-overhead shape
# check (the whole bench exits nonzero if profiling costs too much).
"$BUILD/bench/bench_scaling" --profile \
  --json="$OUT/BENCH_scaling_profiled.json" \
  --prom="$OUT/BENCH_scaling_profiled.prom" >/dev/null
# A profiled simulator run for the artifact bundle: chrome trace (with
# the profiler span track) plus Prometheus / JSON metrics expositions.
"$BUILD/tools/pfairsim" --demo=fig6 --profile --quiet \
  --chrome-trace="$OUT/fig6_chrome_trace.json" \
  --metrics="$OUT/fig6_metrics.json" \
  --prom="$OUT/fig6_metrics.prom" >/dev/null

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT"/BENCH_*.json <<'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    for key in ("schema", "bench", "git", "ok", "exit_code", "repetitions",
                "wall_ms", "values", "cases", "profile", "metrics"):
        assert key in doc, f"{path}: missing {key!r}"
    assert doc["schema"] == "pfair-bench-v1", f"{path}: bad schema"
    for key in ("min", "median", "max", "all"):
        assert key in doc["wall_ms"], f"{path}: wall_ms missing {key!r}"
    assert doc["ok"] is True, f"{path}: bench reported failure"
    if path.endswith("_profiled.json"):
        assert doc["profile"], f"{path}: profiled run has empty profile"
        assert doc["profile"]["phases"], f"{path}: no phases recorded"
    else:
        assert doc["profile"] is None, f"{path}: unprofiled run has profile"
    print(f"{path}: OK ({doc['bench']} @ {doc['git']})")
EOF
else
  echo "bench_smoke: python3 not found, skipping schema validation" >&2
fi

# Opt-in perf regression guard: compares the scheduler hot-path medians
# against the committed baseline (BENCH_PR10.json); >15% fails.  Off by
# default because wall-clock numbers are machine-specific.
if [ "${PERF_GUARD:-0}" = "1" ]; then
  python3 scripts/perf_guard.py --build-dir "$BUILD"
fi
echo "bench smoke complete — reports in $OUT"
