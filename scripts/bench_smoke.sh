#!/usr/bin/env sh
# Machine-readable bench smoke: Release build, a few representative
# benches with --json, and a schema check on every report produced.
# Usage: scripts/bench_smoke.sh [build-dir]   (default build-rel)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-rel}"

cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target \
  bench_fig2_models bench_table1_pdb bench_micro_sched >/dev/null

OUT="$BUILD/bench-reports"
mkdir -p "$OUT"
"$BUILD/bench/bench_fig2_models" --json="$OUT/BENCH_fig2_models.json" \
  >/dev/null
"$BUILD/bench/bench_table1_pdb" --json="$OUT/BENCH_table1_pdb.json" \
  >/dev/null
# Keep the google-benchmark run fast: one cheap case is enough to prove
# the report path.
"$BUILD/bench/bench_micro_sched" --json="$OUT/BENCH_micro_sched.json" \
  --benchmark_filter=BM_WindowMath >/dev/null 2>&1

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT"/BENCH_*.json <<'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    for key in ("schema", "bench", "git", "ok", "exit_code", "repetitions",
                "wall_ms", "values", "cases", "metrics"):
        assert key in doc, f"{path}: missing {key!r}"
    assert doc["schema"] == "pfair-bench-v1", f"{path}: bad schema"
    for key in ("min", "median", "max", "all"):
        assert key in doc["wall_ms"], f"{path}: wall_ms missing {key!r}"
    assert doc["ok"] is True, f"{path}: bench reported failure"
    print(f"{path}: OK ({doc['bench']} @ {doc['git']})")
EOF
else
  echo "bench_smoke: python3 not found, skipping schema validation" >&2
fi

# Opt-in perf regression guard: compares the scheduler hot-path medians
# against the committed baseline (BENCH_PR3.json); >15% fails.  Off by
# default because wall-clock numbers are machine-specific.
if [ "${PERF_GUARD:-0}" = "1" ]; then
  python3 scripts/perf_guard.py --build-dir "$BUILD"
fi
echo "bench smoke complete — reports in $OUT"
