#!/usr/bin/env sh
# Trace-audit smoke: simulates every paper-figure scenario under both
# models, then re-validates each JSONL trace offline with `pfairtrace
# validate` (the online invariant auditor fed from the parsed stream).
# Any finding on these feasible PD2 schedules fails the run.
# Usage: scripts/trace_smoke.sh [build-dir]   (default build)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j --target pfairsim pfairtrace >/dev/null

SIM="$BUILD/tools/pfairsim"
TRACE="$BUILD/tools/pfairtrace"
OUT="$BUILD/trace-smoke"
mkdir -p "$OUT"

for fig in fig1a fig1b fig1c fig2 fig3 fig6; do
  for model in sfq dvq; do
    f="$OUT/$fig-$model.jsonl"
    # pfairsim's exit code reflects raw tardiness, and fig2/fig3 are
    # *about* sub-quantum lateness under DVQ (legal per Theorem 3) —
    # the auditor's verdict below is the one that gates this smoke.
    "$SIM" --demo="$fig" --model="$model" --quiet --trace="$f" \
      >/dev/null || true
    echo "trace_smoke: $fig $model"
    "$TRACE" validate --demo="$fig" "$f"
  done
done
echo "trace smoke complete — all figure traces validate clean"
