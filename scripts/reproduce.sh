#!/usr/bin/env sh
# One-command reproduction: build, test, run every paper experiment, and
# regenerate the figures.  See EXPERIMENTS.md for what each bench checks.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
build/examples/figure_gallery figures
scripts/bench_smoke.sh
echo "reproduction complete — figures/ regenerated, all shape checks above"
