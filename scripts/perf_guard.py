#!/usr/bin/env python3
"""Performance regression guard for the scheduler hot paths.

Compares fresh pfair-bench-v1 reports against the committed baseline
bundle (BENCH_PR10.json at the repo root) and fails if any guarded case
regresses by more than the tolerance on its median ns/op.

Usage:
  scripts/perf_guard.py --build-dir build-rel            # check
  scripts/perf_guard.py --build-dir build-rel --write-baseline
  scripts/perf_guard.py --reports DIR                    # check pre-made
                                                         # reports

The guard runs (or reads) four reports:
  micro_sched  google-benchmark micro costs (BM_SfqSchedule,
               BM_DvqSchedule, ... with repetitions for medians)
  scaling      fast-vs-naive sweep over task counts plus the cycle
               fast-forward cases (bench_scaling)
  epdf_dvq     one DVQ experiment, wall-clock only (rides along in the
               bundle for reference; not guarded)
  throughput   sustained decisions/sec with arena-backed repeated
               scheduling (bench_throughput); guarded per-call costs
  soak         scale soak with the S1-large tier (PFAIR_SOAK_LARGE=1):
               its own shape check enforces the >= 100x fast-forward
               speedup and the bundle records it in large.ff_speedup

Only cases matching GUARDED_PATTERNS are compared: the optimized
schedulers' costs.  The naive reference timings (sfq_ref/*, dvq_ref/*)
ride along in the reports but are deliberately unguarded — the oracle is
allowed to be slow.

Baselines are machine-specific: regenerate with --write-baseline when
benching hardware changes, and read absolute numbers with that in mind.
"""

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "BENCH_PR10.json")
TOLERANCE = 0.15

# (bench target, report name, extra argv, extra env)
BENCHES = [
    (
        "bench_micro_sched",
        "micro_sched",
        [
            "--benchmark_filter="
            "BM_SfqSchedule|BM_SfqScheduleIndexed|BM_DvqSchedule",
            "--benchmark_repetitions=3",
        ],
        {},
    ),
    # --profile records the per-phase self-time breakdown in the
    # report's "profile" section (and arms the bench's own < 1.05x
    # span-overhead shape check); on a regression the guard names the
    # phase that moved most.
    ("bench_scaling", "scaling", ["--profile"], {}),
    ("bench_epdf_dvq", "epdf_dvq", ["--repeat=5"], {}),
    # Sustained throughput over the arena-backed steady-state path; its
    # own shape check enforces bit-identicality and zero steady-state
    # arena growth.
    ("bench_throughput", "throughput", [], {}),
    # The S1-large tier's own shape check enforces the >= 100x
    # fast-forward speedup and records it in the bundle's values; it has
    # no guarded ns/op cases (single-shot wall clock).
    ("bench_soak", "soak", [], {"PFAIR_SOAK_LARGE": "1"}),
]

GUARDED_PATTERNS = [
    r"^BM_SfqSchedule/",
    r"^BM_SfqScheduleIndexed/",
    r"^BM_DvqSchedule/",
    r"^sfq_fast/",
    # SIMD+arena and forced-scalar legs of the P1 sweep: the optimized
    # path must not regress in either backend.
    r"^sfq_arena/",
    r"^sfq_scalar/",
    r"^dvq_fast/",
    # Steady-state decisions/sec (bench_throughput); ns/op is per
    # schedule call so large-n cases clear MIN_GUARDED_NS.
    r"^throughput/",
    # Flyweight task-system construction (bench_scaling); the eager
    # oracle rides along as construction_eager/* unguarded.
    r"^construction/",
    # Steady-state cycle fast-forward (bench_scaling); the full-horizon
    # simulations it is compared against are unguarded references.
    r"^cycle/",
]

# Cases whose baseline median sits below this ride along in the reports
# but are not guarded: on a busy box, scheduling jitter alone moves
# sub-100us single-shot timings past any sane tolerance.
MIN_GUARDED_NS = 80_000


def run_benches(build_dir, out_dir):
    targets = [b[0] for b in BENCHES]
    subprocess.run(
        ["cmake", "--build", build_dir, "-j", "--target"] + targets,
        check=True,
        cwd=REPO,
        stdout=subprocess.DEVNULL,
    )
    reports = {}
    for target, name, extra, env in BENCHES:
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        exe = os.path.join(build_dir, "bench", target)
        print(f"perf_guard: running {target} ...", file=sys.stderr)
        subprocess.run(
            [exe, f"--json={path}"] + extra,
            check=True,
            cwd=REPO,
            env={**os.environ, **env},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        with open(path) as f:
            reports[name] = json.load(f)
    return reports


def load_reports(reports_dir):
    reports = {}
    for _, name, _, _ in BENCHES:
        path = os.path.join(reports_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            sys.exit(f"perf_guard: missing report {path}")
        with open(path) as f:
            reports[name] = json.load(f)
    return reports


def case_medians(report):
    """name -> median ns/op over same-name case entries (repetitions)."""
    runs = {}
    for case in report.get("cases", []):
        runs.setdefault(case["name"], []).append(case["ns_per_op"])
    return {name: statistics.median(v) for name, v in runs.items()}


def guarded(name):
    return any(re.search(p, name) for p in GUARDED_PATTERNS)


def profile_phases(report):
    """phase -> self_ns from a report's profile section, or None when
    the report predates profiling (missing key, null, or no phases)."""
    profile = report.get("profile")
    if not isinstance(profile, dict):
        return None
    phases = profile.get("phases")
    if not isinstance(phases, dict) or not phases:
        return None
    return {name: entry.get("self_ns", 0.0) for name, entry in phases.items()}


def attribute_regression(bench_name, base_report, fresh_report):
    """On a regression, say which profile phase moved most (per-phase
    self time, baseline vs fresh).  Quietly degrades when either side
    has no profile section — pre-PR6 baselines lack one."""
    base_phases = profile_phases(base_report)
    fresh_phases = profile_phases(fresh_report)
    if base_phases is None or fresh_phases is None:
        which = "baseline" if base_phases is None else "fresh report"
        print(
            f"  {bench_name}: no profile section in the {which}; "
            "cannot attribute the regression to a phase"
        )
        return
    movers = sorted(
        (
            (fresh_phases.get(name, 0.0) - base_ns, name, base_ns)
            for name, base_ns in base_phases.items()
        ),
        reverse=True,
    )
    movers += [
        (ns, name, 0.0)
        for name, ns in fresh_phases.items()
        if name not in base_phases
    ]
    movers.sort(reverse=True)
    delta_ns, name, base_ns = movers[0]
    if delta_ns <= 0:
        print(
            f"  {bench_name}: no profile phase slowed down — the "
            "regression sits outside instrumented spans"
        )
        return
    rel = f"{delta_ns / base_ns * 100.0:+.1f}%" if base_ns > 0 else "new"
    print(
        f"  {bench_name}: phase '{name}' moved most: "
        f"{base_ns / 1e6:.3f} -> {(base_ns + delta_ns) / 1e6:.3f} ms "
        f"self time ({rel})"
    )


def check(baseline, fresh, tolerance):
    failures = []
    compared = 0
    worst = None  # (ratio, "bench/name")
    for bench_name, base_report in baseline["reports"].items():
        fresh_report = fresh.get(bench_name)
        if fresh_report is None:
            failures.append(f"{bench_name}: no fresh report")
            continue
        if not fresh_report.get("ok", False):
            failures.append(f"{bench_name}: fresh run reported failure")
        base_cases = case_medians(base_report)
        fresh_cases = case_medians(fresh_report)
        bench_regressed = False
        for name, base_ns in sorted(base_cases.items()):
            if not guarded(name) or base_ns < MIN_GUARDED_NS:
                continue
            if name not in fresh_cases:
                failures.append(f"{bench_name}/{name}: case disappeared")
                continue
            fresh_ns = fresh_cases[name]
            ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
            compared += 1
            marker = "FAIL" if ratio > 1.0 + tolerance else "ok"
            print(
                f"  {marker:4} {bench_name}/{name}: "
                f"{base_ns:12.0f} -> {fresh_ns:12.0f} ns/op "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )
            if worst is None or ratio > worst[0]:
                worst = (ratio, f"{bench_name}/{name}")
            if ratio > 1.0 + tolerance:
                bench_regressed = True
                failures.append(
                    f"{bench_name}/{name}: {base_ns:.0f} -> {fresh_ns:.0f} "
                    f"ns/op, {(ratio - 1.0) * 100:+.1f}% "
                    f"(tolerance {tolerance * 100:.0f}%)"
                )
        if bench_regressed:
            attribute_regression(bench_name, base_report, fresh_report)
    if compared == 0:
        failures.append("no guarded cases compared — baseline empty?")
    elif worst is not None:
        print(
            f"perf_guard: {compared} guarded cases compared; worst delta "
            f"{(worst[0] - 1.0) * 100:+.1f}% ({worst[1]})"
        )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-rel")
    ap.add_argument("--baseline", default=BASELINE)
    ap.add_argument(
        "--reports",
        default=None,
        help="directory of pre-made BENCH_*.json (skips running benches)",
    )
    ap.add_argument("--tolerance", type=float, default=TOLERANCE)
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the benches and (re)write the baseline bundle",
    )
    args = ap.parse_args()

    if args.reports:
        fresh = load_reports(args.reports)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            fresh = run_benches(args.build_dir, tmp)

    if args.write_baseline:
        bundle = {
            "schema": "pfair-perf-baseline-v1",
            "tolerance": args.tolerance,
            "reports": fresh,
        }
        with open(args.baseline, "w") as f:
            json.dump(bundle, f, indent=1)
            f.write("\n")
        print(f"perf_guard: baseline written to {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        sys.exit(
            f"perf_guard: no baseline at {args.baseline} "
            "(generate with --write-baseline)"
        )
    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") != "pfair-perf-baseline-v1":
        sys.exit("perf_guard: unrecognized baseline schema")

    print(f"perf_guard: comparing against {args.baseline}")
    failures = check(baseline, fresh, args.tolerance)
    if failures:
        print("perf_guard: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf_guard: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
