#!/usr/bin/env sh
# Sanitizer smoke: builds the tree with -fsanitize=address,undefined
# (PFAIR_SANITIZE) and runs the tasks/sched test subset — the suites that
# exercise the flyweight window tables, the shared WindowTableCache (its
# multi-threaded hammer test included), and the simulator hot paths over
# them.  Any ASan/UBSan report aborts the run (-fno-sanitize-recover=all).
# Usage: scripts/san_smoke.sh [build-dir]   (default build-san)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-san}"

cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPFAIR_SANITIZE=address,undefined >/dev/null
cmake --build "$BUILD" -j --target \
  tasks_test window_table_test priority_test packed_key_test \
  sfq_test simulator_test ab_equivalence_test >/dev/null

for t in tasks_test window_table_test priority_test packed_key_test \
         sfq_test simulator_test ab_equivalence_test; do
  echo "san_smoke: $t"
  "$BUILD/tests/$t" --gtest_brief=1
done
echo "san smoke complete — no sanitizer reports"
