file(REMOVE_RECURSE
  "libpfair_workload.a"
)
