file(REMOVE_RECURSE
  "CMakeFiles/pfair_workload.dir/workload/adversary.cpp.o"
  "CMakeFiles/pfair_workload.dir/workload/adversary.cpp.o.d"
  "CMakeFiles/pfair_workload.dir/workload/dynamic.cpp.o"
  "CMakeFiles/pfair_workload.dir/workload/dynamic.cpp.o.d"
  "CMakeFiles/pfair_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/pfair_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/pfair_workload.dir/workload/paper_figures.cpp.o"
  "CMakeFiles/pfair_workload.dir/workload/paper_figures.cpp.o.d"
  "libpfair_workload.a"
  "libpfair_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
