# Empty dependencies file for pfair_workload.
# This may be replaced when dependencies are built.
