# Empty dependencies file for pfair_sched.
# This may be replaced when dependencies are built.
