file(REMOVE_RECURSE
  "CMakeFiles/pfair_sched.dir/sched/indexed_scheduler.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/indexed_scheduler.cpp.o.d"
  "CMakeFiles/pfair_sched.dir/sched/pdb_scheduler.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/pdb_scheduler.cpp.o.d"
  "CMakeFiles/pfair_sched.dir/sched/priority.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/priority.cpp.o.d"
  "CMakeFiles/pfair_sched.dir/sched/schedule.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/schedule.cpp.o.d"
  "CMakeFiles/pfair_sched.dir/sched/sfq_scheduler.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/sfq_scheduler.cpp.o.d"
  "CMakeFiles/pfair_sched.dir/sched/simulator.cpp.o"
  "CMakeFiles/pfair_sched.dir/sched/simulator.cpp.o.d"
  "libpfair_sched.a"
  "libpfair_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
