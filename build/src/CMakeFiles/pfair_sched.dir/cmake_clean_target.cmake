file(REMOVE_RECURSE
  "libpfair_sched.a"
)
