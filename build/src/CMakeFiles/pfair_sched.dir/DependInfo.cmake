
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/indexed_scheduler.cpp" "src/CMakeFiles/pfair_sched.dir/sched/indexed_scheduler.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/indexed_scheduler.cpp.o.d"
  "/root/repo/src/sched/pdb_scheduler.cpp" "src/CMakeFiles/pfair_sched.dir/sched/pdb_scheduler.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/pdb_scheduler.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/CMakeFiles/pfair_sched.dir/sched/priority.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/priority.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/pfair_sched.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/sfq_scheduler.cpp" "src/CMakeFiles/pfair_sched.dir/sched/sfq_scheduler.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/sfq_scheduler.cpp.o.d"
  "/root/repo/src/sched/simulator.cpp" "src/CMakeFiles/pfair_sched.dir/sched/simulator.cpp.o" "gcc" "src/CMakeFiles/pfair_sched.dir/sched/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
