file(REMOVE_RECURSE
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_schedule.cpp.o"
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_schedule.cpp.o.d"
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_scheduler.cpp.o"
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_scheduler.cpp.o.d"
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_simulator.cpp.o"
  "CMakeFiles/pfair_dvq.dir/dvq/dvq_simulator.cpp.o.d"
  "CMakeFiles/pfair_dvq.dir/dvq/staggered.cpp.o"
  "CMakeFiles/pfair_dvq.dir/dvq/staggered.cpp.o.d"
  "CMakeFiles/pfair_dvq.dir/dvq/yield.cpp.o"
  "CMakeFiles/pfair_dvq.dir/dvq/yield.cpp.o.d"
  "libpfair_dvq.a"
  "libpfair_dvq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_dvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
