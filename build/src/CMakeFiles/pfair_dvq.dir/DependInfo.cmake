
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvq/dvq_schedule.cpp" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_schedule.cpp.o" "gcc" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_schedule.cpp.o.d"
  "/root/repo/src/dvq/dvq_scheduler.cpp" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_scheduler.cpp.o" "gcc" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_scheduler.cpp.o.d"
  "/root/repo/src/dvq/dvq_simulator.cpp" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_simulator.cpp.o" "gcc" "src/CMakeFiles/pfair_dvq.dir/dvq/dvq_simulator.cpp.o.d"
  "/root/repo/src/dvq/staggered.cpp" "src/CMakeFiles/pfair_dvq.dir/dvq/staggered.cpp.o" "gcc" "src/CMakeFiles/pfair_dvq.dir/dvq/staggered.cpp.o.d"
  "/root/repo/src/dvq/yield.cpp" "src/CMakeFiles/pfair_dvq.dir/dvq/yield.cpp.o" "gcc" "src/CMakeFiles/pfair_dvq.dir/dvq/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
