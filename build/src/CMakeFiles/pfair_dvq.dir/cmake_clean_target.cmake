file(REMOVE_RECURSE
  "libpfair_dvq.a"
)
