# Empty compiler generated dependencies file for pfair_dvq.
# This may be replaced when dependencies are built.
