file(REMOVE_RECURSE
  "libpfair_core.a"
)
