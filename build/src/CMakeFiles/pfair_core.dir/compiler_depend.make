# Empty compiler generated dependencies file for pfair_core.
# This may be replaced when dependencies are built.
