file(REMOVE_RECURSE
  "CMakeFiles/pfair_core.dir/core/rational.cpp.o"
  "CMakeFiles/pfair_core.dir/core/rational.cpp.o.d"
  "CMakeFiles/pfair_core.dir/core/rng.cpp.o"
  "CMakeFiles/pfair_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/pfair_core.dir/core/stats.cpp.o"
  "CMakeFiles/pfair_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/pfair_core.dir/core/thread_pool.cpp.o"
  "CMakeFiles/pfair_core.dir/core/thread_pool.cpp.o.d"
  "CMakeFiles/pfair_core.dir/core/time.cpp.o"
  "CMakeFiles/pfair_core.dir/core/time.cpp.o.d"
  "libpfair_core.a"
  "libpfair_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
