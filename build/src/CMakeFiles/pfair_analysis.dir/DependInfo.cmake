
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocking.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/blocking.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/blocking.cpp.o.d"
  "/root/repo/src/analysis/charged_free.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/charged_free.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/charged_free.cpp.o.d"
  "/root/repo/src/analysis/compliance.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/compliance.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/compliance.cpp.o.d"
  "/root/repo/src/analysis/hyperperiod.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/hyperperiod.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/hyperperiod.cpp.o.d"
  "/root/repo/src/analysis/lag.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/lag.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/lag.cpp.o.d"
  "/root/repo/src/analysis/overheads.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/overheads.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/overheads.cpp.o.d"
  "/root/repo/src/analysis/pdb_blocking.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/pdb_blocking.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/pdb_blocking.cpp.o.d"
  "/root/repo/src/analysis/sb_construction.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/sb_construction.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/sb_construction.cpp.o.d"
  "/root/repo/src/analysis/switching.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/switching.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/switching.cpp.o.d"
  "/root/repo/src/analysis/tardiness.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/tardiness.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/tardiness.cpp.o.d"
  "/root/repo/src/analysis/validity.cpp" "src/CMakeFiles/pfair_analysis.dir/analysis/validity.cpp.o" "gcc" "src/CMakeFiles/pfair_analysis.dir/analysis/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
