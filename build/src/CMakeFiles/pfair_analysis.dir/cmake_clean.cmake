file(REMOVE_RECURSE
  "CMakeFiles/pfair_analysis.dir/analysis/blocking.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/blocking.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/charged_free.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/charged_free.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/compliance.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/compliance.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/hyperperiod.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/hyperperiod.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/lag.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/lag.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/overheads.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/overheads.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/pdb_blocking.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/pdb_blocking.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/sb_construction.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/sb_construction.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/switching.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/switching.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/tardiness.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/tardiness.cpp.o.d"
  "CMakeFiles/pfair_analysis.dir/analysis/validity.cpp.o"
  "CMakeFiles/pfair_analysis.dir/analysis/validity.cpp.o.d"
  "libpfair_analysis.a"
  "libpfair_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
