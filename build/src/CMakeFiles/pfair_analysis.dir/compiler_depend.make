# Empty compiler generated dependencies file for pfair_analysis.
# This may be replaced when dependencies are built.
