file(REMOVE_RECURSE
  "libpfair_analysis.a"
)
