
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edf/global_edf.cpp" "src/CMakeFiles/pfair_edf.dir/edf/global_edf.cpp.o" "gcc" "src/CMakeFiles/pfair_edf.dir/edf/global_edf.cpp.o.d"
  "/root/repo/src/edf/jobs.cpp" "src/CMakeFiles/pfair_edf.dir/edf/jobs.cpp.o" "gcc" "src/CMakeFiles/pfair_edf.dir/edf/jobs.cpp.o.d"
  "/root/repo/src/edf/partition.cpp" "src/CMakeFiles/pfair_edf.dir/edf/partition.cpp.o" "gcc" "src/CMakeFiles/pfair_edf.dir/edf/partition.cpp.o.d"
  "/root/repo/src/edf/partitioned_edf.cpp" "src/CMakeFiles/pfair_edf.dir/edf/partitioned_edf.cpp.o" "gcc" "src/CMakeFiles/pfair_edf.dir/edf/partitioned_edf.cpp.o.d"
  "/root/repo/src/edf/partitioned_pfair.cpp" "src/CMakeFiles/pfair_edf.dir/edf/partitioned_pfair.cpp.o" "gcc" "src/CMakeFiles/pfair_edf.dir/edf/partitioned_pfair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
