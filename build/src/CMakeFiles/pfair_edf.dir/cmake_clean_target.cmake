file(REMOVE_RECURSE
  "libpfair_edf.a"
)
