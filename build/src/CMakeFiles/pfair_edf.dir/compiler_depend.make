# Empty compiler generated dependencies file for pfair_edf.
# This may be replaced when dependencies are built.
