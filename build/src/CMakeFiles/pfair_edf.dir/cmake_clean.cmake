file(REMOVE_RECURSE
  "CMakeFiles/pfair_edf.dir/edf/global_edf.cpp.o"
  "CMakeFiles/pfair_edf.dir/edf/global_edf.cpp.o.d"
  "CMakeFiles/pfair_edf.dir/edf/jobs.cpp.o"
  "CMakeFiles/pfair_edf.dir/edf/jobs.cpp.o.d"
  "CMakeFiles/pfair_edf.dir/edf/partition.cpp.o"
  "CMakeFiles/pfair_edf.dir/edf/partition.cpp.o.d"
  "CMakeFiles/pfair_edf.dir/edf/partitioned_edf.cpp.o"
  "CMakeFiles/pfair_edf.dir/edf/partitioned_edf.cpp.o.d"
  "CMakeFiles/pfair_edf.dir/edf/partitioned_pfair.cpp.o"
  "CMakeFiles/pfair_edf.dir/edf/partitioned_pfair.cpp.o.d"
  "libpfair_edf.a"
  "libpfair_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
