file(REMOVE_RECURSE
  "CMakeFiles/pfair_io.dir/io/csv.cpp.o"
  "CMakeFiles/pfair_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/pfair_io.dir/io/export.cpp.o"
  "CMakeFiles/pfair_io.dir/io/export.cpp.o.d"
  "CMakeFiles/pfair_io.dir/io/parse.cpp.o"
  "CMakeFiles/pfair_io.dir/io/parse.cpp.o.d"
  "CMakeFiles/pfair_io.dir/io/render.cpp.o"
  "CMakeFiles/pfair_io.dir/io/render.cpp.o.d"
  "CMakeFiles/pfair_io.dir/io/svg.cpp.o"
  "CMakeFiles/pfair_io.dir/io/svg.cpp.o.d"
  "CMakeFiles/pfair_io.dir/io/table.cpp.o"
  "CMakeFiles/pfair_io.dir/io/table.cpp.o.d"
  "libpfair_io.a"
  "libpfair_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
