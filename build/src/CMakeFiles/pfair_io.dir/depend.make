# Empty dependencies file for pfair_io.
# This may be replaced when dependencies are built.
