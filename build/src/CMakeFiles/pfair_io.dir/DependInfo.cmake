
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/pfair_io.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/export.cpp" "src/CMakeFiles/pfair_io.dir/io/export.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/export.cpp.o.d"
  "/root/repo/src/io/parse.cpp" "src/CMakeFiles/pfair_io.dir/io/parse.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/parse.cpp.o.d"
  "/root/repo/src/io/render.cpp" "src/CMakeFiles/pfair_io.dir/io/render.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/render.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/CMakeFiles/pfair_io.dir/io/svg.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/svg.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/pfair_io.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/pfair_io.dir/io/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
