file(REMOVE_RECURSE
  "libpfair_io.a"
)
