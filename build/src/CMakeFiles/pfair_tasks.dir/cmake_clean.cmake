file(REMOVE_RECURSE
  "CMakeFiles/pfair_tasks.dir/tasks/group_deadline.cpp.o"
  "CMakeFiles/pfair_tasks.dir/tasks/group_deadline.cpp.o.d"
  "CMakeFiles/pfair_tasks.dir/tasks/task.cpp.o"
  "CMakeFiles/pfair_tasks.dir/tasks/task.cpp.o.d"
  "CMakeFiles/pfair_tasks.dir/tasks/task_system.cpp.o"
  "CMakeFiles/pfair_tasks.dir/tasks/task_system.cpp.o.d"
  "CMakeFiles/pfair_tasks.dir/tasks/windows.cpp.o"
  "CMakeFiles/pfair_tasks.dir/tasks/windows.cpp.o.d"
  "libpfair_tasks.a"
  "libpfair_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
