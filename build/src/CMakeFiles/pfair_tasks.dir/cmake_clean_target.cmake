file(REMOVE_RECURSE
  "libpfair_tasks.a"
)
