
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/group_deadline.cpp" "src/CMakeFiles/pfair_tasks.dir/tasks/group_deadline.cpp.o" "gcc" "src/CMakeFiles/pfair_tasks.dir/tasks/group_deadline.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "src/CMakeFiles/pfair_tasks.dir/tasks/task.cpp.o" "gcc" "src/CMakeFiles/pfair_tasks.dir/tasks/task.cpp.o.d"
  "/root/repo/src/tasks/task_system.cpp" "src/CMakeFiles/pfair_tasks.dir/tasks/task_system.cpp.o" "gcc" "src/CMakeFiles/pfair_tasks.dir/tasks/task_system.cpp.o.d"
  "/root/repo/src/tasks/windows.cpp" "src/CMakeFiles/pfair_tasks.dir/tasks/windows.cpp.o" "gcc" "src/CMakeFiles/pfair_tasks.dir/tasks/windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
