# Empty compiler generated dependencies file for pfair_tasks.
# This may be replaced when dependencies are built.
