# Empty dependencies file for pfair_super.
# This may be replaced when dependencies are built.
