file(REMOVE_RECURSE
  "CMakeFiles/pfair_super.dir/super/supertask.cpp.o"
  "CMakeFiles/pfair_super.dir/super/supertask.cpp.o.d"
  "libpfair_super.a"
  "libpfair_super.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfair_super.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
