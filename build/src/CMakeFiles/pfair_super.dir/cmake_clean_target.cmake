file(REMOVE_RECURSE
  "libpfair_super.a"
)
