
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/super/supertask.cpp" "src/CMakeFiles/pfair_super.dir/super/supertask.cpp.o" "gcc" "src/CMakeFiles/pfair_super.dir/super/supertask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfair_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_edf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfair_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
