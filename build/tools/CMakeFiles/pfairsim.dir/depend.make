# Empty dependencies file for pfairsim.
# This may be replaced when dependencies are built.
