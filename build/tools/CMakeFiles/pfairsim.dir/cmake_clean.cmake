file(REMOVE_RECURSE
  "CMakeFiles/pfairsim.dir/pfairsim.cpp.o"
  "CMakeFiles/pfairsim.dir/pfairsim.cpp.o.d"
  "pfairsim"
  "pfairsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfairsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
