file(REMOVE_RECURSE
  "CMakeFiles/dvq_simulator_test.dir/dvq_simulator_test.cpp.o"
  "CMakeFiles/dvq_simulator_test.dir/dvq_simulator_test.cpp.o.d"
  "dvq_simulator_test"
  "dvq_simulator_test.pdb"
  "dvq_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvq_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
