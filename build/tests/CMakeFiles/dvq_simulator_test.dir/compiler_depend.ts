# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dvq_simulator_test.
