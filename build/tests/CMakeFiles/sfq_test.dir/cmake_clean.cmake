file(REMOVE_RECURSE
  "CMakeFiles/sfq_test.dir/sfq_test.cpp.o"
  "CMakeFiles/sfq_test.dir/sfq_test.cpp.o.d"
  "sfq_test"
  "sfq_test.pdb"
  "sfq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
