file(REMOVE_RECURSE
  "CMakeFiles/switching_indexed_test.dir/switching_indexed_test.cpp.o"
  "CMakeFiles/switching_indexed_test.dir/switching_indexed_test.cpp.o.d"
  "switching_indexed_test"
  "switching_indexed_test.pdb"
  "switching_indexed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switching_indexed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
