# Empty dependencies file for switching_indexed_test.
# This may be replaced when dependencies are built.
