# Empty compiler generated dependencies file for edf_test.
# This may be replaced when dependencies are built.
