# Empty compiler generated dependencies file for staggered_test.
# This may be replaced when dependencies are built.
