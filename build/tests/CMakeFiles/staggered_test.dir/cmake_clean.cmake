file(REMOVE_RECURSE
  "CMakeFiles/staggered_test.dir/staggered_test.cpp.o"
  "CMakeFiles/staggered_test.dir/staggered_test.cpp.o.d"
  "staggered_test"
  "staggered_test.pdb"
  "staggered_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staggered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
