# Empty dependencies file for pdb_test.
# This may be replaced when dependencies are built.
