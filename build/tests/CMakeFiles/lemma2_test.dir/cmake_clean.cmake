file(REMOVE_RECURSE
  "CMakeFiles/lemma2_test.dir/lemma2_test.cpp.o"
  "CMakeFiles/lemma2_test.dir/lemma2_test.cpp.o.d"
  "lemma2_test"
  "lemma2_test.pdb"
  "lemma2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
