# Empty dependencies file for lemma2_test.
# This may be replaced when dependencies are built.
