# Empty dependencies file for sb_test.
# This may be replaced when dependencies are built.
