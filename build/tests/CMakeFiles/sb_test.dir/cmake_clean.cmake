file(REMOVE_RECURSE
  "CMakeFiles/sb_test.dir/sb_test.cpp.o"
  "CMakeFiles/sb_test.dir/sb_test.cpp.o.d"
  "sb_test"
  "sb_test.pdb"
  "sb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
