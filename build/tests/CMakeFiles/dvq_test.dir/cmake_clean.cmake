file(REMOVE_RECURSE
  "CMakeFiles/dvq_test.dir/dvq_test.cpp.o"
  "CMakeFiles/dvq_test.dir/dvq_test.cpp.o.d"
  "dvq_test"
  "dvq_test.pdb"
  "dvq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
