# Empty compiler generated dependencies file for overheads_test.
# This may be replaced when dependencies are built.
