# Empty dependencies file for radar_tracker.
# This may be replaced when dependencies are built.
