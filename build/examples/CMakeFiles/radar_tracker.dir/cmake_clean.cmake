file(REMOVE_RECURSE
  "CMakeFiles/radar_tracker.dir/radar_tracker.cpp.o"
  "CMakeFiles/radar_tracker.dir/radar_tracker.cpp.o.d"
  "radar_tracker"
  "radar_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
