file(REMOVE_RECURSE
  "../bench/bench_fractional"
  "../bench/bench_fractional.pdb"
  "CMakeFiles/bench_fractional.dir/bench_fractional.cpp.o"
  "CMakeFiles/bench_fractional.dir/bench_fractional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fractional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
