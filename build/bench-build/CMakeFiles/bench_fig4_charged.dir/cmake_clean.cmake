file(REMOVE_RECURSE
  "../bench/bench_fig4_charged"
  "../bench/bench_fig4_charged.pdb"
  "CMakeFiles/bench_fig4_charged.dir/bench_fig4_charged.cpp.o"
  "CMakeFiles/bench_fig4_charged.dir/bench_fig4_charged.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_charged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
