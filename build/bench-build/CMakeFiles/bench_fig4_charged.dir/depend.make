# Empty dependencies file for bench_fig4_charged.
# This may be replaced when dependencies are built.
