file(REMOVE_RECURSE
  "../bench/bench_er_release"
  "../bench/bench_er_release.pdb"
  "CMakeFiles/bench_er_release.dir/bench_er_release.cpp.o"
  "CMakeFiles/bench_er_release.dir/bench_er_release.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_er_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
