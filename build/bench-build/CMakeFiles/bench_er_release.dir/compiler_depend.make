# Empty compiler generated dependencies file for bench_er_release.
# This may be replaced when dependencies are built.
