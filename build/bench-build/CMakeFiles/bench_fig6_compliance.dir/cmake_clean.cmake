file(REMOVE_RECURSE
  "../bench/bench_fig6_compliance"
  "../bench/bench_fig6_compliance.pdb"
  "CMakeFiles/bench_fig6_compliance.dir/bench_fig6_compliance.cpp.o"
  "CMakeFiles/bench_fig6_compliance.dir/bench_fig6_compliance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
