# Empty dependencies file for bench_fig6_compliance.
# This may be replaced when dependencies are built.
