file(REMOVE_RECURSE
  "../bench/bench_fig3_blocking"
  "../bench/bench_fig3_blocking.pdb"
  "CMakeFiles/bench_fig3_blocking.dir/bench_fig3_blocking.cpp.o"
  "CMakeFiles/bench_fig3_blocking.dir/bench_fig3_blocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
