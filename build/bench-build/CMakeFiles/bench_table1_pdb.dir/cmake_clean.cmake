file(REMOVE_RECURSE
  "../bench/bench_table1_pdb"
  "../bench/bench_table1_pdb.pdb"
  "CMakeFiles/bench_table1_pdb.dir/bench_table1_pdb.cpp.o"
  "CMakeFiles/bench_table1_pdb.dir/bench_table1_pdb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
