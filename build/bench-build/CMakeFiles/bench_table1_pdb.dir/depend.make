# Empty dependencies file for bench_table1_pdb.
# This may be replaced when dependencies are built.
