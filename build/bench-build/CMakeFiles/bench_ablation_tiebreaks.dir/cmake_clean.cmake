file(REMOVE_RECURSE
  "../bench/bench_ablation_tiebreaks"
  "../bench/bench_ablation_tiebreaks.pdb"
  "CMakeFiles/bench_ablation_tiebreaks.dir/bench_ablation_tiebreaks.cpp.o"
  "CMakeFiles/bench_ablation_tiebreaks.dir/bench_ablation_tiebreaks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiebreaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
