# Empty compiler generated dependencies file for bench_ablation_tiebreaks.
# This may be replaced when dependencies are built.
