file(REMOVE_RECURSE
  "../bench/bench_fig1_windows"
  "../bench/bench_fig1_windows.pdb"
  "CMakeFiles/bench_fig1_windows.dir/bench_fig1_windows.cpp.o"
  "CMakeFiles/bench_fig1_windows.dir/bench_fig1_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
