file(REMOVE_RECURSE
  "../bench/bench_util_bound"
  "../bench/bench_util_bound.pdb"
  "CMakeFiles/bench_util_bound.dir/bench_util_bound.cpp.o"
  "CMakeFiles/bench_util_bound.dir/bench_util_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_util_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
