# Empty compiler generated dependencies file for bench_util_bound.
# This may be replaced when dependencies are built.
