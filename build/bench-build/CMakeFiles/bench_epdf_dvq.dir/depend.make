# Empty dependencies file for bench_epdf_dvq.
# This may be replaced when dependencies are built.
