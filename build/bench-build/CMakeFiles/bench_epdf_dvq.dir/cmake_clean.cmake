file(REMOVE_RECURSE
  "../bench/bench_epdf_dvq"
  "../bench/bench_epdf_dvq.pdb"
  "CMakeFiles/bench_epdf_dvq.dir/bench_epdf_dvq.cpp.o"
  "CMakeFiles/bench_epdf_dvq.dir/bench_epdf_dvq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epdf_dvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
