# Empty compiler generated dependencies file for bench_theorem_tardiness.
# This may be replaced when dependencies are built.
