file(REMOVE_RECURSE
  "../bench/bench_theorem_tardiness"
  "../bench/bench_theorem_tardiness.pdb"
  "CMakeFiles/bench_theorem_tardiness.dir/bench_theorem_tardiness.cpp.o"
  "CMakeFiles/bench_theorem_tardiness.dir/bench_theorem_tardiness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_tardiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
