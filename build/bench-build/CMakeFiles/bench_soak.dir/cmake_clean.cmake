file(REMOVE_RECURSE
  "../bench/bench_soak"
  "../bench/bench_soak.pdb"
  "CMakeFiles/bench_soak.dir/bench_soak.cpp.o"
  "CMakeFiles/bench_soak.dir/bench_soak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
