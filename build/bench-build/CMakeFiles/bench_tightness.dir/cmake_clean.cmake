file(REMOVE_RECURSE
  "../bench/bench_tightness"
  "../bench/bench_tightness.pdb"
  "CMakeFiles/bench_tightness.dir/bench_tightness.cpp.o"
  "CMakeFiles/bench_tightness.dir/bench_tightness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
