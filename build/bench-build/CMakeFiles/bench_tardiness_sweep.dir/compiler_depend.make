# Empty compiler generated dependencies file for bench_tardiness_sweep.
# This may be replaced when dependencies are built.
