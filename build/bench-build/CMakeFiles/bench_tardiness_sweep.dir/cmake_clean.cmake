file(REMOVE_RECURSE
  "../bench/bench_tardiness_sweep"
  "../bench/bench_tardiness_sweep.pdb"
  "CMakeFiles/bench_tardiness_sweep.dir/bench_tardiness_sweep.cpp.o"
  "CMakeFiles/bench_tardiness_sweep.dir/bench_tardiness_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tardiness_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
