file(REMOVE_RECURSE
  "../bench/bench_staggered"
  "../bench/bench_staggered.pdb"
  "CMakeFiles/bench_staggered.dir/bench_staggered.cpp.o"
  "CMakeFiles/bench_staggered.dir/bench_staggered.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
