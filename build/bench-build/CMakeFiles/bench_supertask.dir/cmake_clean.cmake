file(REMOVE_RECURSE
  "../bench/bench_supertask"
  "../bench/bench_supertask.pdb"
  "CMakeFiles/bench_supertask.dir/bench_supertask.cpp.o"
  "CMakeFiles/bench_supertask.dir/bench_supertask.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supertask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
