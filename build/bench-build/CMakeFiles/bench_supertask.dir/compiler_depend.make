# Empty compiler generated dependencies file for bench_supertask.
# This may be replaced when dependencies are built.
