file(REMOVE_RECURSE
  "../bench/bench_idle_reclaim"
  "../bench/bench_idle_reclaim.pdb"
  "CMakeFiles/bench_idle_reclaim.dir/bench_idle_reclaim.cpp.o"
  "CMakeFiles/bench_idle_reclaim.dir/bench_idle_reclaim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idle_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
