# Empty compiler generated dependencies file for bench_idle_reclaim.
# This may be replaced when dependencies are built.
