file(REMOVE_RECURSE
  "../bench/bench_switching"
  "../bench/bench_switching.pdb"
  "CMakeFiles/bench_switching.dir/bench_switching.cpp.o"
  "CMakeFiles/bench_switching.dir/bench_switching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
