// Quickstart: build a periodic task system, schedule it with PD2 under
// the classical synchronized (SFQ) model, inspect the result, then rerun
// it under the desynchronized (DVQ) model with early yields and see the
// paper's one-quantum tardiness bound in action.
//
//   $ ./examples/quickstart
#include <iostream>

#include "pfair/pfair.hpp"

int main() {
  using namespace pfair;

  // 1. Describe the workload: four periodic tasks on two processors.
  //    Weight e/p means "e quanta of work every p slots".
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("video", Weight(1, 2), 12));
  tasks.push_back(Task::periodic("audio", Weight(1, 3), 12));
  tasks.push_back(Task::periodic("ctrl", Weight(3, 4), 12));
  tasks.push_back(Task::periodic("log", Weight(5, 12), 12));
  const TaskSystem sys(std::move(tasks), /*processors=*/2);

  std::cout << "Task system: " << sys.summary() << "\n";
  std::cout << "Feasible (sum wt <= M): " << std::boolalpha << sys.feasible()
            << "\n\n";
  std::cout << "Subtask windows (Eqs. (2)-(4) of the paper):\n"
            << describe_subtasks(sys) << "\n";

  // 2. Schedule with PD2 in the SFQ model: fixed quanta, aligned across
  //    processors.  PD2 is optimal here: no deadline is ever missed.
  const SlotSchedule sfq = schedule_sfq(sys);
  std::cout << "PD2 / SFQ schedule:\n"
            << render_slot_schedule(sys, sfq) << "\n\n";
  const ValidityReport report = check_slot_schedule(sys, sfq);
  std::cout << "validity: " << report.str() << ", max tardiness = "
            << measure_tardiness(sys, sfq).max_quanta() << " quanta\n\n";

  // 3. Rerun under the DVQ model: jobs often finish early (here: 40% of
  //    subtasks use only part of their quantum), and the freed processor
  //    time is reclaimed immediately instead of idling to the boundary.
  const BernoulliYield yields(/*seed=*/7, /*p=*/2, 5,
                              Time::ticks(kTicksPerSlot / 4),
                              kQuantum - kTick);
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  std::cout << "PD2 / DVQ timeline (early yields marked ')'):\n"
            << render_dvq_schedule(sys, dvq) << "\n\n";

  const TardinessSummary tard = measure_tardiness(sys, dvq);
  std::cout << "DVQ max tardiness: " << tard.max_quanta()
            << " quanta across " << tard.total_subtasks << " subtasks ("
            << tard.late_subtasks << " late)\n";
  std::cout << "Theorem 3 bound respected (< 1 quantum): "
            << (tard.max_ticks < kTicksPerSlot) << "\n";
  return tard.max_ticks < kTicksPerSlot ? 0 : 1;
}
