// Policy face-off: the same fully-utilized workload under every scheduler
// in the library — the Pfair family (EPDF, PF, PD, PD2), algorithm PD^B,
// the staggered model, the DVQ model, and the EDF baselines.  One table,
// paper-shaped: Pfair policies sustain utilization M; EDF approaches
// don't; desynchronization costs at most one quantum of tardiness.
//
//   $ ./examples/policy_faceoff [seed]
#include <cstdlib>
#include <iostream>

#include "pfair/pfair.hpp"

int main(int argc, char** argv) {
  using namespace pfair;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12345;

  GeneratorConfig cfg;
  cfg.processors = 4;
  cfg.target_util = Rational(4);  // fully loaded: the Pfair stronghold
  cfg.horizon = 36;
  cfg.weights = WeightClass::kMixed;
  cfg.seed = seed;
  const TaskSystem sys = generate_periodic(cfg);
  std::cout << "Workload (seed " << seed << "): " << sys.summary() << "\n\n";

  TextTable t;
  t.header({"scheduler", "model", "missed", "max tardiness (quanta)"});

  auto slot_row = [&](const char* name, const SlotSchedule& sched) {
    const TardinessSummary s = measure_tardiness(sys, sched);
    t.row({name, "SFQ", std::to_string(s.late_subtasks + s.unscheduled),
           cell(s.max_quanta())});
  };
  for (const Policy p :
       {Policy::kEpdf, Policy::kPf, Policy::kPd, Policy::kPd2}) {
    SfqOptions opts;
    opts.policy = p;
    slot_row(to_string(p), schedule_sfq(sys, opts));
  }
  slot_row("PD^B (adversarial)", schedule_pdb(sys));

  const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  {
    const DvqSchedule d = schedule_dvq(sys, yields);
    const TardinessSummary s = measure_tardiness(sys, d);
    t.row({"PD2", "DVQ", std::to_string(s.late_subtasks),
           cell(s.max_quanta())});
  }
  {
    const DvqSchedule d = schedule_staggered(sys, yields);
    const TardinessSummary s = measure_tardiness(sys, d);
    t.row({"PD2", "staggered", std::to_string(s.late_subtasks),
           cell(s.max_quanta())});
  }
  {
    const JobScheduleResult r = run_global_edf(sys);
    t.row({"global EDF", "job-level", std::to_string(r.missed_jobs),
           cell(static_cast<double>(r.max_tardiness))});
  }
  {
    const PartitionedEdfResult r = run_partitioned_edf(sys);
    t.row({"partitioned EDF", "job-level",
           r.partitioned ? std::to_string(r.schedule.missed_jobs)
                         : "no partition",
           r.partitioned ? cell(static_cast<double>(r.schedule.max_tardiness))
                         : "-"});
  }
  std::cout << t.str();
  std::cout << "\nReading: the optimal Pfair policies (PF/PD/PD2) stay at "
               "zero even at utilization M;\nPD^B and PD2-DVQ stay within "
               "one quantum (Theorems 2-3); EDF baselines degrade.\n";
  return 0;
}
