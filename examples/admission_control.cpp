// Online admission control for a mixed workload — tasks arrive over
// time, run for a bounded number of subtasks, and leave.  The admission
// rule (retain a departed share until the final subtask's deadline /
// group deadline) is what lets Pfair guarantees survive churn.
//
//   $ ./examples/admission_control
#include <iostream>

#include "pfair/pfair.hpp"

int main() {
  using namespace pfair;
  constexpr int kProcs = 2;

  // A request stream: (name, weight, desired join, subtasks).
  const std::vector<DynamicTaskSpec> requests{
      {"telemetry", Weight(1, 4), 0, 6},
      {"render-a", Weight(3, 4), 0, 3},
      {"render-b", Weight(3, 4), 0, 3},   // fits: 1/4+3/4+3/4 = 7/4 <= 2
      {"burst-1", Weight(2, 3), 1, 2},    // pushes util to 29/12 > 2?
      {"burst-2", Weight(2, 3), 5, 4},
      {"late-heavy", Weight(3, 4), 4, 3},
      {"trickle", Weight(1, 6), 2, 3},
  };

  std::vector<DynamicTaskSpec> admitted;
  std::cout << "request log (M=" << kProcs << "):\n";
  for (const DynamicTaskSpec& req : requests) {
    admitted.push_back(req);
    const DynamicBuildResult res = build_dynamic(admitted, kProcs);
    if (res.admitted) {
      std::cout << "  ADMIT  " << req.name << " wt " << req.weight.str()
                << " join=" << req.join << " count=" << req.count
                << " (retires at " << retire_time(req) << ")\n";
    } else {
      admitted.pop_back();
      std::cout << "  REJECT " << req.name << ": " << res.rejection << "\n";
    }
  }

  const TaskSystem sys = build_dynamic_system(admitted, kProcs);
  std::cout << "\nadmitted system: " << sys.summary() << "\n";
  std::cout << "peak retained utilization: "
            << build_dynamic(admitted, kProcs).peak_util.str() << "\n\n";

  const SlotSchedule sched = schedule_sfq(sys);
  std::cout << render_slot_schedule(sys, sched) << "\n\n";
  const ValidityReport rep = check_slot_schedule(sys, sched);
  std::cout << "PD2 validity: " << rep.str() << "\n";

  const BernoulliYield yields(3, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  const TardinessSummary tard = measure_tardiness(sys, dvq);
  std::cout << "DVQ max tardiness: " << tard.max_quanta()
            << " quanta (Theorem 3 bound: < 1)\n";

  const bool ok = rep.valid() && tard.max_ticks < kTicksPerSlot;
  return ok ? 0 : 1;
}
