// A soft real-time media server — the class of application the paper's
// DVQ model targets (Sec. 1): WCETs are pessimistic, most frames decode
// early, and bounded deadline misses are tolerable.
//
// Eight streams (mixed frame rates/costs) share four cores.  We compare:
//   * SFQ — classical Pfair: early completions waste the rest of the
//     quantum (the processor idles to the boundary);
//   * DVQ — desynchronized Pfair: freed time is reclaimed immediately.
// The server reports per-model idle time and tardiness: DVQ finishes the
// same work sooner while missing deadlines by less than one quantum.
//
//   $ ./examples/video_server
#include <iostream>

#include "pfair/pfair.hpp"

int main() {
  using namespace pfair;
  constexpr int kCores = 4;
  constexpr std::int64_t kHorizon = 60;

  // Streams: weight = decode quanta per frame period (in 1ms quanta).
  struct Stream {
    const char* name;
    std::int64_t e, p;
  };
  const Stream streams[] = {
      {"cam0-4k", 3, 4},   {"cam1-4k", 3, 4},   {"cam2-hd", 1, 2},
      {"cam3-hd", 1, 2},   {"preview", 2, 5},   {"thumbs", 1, 6},
      {"audio", 1, 12},    {"archive", 7, 12},
  };
  std::vector<Task> tasks;
  for (const Stream& s : streams) {
    tasks.push_back(Task::periodic(s.name, Weight(s.e, s.p), kHorizon));
  }
  const TaskSystem sys(std::move(tasks), kCores);
  std::cout << "Media server: " << sys.summary() << "\n";
  std::cout << "utilization " << sys.total_utilization().to_double() << " of "
            << kCores << " cores\n\n";

  // Most frames are easier than their WCET: 70% finish early, using
  // between 30% and 95% of the quantum.
  const BernoulliYield yields(/*seed=*/2024, 7, 10,
                              Time::ticks(3 * kTicksPerSlot / 10),
                              Time::ticks(19 * kTicksPerSlot / 20));

  // The actual work is identical in both models: the sum of the drawn
  // execution costs.
  std::int64_t busy = 0;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      busy += yields.checked_cost(sys, SubtaskRef{k, s}).raw_ticks();
    }
  }

  // --- SFQ: schedule at boundaries; early completions idle to the next
  //     boundary, so the span is the full slot horizon. -------------------
  const SlotSchedule sfq = schedule_sfq(sys);
  const std::int64_t sfq_span = sfq.horizon() * kTicksPerSlot * kCores;

  // --- DVQ: work-conserving reclamation finishes the same work sooner. ---
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  const std::int64_t dvq_span = dvq.makespan().raw_ticks() * kCores;
  const TardinessSummary tard = measure_tardiness(sys, dvq);

  auto idle_pct = [&](std::int64_t span) {
    return 100.0 * static_cast<double>(span - busy) /
           static_cast<double>(span);
  };
  TextTable t;
  t.header({"model", "makespan", "idle %", "max tardiness (quanta)"});
  t.row({"SFQ", std::to_string(sfq.horizon()), cell(idle_pct(sfq_span), 1),
         "0.000 (optimal)"});
  t.row({"DVQ", cell(dvq.makespan().to_double(), 2),
         cell(idle_pct(dvq_span), 1), cell(tard.max_quanta())});
  std::cout << t.str() << "\n";

  std::cout << "late frames: " << tard.late_subtasks << " / "
            << tard.total_subtasks << " (worst-hit subtask of task "
            << (tard.late_subtasks > 0
                    ? sys.task(tard.worst.task).name()
                    : std::string("-"))
            << ")\n";
  std::cout << "soft real-time guarantee (Theorem 3): every frame within "
               "one 1ms quantum of its deadline: "
            << std::boolalpha << (tard.max_ticks < kTicksPerSlot) << "\n";
  return tard.max_ticks < kTicksPerSlot ? 0 : 1;
}
