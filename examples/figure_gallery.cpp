// Regenerates the paper's figures as SVG files — the graphical
// counterpart of the bench suite's ASCII reproductions.
//
//   $ ./examples/figure_gallery [output-dir]      (default: ./figures)
//
// Produces:
//   fig2a_sfq.svg        PD2 under the SFQ model (no misses)
//   fig2b_dvq.svg        PD2 under the DVQ model (F_2 misses by 1-delta,
//                        highlighted in red)
//   fig2c_pdb.svg        PD^B: the slot-granularity image of (b)
//   fig3_blocking.svg    the predecessor-blocking scenario
//   fig6_compliance.svg  the Fig. 6 PD^B schedule behind Lemma 6
#include <filesystem>
#include <fstream>
#include <iostream>

#include "pfair/pfair.hpp"

namespace {

void write(const std::filesystem::path& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
  std::cout << "  wrote " << path.string() << " (" << content.size()
            << " bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfair;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
  std::filesystem::create_directories(dir);
  std::cout << "regenerating the paper's figures into " << dir.string()
            << "/\n";

  const Time delta = Time::ticks(kTicksPerSlot / 8);
  const FigureScenario fig2 = fig2_scenario(delta);

  // Fig. 2(a): SFQ.
  write(dir / "fig2a_sfq.svg",
        render_slot_schedule_svg(fig2.system, schedule_sfq(fig2.system)));

  // Fig. 2(b): DVQ with the scripted early yields.
  const DvqSchedule dvq = schedule_dvq(fig2.system, *fig2.yields);
  write(dir / "fig2b_dvq.svg", render_dvq_schedule_svg(fig2.system, dvq));

  // Fig. 2(c): PD^B.
  write(dir / "fig2c_pdb.svg",
        render_slot_schedule_svg(fig2.system, schedule_pdb(fig2.system)));

  // Fig. 3: predecessor blocking.
  const FigureScenario fig3 = fig3_scenario(delta);
  const DvqSchedule blocked = schedule_dvq(fig3.system, *fig3.yields);
  write(dir / "fig3_blocking.svg",
        render_dvq_schedule_svg(fig3.system, blocked));

  // Fig. 6: the compliance walkthrough system under PD^B.
  const TaskSystem fig6 = fig6_system();
  write(dir / "fig6_compliance.svg",
        render_slot_schedule_svg(fig6, schedule_pdb(fig6)));

  std::cout << "done — open in any browser; tardy subtasks are outlined "
               "in red.\n";
  return 0;
}
