// A target-tracking workload built on the IS / GIS task models (Sec. 2):
// the paper's motivating domain of "systems that track people and
// machines".  Track-update tasks jitter (intra-sporadic late releases)
// and drop work when a target is occluded (generalized intra-sporadic
// subtask removal); Pfair still meets every window, and the DVQ model
// keeps misses under one quantum when measurements finish early.
//
//   $ ./examples/radar_tracker
#include <iostream>

#include "pfair/pfair.hpp"

int main() {
  using namespace pfair;
  constexpr int kProcs = 3;
  constexpr std::int64_t kHorizon = 48;

  // Baseline periodic sensing/fusion pipeline.
  std::vector<Task> base;
  base.push_back(Task::periodic("sweep", Weight(1, 2), kHorizon));
  base.push_back(Task::periodic("track0", Weight(2, 3), kHorizon));
  base.push_back(Task::periodic("track1", Weight(2, 3), kHorizon));
  base.push_back(Task::periodic("fusion", Weight(1, 4), kHorizon));
  base.push_back(Task::periodic("display", Weight(1, 6), kHorizon));
  base.push_back(Task::periodic("health", Weight(1, 12), kHorizon));
  const TaskSystem periodic(std::move(base), kProcs);

  // Detections arrive late (jitter <= 2 slots, 1-in-4 subtasks)...
  const TaskSystem jittered = add_is_jitter(periodic, 2, 1, 4, /*seed=*/99);
  // ...and occluded targets skip updates (1-in-6 subtasks dropped).
  const TaskSystem tracked = drop_subtasks(jittered, 1, 6, /*seed=*/100);

  std::cout << "Tracker workload: " << tracked.summary() << "\n";
  std::cout << "task models in play:\n";
  for (const Task& t : tracked.tasks()) {
    std::cout << "  " << t.name() << " (wt " << t.weight().str() << ", "
              << to_string(t.kind()) << ", " << t.num_subtasks()
              << " subtasks)\n";
  }
  std::cout << "\n";

  // Hard mode: SFQ PD2 — all windows met despite jitter and drops.
  const SlotSchedule sfq = schedule_sfq(tracked);
  const ValidityReport rep = check_slot_schedule(tracked, sfq);
  std::cout << "PD2/SFQ on the GIS system: " << rep.str() << "\n";
  std::cout << render_slot_schedule(tracked, sfq, {true, 6, 24}) << "\n\n";

  // Soft mode: DVQ with early measurement completion.
  const BernoulliYield yields(/*seed=*/7, 1, 2,
                              Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  const DvqSchedule dvq = schedule_dvq(tracked, yields);
  const TardinessSummary tard = measure_tardiness(tracked, dvq);
  std::cout << "PD2/DVQ: max tardiness " << tard.max_quanta()
            << " quanta, " << tard.late_subtasks << "/"
            << tard.total_subtasks << " windows late\n";

  // Blocking diagnosis — the phenomena of Sec. 3.1 on live data.
  const BlockingReport blocking = analyze_blocking(tracked, dvq);
  std::cout << "priority inversions: " << blocking.eligibility_blocked
            << " eligibility-blocked, " << blocking.predecessor_blocked
            << " predecessor-blocked; Property PB holds: " << std::boolalpha
            << blocking.property_pb_holds() << "\n";

  const bool ok = rep.valid() && tard.max_ticks < kTicksPerSlot &&
                  blocking.property_pb_holds();
  std::cout << (ok ? "\nall guarantees hold\n" : "\nguarantee violated!\n");
  return ok ? 0 : 1;
}
