// Flyweight window tables (tasks/window_table.hpp): equivalence with the
// scalar formulas and the pre-flyweight eager construction, cache sharing
// and thread safety, and the subtasks_before overflow regression.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pfair/pfair.hpp"

namespace {

using namespace pfair;

/// The pre-table forward cascade scan (group_deadline.cpp as it was before
/// the backward pass): smallest j >= i with b(T_j) = 0 or |w(T_{j+1})| = 3.
std::int64_t forward_scan_group_deadline(const Weight& w, std::int64_t i) {
  if (w.light()) return 0;
  for (std::int64_t j = i;; ++j) {
    if (!b_bit(w, j) || window_length(w, j + 1) >= 3) {
      return pseudo_deadline(w, j);
    }
  }
}

/// Every reducible/irreducible weight with period <= `max_p`, unit
/// weights included (135 weights for max_p = 16).
std::vector<Weight> weight_universe(std::int64_t max_p) {
  std::vector<Weight> ws;
  for (std::int64_t p = 2; p <= max_p; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) ws.push_back(Weight(e, p));
  }
  return ws;
}

void expect_same_subtasks(const Task& fly, const Task& eager) {
  ASSERT_EQ(fly.num_subtasks(), eager.num_subtasks())
      << fly.weight().str();
  for (std::int64_t s = 0; s < fly.num_subtasks(); ++s) {
    const Subtask a = fly.subtask_at(s);
    const Subtask b = eager.subtask_at(s);
    ASSERT_EQ(a.index, b.index) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.theta, b.theta) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.release, b.release) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.deadline, b.deadline) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.eligible, b.eligible) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.bbit, b.bbit) << fly.weight().str() << " seq " << s;
    ASSERT_EQ(a.group_deadline, b.group_deadline)
        << fly.weight().str() << " seq " << s;
    ASSERT_EQ(fly.eligible_at(s), a.eligible)
        << fly.weight().str() << " seq " << s;
  }
}

TEST(WindowTable, MatchesScalarFormulas) {
  for (const Weight& w : weight_universe(12)) {
    const auto t = WindowTable::build(w);
    // Three periods of indices exercises the q*p shift.
    for (std::int64_t i = 1; i <= 3 * t->e(); ++i) {
      ASSERT_EQ(t->release(i), pseudo_release(w, i)) << w.str() << " i=" << i;
      ASSERT_EQ(t->deadline(i), pseudo_deadline(w, i))
          << w.str() << " i=" << i;
      ASSERT_EQ(t->bbit(i), b_bit(w, i)) << w.str() << " i=" << i;
      ASSERT_EQ(t->group_deadline(i), forward_scan_group_deadline(w, i))
          << w.str() << " i=" << i;
    }
  }
}

TEST(WindowTable, BackwardPassMatchesForwardScanDeepIntoPeriod) {
  // Heavy weights with long periods stress the cascade chain.
  for (const Weight& w :
       {Weight(59, 60), Weight(239, 240), Weight(121, 240), Weight(7, 8)}) {
    for (std::int64_t i = 1; i <= 2 * w.e; ++i) {
      ASSERT_EQ(group_deadline(w, i), forward_scan_group_deadline(w, i))
          << w.str() << " i=" << i;
    }
  }
}

TEST(WindowTable, EquivalentRatesShareOneTable) {
  WindowTableCache cache;
  const auto a = cache.get(Weight(1, 2));
  const auto b = cache.get(Weight(2, 4));
  const auto c = cache.get(Weight(60, 120));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(a->e(), 1);
  EXPECT_EQ(a->p(), 2);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(a->e(), 1);  // cleared cache does not invalidate live tables
}

// The core property: for every weight with p <= 16 (120 weights, raw and
// reducible forms) and several phases, the flyweight task synthesizes a
// subtask sequence bit-identical to the pre-flyweight eager construction —
// including under the early-release transform, whose job boundaries follow
// the *raw* (e, p) pair.
TEST(Flyweight, BitIdenticalToEagerConstruction) {
  WindowTableCache cache;
  int combos = 0;
  for (const Weight& w : weight_universe(16)) {
    for (const std::int64_t phase : {std::int64_t{0}, std::int64_t{5}}) {
      const std::int64_t horizon = phase + 6 * w.p;
      const Task fly =
          Task::periodic_phased("f", w, phase, horizon, &cache);
      const Task eager = Task::periodic_phased_eager("f", w, phase, horizon);
      ASSERT_TRUE(fly.flyweight());
      ASSERT_FALSE(eager.flyweight());
      ASSERT_EQ(fly.kind(), eager.kind());
      expect_same_subtasks(fly, eager);
      expect_same_subtasks(fly.with_early_release(),
                           eager.with_early_release());
      ASSERT_EQ(fly.max_deadline(), eager.max_deadline()) << w.str();
      ++combos;
    }
  }
  EXPECT_EQ(combos, 270);
  // One table per distinct *rate*, not per distinct (e, p) pair.
  EXPECT_LT(cache.size(), 135u);
}

TEST(Flyweight, ZeroSubtaskAndUnitWeightEdges) {
  const Task none = Task::periodic("z", Weight(1, 8), 0);
  EXPECT_EQ(none.num_subtasks(), 0);
  EXPECT_EQ(none.max_deadline(), 0);

  const Task unit = Task::periodic("u", Weight(1, 1), 4);
  ASSERT_EQ(unit.num_subtasks(), 4);
  for (std::int64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(unit.subtask_at(s).release, s);
    EXPECT_EQ(unit.subtask_at(s).deadline, s + 1);
    EXPECT_FALSE(unit.subtask_at(s).bbit);
    EXPECT_EQ(unit.subtask_at(s).group_deadline, s + 1);
  }
}

TEST(Flyweight, RandomAccessAtHugeSequenceNumbers) {
  // O(1) synthesis far beyond any materializable horizon.
  const Weight w(3, 7);
  const Task t = Task::periodic("h", w, std::int64_t{1} << 40);
  const std::int64_t n = t.num_subtasks();
  EXPECT_GT(n, (std::int64_t{3} << 40) / 7);  // ~ (2^40)*3/7 subtasks
  const Subtask last = t.subtask_at(n - 1);
  EXPECT_LT(last.release, std::int64_t{1} << 40);
  EXPECT_EQ(last.release, pseudo_release(w, last.index));
  EXPECT_EQ(last.deadline, pseudo_deadline(w, last.index));
}

// Regression: subtasks_before(w, horizon) computes horizon * e as an
// intermediate; for horizon ~ 2^40 and e > 2^23 that product overflows
// int64 unless routed through 128-bit arithmetic.
TEST(Windows, SubtasksBeforeNoOverflowAtLargeHorizon) {
  const std::int64_t horizon = std::int64_t{1} << 40;
  const Weight w(16'777'259, 16'777'289);  // e * horizon ~ 2^64
  const __int128 prod = static_cast<__int128>(horizon) * w.e;
  const auto expected =
      static_cast<std::int64_t>(prod / w.p + (prod % w.p != 0 ? 1 : 0));
  EXPECT_EQ(subtasks_before(w, horizon), expected);
  EXPECT_GT(expected, 0);

  // Small-weight sanity at the same horizon.
  EXPECT_EQ(subtasks_before(Weight(1, 1), horizon), horizon);
  EXPECT_EQ(subtasks_before(Weight(3, 7), horizon),
            (horizon * 3 + 6) / 7);
}

// Many threads hammering one cache over a small weight universe: every
// get() for the same rate must return the same table, and the cache must
// end up with exactly one entry per distinct rate.
TEST(WindowTableCache, ConcurrentGetsShareTables) {
  WindowTableCache cache;
  const std::vector<Weight> universe = weight_universe(10);
  // Canonical pointers, resolved single-threaded afterwards for comparison.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::vector<const WindowTable*>> seen(
      kThreads, std::vector<const WindowTable*>(universe.size(), nullptr));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t i = 0; i < universe.size(); ++i) {
          const auto table = cache.get(universe[i]);
          if (table == nullptr ||
              table->e() * universe[i].p != table->p() * universe[i].e) {
            mismatches.fetch_add(1);
            continue;
          }
          if (seen[static_cast<std::size_t>(t)][i] == nullptr) {
            seen[static_cast<std::size_t>(t)][i] = table.get();
          } else if (seen[static_cast<std::size_t>(t)][i] != table.get()) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // All threads resolved each weight to the same shared instance.
  for (int t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < universe.size(); ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][i], seen[0][i]);
    }
  }
  // One entry per distinct rate: Farey(10) has 31 fractions in (0, 1]
  // with denominator <= 10... but rates here include reducible dupes, so
  // just bound it by the universe and require sharing happened.
  EXPECT_GT(cache.size(), 0u);
  EXPECT_LT(cache.size(), universe.size());
}

TEST(TaskSystem, FlyweightMemoryAccountsSharedTablesOnce) {
  WindowTableCache cache;
  std::vector<Task> tasks;
  for (int k = 0; k < 8; ++k) {
    tasks.push_back(Task::periodic("T" + std::to_string(k), Weight(3, 4),
                                   240, &cache));
  }
  const TaskSystem sys(std::move(tasks), 2);
  const std::size_t fly_bytes = sys.subtask_memory_bytes();
  // All eight tasks share one table; the footprint is one table, not
  // eight vectors of 180 subtasks.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LT(fly_bytes, 8u * 180u * sizeof(Subtask) / 10u);
  EXPECT_GT(fly_bytes, 0u);
}

}  // namespace
