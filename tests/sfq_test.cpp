// Tests for the SFQ-model scheduler: exact small schedules, PD2/PF/PD
// optimality property sweeps, EPDF behaviour, IS/GIS/ER systems.
#include <gtest/gtest.h>

#include "analysis/lag.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

std::vector<SubtaskRef> slot_refs(const SlotSchedule& s, std::int64_t t) {
  return s.slot_contents(t);
}

TEST(Sfq, SingleUnitTaskFillsEverySlot) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 1), 5));
  const TaskSystem sys(std::move(tasks), 1);
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  for (std::int32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(sched.placement(SubtaskRef{0, s}).slot, s);
  }
  EXPECT_TRUE(check_slot_schedule(sys, sched).valid());
}

TEST(Sfq, Fig2aScheduleShape) {
  // The paper's Fig. 2(a) system: A,B,C = 1/6 and D,E,F = 1/2 on M = 2.
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  EXPECT_TRUE(check_slot_schedule(sys, sched).valid());
  EXPECT_EQ(measure_tardiness(sys, sched).max_ticks, 0);

  // Slot 0 must hold D_1 and E_1 (deadline 2 beats deadline 6; tie between
  // the three weight-1/2 tasks broken by task id).
  const auto s0 = slot_refs(sched, 0);
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_EQ(s0[0], (SubtaskRef{3, 0}));
  EXPECT_EQ(s0[1], (SubtaskRef{4, 0}));
  // Slot 1: F_1 (deadline 2) plus the first weight-1/6 task, A_1.
  const auto s1 = slot_refs(sched, 1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0], (SubtaskRef{5, 0}));
  EXPECT_EQ(s1[1], (SubtaskRef{0, 0}));
  // Slot 2: D_2 and E_2 (released at 2, deadline 4).
  const auto s2 = slot_refs(sched, 2);
  ASSERT_EQ(s2.size(), 2u);
  EXPECT_EQ(s2[0], (SubtaskRef{3, 1}));
  EXPECT_EQ(s2[1], (SubtaskRef{4, 1}));
  // Every slot is fully used (utilization = M = 2, 12 subtasks, 6 slots).
  for (std::int64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(slot_refs(sched, t).size(), 2u) << "slot " << t;
  }
}

TEST(Sfq, FullUtilizationLeavesNoIdleSlots) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(3);
  cfg.horizon = 24;
  cfg.seed = 5;
  const TaskSystem sys = generate_periodic(cfg);
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  // With util == M and synchronous periodic tasks, PD2 fills every slot
  // of [0, horizon) — any hole would make some task miss later.
  for (std::int64_t t = 0; t < cfg.horizon; ++t) {
    EXPECT_EQ(slot_refs(sched, t).size(), 3u) << "slot " << t;
  }
}

TEST(Sfq, DeterministicAcrossRuns) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(7, 4);
  cfg.seed = 11;
  const TaskSystem sys = generate_periodic(cfg);
  const SlotSchedule a = schedule_sfq(sys);
  const SlotSchedule b = schedule_sfq(sys);
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      EXPECT_EQ(a.placement(SubtaskRef{k, s}).slot,
                b.placement(SubtaskRef{k, s}).slot);
    }
  }
}

TEST(Sfq, HorizonLimitTruncates) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 2), 20));
  const TaskSystem sys(std::move(tasks), 1);
  SfqOptions opts;
  opts.horizon_limit = 4;
  const SlotSchedule sched = schedule_sfq(sys, opts);
  EXPECT_FALSE(sched.complete());
  const auto rep = check_slot_schedule(sys, sched);
  EXPECT_FALSE(rep.valid());
}

// ---------------------------------------------------- optimality properties

struct SweepCase {
  int processors;
  WeightClass cls;
  Rational util;  // as fraction of M applied below
  std::uint64_t seed;
};

class OptimalPolicySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OptimalPolicySweep, NoMissesAtOrBelowFullUtilization) {
  const SweepCase c = GetParam();
  GeneratorConfig cfg;
  cfg.processors = c.processors;
  cfg.target_util = c.util;
  cfg.weights = c.cls;
  cfg.horizon = 36;
  cfg.seed = c.seed;
  const TaskSystem sys = generate_periodic(cfg);
  ASSERT_TRUE(sys.feasible());

  for (const Policy p : {Policy::kPf, Policy::kPd, Policy::kPd2}) {
    SfqOptions opts;
    opts.policy = p;
    const SlotSchedule sched = schedule_sfq(sys, opts);
    ASSERT_TRUE(sched.complete()) << to_string(p);
    const ValidityReport rep = check_slot_schedule(sys, sched);
    EXPECT_TRUE(rep.valid()) << to_string(p) << ": " << rep.str();
    EXPECT_EQ(measure_tardiness(sys, sched).max_ticks, 0) << to_string(p);
    // Classical Pfairness: lag stays in (-1, 1).
    EXPECT_TRUE(is_pfair(sys, sched, cfg.horizon)) << to_string(p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimalPolicySweep,
    ::testing::Values(
        SweepCase{2, WeightClass::kMixed, Rational(2), 1},
        SweepCase{2, WeightClass::kHeavy, Rational(2), 2},
        SweepCase{2, WeightClass::kLight, Rational(2), 3},
        SweepCase{3, WeightClass::kMixed, Rational(3), 4},
        SweepCase{3, WeightClass::kHeavy, Rational(3), 5},
        SweepCase{4, WeightClass::kMixed, Rational(4), 6},
        SweepCase{4, WeightClass::kUniform, Rational(4), 7},
        SweepCase{4, WeightClass::kMixed, Rational(7, 2), 8},
        SweepCase{8, WeightClass::kMixed, Rational(8), 9},
        SweepCase{2, WeightClass::kUniform, Rational(3, 2), 10},
        SweepCase{6, WeightClass::kHeavy, Rational(11, 2), 11}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      const SweepCase& c = param_info.param;
      return "M" + std::to_string(c.processors) + "_" +
             to_string(c.cls) + "_seed" + std::to_string(c.seed);
    });

TEST(Sfq, Pd2HandlesManySeedsAtFullUtilization) {
  for (std::uint64_t seed = 20; seed < 60; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sched = schedule_sfq(sys);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    ASSERT_EQ(measure_tardiness(sys, sched).max_ticks, 0)
        << "seed " << seed << "\n" << sys.summary();
  }
}

TEST(Sfq, EpdfMissesForSomeHeavySystem) {
  // EPDF (no tie-breaks) is suboptimal for M >= 3: some fully-utilized
  // heavy system must miss a deadline.  PD2 never does on the same
  // systems (asserted in the sweep above); here we document the gap.
  bool found_miss = false;
  for (std::uint64_t seed = 1; seed < 200 && !found_miss; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.weights = WeightClass::kHeavy;
    cfg.horizon = 30;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    SfqOptions opts;
    opts.policy = Policy::kEpdf;
    const SlotSchedule sched = schedule_sfq(sys, opts);
    if (!sched.complete() || measure_tardiness(sys, sched).max_ticks > 0) {
      found_miss = true;
    }
  }
  EXPECT_TRUE(found_miss)
      << "EPDF scheduled every heavy fully-utilized system in the sweep — "
         "suboptimality not exhibited";
}

// ------------------------------------------------------ beyond periodic

TEST(Sfq, IntraSporadicJitterStillMeetsDeadlines) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem periodic = generate_periodic(cfg);
    const TaskSystem is = add_is_jitter(periodic, 3, 1, 3, seed * 7 + 1);
    const SlotSchedule sched = schedule_sfq(is);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const ValidityReport rep = check_slot_schedule(is, sched);
    EXPECT_TRUE(rep.valid()) << "seed " << seed << ": " << rep.str();
  }
}

TEST(Sfq, GisDropsStillMeetDeadlines) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem periodic = generate_periodic(cfg);
    const TaskSystem gis = drop_subtasks(
        add_is_jitter(periodic, 2, 1, 4, seed + 100), 1, 5, seed + 200);
    const SlotSchedule sched = schedule_sfq(gis);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const ValidityReport rep = check_slot_schedule(gis, sched);
    EXPECT_TRUE(rep.valid()) << "seed " << seed << ": " << rep.str();
  }
}

TEST(Sfq, EarlyReleaseRemainsValidAndCanOnlyHelp) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.horizon = 24;
  cfg.seed = 3;
  const TaskSystem sys = generate_periodic(cfg).with_early_release();
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  const ValidityReport rep = check_slot_schedule(sys, sched);
  EXPECT_TRUE(rep.valid()) << rep.str();
  EXPECT_EQ(measure_tardiness(sys, sched).max_ticks, 0);
}

TEST(Sfq, PhasedTasksScheduleAfterTheirPhase) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic_phased("T", Weight(1, 2), 4, 12));
  const TaskSystem sys(std::move(tasks), 1);
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  EXPECT_GE(sched.placement(SubtaskRef{0, 0}).slot, 4);
  EXPECT_TRUE(check_slot_schedule(sys, sched).valid());
}

}  // namespace
}  // namespace pfair
