# End-to-end smoke for the pfairtrace CLI: simulate, then validate /
# stats / diff / chrome against the produced artifacts.  Invoked from
# tests/CMakeLists.txt with -DPFAIRSIM=... -DPFAIRTRACE=....
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

set(trace "${CMAKE_CURRENT_BINARY_DIR}/pfairtrace_smoke.jsonl")
set(metrics "${CMAKE_CURRENT_BINARY_DIR}/pfairtrace_smoke_metrics.json")
set(chrome "${CMAKE_CURRENT_BINARY_DIR}/pfairtrace_smoke_chrome.json")

run(${PFAIRSIM} --demo=fig6 --quiet --trace=${trace} --metrics=${metrics})
run(${PFAIRTRACE} validate --demo=fig6 ${trace})
run(${PFAIRTRACE} stats --metrics=${metrics} --trace=${trace})
run(${PFAIRTRACE} diff ${trace} ${trace})
run(${PFAIRTRACE} chrome --demo=fig6 ${trace} --out=${chrome})

# diff against a different run must exit nonzero.
set(trace2 "${CMAKE_CURRENT_BINARY_DIR}/pfairtrace_smoke2.jsonl")
run(${PFAIRSIM} --demo=fig6 --model=dvq --quiet --trace=${trace2})
execute_process(COMMAND ${PFAIRTRACE} diff ${trace} ${trace2}
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "pfairtrace diff reported differing traces as equal")
endif()
