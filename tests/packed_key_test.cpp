// Packed priority keys must mirror the rule-by-rule comparator exactly:
//   policy_key(a) <=> policy_key(b)  iff  PriorityOrder::compare(a, b)
//   order_key(a)  <  order_key(b)   iff  PriorityOrder::higher(a, b)
// checked exhaustively over every subtask pair of the paper's running
// examples (Table 1 / Figs. 1-7) and a generated workload.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/packed_key.hpp"
#include "sched/priority.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

std::vector<SubtaskRef> all_refs(const TaskSystem& sys) {
  std::vector<SubtaskRef> out;
  out.reserve(static_cast<std::size_t>(sys.total_subtasks()));
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      out.push_back(SubtaskRef{k, s});
    }
  }
  return out;
}

void expect_keys_mirror_compare(const TaskSystem& sys, Policy policy,
                                const std::string& label) {
  SCOPED_TRACE(label);
  const PriorityOrder order(sys, policy);
  const PackedKeys keys(sys, policy);
  if (policy == Policy::kPf) {
    // PF compares lexicographic successor b-bit strings — not a
    // fixed-width tuple, deliberately not packed.
    EXPECT_FALSE(keys.packable());
    return;
  }
  ASSERT_TRUE(keys.packable());
  const std::vector<SubtaskRef> refs = all_refs(sys);
  for (const SubtaskRef& a : refs) {
    for (const SubtaskRef& b : refs) {
      const int c = order.compare(a, b);
      const std::uint64_t ka = keys.policy_key(a);
      const std::uint64_t kb = keys.policy_key(b);
      if (c < 0) {
        ASSERT_LT(ka, kb) << a << " vs " << b;
      } else if (c > 0) {
        ASSERT_GT(ka, kb) << a << " vs " << b;
      } else {
        ASSERT_EQ(ka, kb) << a << " vs " << b;
      }
      ASSERT_EQ(keys.order_key(a) < keys.order_key(b), order.higher(a, b))
          << a << " vs " << b;
    }
  }
}

constexpr Policy kAllPolicies[] = {Policy::kEpdf, Policy::kPf, Policy::kPd,
                                   Policy::kPd2};

TEST(PackedKey, MirrorsCompareOnPaperSystems) {
  const struct {
    const char* name;
    TaskSystem sys;
  } systems[] = {
      {"fig1_periodic", fig1_periodic()},
      {"fig1_intra_sporadic", fig1_intra_sporadic()},
      {"fig1_gis", fig1_gis()},
      {"fig2", fig2_scenario(kTick).system},
      {"fig3", fig3_scenario(kTick).system},
      {"fig6", fig6_system()},
  };
  for (const auto& s : systems) {
    for (const Policy policy : kAllPolicies) {
      expect_keys_mirror_compare(
          s.sys, policy,
          std::string(s.name) + "/" + std::string(to_string(policy)));
    }
  }
}

TEST(PackedKey, MirrorsCompareOnGeneratedWorkloads) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(5, 2);
  cfg.weights = WeightClass::kMixed;
  cfg.horizon = 24;
  cfg.seed = 7;
  const TaskSystem periodic = generate_periodic(cfg);
  const TaskSystem jittered = add_is_jitter(periodic, 3, 1, 3, 11);
  const TaskSystem gis = drop_subtasks(jittered, 1, 6, 13);
  for (const Policy policy : kAllPolicies) {
    expect_keys_mirror_compare(periodic, policy, "periodic");
    expect_keys_mirror_compare(jittered, policy, "jittered");
    expect_keys_mirror_compare(gis, policy, "gis");
  }
}

// The guarantee the packing leans on: within one task, pseudo-deadlines
// strictly increase, so the task-id tie-break never reorders same-task
// subtasks relative to `higher`.
TEST(PackedKey, WithinTaskDeadlinesStrictlyIncrease) {
  const TaskSystem sys = fig6_system();
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& task = sys.task(k);
    for (std::int32_t s = 1; s < task.num_subtasks(); ++s) {
      EXPECT_LT(task.subtask(s - 1).deadline, task.subtask(s).deadline);
    }
  }
}

}  // namespace
}  // namespace pfair
