// End-to-end integration tests: the paper's full analytical pipeline —
// DVQ run -> blocking analysis -> S_B construction -> PD^B comparison ->
// compliance — exercised together on shared workloads, plus cross-model
// consistency checks.
#include <gtest/gtest.h>

#include "analysis/blocking.hpp"
#include "analysis/compliance.hpp"
#include "analysis/sb_construction.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "core/thread_pool.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "dvq/staggered.hpp"
#include "sched/pdb_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TEST(Integration, FullPaperPipelineOnOneSystem) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(3);
  cfg.horizon = 12;
  cfg.seed = 424242;
  const TaskSystem sys = generate_periodic(cfg);

  // 1. SFQ PD2: optimal, no misses.
  const SlotSchedule sfq = schedule_sfq(sys);
  ASSERT_TRUE(sfq.complete());
  ASSERT_EQ(measure_tardiness(sys, sfq).max_ticks, 0);

  // 2. DVQ PD2 with adversarial yields: bounded misses.
  const FixedYield yields(kTick);
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  ASSERT_TRUE(dvq.complete());
  const std::int64_t dvq_tard = measure_tardiness(sys, dvq).max_ticks;
  EXPECT_LT(dvq_tard, kTicksPerSlot);

  // 3. Blocking analysis: Property PB holds.
  const BlockingReport blocking = analyze_blocking(sys, dvq);
  EXPECT_TRUE(blocking.property_pb_holds());

  // 4. S_B construction: Lemmas 3-5 machinery.
  const SbConstruction sbc = build_sb(sys, dvq);
  EXPECT_TRUE(sbc.lemma3_holds);
  EXPECT_TRUE(sbc.structure_valid) << sbc.failure;
  EXPECT_TRUE(check_lemma4(sys, dvq, sbc).holds());

  // 5. PD^B on the same system: tardiness <= 1 slot (Theorem 2), and the
  //    compliance induction validates every step (Lemma 6).
  const SlotSchedule pdb = schedule_pdb(sys);
  ASSERT_TRUE(pdb.complete());
  const std::int64_t pdb_tard = measure_tardiness(sys, pdb).max_ticks;
  EXPECT_LE(pdb_tard, kTicksPerSlot);
  const ComplianceResult comp = run_compliance(sys);
  EXPECT_TRUE(comp.ok) << comp.failure;

  // 6. Theorem 3 end to end: DVQ tardiness < one quantum.
  EXPECT_LT(dvq_tard, kTicksPerSlot);
}

TEST(Integration, ModelsAgreeWhenNothingYields) {
  // With full quanta, SFQ, DVQ and PD^B(benign) agree subtask-for-subtask
  // and nothing is ever late.
  for (std::uint64_t seed = 301; seed <= 306; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 14;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sfq = schedule_sfq(sys);
    const FullQuantumYield full;
    const DvqSchedule dvq = schedule_dvq(sys, full);
    PdbOptions bopts;
    bopts.mode = PdbMode::kBenign;
    const SlotSchedule pdb = schedule_pdb(sys, bopts);
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        const SubtaskRef ref{k, s};
        ASSERT_EQ(Time::slots(sfq.placement(ref).slot),
                  dvq.placement(ref).start)
            << "seed " << seed;
        ASSERT_EQ(sfq.placement(ref).slot, pdb.placement(ref).slot)
            << "seed " << seed;
      }
    }
  }
}

TEST(Integration, TardinessOrderingAcrossModels) {
  // For each workload: SFQ(PD2) is exact; staggered and DVQ stay below
  // one quantum; PD^B (slot-granularity worst case) stays at <= 1 slot.
  for (std::uint64_t seed = 311; seed <= 320; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 1, 2, Time::ticks(1000),
                                kQuantum - kTick);

    EXPECT_EQ(measure_tardiness(sys, schedule_sfq(sys)).max_ticks, 0);
    EXPECT_LT(measure_tardiness(sys, schedule_dvq(sys, yields)).max_ticks,
              kTicksPerSlot);
    EXPECT_LT(
        measure_tardiness(sys, schedule_staggered(sys, yields)).max_ticks,
        kTicksPerSlot);
    EXPECT_LE(measure_tardiness(sys, schedule_pdb(sys)).max_ticks,
              kTicksPerSlot);
  }
}

TEST(Integration, ParallelSweepMatchesSequential) {
  // The thread-pool harness must produce the same per-seed results as a
  // sequential loop (simulators are pure functions of their inputs).
  const int n = 12;
  std::vector<std::int64_t> seq(n), par(n);
  auto run_one = [](std::uint64_t seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 12;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 1, 2, kTick, kQuantum - kTick);
    return measure_tardiness(sys, schedule_dvq(sys, yields)).max_ticks;
  };
  for (int i = 0; i < n; ++i) {
    seq[static_cast<std::size_t>(i)] =
        run_one(static_cast<std::uint64_t>(i) + 1);
  }
  ThreadPool pool(4);
  pool.parallel_for(0, n, [&](std::int64_t i) {
    par[static_cast<std::size_t>(i)] =
        run_one(static_cast<std::uint64_t>(i) + 1);
  });
  EXPECT_EQ(seq, par);
}

TEST(Integration, TightnessWitnessExists) {
  // The paper notes the one-quantum bound is tight: deadline misses do
  // occur under DVQ.  Random misses need *occasional* early yields — a
  // tight, fully-utilized system with a few desynchronizing yields (with
  // pervasive yields, the reclaimed slack protects every deadline).
  std::int64_t worst = 0;
  for (std::uint64_t seed = 1; seed <= 400 && worst == 0; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 14;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 1, 2, kQuantum - kTick,
                                kQuantum - kTick);
    worst = std::max(
        worst, measure_tardiness(sys, schedule_dvq(sys, yields)).max_ticks);
  }
  EXPECT_GT(worst, 0) << "no DVQ deadline miss found — bound not exercised";
  EXPECT_LT(worst, kTicksPerSlot);
}

}  // namespace
}  // namespace pfair
