// Tests for validity checking, tardiness accounting and lag analysis.
#include <gtest/gtest.h>

#include "analysis/lag.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TaskSystem one_task(Weight w, std::int64_t horizon, int m = 1) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", w, horizon));
  return TaskSystem(std::move(tasks), m);
}

// ----------------------------------------------------------- slot validity

TEST(Validity, AcceptsAHandBuiltValidSchedule) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 1, 0);
  sched.place(SubtaskRef{0, 1}, 2, 0);
  EXPECT_TRUE(check_slot_schedule(sys, sched).valid());
}

TEST(Validity, DetectsUnscheduled) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  const ValidityReport rep = check_slot_schedule(sys, sched);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kUnscheduled);
}

TEST(Validity, DetectsDeadlineMissAndAllowance) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 2, 0);  // d = 2, completes at 3
  sched.place(SubtaskRef{0, 1}, 3, 0);  // d = 4, completes at 4: fine
  const ValidityReport rep = check_slot_schedule(sys, sched);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kDeadlineMiss);
  EXPECT_TRUE(check_slot_schedule(sys, sched, 1).valid());
}

TEST(Validity, DetectsBeforeEligible) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  sched.place(SubtaskRef{0, 1}, 1, 0);  // r = e = 2, scheduled at 1
  const ValidityReport rep = check_slot_schedule(sys, sched);
  ASSERT_FALSE(rep.valid());
  EXPECT_EQ(rep.violations[0].kind, Violation::Kind::kBeforeEligible);
}

TEST(Validity, DetectsIntraTaskParallelismAndOverload) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(2, 2), 2));
  tasks.push_back(Task::periodic("B", Weight(1, 2), 2));
  const TaskSystem sys(std::move(tasks), 1);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  sched.place(SubtaskRef{0, 1}, 0, 1);  // same slot as its predecessor
  sched.place(SubtaskRef{1, 0}, 0, 2);  // third subtask in slot 0, M = 1
  const ValidityReport rep = check_slot_schedule(sys, sched);
  bool saw_parallel = false, saw_overload = false;
  for (const Violation& v : rep.violations) {
    saw_parallel |= v.kind == Violation::Kind::kIntraTaskParallel;
    saw_overload |= v.kind == Violation::Kind::kOverloadedSlot;
  }
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_overload);
}

TEST(Validity, ReportStringMentionsKind) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 3, 0);
  sched.place(SubtaskRef{0, 1}, 2, 0);
  const ValidityReport rep = check_slot_schedule(sys, sched);
  EXPECT_NE(rep.str().find("violation"), std::string::npos);
  EXPECT_EQ(check_slot_schedule(sys, schedule_sfq(sys)).str(), "valid");
}

TEST(Validity, PrecedenceViolationDetected) {
  const TaskSystem sys = one_task(Weight(1, 2), 6);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 4, 0);
  sched.place(SubtaskRef{0, 1}, 2, 0);  // before its predecessor
  sched.place(SubtaskRef{0, 2}, 5, 0);
  const ValidityReport rep = check_slot_schedule(sys, sched);
  bool saw = false;
  for (const Violation& v : rep.violations) {
    saw |= v.kind == Violation::Kind::kPrecedence;
  }
  EXPECT_TRUE(saw);
}

// -------------------------------------------------------------- tardiness

TEST(Tardiness, SlotScheduleValues) {
  const TaskSystem sys = one_task(Weight(1, 2), 6);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 3, 0);  // d = 2 -> tardiness 2
  sched.place(SubtaskRef{0, 1}, 4, 0);  // d = 4 -> tardiness 1
  sched.place(SubtaskRef{0, 2}, 5, 0);  // d = 6 -> 0
  EXPECT_EQ(subtask_tardiness(sys, sched, SubtaskRef{0, 0}), 2);
  EXPECT_EQ(subtask_tardiness(sys, sched, SubtaskRef{0, 1}), 1);
  EXPECT_EQ(subtask_tardiness(sys, sched, SubtaskRef{0, 2}), 0);
  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_EQ(sum.max_ticks, 2 * kTicksPerSlot);
  EXPECT_EQ(sum.late_subtasks, 2);
  EXPECT_EQ(sum.total_ticks, 3 * kTicksPerSlot);
  EXPECT_EQ(sum.worst, (SubtaskRef{0, 0}));
  EXPECT_EQ(sum.max_quanta_ceil(), 2);
  EXPECT_FALSE(sum.none_late());
}

TEST(Tardiness, CountsUnscheduled) {
  const TaskSystem sys = one_task(Weight(1, 2), 6);
  const SlotSchedule sched(sys);  // nothing placed
  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_EQ(sum.unscheduled, 3);
  EXPECT_FALSE(sum.none_late());
}

TEST(Tardiness, ValuesVectorSkipsUnscheduled) {
  const TaskSystem sys = one_task(Weight(1, 2), 6);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  EXPECT_EQ(tardiness_values_ticks(sys, sched).size(), 1u);
}

// -------------------------------------------------------------------- lag

TEST(Lag, ZeroAtBoundariesOfAPerfectlyPeriodicSchedule) {
  // Weight 1/2 scheduled in every even slot: lag oscillates 0, 1/2, 0...
  const TaskSystem sys = one_task(Weight(1, 2), 8);
  SlotSchedule sched(sys);
  for (std::int32_t s = 0; s < 4; ++s) {
    sched.place(SubtaskRef{0, s}, 2 * s, 0);
  }
  EXPECT_EQ(lag(sys, sched, 0, 0), Rational(0));
  EXPECT_EQ(lag(sys, sched, 0, 1), Rational(-1, 2));
  EXPECT_EQ(lag(sys, sched, 0, 2), Rational(0));
  EXPECT_EQ(lag(sys, sched, 0, 8), Rational(0));
}

TEST(Lag, LateExecutionGivesPositiveLag) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 1, 0);
  sched.place(SubtaskRef{0, 1}, 3, 0);
  EXPECT_EQ(lag(sys, sched, 0, 1), Rational(1, 2));
  const LagRange r = lag_range(sys, sched, 4);
  EXPECT_EQ(r.max, Rational(1, 2));
  EXPECT_EQ(r.min, Rational(0));
  EXPECT_TRUE(is_pfair(sys, sched, 4));
}

TEST(Lag, MissedDeadlineBreaksPfairness) {
  const TaskSystem sys = one_task(Weight(1, 2), 4);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 2, 0);  // window [0,2) missed
  sched.place(SubtaskRef{0, 1}, 3, 0);
  // lag at t = 2 is 1 (one full quantum behind): not Pfair.
  EXPECT_EQ(lag(sys, sched, 0, 2), Rational(1));
  EXPECT_FALSE(is_pfair(sys, sched, 4));
}

TEST(Lag, Pd2SchedulesArePfairAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 18;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sched = schedule_sfq(sys);
    ASSERT_TRUE(sched.complete());
    EXPECT_TRUE(is_pfair(sys, sched, cfg.horizon)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pfair
