# End-to-end smoke for the pfairstat CLI: produce two profiled metrics
# dumps with pfairsim, then show/diff them, and check the --fail-above
# budget on a synthetic regression.  Invoked from tests/CMakeLists.txt
# with -DPFAIRSIM=... -DPFAIRSTAT=....
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

set(sfq "${CMAKE_CURRENT_BINARY_DIR}/pfairstat_smoke_sfq.json")
set(dvq "${CMAKE_CURRENT_BINARY_DIR}/pfairstat_smoke_dvq.json")

run(${PFAIRSIM} --demo=fig6 --profile --quiet --metrics=${sfq})
run(${PFAIRSIM} --demo=fig6 --model=dvq --profile --quiet --metrics=${dvq})
run(${PFAIRSTAT} show ${sfq})
run(${PFAIRSTAT} diff ${sfq} ${dvq})
# A file diffed against itself has zero regression, so any budget passes.
run(${PFAIRSTAT} diff ${sfq} ${sfq} --fail-above=0)

# Synthetic 100% regression in one phase: the budget must trip (exit 1)
# and the report must blame the phase that moved.
set(base "${CMAKE_CURRENT_BINARY_DIR}/pfairstat_smoke_base.json")
set(cur "${CMAKE_CURRENT_BINARY_DIR}/pfairstat_smoke_cur.json")
file(WRITE ${base} "{\"phases\": {\"simulate\": {\"count\": 1, \"total_ns\": 1000, \"self_ns\": 1000}, \"render\": {\"count\": 1, \"total_ns\": 500, \"self_ns\": 500}}}")
file(WRITE ${cur} "{\"phases\": {\"simulate\": {\"count\": 1, \"total_ns\": 2000, \"self_ns\": 2000}, \"render\": {\"count\": 1, \"total_ns\": 500, \"self_ns\": 500}}}")
execute_process(COMMAND ${PFAIRSTAT} diff ${base} ${cur} --fail-above=15
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "pfairstat missed a 66% attributed regression")
endif()
if(NOT out MATCHES "largest mover: simulate")
  message(FATAL_ERROR "pfairstat did not blame the moved phase: ${out}")
endif()
