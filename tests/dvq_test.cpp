// Tests for the DVQ scheduler (Sec. 3): exact reproduction of Fig. 2(b),
// degeneration to SFQ under full quanta, work conservation, and the
// paper's headline Theorem 3 (tardiness < 1 quantum) as a property sweep.
#include <gtest/gtest.h>

#include "analysis/blocking.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/decision_sink.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Dvq, SingleTaskRunsBackToBack) {
  // Weight 2/2 with early release: both subtasks of the job are eligible
  // at 0, so when T_1 yields a quarter-slot early, T_2 starts immediately
  // (work-conserving), not at the next boundary.
  std::vector<Task> tasks;
  tasks.push_back(
      Task::periodic("T", Weight(2, 2), 2).with_early_release());
  const TaskSystem sys(std::move(tasks), 1);
  const FixedYield yields(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sys, yields);
  ASSERT_TRUE(sched.complete());
  EXPECT_EQ(sched.placement(SubtaskRef{0, 0}).start, Time::slots(0));
  EXPECT_EQ(sched.placement(SubtaskRef{0, 1}).start,
            Time::ticks(3 * kTicksPerSlot / 4));
}

TEST(Dvq, SuccessorWaitsForItsReleaseWithoutEarlyRelease) {
  // Without early release, eligibility is integral: T_2 of a weight-1
  // task cannot start before time 1 even though the processor is free.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 1), 3));
  const TaskSystem sys(std::move(tasks), 1);
  const FixedYield yields(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sys, yields);
  ASSERT_TRUE(sched.complete());
  EXPECT_EQ(sched.placement(SubtaskRef{0, 1}).start, Time::slots(1));
  EXPECT_EQ(sched.placement(SubtaskRef{0, 2}).start, Time::slots(2));
}

TEST(Dvq, FullQuantaDegenerateToSfqSchedule) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 18;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sfq = schedule_sfq(sys);
    const FullQuantumYield yields;
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(sfq.complete());
    ASSERT_TRUE(dvq.complete());
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        const SubtaskRef ref{k, s};
        EXPECT_EQ(dvq.placement(ref).start,
                  Time::slots(sfq.placement(ref).slot))
            << "seed " << seed << " " << ref;
      }
    }
  }
}

TEST(Dvq, Fig2bExactTimeline) {
  // Fig. 2(b): A_1 and F_1, scheduled at t = 1, yield delta early; new
  // quanta begin at 2 - delta and go to B_1 and C_1, whose full quanta
  // block D_2, E_2, F_2 at time 2.
  const Time delta = kTick;
  const FigureScenario sc = fig2_scenario(delta);
  const TaskSystem& sys = sc.system;
  const DvqSchedule sched = schedule_dvq(sys, *sc.yields);
  ASSERT_TRUE(sched.complete());

  const SubtaskRef a1{0, 0}, b1{1, 0}, c1{2, 0}, f1{5, 0};
  const SubtaskRef d2{3, 1}, e2{4, 1}, f2{5, 1};
  // Slot 1 carries A_1 and F_1; both yield at 2 - delta.
  EXPECT_EQ(sched.placement(a1).start, Time::slots(1));
  EXPECT_EQ(sched.placement(f1).start, Time::slots(1));
  EXPECT_EQ(sched.placement(a1).completion(), Time::slots(2) - delta);
  // B_1 and C_1 grab the freed processors immediately (the DVQ hallmark).
  EXPECT_EQ(sched.placement(b1).start, Time::slots(2) - delta);
  EXPECT_EQ(sched.placement(c1).start, Time::slots(2) - delta);
  // D_2 and E_2, eligible at 2, are blocked until 3 - delta.
  EXPECT_EQ(sched.placement(d2).start, Time::slots(3) - delta);
  EXPECT_EQ(sched.placement(e2).start, Time::slots(3) - delta);
  // F_2 (deadline 4) completes at 5 - delta: a deadline miss of
  // 1 - delta < one quantum — the paper's tight example.
  EXPECT_EQ(sched.placement(f2).completion(), Time::slots(5) - delta);
  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_EQ(sum.max_ticks, kTicksPerSlot - delta.raw_ticks());
  EXPECT_EQ(sum.max_quanta_ceil(), 1);

  // The blocked subtasks are eligibility-blocked, and Property PB holds.
  const BlockingReport rep = analyze_blocking(sys, sched);
  EXPECT_GT(rep.eligibility_blocked, 0);
  EXPECT_TRUE(rep.property_pb_holds());
}

TEST(Dvq, Fig2bMissShrinksWithDelta) {
  for (const std::int64_t dticks :
       {std::int64_t{1}, kTicksPerSlot / 8, kTicksPerSlot / 2}) {
    const FigureScenario sc = fig2_scenario(Time::ticks(dticks));
    const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
    const TardinessSummary sum = measure_tardiness(sc.system, sched);
    EXPECT_EQ(sum.max_ticks, kTicksPerSlot - dticks);
  }
}

TEST(Dvq, WorkConservation) {
  // At every decision instant recorded by the engine, a processor is
  // left idle only when no ready subtask remains.
  const FigureScenario sc = fig2_scenario(kTick, 2);
  DvqDecisionSink decisions;
  DvqOptions opts;
  opts.trace = &decisions;
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields, opts);
  for (const DvqDecision& d : decisions.decisions()) {
    // Either every freed processor got work, or no ready subtask was left.
    EXPECT_TRUE(d.started.size() == d.free_procs.size() ||
                d.left_ready.empty())
        << "at " << d.at;
  }
}

TEST(Dvq, ValidityCheckerFlagsTheFig2Miss) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  EXPECT_FALSE(check_dvq_schedule(sc.system, sched).valid());
  // With a one-quantum allowance (Theorem 3) the schedule is clean.
  EXPECT_TRUE(check_dvq_schedule(sc.system, sched, kQuantum).valid());
}

// ----------------------------------------------- Theorem 3 property sweeps

struct DvqCase {
  int processors;
  WeightClass cls;
  std::int64_t util_num, util_den;  // fraction of M
  std::uint64_t seed;
};

class Theorem3Sweep : public ::testing::TestWithParam<DvqCase> {};

TEST_P(Theorem3Sweep, TardinessBelowOneQuantum) {
  const DvqCase c = GetParam();
  GeneratorConfig cfg;
  cfg.processors = c.processors;
  cfg.target_util =
      Rational(c.processors) * Rational(c.util_num, c.util_den);
  cfg.horizon = 30;
  cfg.weights = c.cls;
  cfg.seed = c.seed;
  const TaskSystem sys = generate_periodic(cfg);
  ASSERT_TRUE(sys.feasible());

  // Several yield regimes, including the adversarial near-boundary yield.
  const FixedYield near_full(kTick);
  const FixedYield half(Time::ticks(kTicksPerSlot / 2));
  const BernoulliYield mixed(c.seed, 1, 2, Time::ticks(kTicksPerSlot / 8),
                             kQuantum - kTick);
  const YieldModel* models[] = {&near_full, &half, &mixed};
  for (const YieldModel* m : models) {
    const DvqSchedule sched = schedule_dvq(sys, *m);
    ASSERT_TRUE(sched.complete());
    const TardinessSummary sum = measure_tardiness(sys, sched);
    // Theorem 3: strictly less than one quantum (at most one quantum,
    // and the miss is bounded by 1 - c_min > 0 margins).
    EXPECT_LT(sum.max_ticks, kTicksPerSlot) << sys.summary();
    // Independent re-check through the validity layer.
    EXPECT_TRUE(check_dvq_schedule(sys, sched, kQuantum).valid());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem3Sweep,
    ::testing::Values(DvqCase{2, WeightClass::kMixed, 1, 1, 21},
                      DvqCase{2, WeightClass::kHeavy, 1, 1, 22},
                      DvqCase{2, WeightClass::kLight, 1, 1, 23},
                      DvqCase{3, WeightClass::kMixed, 1, 1, 24},
                      DvqCase{3, WeightClass::kHeavy, 1, 1, 25},
                      DvqCase{4, WeightClass::kMixed, 1, 1, 26},
                      DvqCase{4, WeightClass::kUniform, 1, 1, 27},
                      DvqCase{4, WeightClass::kMixed, 3, 4, 28},
                      DvqCase{8, WeightClass::kMixed, 1, 1, 29},
                      DvqCase{6, WeightClass::kHeavy, 7, 8, 30}),
    [](const ::testing::TestParamInfo<DvqCase>& param_info) {
      const DvqCase& c = param_info.param;
      return "M" + std::to_string(c.processors) + "_" + to_string(c.cls) +
             "_seed" + std::to_string(c.seed);
    });

TEST(Dvq, Theorem3ManySeeds) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 2, 3, kTick, kQuantum - kTick);
    const DvqSchedule sched = schedule_dvq(sys, yields);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    ASSERT_LT(measure_tardiness(sys, sched).max_ticks, kTicksPerSlot)
        << "seed " << seed << "\n" << sys.summary();
  }
}

TEST(Dvq, Theorem3HoldsForGisSystems) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem gis = drop_subtasks(
        add_is_jitter(generate_periodic(cfg), 2, 1, 4, seed + 50), 1, 6,
        seed + 60);
    const BernoulliYield yields(seed, 1, 2, kTick, kQuantum - kTick);
    const DvqSchedule sched = schedule_dvq(gis, yields);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    EXPECT_LT(measure_tardiness(gis, sched).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

TEST(Dvq, PropertyPbHoldsAcrossRandomRuns) {
  std::int64_t pred_blocked_total = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 20;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed * 31, 1, 2, kQuantum - kTick,
                                kQuantum - kTick);
    const DvqSchedule sched = schedule_dvq(sys, yields);
    const BlockingReport rep = analyze_blocking(sys, sched);
    EXPECT_TRUE(rep.property_pb_holds())
        << "seed " << seed << ": "
        << (rep.details.empty() ? "" : rep.details.front());
    pred_blocked_total += rep.predecessor_blocked;
  }
  // The sweep should actually exercise blocking (eligibility blocking is
  // pervasive; predecessor blocking is rarer but must appear somewhere).
  SUCCEED() << "predecessor-blocked instances: " << pred_blocked_total;
}

TEST(Dvq, EpdfUnderDvqStaysBoundedOnTwoProcessors) {
  // EPDF is optimal for M <= 2 in the SFQ model; under DVQ its tardiness
  // must stay within one quantum (the paper's "+ <= 1 quantum" claim for
  // suboptimal algorithms, applied to EPDF's M=2 optimality range).
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 1, 2, kTick, kQuantum - kTick);
    DvqOptions opts;
    opts.policy = Policy::kEpdf;
    const DvqSchedule sched = schedule_dvq(sys, yields, opts);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    EXPECT_LT(measure_tardiness(sys, sched).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

TEST(Dvq, HorizonLimitTruncates) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 2), 40));
  const TaskSystem sys(std::move(tasks), 1);
  const FullQuantumYield yields;
  DvqOptions opts;
  opts.horizon_limit = 6;
  const DvqSchedule sched = schedule_dvq(sys, yields, opts);
  EXPECT_FALSE(sched.complete());
}

TEST(Dvq, BusyTicksAccounting) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  std::int64_t busy = 0;
  for (const std::int64_t b : sched.busy_ticks()) busy += b;
  // 12 subtasks, two of which yield one tick early.
  EXPECT_EQ(busy, 12 * kTicksPerSlot - 2);
}

}  // namespace
}  // namespace pfair
