// Randomized A/B equivalence: the optimized simulators (calendar +
// packed-key ready heaps) must produce bit-identical schedules to the
// retained naive references, across policies, workload shapes, and with
// or without observability attached.  This is the contract that lets the
// hot path change shape while every downstream analysis stays exact.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

#include "core/arena.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "dvq/reference_scheduler.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/quality.hpp"
#include "obs/trace.hpp"
#include "sched/reference_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "sched/simulator.hpp"
#include "dvq/dvq_simulator.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

constexpr Policy kAllPolicies[] = {Policy::kEpdf, Policy::kPf, Policy::kPd,
                                   Policy::kPd2};
constexpr int kSeeds = 50;

// Workload shapes cycle with the seed: pure periodic, IS jitter, GIS
// drops, and early eligibility (Eq. (6)), over varying machine sizes,
// utilizations and weight classes.
TaskSystem make_system(int seed) {
  GeneratorConfig cfg;
  cfg.processors = 2 + seed % 5;
  cfg.target_util = Rational(cfg.processors) - Rational(1, 2 + seed % 3);
  cfg.weights = static_cast<WeightClass>(seed % 4);
  cfg.horizon = 12 + (seed % 4) * 8;
  cfg.seed = 1000 + static_cast<std::uint64_t>(seed);
  TaskSystem sys = generate_periodic(cfg);
  const auto s = static_cast<std::uint64_t>(seed);
  switch (seed % 4) {
    case 1:
      sys = add_is_jitter(sys, 3, 1, 3, s);
      break;
    case 2:
      sys = drop_subtasks(sys, 1, 8, s);
      break;
    case 3:
      sys = advance_eligibility(sys, 2, 1, 4, s);
      break;
    default:
      break;
  }
  return sys;
}

bool same_sfq(const SlotSchedule& a, const SlotSchedule& b,
              const TaskSystem& sys, std::string* why) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t t = 0; t < sys.task(k).num_subtasks(); ++t) {
      const SubtaskRef ref{k, t};
      const SlotPlacement& pa = a.placement(ref);
      const SlotPlacement& pb = b.placement(ref);
      if (pa.slot != pb.slot || pa.proc != pb.proc) {
        std::ostringstream os;
        os << ref << ": slot " << pa.slot << "/proc " << pa.proc << " vs "
           << pb.slot << "/" << pb.proc;
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

bool same_dvq(const DvqSchedule& a, const DvqSchedule& b,
              const TaskSystem& sys, std::string* why) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t t = 0; t < sys.task(k).num_subtasks(); ++t) {
      const SubtaskRef ref{k, t};
      const DvqPlacement& pa = a.placement(ref);
      const DvqPlacement& pb = b.placement(ref);
      if (pa.start != pb.start || pa.cost != pb.cost || pa.proc != pb.proc) {
        std::ostringstream os;
        os << ref << ": start " << pa.start.raw_ticks() << "/proc "
           << pa.proc << " vs " << pb.start.raw_ticks() << "/" << pb.proc;
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

// gtest assertions are not thread-safe; workers record failures and the
// main thread reports them.
struct FailureLog {
  std::mutex mu;
  std::atomic<int> count{0};
  std::string first;

  void record(const std::string& what) {
    count.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    if (first.empty()) first = what;
  }
};

TEST(AbEquivalence, SfqMatchesNaiveReferenceAcrossSeedsAndPolicies) {
  FailureLog failures;
  global_pool().parallel_for(
      0, kSeeds * 4,
      [&](std::int64_t i) {
          const int seed = static_cast<int>(i / 4);
          const Policy policy = kAllPolicies[i % 4];
          const TaskSystem sys = make_system(seed);
          SfqOptions opts;
          opts.policy = policy;
          const SlotSchedule ref = schedule_sfq_reference(sys, opts);
          const SlotSchedule fast = schedule_sfq(sys, opts);

          SfqOptions obs_opts = opts;
          RingBufferSink sink(512);
          MetricsRegistry reg;
          obs_opts.trace = &sink;
          obs_opts.metrics = &reg;
          const SlotSchedule instrumented = schedule_sfq(sys, obs_opts);

          std::string why;
          const std::string tag = "seed " + std::to_string(seed) + " " +
                                  to_string(policy);
          if (!same_sfq(ref, fast, sys, &why)) {
            failures.record(tag + " fast: " + why);
          }
          if (!same_sfq(ref, instrumented, sys, &why)) {
            failures.record(tag + " instrumented: " + why);
          }
      });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

TEST(AbEquivalence, DvqMatchesNaiveReferenceAcrossSeedsAndPolicies) {
  FailureLog failures;
  global_pool().parallel_for(
      0, kSeeds * 4,
      [&](std::int64_t i) {
          const int seed = static_cast<int>(i / 4);
          const Policy policy = kAllPolicies[i % 4];
          const TaskSystem sys = make_system(seed);
          const BernoulliYield yields(
              static_cast<std::uint64_t>(seed) * 7919 + 3, 1, 3, kTick,
              kQuantum - kTick);
          DvqOptions opts;
          opts.policy = policy;
          const DvqSchedule ref = schedule_dvq_reference(sys, yields, opts);
          const DvqSchedule fast = schedule_dvq(sys, yields, opts);

          DvqOptions obs_opts = opts;
          RingBufferSink sink(512);
          MetricsRegistry reg;
          obs_opts.trace = &sink;
          obs_opts.metrics = &reg;
          const DvqSchedule instrumented =
              schedule_dvq(sys, yields, obs_opts);

          std::string why;
          const std::string tag = "seed " + std::to_string(seed) + " " +
                                  to_string(policy);
          if (!same_dvq(ref, fast, sys, &why)) {
            failures.record(tag + " fast: " + why);
          }
          if (!same_dvq(ref, instrumented, sys, &why)) {
            failures.record(tag + " instrumented: " + why);
          }
      });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

// An attached invariant auditor (whose event_mask is the decision-only
// subset, keeping the simulators on their fast paths) must be invisible
// to the schedule in both models — and must stay clean on these
// feasible systems.
TEST(AbEquivalence, AuditorOnRunsAreBitIdentical) {
  FailureLog failures;
  global_pool().parallel_for(
      0, kSeeds * 4,
      [&](std::int64_t i) {
          const int seed = static_cast<int>(i / 4);
          const Policy policy = kAllPolicies[i % 4];
          const TaskSystem sys = make_system(seed);
          const std::string tag = "seed " + std::to_string(seed) + " " +
                                  to_string(policy);
          std::string why;

          SfqOptions sopts;
          sopts.policy = policy;
          const SlotSchedule plain = schedule_sfq(sys, sopts);
          SfqOptions saudit = sopts;
          InvariantAuditor sfq_audit(sys);
          saudit.trace = &sfq_audit;
          if (!same_sfq(plain, schedule_sfq(sys, saudit), sys, &why)) {
            failures.record(tag + " sfq audited: " + why);
          }

          const BernoulliYield yields(
              static_cast<std::uint64_t>(seed) * 7919 + 3, 1, 3, kTick,
              kQuantum - kTick);
          DvqOptions dopts;
          dopts.policy = policy;
          const DvqSchedule dplain = schedule_dvq(sys, yields, dopts);
          DvqOptions daudit = dopts;
          InvariantAuditor dvq_audit(sys);
          daudit.trace = &dvq_audit;
          if (!same_dvq(dplain, schedule_dvq(sys, yields, daudit), sys,
                        &why)) {
            failures.record(tag + " dvq audited: " + why);
          }
      });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

// Flyweight vs eager construction must be invisible to every scheduler:
// the same weights/phases/horizon, one system synthesizing subtasks from
// shared window tables and one materializing them the pre-flyweight way,
// must produce bit-identical SFQ and DVQ schedules under all policies.
TEST(AbEquivalence, FlyweightConstructionMatchesEagerSchedules) {
  for (int seed = 0; seed < 8; ++seed) {
    const int m = 2 + seed % 3;
    std::vector<Weight> weights;
    {
      Rng rng(static_cast<std::uint64_t>(7000 + seed));
      Rational util;
      while (util < Rational(m)) {
        const std::int64_t p = 4 + rng.uniform(0, 11);
        const std::int64_t e = rng.uniform(1, p);
        if (util + Rational(e, p) > Rational(m)) break;
        weights.push_back(Weight(e, p));
        util += Rational(e, p);
      }
    }
    const std::int64_t horizon = 48;
    std::vector<Task> fly;
    std::vector<Task> eager;
    for (std::size_t k = 0; k < weights.size(); ++k) {
      const std::int64_t phase = static_cast<std::int64_t>(k % 3);
      const std::string name = "T" + std::to_string(k);
      fly.push_back(
          Task::periodic_phased(name, weights[k], phase, horizon));
      eager.push_back(
          Task::periodic_phased_eager(name, weights[k], phase, horizon));
    }
    const TaskSystem fly_sys(std::move(fly), m);
    const TaskSystem eager_sys(std::move(eager), m);

    for (const Policy policy : kAllPolicies) {
      const std::string tag =
          "seed " + std::to_string(seed) + " " + to_string(policy);
      SfqOptions sopts;
      sopts.policy = policy;
      std::string why;
      ASSERT_TRUE(same_sfq(schedule_sfq(fly_sys, sopts),
                           schedule_sfq(eager_sys, sopts), fly_sys, &why))
          << tag << ": " << why;

      const BernoulliYield yields(
          static_cast<std::uint64_t>(seed) * 131 + 5, 1, 3, kTick,
          kQuantum - kTick);
      DvqOptions dopts;
      dopts.policy = policy;
      ASSERT_TRUE(same_dvq(schedule_dvq(fly_sys, yields, dopts),
                           schedule_dvq(eager_sys, yields, dopts), fly_sys,
                           &why))
          << tag << ": " << why;
    }
  }
}

// Toggling the probe mid-run switches between the instrumented scan and
// the incremental heap; the schedule must not notice.  This exercises
// the stale-entry skip in the ready queue (entries consumed behind its
// back by instrumented steps).
TEST(AbEquivalence, SfqMixedInstrumentationStaysIdentical) {
  for (const Policy policy : kAllPolicies) {
    const TaskSystem sys = make_system(5);
    SfqOptions opts;
    opts.policy = policy;
    const SlotSchedule ref = schedule_sfq_reference(sys, opts);

    SfqSimulator sim(sys, policy);
    RingBufferSink sink(512);
    sim.set_trace_sink(&sink);
    const std::int64_t horizon = default_horizon(sys);
    sim.run_until(3);              // instrumented slots 0..2
    sim.set_trace_sink(nullptr);   // fast path from slot 3
    sim.run_until(horizon / 2);
    sim.set_trace_sink(&sink);     // and back
    sim.run_until(horizon / 2 + 2);
    sim.set_trace_sink(nullptr);
    sim.run_until(horizon);

    std::string why;
    ASSERT_TRUE(same_sfq(ref, sim.schedule(), sys, &why))
        << to_string(policy) << ": " << why;
  }
}

TEST(AbEquivalence, DvqMixedInstrumentationStaysIdentical) {
  for (const Policy policy : kAllPolicies) {
    const TaskSystem sys = make_system(6);
    const BernoulliYield yields(17, 1, 2, kTick, kQuantum - kTick);
    DvqOptions opts;
    opts.policy = policy;
    const DvqSchedule ref = schedule_dvq_reference(sys, yields, opts);

    DvqSimulator sim(sys, yields, policy);
    RingBufferSink sink(512);
    sim.set_trace_sink(&sink);
    for (int i = 0; i < 3 && sim.has_events(); ++i) sim.step();
    sim.set_trace_sink(nullptr);
    const std::int64_t horizon = default_horizon(sys);
    const Time limit = Time::slots(horizon);
    sim.run_until(Time::slots(horizon / 2));
    sim.set_trace_sink(&sink);
    for (int i = 0; i < 2 && sim.has_events(); ++i) sim.step();
    sim.set_trace_sink(nullptr);
    sim.run_until(limit);

    std::string why;
    ASSERT_TRUE(same_dvq(ref, sim.schedule(), sys, &why))
        << to_string(policy) << ": " << why;
  }
}

// Profiling spans (obs/prof.hpp) and quality counters (obs/quality.hpp)
// are pure observers: a run with a profiler installed on the thread and
// counters attached must be bit-identical to the plain run, in both
// models.  This is the acceptance contract that makes `--profile` safe
// to leave on in production-style invocations.
TEST(AbEquivalence, ProfiledAndQualityRunsAreBitIdentical) {
  FailureLog failures;
  global_pool().parallel_for(
      0, kSeeds * 4,
      [&](std::int64_t i) {
          const int seed = static_cast<int>(i / 4);
          const Policy policy = kAllPolicies[i % 4];
          const TaskSystem sys = make_system(seed);
          const std::string tag = "seed " + std::to_string(seed) + " " +
                                  to_string(policy);
          std::string why;

          SfqOptions sopts;
          sopts.policy = policy;
          const SlotSchedule plain = schedule_sfq(sys, sopts);
          prof::Profiler profiler;
          {
            prof::ProfScope scope(&profiler);
            SfqOptions sq = sopts;
            QualityCounters q;
            sq.quality = &q;
            if (!same_sfq(plain, schedule_sfq(sys, sq), sys, &why)) {
              failures.record(tag + " sfq profiled: " + why);
            }
          }

          const BernoulliYield yields(
              static_cast<std::uint64_t>(seed) * 7919 + 3, 1, 3, kTick,
              kQuantum - kTick);
          DvqOptions dopts;
          dopts.policy = policy;
          const DvqSchedule dplain = schedule_dvq(sys, yields, dopts);
          {
            prof::ProfScope scope(&profiler);
            DvqOptions dq = dopts;
            QualityCounters q;
            dq.quality = &q;
            if (!same_dvq(dplain, schedule_dvq(sys, yields, dq), sys,
                          &why)) {
              failures.record(tag + " dvq profiled: " + why);
            }
          }
      });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

// The SIMD shim is an implementation detail: with the runtime
// force-scalar hook engaged, every policy must produce bit-identical
// schedules in both models, with and without an arena attached.  Runs
// serially — the hook is process-wide.
TEST(AbEquivalence, SimdAndScalarBackendsAreBitIdentical) {
  struct ScalarGuard {  // restore the hook even if an assertion fires
    ~ScalarGuard() { simd::set_force_scalar(false); }
  } guard;
  for (int seed = 0; seed < 12; ++seed) {
    const TaskSystem sys = make_system(seed);
    const BernoulliYield yields(static_cast<std::uint64_t>(seed) * 131 + 7, 1,
                                3, kTick, kQuantum - kTick);
    for (const Policy policy : kAllPolicies) {
      const std::string tag =
          "seed " + std::to_string(seed) + " " + to_string(policy);

      SfqOptions sopts;
      sopts.policy = policy;
      DvqOptions dopts;
      dopts.policy = policy;
      Arena arena;
      SfqOptions aopts = sopts;
      aopts.arena = &arena;

      const SlotSchedule simd_sfq = schedule_sfq(sys, sopts);
      SlotSchedule simd_arena(sys);
      schedule_sfq_into(sys, aopts, simd_arena);
      const DvqSchedule simd_dvq = schedule_dvq(sys, yields, dopts);

      simd::set_force_scalar(true);
      const SlotSchedule scalar_sfq = schedule_sfq(sys, sopts);
      arena.reset();
      SlotSchedule scalar_arena(sys);
      schedule_sfq_into(sys, aopts, scalar_arena);
      const DvqSchedule scalar_dvq = schedule_dvq(sys, yields, dopts);
      simd::set_force_scalar(false);

      std::string why;
      ASSERT_TRUE(same_sfq(simd_sfq, scalar_sfq, sys, &why))
          << tag << " sfq: " << why;
      ASSERT_TRUE(same_sfq(simd_sfq, simd_arena, sys, &why))
          << tag << " sfq arena (simd): " << why;
      ASSERT_TRUE(same_sfq(simd_sfq, scalar_arena, sys, &why))
          << tag << " sfq arena (scalar): " << why;
      ASSERT_TRUE(same_dvq(simd_dvq, scalar_dvq, sys, &why))
          << tag << " dvq: " << why;
    }
  }
}

}  // namespace
}  // namespace pfair
