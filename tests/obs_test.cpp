// Tests for the observability layer: trace sinks, metrics, and the
// guarantee that instrumentation never changes a schedule.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "core/thread_pool.hpp"
#include "dvq/decision_sink.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TraceEvent make_event(std::int64_t detail) {
  TraceEvent e;
  e.kind = TraceEventKind::kReadySet;
  e.at = Time::slots(detail);
  e.detail = detail;
  return e;
}

TEST(RingBufferSink, KeepsNewestAndCountsDrops) {
  RingBufferSink sink(4);
  for (std::int64_t i = 0; i < 10; ++i) sink.on_event(make_event(i));
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].detail, static_cast<std::int64_t>(6 + i));
  }
}

TEST(RingBufferSink, PartialFill) {
  RingBufferSink sink(8);
  for (std::int64_t i = 0; i < 3; ++i) sink.on_event(make_event(i));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.front().detail, 0);
  EXPECT_EQ(got.back().detail, 2);
}

TEST(JsonlSink, OneParsableObjectPerLine) {
  std::ostringstream os;
  JsonlSink sink(os);
  const TaskSystem sys = fig6_system();
  SfqOptions opts;
  opts.trace = &sink;
  (void)schedule_sfq(sys, opts);
  EXPECT_GT(sink.lines(), 0u);

  std::istringstream in(os.str());
  std::string line;
  std::uint64_t n = 0;
  std::uint64_t places = 0;
  while (std::getline(in, line)) {
    ++n;
    const JsonValue v = parse_json(line);
    ASSERT_TRUE(v.is(JsonValue::Kind::kObject)) << line;
    ASSERT_NE(v.find("k"), nullptr) << line;
    ASSERT_NE(v.find("t"), nullptr) << line;
    if (v.at("k").string == "place") ++places;
  }
  EXPECT_EQ(n, sink.lines());
  // Every subtask of the feasible Fig. 6 system is placed exactly once.
  EXPECT_EQ(places, static_cast<std::uint64_t>(sys.total_subtasks()));
}

TEST(JsonlSink, DvqPlaceEventsMatchPlacements) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 8));
  std::ostringstream os;
  JsonlSink sink(os);
  DvqOptions opts;
  opts.trace = &sink;
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields, opts);

  std::int64_t placed = 0;
  for (std::int32_t k = 0; k < sc.system.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sc.system.task(k).num_subtasks(); ++s) {
      if (sched.placement(SubtaskRef{k, s}).placed) ++placed;
    }
  }
  std::istringstream in(os.str());
  std::string line;
  std::int64_t places = 0;
  while (std::getline(in, line)) {
    if (parse_json(line).at("k").string == "place") ++places;
  }
  EXPECT_EQ(places, placed);
}

TEST(Metrics, CounterSumsStripesAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.count");
  constexpr std::int64_t kN = 20000;
  global_pool().parallel_for(
      0, kN, [&](std::int64_t) { c.add(); }, 64);
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(reg.snapshot().counter_or("test.count"), kN);
}

TEST(Metrics, HistogramShape) {
  Histogram h;
  h.add(0);
  h.add(1);
  h.add(5);
  h.add(1024);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1030);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(h.bucket(0), 1);   // x <= 0
  EXPECT_EQ(h.bucket(1), 1);   // 1
  EXPECT_EQ(h.bucket(3), 1);   // 4..7
  EXPECT_EQ(h.bucket(11), 1);  // 1024..2047
}

TEST(Metrics, HistogramEdgeCases) {
  Histogram h;
  h.add(0);
  h.add(-5);  // negatives share bucket 0 with zero
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 0);

  // Powers of two land in the bucket of their bit-width: 2^(b-1) is the
  // smallest value in bucket b.
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.bucket(1), 1);  // {1}
  EXPECT_EQ(h.bucket(2), 2);  // {2, 3}
  EXPECT_EQ(h.bucket(3), 1);  // {4}

  // INT64_MAX has bit-width 63 and must not overflow the bucket array.
  h.add(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.bucket(63), 1);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 7);
}

TEST(Metrics, HistogramConcurrentAddsSumExactly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("conc");
  constexpr std::int64_t kN = 20000;
  global_pool().parallel_for(
      0, kN, [&](std::int64_t i) { h.add(i % 7); }, 64);
  EXPECT_EQ(h.count(), kN);
  std::int64_t expected_sum = 0;
  for (std::int64_t i = 0; i < kN; ++i) expected_sum += i % 7;
  EXPECT_EQ(h.sum(), expected_sum);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 6);
  // Bucket totals across all stripes reconcile with the count.
  std::int64_t bucketed = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucketed += h.bucket(b);
  EXPECT_EQ(bucketed, kN);
}

TEST(Metrics, RegistryHandlesAreStableAndSnapshotSerializes) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  EXPECT_EQ(&a, &reg.counter("a"));
  a.add(3);
  reg.gauge("g").set(7);
  reg.histogram("h").add(42);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 3);
  EXPECT_EQ(snap.gauges.at("g"), 7);
  EXPECT_EQ(snap.histograms.at("h").count, 1);

  const JsonValue v = parse_json(metrics_to_json(snap, 2));
  EXPECT_EQ(v.at("counters").at("a").integer, 3);
  EXPECT_EQ(v.at("gauges").at("g").integer, 7);
  EXPECT_EQ(v.at("histograms").at("h").at("count").integer, 1);
}

TEST(Metrics, ScopeTimerRecordsOneSample) {
  MetricsRegistry reg;
  {
    ScopeTimer t(reg, "timed.ns");
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("timed.ns").count, 1);
  EXPECT_GE(snap.histograms.at("timed.ns").min, 0);
}

TEST(Probe, DisabledProbeIsInert) {
  SchedProbe probe;
  EXPECT_FALSE(probe.enabled());
  // None of these may touch memory or crash without a sink/registry.
  probe.begin_decision(TraceEventKind::kSlotBegin, Time::slots(0));
  probe.place(Time::slots(0), SubtaskRef{0, 0}, 0, 0);
  probe.end_decision();
}

TEST(SfqSimulator, TracingDoesNotChangeTheSchedule) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule plain = schedule_sfq(sys);

  RingBufferSink sink(1 << 16);
  MetricsRegistry reg;
  SfqOptions opts;
  opts.trace = &sink;
  opts.metrics = &reg;
  const SlotSchedule traced = schedule_sfq(sys, opts);

  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      EXPECT_EQ(plain.placement(ref).slot, traced.placement(ref).slot);
      EXPECT_EQ(plain.placement(ref).proc, traced.placement(ref).proc);
    }
  }
  EXPECT_GT(sink.total(), 0u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_GT(snap.counter_or(sched_metrics::kInvocations), 0);
  EXPECT_GT(snap.counter_or(sched_metrics::kComparisons), 0);
  EXPECT_EQ(snap.counter_or(sched_metrics::kPlacements),
            sys.total_subtasks());
}

TEST(DvqSimulator, TracingDoesNotChangeTheSchedule) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 8));
  const DvqSchedule plain = schedule_dvq(sc.system, *sc.yields);

  RingBufferSink sink(1 << 16);
  MetricsRegistry reg;
  DvqOptions opts;
  opts.trace = &sink;
  opts.metrics = &reg;
  const DvqSchedule traced = schedule_dvq(sc.system, *sc.yields, opts);

  for (std::int32_t k = 0; k < sc.system.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sc.system.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& a = plain.placement(ref);
      const DvqPlacement& b = traced.placement(ref);
      EXPECT_EQ(a.placed, b.placed);
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.cost, b.cost);
      EXPECT_EQ(a.proc, b.proc);
    }
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_GT(snap.counter_or(sched_metrics::kInvocations), 0);
  EXPECT_GT(snap.counter_or(sched_metrics::kMigrations), 0);
}

// DvqDecisionSink (the replacement for the removed log_decisions flag)
// must produce the identical decision log in own-storage mode, alone or
// teed alongside another sink.
TEST(DvqSimulator, DecisionSinkOwnStorageMatchesScheduleBound) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 8));

  DvqSchedule bound_sched(sc.system);
  DvqDecisionSink bound(bound_sched);
  DvqOptions legacy;
  legacy.trace = &bound;
  const DvqSchedule base = schedule_dvq(sc.system, *sc.yields, legacy);
  ASSERT_FALSE(bound_sched.decisions().empty());

  DvqDecisionSink own;
  RingBufferSink ring(1 << 16);
  TeeSink tee(&own, &ring);
  DvqOptions both;
  both.trace = &tee;
  const DvqSchedule mixed = schedule_dvq(sc.system, *sc.yields, both);
  EXPECT_GT(ring.total(), 0u);
  for (std::int32_t k = 0; k < sc.system.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sc.system.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      EXPECT_EQ(base.placement(ref).start, mixed.placement(ref).start);
    }
  }

  ASSERT_EQ(bound_sched.decisions().size(), own.decisions().size());
  for (std::size_t i = 0; i < own.decisions().size(); ++i) {
    const DvqDecision& x = bound_sched.decisions()[i];
    const DvqDecision& y = own.decisions()[i];
    EXPECT_EQ(x.at, y.at);
    EXPECT_EQ(x.free_procs, y.free_procs);
    EXPECT_EQ(x.started, y.started);
    EXPECT_EQ(x.left_ready, y.left_ready);
  }
}

TEST(TraceEventJson, RoundTripsThroughTheParser) {
  TraceEvent e;
  e.kind = TraceEventKind::kPlace;
  e.proc = 1;
  e.at = Time::slots(3);
  e.subject = SubtaskRef{2, 4};
  e.detail = 7;
  const JsonValue v = parse_json(trace_event_json(e));
  EXPECT_EQ(v.at("k").string, "place");
  EXPECT_EQ(v.at("proc").integer, 1);
  EXPECT_EQ(v.at("task").integer, 2);
  EXPECT_EQ(v.at("seq").integer, 4);
  EXPECT_EQ(v.at("d").integer, 7);
}

}  // namespace
}  // namespace pfair
