// Unit and property tests for src/tasks: window arithmetic (Eqs. (2)-(6)),
// b-bits, group deadlines, task builders, task systems.
#include <gtest/gtest.h>

#include "tasks/group_deadline.hpp"
#include "tasks/task.hpp"
#include "tasks/task_system.hpp"
#include "tasks/weight.hpp"
#include "tasks/windows.hpp"

namespace pfair {
namespace {

// ------------------------------------------------------------------- weight

TEST(Weight, Validation) {
  EXPECT_NO_THROW(Weight(1, 1));
  EXPECT_NO_THROW(Weight(3, 4));
  EXPECT_THROW(Weight(0, 4), ContractViolation);
  EXPECT_THROW(Weight(5, 4), ContractViolation);
  EXPECT_THROW(Weight(1, 0), ContractViolation);
}

TEST(Weight, Classes) {
  EXPECT_TRUE(Weight(1, 2).heavy());
  EXPECT_TRUE(Weight(3, 4).heavy());
  EXPECT_TRUE(Weight(1, 3).light());
  EXPECT_TRUE(Weight(1, 1).unit());
  EXPECT_FALSE(Weight(3, 4).unit());
}

TEST(Weight, RateEquality) {
  EXPECT_EQ(Weight(1, 2), Weight(2, 4));
  EXPECT_EQ(Weight(2, 4).value(), Rational(1, 2));
}

// ---------------------------------------------------------- window formulas

TEST(Windows, PaperFig1aWeightThreeQuarters) {
  // Fig. 1(a): subtask windows of weight 3/4 are [0,2), [1,3), [2,4),
  // repeating each period.
  const Weight w(3, 4);
  EXPECT_EQ(pseudo_release(w, 1), 0);
  EXPECT_EQ(pseudo_deadline(w, 1), 2);
  EXPECT_EQ(pseudo_release(w, 2), 1);
  EXPECT_EQ(pseudo_deadline(w, 2), 3);
  EXPECT_EQ(pseudo_release(w, 3), 2);
  EXPECT_EQ(pseudo_deadline(w, 3), 4);
  // Next job repeats shifted by the period.
  EXPECT_EQ(pseudo_release(w, 4), 4);
  EXPECT_EQ(pseudo_deadline(w, 4), 6);
}

TEST(Windows, UnitWeight) {
  const Weight w(1, 1);
  for (std::int64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(pseudo_release(w, i), i - 1);
    EXPECT_EQ(pseudo_deadline(w, i), i);
    EXPECT_FALSE(b_bit(w, i));
  }
}

TEST(Windows, IndexMustBePositive) {
  EXPECT_THROW((void)pseudo_release(Weight(1, 2), 0), ContractViolation);
  EXPECT_THROW((void)pseudo_deadline(Weight(1, 2), -1), ContractViolation);
  EXPECT_THROW((void)b_bit(Weight(1, 2), 0), ContractViolation);
}

TEST(Windows, BBitDefinition) {
  // b(T_i) = 1 iff d(T_i) > r(T_{i+1}).
  for (const auto& [e, p] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {3, 4}, {1, 2}, {2, 5}, {8, 11}, {1, 6}, {7, 9}}) {
    const Weight w(e, p);
    for (std::int64_t i = 1; i <= 3 * p; ++i) {
      EXPECT_EQ(b_bit(w, i), pseudo_deadline(w, i) > pseudo_release(w, i + 1))
          << "wt=" << w.str() << " i=" << i;
    }
  }
}

TEST(Windows, SubtasksBefore) {
  EXPECT_EQ(subtasks_before(Weight(3, 4), 4), 3);
  EXPECT_EQ(subtasks_before(Weight(3, 4), 5), 4);
  EXPECT_EQ(subtasks_before(Weight(1, 2), 6), 3);
  EXPECT_EQ(subtasks_before(Weight(1, 6), 6), 1);
  EXPECT_EQ(subtasks_before(Weight(1, 1), 7), 7);
  EXPECT_EQ(subtasks_before(Weight(1, 2), 0), 0);
}

TEST(Windows, SubtasksBeforeMatchesDefinition) {
  for (const auto& [e, p] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {3, 4}, {1, 2}, {2, 5}, {8, 11}, {5, 7}}) {
    const Weight w(e, p);
    for (std::int64_t h = 0; h <= 3 * p; ++h) {
      std::int64_t count = 0;
      for (std::int64_t i = 1; pseudo_release(w, i) < h; ++i) ++count;
      EXPECT_EQ(subtasks_before(w, h), count)
          << "wt=" << w.str() << " horizon=" << h;
    }
  }
}

// Property sweep over a grid of weights.
class WindowProperties
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(WindowProperties, StructuralInvariants) {
  const auto [e, p] = GetParam();
  const Weight w(e, p);
  const std::int64_t len_lo = Rational(p, e).ceil();
  std::int64_t last_r = -1;
  for (std::int64_t i = 1; i <= 4 * p; ++i) {
    const std::int64_t r = pseudo_release(w, i);
    const std::int64_t d = pseudo_deadline(w, i);
    // Windows are nonempty and releases nondecreasing.
    ASSERT_LT(r, d);
    ASSERT_GE(r, last_r);
    last_r = r;
    // Window length is ceil(1/wt) or ceil(1/wt)+1.
    const std::int64_t len = d - r;
    ASSERT_TRUE(len == len_lo || len == len_lo + 1)
        << "wt=" << w.str() << " i=" << i << " len=" << len;
    // Consecutive windows overlap by at most one slot.
    ASSERT_GE(pseudo_release(w, i + 1), d - 1);
    // Periodicity: window i+e is window i shifted by p.
    ASSERT_EQ(pseudo_release(w, i + e), r + p);
    ASSERT_EQ(pseudo_deadline(w, i + e), d + p);
    ASSERT_EQ(b_bit(w, i + e), b_bit(w, i));
  }
  // Exactly e subtasks per period.
  ASSERT_EQ(subtasks_before(w, p), e);
}

INSTANTIATE_TEST_SUITE_P(
    WeightGrid, WindowProperties,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 2},
                      std::pair<std::int64_t, std::int64_t>{1, 7},
                      std::pair<std::int64_t, std::int64_t>{2, 3},
                      std::pair<std::int64_t, std::int64_t>{3, 4},
                      std::pair<std::int64_t, std::int64_t>{5, 8},
                      std::pair<std::int64_t, std::int64_t>{8, 11},
                      std::pair<std::int64_t, std::int64_t>{7, 15},
                      std::pair<std::int64_t, std::int64_t>{11, 12},
                      std::pair<std::int64_t, std::int64_t>{1, 1},
                      std::pair<std::int64_t, std::int64_t>{13, 24}));

// ------------------------------------------------------------ group deadline

TEST(GroupDeadline, LightTasksHaveNone) {
  EXPECT_EQ(group_deadline(Weight(1, 3), 1), 0);
  EXPECT_EQ(group_deadline(Weight(2, 5), 7), 0);
}

TEST(GroupDeadline, UnitWeight) {
  EXPECT_EQ(group_deadline(Weight(1, 1), 3), 3);
}

TEST(GroupDeadline, WeightOneHalf) {
  // b = 0 everywhere, so each cascade is a single window: D(T_i) = d(T_i).
  const Weight w(1, 2);
  for (std::int64_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(group_deadline(w, i), pseudo_deadline(w, i));
  }
}

TEST(GroupDeadline, WeightThreeQuarters) {
  // Cascade T_1 -> T_2 -> T_3 ends at d(T_3) = 4 (b(T_3) = 0); next
  // cascade ends at 8.
  const Weight w(3, 4);
  EXPECT_EQ(group_deadline(w, 1), 4);
  EXPECT_EQ(group_deadline(w, 2), 4);
  EXPECT_EQ(group_deadline(w, 3), 4);
  EXPECT_EQ(group_deadline(w, 4), 8);
  EXPECT_EQ(group_deadline(w, 5), 8);
  EXPECT_EQ(group_deadline(w, 6), 8);
}

TEST(GroupDeadline, WeightEightElevenths) {
  // w(T_3) = [2, 5) has length 3, which absorbs the cascade from T_1/T_2:
  // D(T_1) = D(T_2) = d(T_2) = 3.
  const Weight w(8, 11);
  EXPECT_EQ(pseudo_deadline(w, 2), 3);
  EXPECT_EQ(window_length(w, 3), 3);
  EXPECT_EQ(group_deadline(w, 1), 3);
  EXPECT_EQ(group_deadline(w, 2), 3);
  // T_3 itself starts a new cascade.
  EXPECT_GT(group_deadline(w, 3), 3);
}

class GroupDeadlineProperties
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(GroupDeadlineProperties, StructuralInvariants) {
  const auto [e, p] = GetParam();
  const Weight w(e, p);
  ASSERT_TRUE(w.heavy());
  for (std::int64_t i = 1; i <= 3 * p; ++i) {
    const std::int64_t gd = group_deadline(w, i);
    // D >= d, nondecreasing in i, periodic with the task.
    ASSERT_GE(gd, pseudo_deadline(w, i)) << "wt=" << w.str() << " i=" << i;
    ASSERT_LE(gd, group_deadline(w, i + 1));
    ASSERT_EQ(group_deadline(w, i + e), gd + p);
    // Within a cascade (b = 1, next window length 2) the group deadline is
    // shared with the successor.
    if (b_bit(w, i) && window_length(w, i + 1) == 2) {
      ASSERT_EQ(group_deadline(w, i + 1), gd);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    HeavyWeights, GroupDeadlineProperties,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 2},
                      std::pair<std::int64_t, std::int64_t>{2, 3},
                      std::pair<std::int64_t, std::int64_t>{3, 4},
                      std::pair<std::int64_t, std::int64_t>{5, 8},
                      std::pair<std::int64_t, std::int64_t>{8, 11},
                      std::pair<std::int64_t, std::int64_t>{7, 12},
                      std::pair<std::int64_t, std::int64_t>{11, 16},
                      std::pair<std::int64_t, std::int64_t>{23, 24}));

// ------------------------------------------------------------ task builders

TEST(Task, PeriodicMaterialization) {
  const Task t = Task::periodic("T", Weight(3, 4), 8);
  EXPECT_EQ(t.kind(), TaskKind::kPeriodic);
  EXPECT_EQ(t.num_subtasks(), 6);  // releases 0,1,2,4,5,6 < 8
  EXPECT_EQ(t.subtask(0).release, 0);
  EXPECT_EQ(t.subtask(0).eligible, 0);
  EXPECT_EQ(t.subtask(5).release, 6);
  EXPECT_EQ(t.subtask(5).deadline, 8);
  EXPECT_EQ(t.max_deadline(), 8);
}

TEST(Task, PeriodicPhased) {
  const Task t = Task::periodic_phased("T", Weight(1, 2), 3, 9);
  EXPECT_EQ(t.kind(), TaskKind::kSporadic);
  ASSERT_EQ(t.num_subtasks(), 3);  // releases 3, 5, 7
  EXPECT_EQ(t.subtask(0).release, 3);
  EXPECT_EQ(t.subtask(0).deadline, 5);
  EXPECT_EQ(t.subtask(2).release, 7);
}

TEST(Task, IntraSporadicOffsets) {
  // Fig. 1(b): weight 3/4 with T_3 released one slot late.
  const Task t = Task::intra_sporadic("T", Weight(3, 4), {0, 0, 1}, 3);
  EXPECT_EQ(t.subtask(0).release, 0);
  EXPECT_EQ(t.subtask(1).release, 1);
  EXPECT_EQ(t.subtask(2).release, 3);
  EXPECT_EQ(t.subtask(2).deadline, 5);
}

TEST(Task, IntraSporadicLastOffsetPersists) {
  const Task t = Task::intra_sporadic("T", Weight(1, 2), {0, 2}, 4);
  EXPECT_EQ(t.subtask(2).theta, 2);
  EXPECT_EQ(t.subtask(3).theta, 2);
}

TEST(Task, DecreasingOffsetsRejected) {
  EXPECT_THROW(
      (void)Task::intra_sporadic("T", Weight(1, 2), {2, 1}, 2),
      ContractViolation);
}

TEST(Task, GisSkipsIndices) {
  // Fig. 1(c): T_2 absent, T_3 one slot late.
  const Task t = Task::gis("T", Weight(3, 4),
                           {Task::SubtaskSpec{1, 0, -1},
                            Task::SubtaskSpec{3, 1, -1}});
  ASSERT_EQ(t.num_subtasks(), 2);
  EXPECT_EQ(t.subtask(0).index, 1);
  EXPECT_EQ(t.subtask(1).index, 3);
  EXPECT_EQ(t.subtask(1).release, 3);
  EXPECT_EQ(t.subtask(1).deadline, 5);
}

TEST(Task, GisRejectsNonIncreasingIndices) {
  EXPECT_THROW((void)Task::gis("T", Weight(1, 2),
                               {Task::SubtaskSpec{2, 0, -1},
                                Task::SubtaskSpec{2, 0, -1}}),
               ContractViolation);
}

TEST(Task, EligibilityAboveReleaseRejected) {
  EXPECT_THROW(
      (void)Task::gis("T", Weight(1, 2), {Task::SubtaskSpec{1, 0, 1}}),
      ContractViolation);
}

TEST(Task, EarlyReleaseMakesJobSubtasksEligibleAtJobRelease) {
  const Task t = Task::periodic("T", Weight(3, 4), 8).with_early_release();
  // Job 1 = subtasks 1..3 released 0,1,2; all eligible at 0.
  EXPECT_EQ(t.subtask(0).eligible, 0);
  EXPECT_EQ(t.subtask(1).eligible, 0);
  EXPECT_EQ(t.subtask(2).eligible, 0);
  // Job 2 = subtasks 4..6; eligible at the job release, 4.
  EXPECT_EQ(t.subtask(3).eligible, 4);
  EXPECT_EQ(t.subtask(4).eligible, 4);
  EXPECT_EQ(t.subtask(5).eligible, 4);
  // Releases and deadlines are untouched.
  EXPECT_EQ(t.subtask(1).release, 1);
  EXPECT_EQ(t.subtask(1).deadline, 3);
}

TEST(Task, SubtaskBBitAndGroupDeadlinePopulated) {
  const Task t = Task::periodic("T", Weight(3, 4), 8);
  EXPECT_TRUE(t.subtask(0).bbit);
  EXPECT_TRUE(t.subtask(1).bbit);
  EXPECT_FALSE(t.subtask(2).bbit);
  EXPECT_EQ(t.subtask(0).group_deadline, 4);
  EXPECT_EQ(t.subtask(3).group_deadline, 8);
}

TEST(Task, OffsetShiftsGroupDeadline) {
  const Task t = Task::intra_sporadic("T", Weight(3, 4), {2}, 3);
  EXPECT_EQ(t.subtask(0).group_deadline, 6);  // 2 + 4
}

// -------------------------------------------------------------- task system

TEST(TaskSystem, UtilizationAndFeasibility) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 6));
  tasks.push_back(Task::periodic("B", Weight(1, 2), 6));
  tasks.push_back(Task::periodic("C", Weight(2, 3), 6));
  TaskSystem sys(std::move(tasks), 2);
  EXPECT_EQ(sys.total_utilization(), Rational(5, 3));
  EXPECT_TRUE(sys.feasible());
  EXPECT_EQ(sys.max_deadline(), 6);
  EXPECT_EQ(sys.total_subtasks(), 3 + 3 + 4);
}

TEST(TaskSystem, InfeasibleWhenOverM) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 1), 4));
  tasks.push_back(Task::periodic("B", Weight(1, 1), 4));
  tasks.push_back(Task::periodic("C", Weight(1, 4), 4));
  TaskSystem sys(std::move(tasks), 2);
  EXPECT_FALSE(sys.feasible());
}

TEST(TaskSystem, SubtaskLookupAndBounds) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 4));
  TaskSystem sys(std::move(tasks), 1);
  EXPECT_EQ(sys.subtask(SubtaskRef{0, 1}).release, 2);
  EXPECT_THROW((void)sys.task(1), ContractViolation);
  EXPECT_THROW((void)sys.subtask(SubtaskRef{0, 9}), ContractViolation);
}

TEST(TaskSystem, RequiresAProcessor) {
  EXPECT_THROW(TaskSystem({}, 0), ContractViolation);
}

TEST(TaskSystem, EarlyReleaseTransform) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(2, 4), 8));
  const TaskSystem sys(std::move(tasks), 1);
  const TaskSystem er = sys.with_early_release();
  EXPECT_EQ(er.task(0).subtask(1).eligible, 0);
  EXPECT_EQ(sys.task(0).subtask(1).eligible,
            sys.task(0).subtask(1).release);
}

}  // namespace
}  // namespace pfair
