// Compiled with -DPFAIR_NO_PROF (see tests/CMakeLists.txt): the span
// macro must vanish entirely while the rest of the layer still links,
// and an installed profiler must observe nothing from macro call sites.
#include <gtest/gtest.h>

#include "obs/prof.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

#ifndef PFAIR_NO_PROF
#error "this test must be compiled with -DPFAIR_NO_PROF"
#endif

namespace pfair {
namespace {

TEST(ProfCompiledOut, SpanMacroIsANoOpEvenWhileInstalled) {
  prof::Profiler profiler;
  {
    prof::ProfScope scope(&profiler);
    PFAIR_PROF_SPAN(kSimulate);
    { PFAIR_PROF_SPAN(kCalendarWalk); }
  }
  const prof::ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.spans_recorded, 0u);
  EXPECT_TRUE(snap.phases.empty());
}

TEST(ProfCompiledOut, SchedulingStillWorks) {
  // The library itself was built with spans enabled; only this TU's
  // macro call sites compile out.  A run through the real scheduler
  // proves the header is usable either way.
  auto scenario = figure_scenario_by_name("fig6");
  ASSERT_TRUE(scenario.has_value());
  SfqOptions opts;
  const SlotSchedule sched = schedule_sfq(scenario->system, opts);
  EXPECT_TRUE(sched.complete());
}

}  // namespace
}  // namespace pfair
