// Tests for the task-file parser behind the pfairsim CLI.
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "io/parse.hpp"
#include "sched/sfq_scheduler.hpp"

namespace pfair {
namespace {

TEST(Parse, MinimalFile) {
  const ParsedSystem p = parse_task_string(
      "processors 2\n"
      "task a 1/2\n"
      "task b 1/2\n");
  EXPECT_EQ(p.processors, 2);
  ASSERT_EQ(p.tasks.size(), 2u);
  EXPECT_EQ(p.tasks[0].name, "a");
  EXPECT_EQ(p.tasks[0].weight, Weight(1, 2));
  EXPECT_EQ(p.tasks[0].jobs, -1);
}

TEST(Parse, CommentsAndBlankLines) {
  const ParsedSystem p = parse_task_string(
      "# header comment\n"
      "\n"
      "processors 1   # trailing\n"
      "   task x 3/4  # also trailing\n");
  EXPECT_EQ(p.processors, 1);
  ASSERT_EQ(p.tasks.size(), 1u);
  EXPECT_EQ(p.tasks[0].weight, Weight(3, 4));
}

TEST(Parse, OptionsPhaseAndJobs) {
  const ParsedSystem p = parse_task_string(
      "processors 2\n"
      "horizon 30\n"
      "task a 1/3 phase=4\n"
      "task b 2/5 jobs=3 phase=1\n");
  EXPECT_EQ(p.horizon, 30);
  EXPECT_EQ(p.tasks[0].phase, 4);
  EXPECT_EQ(p.tasks[1].jobs, 3);
  EXPECT_EQ(p.tasks[1].phase, 1);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      (void)parse_task_string(text);
      FAIL() << "expected failure for: " << text;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("processors 2\nbogus line\n", "line 2");
  expect_error("processors 2\ntask a 5/4\n", "outside");
  expect_error("processors 2\ntask a 1/2 color=red\n", "unknown option");
  expect_error("processors 2\ntask a one/2\n", "bad weight");
  expect_error("processors 0\ntask a 1/2\n", "processor count");
  expect_error("task a 1/2\n", "missing 'processors'");
  expect_error("processors 2\n", "no tasks");
}

TEST(Parse, EffectiveHorizonIsTwoHyperperiods) {
  const ParsedSystem p = parse_task_string(
      "processors 1\n"
      "task a 1/4\n"
      "task b 1/6\n");
  EXPECT_EQ(p.effective_horizon(), 24);  // 2 * lcm(4,6)
}

TEST(Parse, BuildProducesSchedulableSystem) {
  const ParsedSystem p = parse_task_string(
      "processors 2\n"
      "task a 1/2\n"
      "task b 1/2\n"
      "task c 2/3 phase=3\n"
      "task d 1/6 jobs=2\n");
  const TaskSystem sys = p.build();
  EXPECT_EQ(sys.processors(), 2);
  EXPECT_EQ(sys.num_tasks(), 4);
  // Finite task d has exactly jobs * e subtasks.
  EXPECT_EQ(sys.task(3).num_subtasks(), 2);
  // Phased task c's first release is at its phase.
  EXPECT_EQ(sys.task(2).subtask(0).release, 3);
  const SlotSchedule sched = schedule_sfq(sys);
  ASSERT_TRUE(sched.complete());
  EXPECT_EQ(measure_tardiness(sys, sched).max_ticks, 0);
}

TEST(Parse, HorizonOverrideRespected) {
  const ParsedSystem p = parse_task_string(
      "processors 1\n"
      "horizon 8\n"
      "task a 1/2\n");
  const TaskSystem sys = p.build();
  EXPECT_EQ(sys.task(0).num_subtasks(), 4);  // releases 0,2,4,6 < 8
}

}  // namespace
}  // namespace pfair
