// Tests for the stepwise DvqSimulator.
#include <gtest/gtest.h>

#include "dvq/dvq_scheduler.hpp"
#include "dvq/dvq_simulator.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(DvqSimulator, MatchesBatchScheduler) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(3);
  cfg.horizon = 16;
  cfg.seed = 21;
  const TaskSystem sys = generate_periodic(cfg);
  const BernoulliYield yields(4, 1, 2, kTick, kQuantum - kTick);

  const DvqSchedule batch = schedule_dvq(sys, yields);
  DvqSimulator sim(sys, yields);
  while (!sim.done() && sim.has_events()) sim.step();
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      ASSERT_EQ(sim.schedule().placement(ref).start,
                batch.placement(ref).start);
      ASSERT_EQ(sim.schedule().placement(ref).proc,
                batch.placement(ref).proc);
    }
  }
}

TEST(DvqSimulator, StepsThroughTheFig2Story) {
  const FigureScenario sc = fig2_scenario(kTick);
  DvqSimulator sim(sc.system, *sc.yields);

  // First event: t = 0, D_1 and E_1 start.
  std::vector<SubtaskRef> s0 = sim.step();
  EXPECT_EQ(sim.now(), Time::slots(0));
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_EQ(s0[0], (SubtaskRef{3, 0}));
  EXPECT_EQ(s0[1], (SubtaskRef{4, 0}));
  EXPECT_TRUE(sim.idle_processors().empty());

  // t = 1: F_1 and A_1.
  const std::vector<SubtaskRef> s1 = sim.step();
  EXPECT_EQ(sim.now(), Time::slots(1));
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0], (SubtaskRef{5, 0}));
  EXPECT_EQ(s1[1], (SubtaskRef{0, 0}));

  // t = 2 - delta: the early yields free both processors; B_1, C_1 grab
  // them — the DVQ hallmark, observed mid-run.
  const std::vector<SubtaskRef> s2 = sim.step();
  EXPECT_EQ(sim.now(), Time::slots(2) - kTick);
  ASSERT_EQ(s2.size(), 2u);
  EXPECT_EQ(s2[0], (SubtaskRef{1, 0}));
  EXPECT_EQ(s2[1], (SubtaskRef{2, 0}));

  // t = 2: D_2/E_2/F_2 become eligible but no processor is free: the
  // step processes the eligibility event and starts nothing.
  const std::vector<SubtaskRef> s3 = sim.step();
  EXPECT_EQ(sim.now(), Time::slots(2));
  EXPECT_TRUE(s3.empty());
  EXPECT_TRUE(sim.idle_processors().empty());

  while (!sim.done() && sim.has_events()) sim.step();
  EXPECT_TRUE(sim.done());
}

TEST(DvqSimulator, RunUntilStopsAtLimit) {
  const FigureScenario sc = fig2_scenario(kTick);
  DvqSimulator sim(sc.system, *sc.yields);
  sim.run_until(Time::slots(2));
  // Events at or past 2 are not processed: only slots 0, 1 and the
  // 2 - delta batch ran.
  EXPECT_LT(sim.now(), Time::slots(2));
  EXPECT_FALSE(sim.done());
}

}  // namespace
}  // namespace pfair
