// Edge-case and contract tests: API misuse, empty/degenerate inputs,
// clipping paths — the defensive surface of the library.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/tardiness.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "io/render.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

// ------------------------------------------------------------- schedules

TEST(EdgeCases, DoublePlacementRejected) {
  const TaskSystem sys = fig1_periodic();
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  EXPECT_THROW(sched.place(SubtaskRef{0, 0}, 1, 0), ContractViolation);
  EXPECT_THROW(sched.place(SubtaskRef{0, 1}, -1, 0), ContractViolation);
  EXPECT_THROW((void)sched.placement(SubtaskRef{0, 99}), ContractViolation);
  EXPECT_THROW((void)sched.placement(SubtaskRef{7, 0}), ContractViolation);
}

TEST(EdgeCases, CompletionOfUnscheduledRejected) {
  const TaskSystem sys = fig1_periodic();
  const SlotSchedule sched(sys);
  EXPECT_THROW((void)sched.completion_slot(SubtaskRef{0, 0}),
               ContractViolation);
  EXPECT_THROW(
      (void)subtask_tardiness_ticks(sys, DvqSchedule(sys), SubtaskRef{0, 0}),
      ContractViolation);
}

TEST(EdgeCases, DvqPlacementContracts) {
  const TaskSystem sys = fig1_periodic();
  DvqSchedule sched(sys);
  EXPECT_THROW(sched.place(SubtaskRef{0, 0}, Time::slots(0), Time(), 0),
               ContractViolation);  // zero cost
  EXPECT_THROW(sched.place(SubtaskRef{0, 0}, Time::slots(0),
                           kQuantum + kTick, 0),
               ContractViolation);  // cost > 1
  EXPECT_THROW(sched.place(SubtaskRef{0, 0}, Time::slots(0), kQuantum, 5),
               ContractViolation);  // bad processor (M = 1)
  sched.place(SubtaskRef{0, 0}, Time::slots(0), kQuantum, 0);
  EXPECT_THROW(sched.place(SubtaskRef{0, 0}, Time::slots(1), kQuantum, 0),
               ContractViolation);  // double placement
}

// ------------------------------------------------------------ schedulers

TEST(EdgeCases, EmptyTaskSystemSchedulesTrivially) {
  const TaskSystem sys({}, 2);
  const SlotSchedule sched = schedule_sfq(sys);
  EXPECT_TRUE(sched.complete());
  EXPECT_EQ(sched.horizon(), 0);
  const FullQuantumYield yields;
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  EXPECT_TRUE(dvq.complete());
  EXPECT_EQ(measure_tardiness(sys, dvq).total_subtasks, 0);
}

TEST(EdgeCases, TaskWithNoSubtasks) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("empty", Weight(1, 8), 0));
  tasks.push_back(Task::periodic("real", Weight(1, 2), 4));
  const TaskSystem sys(std::move(tasks), 1);
  EXPECT_EQ(sys.task(0).num_subtasks(), 0);
  EXPECT_EQ(sys.task(0).max_deadline(), 0);
  const SlotSchedule sched = schedule_sfq(sys);
  EXPECT_TRUE(sched.complete());
}

TEST(EdgeCases, MoreProcessorsThanWork) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 4), 8));
  const TaskSystem sys(std::move(tasks), 16);
  const SlotSchedule sched = schedule_sfq(sys);
  EXPECT_TRUE(sched.complete());
  EXPECT_EQ(measure_tardiness(sys, sched).max_ticks, 0);
}

// --------------------------------------------------------------- yields

TEST(EdgeCases, YieldModelContracts) {
  EXPECT_THROW((void)FixedYield(kQuantum), ContractViolation);
  EXPECT_THROW((void)BernoulliYield(1, 3, 2, kTick, kQuantum),
               ContractViolation);  // p > 1
  EXPECT_THROW((void)BernoulliYield(1, 1, 2, kQuantum, kTick),
               ContractViolation);  // min > max
  ScriptedYield s;
  EXPECT_THROW(s.set(SubtaskRef{0, 0}, Time()), ContractViolation);
}

TEST(EdgeCases, CheckedCostCatchesBadModels) {
  // A model returning 0 must be caught at the engine boundary.
  class BadModel final : public YieldModel {
    Time cost(const TaskSystem&, const SubtaskRef&) const override {
      return Time();
    }
  };
  const TaskSystem sys = fig1_periodic();
  const BadModel bad;
  EXPECT_THROW((void)schedule_dvq(sys, bad), ContractViolation);
}

// -------------------------------------------------------------- rendering

TEST(EdgeCases, RenderClippingPaths) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys);
  RenderOptions opts;
  opts.max_slots = 3;
  const std::string out = render_slot_schedule(sys, sched, opts);
  // Row width = 3 slots between the pipes.
  const auto pipe = out.find('|');
  ASSERT_NE(pipe, std::string::npos);
  EXPECT_EQ(out.find('|', pipe + 1) - pipe - 1, 3u);

  const FullQuantumYield yields;
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  RenderOptions dopts;
  dopts.max_slots = 2;
  dopts.chars_per_slot = 4;
  const std::string dout = render_dvq_schedule(sys, dvq, dopts);
  EXPECT_NE(dout.find("P0"), std::string::npos);
  EXPECT_THROW((void)render_dvq_schedule(sys, dvq, {true, 1, 0}),
               ContractViolation);  // chars_per_slot < 2
}

TEST(EdgeCases, SvgClipping) {
  const TaskSystem sys = fig6_system();
  SvgOptions opts;
  opts.max_slots = 2;
  opts.show_windows = false;
  const std::string svg =
      render_slot_schedule_svg(sys, schedule_sfq(sys), opts);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.find("stroke-dasharray"), std::string::npos);  // no windows
}

// ------------------------------------------------------------------ table

TEST(EdgeCases, TableWithoutHeader) {
  TextTable t;
  t.row({"a", "bb"});
  t.row({"ccc", "d"});
  const std::string out = t.str();
  EXPECT_EQ(out.find("---"), std::string::npos);  // no separator
  EXPECT_EQ(t.rows(), 2u);
}

// ------------------------------------------------------------- summaries

TEST(EdgeCases, SummaryStringsMentionEssentials) {
  const TaskSystem sys = fig6_system();
  const std::string s = sys.summary();
  EXPECT_NE(s.find("M=2"), std::string::npos);
  EXPECT_NE(s.find("util=2"), std::string::npos);
  std::ostringstream os;
  os << SubtaskRef{3, 1};
  EXPECT_EQ(os.str(), "(task 3, seq 1)");
}

}  // namespace
}  // namespace pfair
