// Tests for Sec. 3.2: Aligned/Olapped/Free classification (Fig. 4), the
// S_B construction and Lemmas 3-5, plus the Lemma 4 tardiness accounting.
#include <gtest/gtest.h>

#include "analysis/sb_construction.hpp"
#include "analysis/tardiness.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

DvqPlacement placement_at(Time start, Time cost) {
  DvqPlacement p;
  p.start = start;
  p.cost = cost;
  p.proc = 0;
  p.placed = true;
  return p;
}

TEST(ChargedFree, ClassifyPlacementCases) {
  // Aligned: starts on a boundary.
  EXPECT_EQ(classify_placement(placement_at(Time::slots(3), kQuantum)),
            SubtaskClass::kAligned);
  EXPECT_EQ(classify_placement(
                placement_at(Time::slots(3), Time::ticks(100))),
            SubtaskClass::kAligned);
  // Olapped: starts mid-slot, straddles the next boundary, ends mid-slot.
  EXPECT_EQ(classify_placement(placement_at(
                Time::slots_frac(3, 1, 2), kQuantum)),
            SubtaskClass::kOlapped);
  // Free: starts and ends strictly inside one slot.
  EXPECT_EQ(classify_placement(placement_at(Time::slots_frac(3, 1, 4),
                                            Time::ticks(1000))),
            SubtaskClass::kFree);
  // Completing exactly on the next boundary is Free, not Olapped (the
  // subtask is not "in the middle of execution at a boundary").
  EXPECT_EQ(classify_placement(placement_at(Time::slots_frac(3, 1, 2),
                                            Time::ticks(kTicksPerSlot / 2))),
            SubtaskClass::kFree);
}

TEST(ChargedFree, FullQuantaAreAllAligned) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.horizon = 12;
  cfg.seed = 6;
  const TaskSystem sys = generate_periodic(cfg);
  const FullQuantumYield yields;
  const DvqSchedule sched = schedule_dvq(sys, yields);
  const Classification cls = classify(sys, sched);
  EXPECT_EQ(cls.aligned, sys.total_subtasks());
  EXPECT_EQ(cls.olapped, 0);
  EXPECT_EQ(cls.free, 0);
  EXPECT_EQ(cls.unplaced, 0);
}

TEST(ChargedFree, Fig2ScenarioHasOlappedSubtasks) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  const Classification cls = classify(sc.system, sched);
  // B_1 and C_1 start at 2 - delta and run a full quantum: Olapped.
  EXPECT_GE(cls.olapped, 2);
  EXPECT_TRUE(cls.charged(SubtaskRef{1, 0}));
  EXPECT_EQ(cls.of(SubtaskRef{1, 0}), SubtaskClass::kOlapped);
  // A_1 started on a boundary: Aligned.
  EXPECT_EQ(cls.of(SubtaskRef{0, 0}), SubtaskClass::kAligned);
}

TEST(SbConstruction, Fig2StructureAndLemma3) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule dvq = schedule_dvq(sc.system, *sc.yields);
  ASSERT_TRUE(dvq.complete());
  const SbConstruction sbc = build_sb(sc.system, dvq);
  EXPECT_TRUE(sbc.lemma3_holds);
  EXPECT_TRUE(sbc.structure_valid) << sbc.failure;
  // tau' contains exactly the charged subtasks.
  EXPECT_EQ(sbc.charged_system.total_subtasks(),
            sbc.classes.aligned + sbc.classes.olapped);
  // Every S_B start is integral (it is an SFQ-style schedule).
  for (std::int32_t k = 0; k < sbc.charged_system.num_tasks(); ++k) {
    for (std::int32_t s = 0;
         s < sbc.charged_system.task(k).num_subtasks(); ++s) {
      const DvqPlacement& p = sbc.sb.placement(SubtaskRef{k, s});
      ASSERT_TRUE(p.placed);
      EXPECT_TRUE(p.start.is_slot_boundary());
    }
  }
}

TEST(SbConstruction, OlappedSubtasksArePostponedToTheirBoundary) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule dvq = schedule_dvq(sc.system, *sc.yields);
  const SbConstruction sbc = build_sb(sc.system, dvq);
  // B_1 started at 2 - delta in S_DQ; in S_B it starts at 2.
  const std::int32_t ns = sbc.new_seq[1][0];
  ASSERT_GE(ns, 0);
  EXPECT_EQ(sbc.sb.placement(SubtaskRef{1, ns}).start, Time::slots(2));
  // Its cost is preserved.
  EXPECT_EQ(sbc.sb.placement(SubtaskRef{1, ns}).cost,
            dvq.placement(SubtaskRef{1, 0}).cost);
}

TEST(SbConstruction, Lemma4HoldsOnFig2) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule dvq = schedule_dvq(sc.system, *sc.yields);
  const SbConstruction sbc = build_sb(sc.system, dvq);
  const Lemma4Report rep = check_lemma4(sc.system, dvq, sbc);
  EXPECT_TRUE(rep.holds())
      << (rep.details.empty() ? "" : rep.details.front());
  EXPECT_EQ(rep.checked, sc.system.total_subtasks());
}

TEST(SbConstruction, RandomizedLemmas) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed * 13, 1, 2, Time::ticks(1000),
                                kQuantum - kTick);
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(dvq.complete()) << "seed " << seed;
    const SbConstruction sbc = build_sb(sys, dvq);
    EXPECT_TRUE(sbc.lemma3_holds) << "seed " << seed;
    EXPECT_TRUE(sbc.structure_valid) << "seed " << seed << ": "
                                     << sbc.failure;
    const Lemma4Report rep = check_lemma4(sys, dvq, sbc);
    EXPECT_TRUE(rep.holds())
        << "seed " << seed << ": "
        << (rep.details.empty() ? "" : rep.details.front());
  }
}

TEST(SbConstruction, Theorem1TardinessChain) {
  // Theorem 1: tardiness of the DVQ run is at most the ceiling of the
  // tardiness of the constructed S_B run of tau'.
  for (std::uint64_t seed = 30; seed <= 45; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const BernoulliYield yields(seed, 2, 3, kQuantum - kTick,
                                kQuantum - kTick);
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(dvq.complete());
    const SbConstruction sbc = build_sb(sys, dvq);
    const std::int64_t dvq_tard = measure_tardiness(sys, dvq).max_ticks;
    const std::int64_t sb_tard =
        measure_tardiness(sbc.charged_system, sbc.sb).max_ticks;
    const std::int64_t sb_ceil =
        (sb_tard + kTicksPerSlot - 1) / kTicksPerSlot * kTicksPerSlot;
    EXPECT_LE(dvq_tard, sb_ceil) << "seed " << seed;
  }
}

TEST(SbConstruction, RequiresCompleteSchedule) {
  const TaskSystem sys = fig6_system();
  const DvqSchedule empty(sys);
  EXPECT_THROW((void)build_sb(sys, empty), ContractViolation);
}

TEST(ChargedFree, Names) {
  EXPECT_STREQ(to_string(SubtaskClass::kAligned), "Aligned");
  EXPECT_STREQ(to_string(SubtaskClass::kOlapped), "Olapped");
  EXPECT_STREQ(to_string(SubtaskClass::kFree), "Free");
}

}  // namespace
}  // namespace pfair
