// Tests for the workload generators and the paper-figure scenarios.
#include <gtest/gtest.h>

#include "analysis/blocking.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Generator, HitsUtilizationTargetExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    EXPECT_EQ(sys.total_utilization(), Rational(4)) << "seed " << seed;
    EXPECT_TRUE(sys.feasible());
  }
}

TEST(Generator, FractionalTargets) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(7, 3);
  cfg.seed = 2;
  const TaskSystem sys = generate_periodic(cfg);
  EXPECT_EQ(sys.total_utilization(), Rational(7, 3));
}

TEST(Generator, WeightClassesRespected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.seed = seed;

    cfg.weights = WeightClass::kLight;
    const TaskSystem light = generate_periodic(cfg);
    // All but the final exact filler must be light.
    for (std::int64_t k = 0; k + 1 < light.num_tasks(); ++k) {
      EXPECT_TRUE(light.task(k).weight().light()) << "seed " << seed;
    }

    cfg.weights = WeightClass::kHeavy;
    const TaskSystem heavy = generate_periodic(cfg);
    for (std::int64_t k = 0; k + 1 < heavy.num_tasks(); ++k) {
      EXPECT_TRUE(heavy.task(k).weight().heavy()) << "seed " << seed;
    }
  }
}

TEST(Generator, DeterministicBySeed) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.seed = 77;
  const TaskSystem a = generate_periodic(cfg);
  const TaskSystem b = generate_periodic(cfg);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::int64_t k = 0; k < a.num_tasks(); ++k) {
    EXPECT_EQ(a.task(k).weight(), b.task(k).weight());
  }
}

TEST(Generator, RejectsBadTargets) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(3);
  EXPECT_THROW((void)generate_periodic(cfg), ContractViolation);
  cfg.target_util = Rational(0);
  EXPECT_THROW((void)generate_periodic(cfg), ContractViolation);
}

TEST(Generator, IsJitterKeepsWeightsAndCounts) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.seed = 5;
  const TaskSystem base = generate_periodic(cfg);
  const TaskSystem jit = add_is_jitter(base, 3, 1, 2, 99);
  ASSERT_EQ(jit.num_tasks(), base.num_tasks());
  EXPECT_EQ(jit.total_utilization(), base.total_utilization());
  bool any_shift = false;
  for (std::int64_t k = 0; k < jit.num_tasks(); ++k) {
    EXPECT_EQ(jit.task(k).num_subtasks(), base.task(k).num_subtasks());
    EXPECT_EQ(jit.task(k).kind(), TaskKind::kIntraSporadic);
    for (std::int64_t s = 0; s < jit.task(k).num_subtasks(); ++s) {
      const std::int64_t theta = jit.task(k).subtask(s).theta;
      EXPECT_GE(theta, base.task(k).subtask(s).theta);
      if (theta > 0) any_shift = true;
    }
  }
  EXPECT_TRUE(any_shift);
}

TEST(Generator, DropSubtasksRemovesSome) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.seed = 8;
  const TaskSystem base = generate_periodic(cfg);
  const TaskSystem gis = drop_subtasks(base, 1, 3, 123);
  EXPECT_LT(gis.total_subtasks(), base.total_subtasks());
  for (std::int64_t k = 0; k < gis.num_tasks(); ++k) {
    EXPECT_GE(gis.task(k).num_subtasks(), 1);
    EXPECT_EQ(gis.task(k).kind(), TaskKind::kGeneralizedIS);
  }
}

// ------------------------------------------------------------ paper figures

TEST(Figures, Fig1WindowsMatchThePaper) {
  const TaskSystem periodic = fig1_periodic();
  const Task& t = periodic.task(0);
  ASSERT_EQ(t.num_subtasks(), 6);
  EXPECT_EQ(t.subtask(0).release, 0);
  EXPECT_EQ(t.subtask(0).deadline, 2);
  EXPECT_EQ(t.subtask(2).release, 2);
  EXPECT_EQ(t.subtask(2).deadline, 4);

  const TaskSystem is = fig1_intra_sporadic();
  EXPECT_EQ(is.task(0).subtask(2).release, 3);   // one slot late
  EXPECT_EQ(is.task(0).subtask(2).deadline, 5);

  const TaskSystem gis = fig1_gis();
  ASSERT_EQ(gis.task(0).num_subtasks(), 2);      // T_2 absent
  EXPECT_EQ(gis.task(0).subtask(1).index, 3);
  EXPECT_EQ(gis.task(0).subtask(1).release, 3);
}

TEST(Figures, Fig2SystemShape) {
  const FigureScenario sc = fig2_scenario();
  EXPECT_EQ(sc.system.num_tasks(), 6);
  EXPECT_EQ(sc.system.processors(), 2);
  EXPECT_EQ(sc.system.total_utilization(), Rational(2));
  // The script touches exactly A_1 and F_1.
  EXPECT_LT(sc.yields->cost(sc.system, SubtaskRef{0, 0}), kQuantum);
  EXPECT_LT(sc.yields->cost(sc.system, SubtaskRef{5, 0}), kQuantum);
  EXPECT_EQ(sc.yields->cost(sc.system, SubtaskRef{3, 0}), kQuantum);
}

TEST(Figures, Fig3ScenarioExhibitsPredecessorBlocking) {
  const FigureScenario sc = fig3_scenario();
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  ASSERT_TRUE(sched.complete());
  const BlockingReport rep = analyze_blocking(sc.system, sched);
  EXPECT_GT(rep.predecessor_blocked, 0);
  EXPECT_TRUE(rep.property_pb_holds())
      << (rep.details.empty() ? "" : rep.details.front());
}

TEST(Figures, DeltaValidation) {
  EXPECT_THROW((void)fig2_scenario(Time()), ContractViolation);
  EXPECT_THROW((void)fig2_scenario(kQuantum), ContractViolation);
}

}  // namespace
}  // namespace pfair
