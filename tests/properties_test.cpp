// Cross-cutting property tests: invariants that tie several modules
// together, checked over randomized workloads.
#include <gtest/gtest.h>

#include <set>

#include "analysis/lag.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/decision_sink.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "io/svg.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TaskSystem full_system(std::uint64_t seed, int m, std::int64_t horizon) {
  GeneratorConfig cfg;
  cfg.processors = m;
  cfg.target_util = Rational(m);
  cfg.horizon = horizon;
  cfg.seed = seed;
  return generate_periodic(cfg);
}

TEST(Properties, SlotCapacityConservation) {
  // Fully utilized synchronous periodic system: within [0, horizon),
  // every slot carries exactly M subtasks and each task receives exactly
  // floor(w*t) or ceil(w*t) quanta by every boundary t.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::int64_t h = 20;
    const TaskSystem sys = full_system(seed, 3, h);
    const SlotSchedule sched = schedule_sfq(sys);
    ASSERT_TRUE(sched.complete());
    std::vector<int> per_slot(static_cast<std::size_t>(h), 0);
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        const std::int64_t slot = sched.placement(SubtaskRef{k, s}).slot;
        if (slot < h) ++per_slot[static_cast<std::size_t>(slot)];
      }
    }
    for (std::int64_t t = 0; t < h; ++t) {
      EXPECT_EQ(per_slot[static_cast<std::size_t>(t)], 3)
          << "seed " << seed << " slot " << t;
    }
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      const Rational w = sys.task(k).weight().value();
      for (std::int64_t t = 0; t <= h; t += 5) {
        std::int64_t alloc = 0;
        for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
          if (sched.placement(
                  SubtaskRef{static_cast<std::int32_t>(k), s}).slot < t) {
            ++alloc;
          }
        }
        const Rational fluid = w * Rational(t);
        EXPECT_GE(alloc, fluid.floor()) << "seed " << seed;
        EXPECT_LE(alloc, fluid.ceil()) << "seed " << seed;
      }
    }
  }
}

TEST(Properties, ValidityImpliesPfairLagAndViceVersa) {
  // For synchronous periodic systems, window containment and the
  // -1 < lag < 1 criterion coincide — two independent implementations
  // must agree on random valid AND corrupted schedules.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::int64_t h = 16;
    const TaskSystem sys = full_system(seed, 2, h);
    const SlotSchedule good = schedule_sfq(sys);
    ASSERT_TRUE(check_slot_schedule(sys, good).valid());
    EXPECT_TRUE(is_pfair(sys, good, h));
  }
}

TEST(Properties, DvqCompletionOrderRespectsPriorityAtDecisions) {
  // At every logged decision instant, the chosen set never skips a
  // strictly higher-priority ready subtask (work-conserving greedy).
  const TaskSystem sys = full_system(9, 3, 14);
  const BernoulliYield yields(3, 1, 2, kTick, kQuantum - kTick);
  DvqDecisionSink decisions;
  DvqOptions opts;
  opts.trace = &decisions;
  const DvqSchedule sched = schedule_dvq(sys, yields, opts);
  const PriorityOrder order(sys, Policy::kPd2);
  for (const DvqDecision& d : decisions.decisions()) {
    for (const SubtaskRef& waiting : d.left_ready) {
      for (const SubtaskRef& chosen : d.started) {
        EXPECT_FALSE(order.strictly_higher(waiting, chosen))
            << "at " << d.at << ": " << waiting << " left while " << chosen
            << " ran";
      }
    }
  }
}

TEST(Properties, TardinessSummaryConsistentWithValues) {
  const FigureScenario sc = fig2_scenario(kTick);
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  const TardinessSummary sum = measure_tardiness(sc.system, sched);
  const std::vector<std::int64_t> vals =
      tardiness_values_ticks(sc.system, sched);
  std::int64_t max = 0, total = 0, late = 0;
  for (const std::int64_t v : vals) {
    max = std::max(max, v);
    total += v;
    if (v > 0) ++late;
  }
  EXPECT_EQ(sum.max_ticks, max);
  EXPECT_EQ(sum.total_ticks, total);
  EXPECT_EQ(sum.late_subtasks, late);
  EXPECT_EQ(static_cast<std::int64_t>(vals.size()), sum.total_subtasks);
}

TEST(Properties, EveryPolicyProducesDistinctButValidSchedules) {
  // PF/PD/PD2 may differ in placements yet all be valid; collect the
  // distinct schedules to confirm the tie-breaks actually matter.
  const TaskSystem sys = full_system(11, 3, 18);
  std::set<std::string> fingerprints;
  for (const Policy p : {Policy::kPf, Policy::kPd, Policy::kPd2}) {
    SfqOptions opts;
    opts.policy = p;
    const SlotSchedule sched = schedule_sfq(sys, opts);
    ASSERT_TRUE(check_slot_schedule(sys, sched).valid()) << to_string(p);
    std::string fp;
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        fp += std::to_string(sched.placement(SubtaskRef{k, s}).slot) + ",";
      }
    }
    fingerprints.insert(fp);
  }
  // At least the schedules exist and are valid; distinctness is workload
  // dependent — record it without requiring it.
  EXPECT_GE(fingerprints.size(), 1u);
}

// ------------------------------------------------------------------- SVG

TEST(Svg, SlotScheduleStructure) {
  const TaskSystem sys = fig6_system();
  const std::string svg = render_slot_schedule_svg(sys, schedule_sfq(sys));
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One label per task.
  for (const Task& t : sys.tasks()) {
    EXPECT_NE(svg.find(">" + t.name() + "<"), std::string::npos);
  }
  // 12 subtask boxes (6 tasks x materialized subtasks) => many rects.
  const auto rects = std::count(svg.begin(), svg.end(), '<');
  EXPECT_GT(rects, 20);
}

TEST(Svg, DvqTardySubtaskHighlighted) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  const std::string svg = render_dvq_schedule_svg(sc.system, sched);
  // F_2 misses: the tardy stroke color must appear exactly once.
  std::size_t count = 0, pos = 0;
  while ((pos = svg.find("#d62728", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(svg.find("P0"), std::string::npos);
  EXPECT_NE(svg.find("P1"), std::string::npos);
}

}  // namespace
}  // namespace pfair
