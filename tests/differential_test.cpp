// Differential tests: fast implementations cross-checked against naive
// brute-force re-implementations on randomized inputs.
#include <gtest/gtest.h>

#include "analysis/lag.hpp"
#include "analysis/switching.hpp"
#include "core/rng.hpp"
#include "sched/sfq_scheduler.hpp"
#include "tasks/group_deadline.hpp"
#include "tasks/windows.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TEST(Differential, LagRangeMatchesPointwiseLag) {
  // lag_range uses an incremental recurrence; lag() recounts from
  // scratch.  They must agree at every boundary.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 14;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sched = schedule_sfq(sys);
    Rational lo, hi;
    bool first = true;
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int64_t t = 0; t <= cfg.horizon; ++t) {
        const Rational l = lag(sys, sched, k, t);
        if (first || l < lo) lo = l;
        if (first || l > hi) hi = l;
        first = false;
      }
    }
    const LagRange r = lag_range(sys, sched, cfg.horizon);
    EXPECT_EQ(r.min, lo) << "seed " << seed;
    EXPECT_EQ(r.max, hi) << "seed " << seed;
  }
}

TEST(Differential, WindowFormulasAgainstFluidDefinition) {
  // r(T_i) is the last boundary t with fluid allocation w*t <= i-1, and
  // d(T_i) the first boundary with w*t >= i — re-derive both from the
  // fluid curve directly.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t p = rng.uniform(2, 30);
    const std::int64_t e = rng.uniform(1, p);
    const Weight w(e, p);
    const std::int64_t i = rng.uniform(1, 3 * p);
    const Rational wt = w.value();
    // Brute force over boundaries.
    std::int64_t r = 0;
    while (wt * Rational(r + 1) <= Rational(i - 1)) ++r;
    std::int64_t d = 0;
    while (wt * Rational(d) < Rational(i)) ++d;
    EXPECT_EQ(pseudo_release(w, i), r) << w.str() << " i=" << i;
    EXPECT_EQ(pseudo_deadline(w, i), d) << w.str() << " i=" << i;
  }
}

TEST(Differential, GroupDeadlineAgainstCascadeSimulation) {
  // Simulate the cascade directly: starting from T_i forced to its last
  // slot, each successor whose window loses its first slot is forced
  // onward; the group deadline is where the chain stops needing slots.
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t p = rng.uniform(2, 20);
    const std::int64_t e = rng.uniform((p + 1) / 2, p);  // heavy
    const Weight w(e, p);
    const std::int64_t i = rng.uniform(1, 2 * p);
    // Walk: subtask j occupies slot d(j)-1; successor j+1 is forced iff
    // its window minus that slot has length < 2... the chain ends after
    // the first j with b=0 (windows disjoint) or |w(j+1)| >= 3 (slack).
    std::int64_t j = i;
    while (b_bit(w, j) && window_length(w, j + 1) < 3) ++j;
    EXPECT_EQ(group_deadline(w, i), pseudo_deadline(w, j))
        << w.str() << " i=" << i;
  }
}

TEST(Differential, SwitchingStatsAgainstNaiveRecount) {
  GeneratorConfig cfg;
  cfg.processors = 3;
  cfg.target_util = Rational(3);
  cfg.horizon = 16;
  cfg.seed = 5;
  const TaskSystem sys = generate_periodic(cfg);
  const SlotSchedule sched = schedule_sfq(sys);
  const SwitchingStats st = measure_switching(sys, sched);

  // Naive recount of migrations and job breaks.
  std::int64_t migrations = 0, breaks = 0, subtasks = 0;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    SlotPlacement prev;
    bool has_prev = false;
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SlotPlacement p = sched.placement(SubtaskRef{k, s});
      ++subtasks;
      if (has_prev) {
        if (p.proc != prev.proc) ++migrations;
        if (p.slot != prev.slot + 1) ++breaks;
      }
      prev = p;
      has_prev = true;
    }
  }
  EXPECT_EQ(st.subtasks, subtasks);
  EXPECT_EQ(st.migrations, migrations);
  EXPECT_EQ(st.job_breaks, breaks);

  // Naive context-switch recount: per slot per processor occupant list.
  std::int64_t switches = 0;
  for (int pi = 0; pi < 3; ++pi) {
    std::int32_t occupant = -1;
    for (std::int64_t t = 0; t < sched.horizon(); ++t) {
      for (const SubtaskRef& ref : sched.slot_contents(t)) {
        if (sched.placement(ref).proc != pi) continue;
        if (occupant != -1 && occupant != ref.task) ++switches;
        occupant = ref.task;
      }
    }
  }
  EXPECT_EQ(st.context_switches, switches);
}

TEST(Differential, SubtasksBeforeAgainstLinearScan) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t p = rng.uniform(1, 24);
    const std::int64_t e = rng.uniform(1, p);
    const Weight w(e, p);
    const std::int64_t h = rng.uniform(0, 60);
    std::int64_t count = 0;
    for (std::int64_t i = 1; pseudo_release(w, i) < h; ++i) ++count;
    EXPECT_EQ(subtasks_before(w, h), count)
        << w.str() << " horizon=" << h;
  }
}

}  // namespace
}  // namespace pfair
