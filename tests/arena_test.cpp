// Bump-arena contract: deterministic reuse after reset(), geometric
// growth with stable statistics, and — under AddressSanitizer — heap
// poisoning of recycled memory so use-after-reset faults instead of
// silently aliasing the next run's state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/arena.hpp"

namespace pfair {
namespace {

TEST(Arena, AllocRespectsAlignment) {
  Arena arena(1024);
  for (const std::size_t align : {1u, 2u, 8u, 16u, 32u, 64u}) {
    void* p = arena.alloc(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, ResetRewindsAndReusesTheSameMemory) {
  Arena arena(1024);
  void* a0 = arena.alloc(100, 8);
  void* a1 = arena.alloc(200, 64);
  const std::size_t used = arena.used_bytes();
  const std::size_t cap = arena.capacity_bytes();
  EXPECT_EQ(used, 300u);
  EXPECT_EQ(arena.high_water_bytes(), used);

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reset_count(), 1u);
  // Capacity is retained — reset frees nothing.
  EXPECT_EQ(arena.capacity_bytes(), cap);
  // The same allocation sequence lands on the same addresses: the bump
  // pointer is deterministic, which is what makes steady-state runs
  // reproducible down to cache behavior.
  EXPECT_EQ(arena.alloc(100, 8), a0);
  EXPECT_EQ(arena.alloc(200, 64), a1);
  EXPECT_EQ(arena.used_bytes(), used);
  EXPECT_EQ(arena.high_water_bytes(), used);
}

TEST(Arena, GrowsGeometricallyAndServesOversizedRequests) {
  Arena arena(1024);
  (void)arena.alloc(1, 1);
  EXPECT_EQ(arena.block_count(), 1u);
  // An allocation that can never fit the current block gets a block of
  // its own rather than faulting or returning null.
  void* big = arena.alloc(1 << 20, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.block_count(), 2u);
  EXPECT_GE(arena.capacity_bytes(), (1u << 20));
  // After a reset the whole capacity is recycled: the same sequence
  // fits without growing further.
  const std::size_t cap = arena.capacity_bytes();
  arena.reset();
  (void)arena.alloc(1, 1);
  (void)arena.alloc(1 << 20, 64);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(Arena, AllocArrayIsTypedAndAligned) {
  Arena arena;
  std::uint64_t* p = arena.alloc_array<std::uint64_t>(16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t), 0u);
  for (int i = 0; i < 16; ++i) p[i] = static_cast<std::uint64_t>(i);
  EXPECT_EQ(p[15], 15u);
}

TEST(ArenaVector, HeapModeGrowsAndKeepsContents) {
  ArenaVector<std::uint64_t> v;
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 3);
  v.pop_back();
  EXPECT_EQ(v.size(), 99u);
  EXPECT_EQ(v.back(), 98u * 3);
}

TEST(ArenaVector, RaisedAlignmentHoldsInBothModes) {
  // kAlign = 64 is what keeps the ready heap's 8-wide child groups on
  // one cache line; it must hold for heap storage and arena storage.
  ArenaVector<std::uint64_t, 64> heap_backed;
  heap_backed.resize(200);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(heap_backed.data()) % 64, 0u);

  Arena arena;
  ArenaVector<std::uint64_t, 64> arena_backed(&arena);
  arena_backed.resize(200);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena_backed.data()) % 64, 0u);
}

TEST(ArenaVector, ArenaModeReusesCapacityAcrossRebind) {
  Arena arena;
  ArenaVector<std::uint64_t> v(&arena);
  v.resize(1000);
  const std::size_t cap = arena.capacity_bytes();
  // A steady-state cycle: reset the arena, rebind, same-size resize.
  // No new system memory may be requested.
  arena.reset();
  v.rebind(&arena);
  v.resize(1000);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(ArenaVector, MoveTransfersStorage) {
  ArenaVector<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 20; ++i) a.push_back(i);
  const std::uint64_t* data = a.data();
  ArenaVector<std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): pinned state
}

#if defined(PFAIR_ASAN)
// Under ASan, reset() re-poisons every recycled byte: reading memory
// handed out before the reset must trap, and re-allocating it must
// unpoison exactly the newly served range.  This is the teeth behind
// "reset does not free": stale pointers into the previous run's state
// become loud instead of silently reading the next run's data.
TEST(Arena, ResetPoisonsRecycledMemory) {
  Arena arena(1024);
  auto* p = static_cast<unsigned char*>(arena.alloc(64, 8));
  std::memset(p, 0xab, 64);
  EXPECT_EQ(__asan_address_is_poisoned(p), 0);
  arena.reset();
  EXPECT_NE(__asan_address_is_poisoned(p), 0);
  EXPECT_NE(__asan_address_is_poisoned(p + 63), 0);
  // Re-allocating the range unpoisons it again.
  auto* q = static_cast<unsigned char*>(arena.alloc(64, 8));
  EXPECT_EQ(q, p);
  EXPECT_EQ(__asan_address_is_poisoned(q), 0);
  EXPECT_EQ(__asan_address_is_poisoned(q + 63), 0);
}

TEST(Arena, FreshBlockTailStaysPoisonedUntilAllocated) {
  Arena arena(4096);
  auto* p = static_cast<unsigned char*>(arena.alloc(16, 8));
  EXPECT_EQ(__asan_address_is_poisoned(p), 0);
  // One byte past the served range is still poisoned block slack.
  EXPECT_NE(__asan_address_is_poisoned(p + 16), 0);
}
#endif  // PFAIR_ASAN

}  // namespace
}  // namespace pfair
