// Tests for the stepwise SfqSimulator and the eligibility-advance
// workload transform (the e < r freedom of Eq. (6)).
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "sched/simulator.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TaskSystem small_system(std::uint64_t seed, int m = 2) {
  GeneratorConfig cfg;
  cfg.processors = m;
  cfg.target_util = Rational(m);
  cfg.horizon = 16;
  cfg.seed = seed;
  return generate_periodic(cfg);
}

TEST(Simulator, MatchesBatchScheduler) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSystem sys = small_system(seed);
    const SlotSchedule batch = schedule_sfq(sys);
    SfqSimulator sim(sys);
    while (!sim.done()) sim.step();
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        const SubtaskRef ref{k, s};
        EXPECT_EQ(sim.schedule().placement(ref).slot,
                  batch.placement(ref).slot)
            << "seed " << seed;
      }
    }
  }
}

TEST(Simulator, StepReturnsPriorityOrderedPicks) {
  const TaskSystem sys = small_system(3);
  SfqSimulator sim(sys);
  const PriorityOrder order(sys, Policy::kPd2);
  const std::vector<SubtaskRef> picks = sim.step();
  ASSERT_EQ(picks.size(), 2u);  // fully utilized, M = 2
  EXPECT_TRUE(order.higher(picks[0], picks[1]));
  EXPECT_EQ(sim.now(), 1);
}

TEST(Simulator, ReadyPeeksWithoutAdvancing) {
  const TaskSystem sys = small_system(4);
  SfqSimulator sim(sys);
  const auto r1 = sim.ready();
  const auto r2 = sim.ready();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(r1.empty());
}

TEST(Simulator, LagIntrospectionStaysWithinPfairBounds) {
  const TaskSystem sys = small_system(5);
  SfqSimulator sim(sys);
  while (!sim.done()) {
    sim.step();
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      const Rational l = sim.lag_of(k);
      // Lags may drift past the classical bounds only after a task's
      // materialized subtasks run out; check while it still has work.
      EXPECT_LT(l, Rational(1)) << "task " << k << " at " << sim.now();
    }
  }
}

TEST(Simulator, RunUntilRespectsLimit) {
  const TaskSystem sys = small_system(6);
  SfqSimulator sim(sys);
  sim.run_until(4);
  EXPECT_EQ(sim.now(), 4);
  EXPECT_FALSE(sim.done());
  sim.run_until(1000);
  EXPECT_TRUE(sim.done());
}

// -------------------------------------------------- eligibility advances

TEST(AdvanceEligibility, ProducesEarlyEligibleSubtasks) {
  const TaskSystem base = small_system(7);
  const TaskSystem adv = advance_eligibility(base, 3, 1, 2, 99);
  ASSERT_EQ(adv.num_tasks(), base.num_tasks());
  bool any_early = false;
  for (std::int64_t k = 0; k < adv.num_tasks(); ++k) {
    std::int64_t prev_e = 0;
    for (std::int64_t s = 0; s < adv.task(k).num_subtasks(); ++s) {
      const Subtask& sub = adv.task(k).subtask(s);
      EXPECT_LE(sub.eligible, sub.release);     // Eq. (6), first half
      EXPECT_GE(sub.eligible, prev_e);          // Eq. (6), second half
      prev_e = sub.eligible;
      if (sub.eligible < sub.release) any_early = true;
      // Windows untouched.
      EXPECT_EQ(sub.release, base.task(k).subtask(s).release);
      EXPECT_EQ(sub.deadline, base.task(k).subtask(s).deadline);
    }
  }
  EXPECT_TRUE(any_early);
}

TEST(AdvanceEligibility, OptimalityAndTheorem3StillHold) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSystem sys =
        advance_eligibility(small_system(seed, 3), 4, 1, 2, seed * 3 + 1);
    const SlotSchedule sfq = schedule_sfq(sys);
    ASSERT_TRUE(sfq.complete()) << "seed " << seed;
    EXPECT_TRUE(check_slot_schedule(sys, sfq).valid()) << "seed " << seed;

    const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(dvq.complete()) << "seed " << seed;
    EXPECT_LT(measure_tardiness(sys, dvq).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace pfair
