// Tests for the online invariant auditor and the counterexample
// capture/replay/shrink pipeline (obs/audit.hpp, obs/capture.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <string_view>

#include "dvq/dvq_scheduler.hpp"
#include "dvq/yield.hpp"
#include "io/json.hpp"
#include "io/trace_io.hpp"
#include "obs/audit.hpp"
#include "obs/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

// A fully utilized 3-processor system.  Under PD2 it is schedulable with
// zero tardiness; under the inverted tie-breaks of Policy::kBroken it
// misses deadlines and starves tasks past the lag bounds.
TaskSystem heavy_system(std::int64_t horizon = 24) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("a", Weight(7, 8), horizon));
  tasks.push_back(Task::periodic("b", Weight(7, 8), horizon));
  tasks.push_back(Task::periodic("c", Weight(3, 4), horizon));
  tasks.push_back(Task::periodic("d", Weight(1, 2), horizon));
  return TaskSystem(std::move(tasks), 3);
}

TEST(InvariantAuditor, CleanOnGoodPd2SfqRun) {
  const TaskSystem sys = heavy_system();
  InvariantAuditor auditor(sys);
  SfqOptions opts;
  opts.trace = &auditor;
  (void)schedule_sfq(sys, opts);
  EXPECT_TRUE(auditor.clean()) << auditor.findings().front().str();
  EXPECT_EQ(auditor.total_findings(), 0);
  EXPECT_STREQ(auditor.model(), "sfq");
}

TEST(InvariantAuditor, CleanOnGoodPd2DvqRun) {
  const TaskSystem sys = heavy_system();
  const BernoulliYield yields(7, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  InvariantAuditor auditor(sys);
  DvqOptions opts;
  opts.trace = &auditor;
  (void)schedule_dvq(sys, yields, opts);
  EXPECT_TRUE(auditor.clean()) << auditor.findings().front().str();
  EXPECT_STREQ(auditor.model(), "dvq");
}

TEST(InvariantAuditor, BrokenPolicyViolatesInvariants) {
  const TaskSystem sys = heavy_system();
  InvariantAuditor auditor(sys);
  MetricsRegistry reg;
  auditor.attach_metrics(reg);
  SfqOptions opts;
  opts.policy = Policy::kBroken;
  opts.trace = &auditor;
  (void)schedule_sfq(sys, opts);

  EXPECT_FALSE(auditor.clean());
  EXPECT_GT(auditor.total_findings(), 0);
  ASSERT_FALSE(auditor.findings().empty());
  // The metric counters agree with the stored total.
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or(audit_metrics::kFindings),
            auditor.total_findings());
  // The broken policy starves the light task: expect at least one lag
  // or deadline finding.
  const bool has_expected_kind = std::any_of(
      auditor.findings().begin(), auditor.findings().end(),
      [](const AuditFinding& f) {
        return f.kind == Violation::Kind::kLagBound ||
               f.kind == Violation::Kind::kDeadlineMiss;
      });
  EXPECT_TRUE(has_expected_kind);
}

TEST(InvariantAuditor, ForwardsFindingEventsDownstream) {
  const TaskSystem sys = heavy_system();
  RingBufferSink downstream(1 << 10);
  InvariantAuditor auditor(sys);
  auditor.set_downstream(&downstream);
  SfqOptions opts;
  opts.policy = Policy::kBroken;
  opts.trace = &auditor;
  (void)schedule_sfq(sys, opts);

  ASSERT_FALSE(auditor.clean());
  std::int64_t forwarded = 0;
  for (const TraceEvent& e : downstream.snapshot()) {
    if (e.kind == TraceEventKind::kAuditFinding) ++forwarded;
  }
  EXPECT_EQ(forwarded, auditor.total_findings());
}

TEST(InvariantAuditor, TardinessAllowanceIsOneQuantumUnderDvq) {
  // A DVQ stream reporting tardiness of exactly one quantum is within
  // Theorem 3's allowance; one tick past it is a finding.
  const TaskSystem sys = heavy_system();
  InvariantAuditor auditor(sys);
  TraceEvent begin;
  begin.kind = TraceEventKind::kEventBegin;
  begin.at = Time();
  auditor.on_event(begin);

  TraceEvent miss;
  miss.kind = TraceEventKind::kDeadlineMiss;
  miss.subject = SubtaskRef{0, 0};
  miss.at = Time::slots(8);
  miss.detail = kQuantum.raw_ticks();
  auditor.on_event(miss);
  EXPECT_TRUE(auditor.clean());

  miss.detail = kQuantum.raw_ticks() + 1;
  auditor.on_event(miss);
  EXPECT_EQ(auditor.total_findings(), 1);
  EXPECT_EQ(auditor.findings().front().kind, Violation::Kind::kDeadlineMiss);
}

// The full pipeline: broken run -> finding -> captured bundle ->
// round-trip through JSON -> replay reproduces -> shrink stays minimal.
TEST(Capture, BrokenRunIsCapturedShrunkAndReplayable) {
  const TaskSystem sys = heavy_system();
  InvariantAuditor auditor(sys);
  CounterexampleRecorder recorder(
      CaptureBundle::prototype(sys, "sfq", Policy::kBroken));
  auditor.set_finding_callback(
      [&recorder](const AuditFinding& f) { recorder.record(f); });
  // Recorder first, so the triggering event is already in its ring when
  // the auditor's callback fires.
  TeeSink tee(&recorder, &auditor);
  SfqOptions opts;
  opts.policy = Policy::kBroken;
  opts.trace = &tee;
  (void)schedule_sfq(sys, opts);

  ASSERT_FALSE(auditor.clean());
  ASSERT_TRUE(recorder.captured());
  const CaptureBundle& bundle = recorder.bundle();
  EXPECT_EQ(bundle.finding.kind, auditor.findings().front().kind);
  EXPECT_FALSE(bundle.trace_prefix.empty());

  // JSON round-trip preserves the bundle.
  const std::string json = capture_to_json(bundle);
  const CaptureBundle back = capture_from_json(json);
  EXPECT_EQ(back.model, bundle.model);
  EXPECT_EQ(back.policy, bundle.policy);
  EXPECT_EQ(back.processors, bundle.processors);
  EXPECT_EQ(back.finding.kind, bundle.finding.kind);
  ASSERT_EQ(back.tasks.size(), bundle.tasks.size());
  for (std::size_t i = 0; i < back.tasks.size(); ++i) {
    EXPECT_EQ(back.tasks[i].name, bundle.tasks[i].name);
    EXPECT_EQ(back.tasks[i].we, bundle.tasks[i].we);
    EXPECT_EQ(back.tasks[i].wp, bundle.tasks[i].wp);
    EXPECT_EQ(back.tasks[i].subtasks.size(), bundle.tasks[i].subtasks.size());
  }
  EXPECT_EQ(back.trace_prefix.size(), bundle.trace_prefix.size());

  // Replay through the independent reference-simulator path reproduces
  // the same kind of violation.
  const ReplayResult replay = replay_bundle(back);
  EXPECT_TRUE(replay.reproduced);

  // Shrinking keeps it reproducing; the fully utilized 3-processor
  // system needs all 4 tasks, so the shrinker may not drop below that.
  const CaptureBundle shrunk = shrink_bundle(back);
  EXPECT_LE(shrunk.tasks.size(), 4u);
  EXPECT_GE(shrunk.tasks.size(), 1u);
  EXPECT_LE(shrunk.horizon_limit == 0 ? 24 : shrunk.horizon_limit, 24);
  const ReplayResult again = replay_bundle(shrunk);
  EXPECT_TRUE(again.reproduced);
  EXPECT_EQ(shrunk.finding.kind, back.finding.kind);

  // Shrinking is deterministic.
  const CaptureBundle shrunk2 = shrink_bundle(back);
  EXPECT_EQ(capture_to_json(shrunk), capture_to_json(shrunk2));
}

TEST(Capture, PrototypeRebuildsTheExactSystem) {
  const TaskSystem sys = heavy_system();
  const CaptureBundle proto =
      CaptureBundle::prototype(sys, "sfq", Policy::kPd2);
  const TaskSystem back = proto.build_system();
  ASSERT_EQ(back.num_tasks(), sys.num_tasks());
  EXPECT_EQ(back.processors(), sys.processors());
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    const Task& a = sys.task(k);
    const Task& b = back.task(k);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.weight().e, b.weight().e);
    EXPECT_EQ(a.weight().p, b.weight().p);
    ASSERT_EQ(a.num_subtasks(), b.num_subtasks());
    for (std::int64_t s = 0; s < a.num_subtasks(); ++s) {
      const Subtask sa = a.subtask_at(s);
      const Subtask sb = b.subtask_at(s);
      EXPECT_EQ(sa.index, sb.index);
      EXPECT_EQ(sa.release, sb.release);
      EXPECT_EQ(sa.deadline, sb.deadline);
      EXPECT_EQ(sa.eligible, sb.eligible);
      EXPECT_EQ(sa.bbit, sb.bbit);
      EXPECT_EQ(sa.group_deadline, sb.group_deadline);
    }
  }
}

TEST(Capture, CleanBundleDoesNotReproduce) {
  // A prototype with no finding recorded replays clean under PD2.
  const TaskSystem sys = heavy_system();
  CaptureBundle b = CaptureBundle::prototype(sys, "sfq", Policy::kPd2);
  b.finding.kind = Violation::Kind::kLagBound;  // claim something false
  const ReplayResult replay = replay_bundle(b);
  EXPECT_FALSE(replay.reproduced);
  EXPECT_TRUE(replay.findings.empty());
  // shrink_bundle returns a non-reproducing bundle unchanged.
  const CaptureBundle shrunk = shrink_bundle(b);
  EXPECT_EQ(shrunk.tasks.size(), b.tasks.size());
}

TEST(Capture, DvqBrokenRunCapturesWithYieldSpec) {
  // The broken tie-breaks stay within Theorem 3's one-quantum allowance
  // under DVQ (it only inverts tie-breaks, it does not unbound
  // tardiness), so audit with a strict zero allowance: the one-quantum
  // misses it provokes become findings, and the allowance travels with
  // the bundle so replay applies the same rules.
  const TaskSystem sys = heavy_system();
  const FullQuantumYield yields;
  CaptureBundle proto =
      CaptureBundle::prototype(sys, "dvq", Policy::kBroken);
  proto.yields.kind = "full";
  proto.allowance_ticks = 0;
  AuditOptions aopts;
  aopts.tardiness_allowance = Time();
  InvariantAuditor auditor(sys, aopts);
  CounterexampleRecorder recorder(std::move(proto));
  auditor.set_finding_callback(
      [&recorder](const AuditFinding& f) { recorder.record(f); });
  TeeSink tee(&recorder, &auditor);
  DvqOptions opts;
  opts.policy = Policy::kBroken;
  opts.trace = &tee;
  (void)schedule_dvq(sys, yields, opts);

  ASSERT_FALSE(auditor.clean());
  ASSERT_TRUE(recorder.captured());
  const CaptureBundle round =
      capture_from_json(capture_to_json(recorder.bundle()));
  EXPECT_EQ(round.model, "dvq");
  EXPECT_EQ(round.yields.kind, "full");
  ASSERT_TRUE(round.allowance_ticks.has_value());
  EXPECT_EQ(*round.allowance_ticks, 0);
  const ReplayResult replay = replay_bundle(round);
  EXPECT_TRUE(replay.reproduced);
}

TEST(TraceIo, EventJsonRoundTripsOverFullRun) {
  const TaskSystem sys = heavy_system();
  std::ostringstream os;
  JsonlSink sink(os);
  SfqOptions opts;
  opts.trace = &sink;
  (void)schedule_sfq(sys, opts);

  std::istringstream in(os.str());
  const std::vector<TraceEvent> events = read_trace_jsonl(in);
  EXPECT_EQ(events.size(), sink.lines());
  for (const TraceEvent& e : events) {
    // Serializing the parsed event reproduces the original line shape.
    const TraceEvent back = trace_event_from_json(
        parse_json(trace_event_json(e)));
    EXPECT_EQ(back.kind, e.kind);
    EXPECT_EQ(back.at.raw_ticks(), e.at.raw_ticks());
    EXPECT_EQ(back.subject.task, e.subject.task);
    EXPECT_EQ(back.subject.seq, e.subject.seq);
    EXPECT_EQ(back.detail, e.detail);
    EXPECT_EQ(back.proc, e.proc);
    EXPECT_EQ(back.aux, e.aux);
  }
}

TEST(TraceIo, ReplayedTraceDrivesTheAuditor) {
  // A JSONL trace written by the simulator, read back and fed to a
  // fresh auditor, yields the same verdict as the inline one.
  const TaskSystem sys = heavy_system();
  std::ostringstream os;
  JsonlSink sink(os);
  InvariantAuditor inline_audit(sys);
  TeeSink tee(&sink, &inline_audit);
  SfqOptions opts;
  opts.policy = Policy::kBroken;
  opts.trace = &tee;
  (void)schedule_sfq(sys, opts);

  std::istringstream in(os.str());
  InvariantAuditor offline_audit(sys);
  for (const TraceEvent& e : read_trace_jsonl(in)) {
    offline_audit.on_event(e);
  }
  EXPECT_EQ(offline_audit.total_findings(), inline_audit.total_findings());
  ASSERT_FALSE(offline_audit.clean());
  EXPECT_EQ(offline_audit.findings().front().kind,
            inline_audit.findings().front().kind);
}

TEST(InvariantAuditor, CleanAcrossAllPaperFigures) {
  for (const std::string_view name : {"fig1a", "fig1b", "fig1c", "fig2",
                                      "fig3", "fig6"}) {
    const auto sc = figure_scenario_by_name(name);
    ASSERT_TRUE(sc.has_value()) << name;
    {
      InvariantAuditor auditor(sc->system);
      SfqOptions opts;
      opts.trace = &auditor;
      (void)schedule_sfq(sc->system, opts);
      EXPECT_TRUE(auditor.clean())
          << name << " sfq: " << auditor.findings().front().str();
    }
    {
      InvariantAuditor auditor(sc->system);
      DvqOptions opts;
      opts.trace = &auditor;
      if (sc->yields != nullptr) {
        (void)schedule_dvq(sc->system, *sc->yields, opts);
      } else {
        const FullQuantumYield full;
        (void)schedule_dvq(sc->system, full, opts);
      }
      EXPECT_TRUE(auditor.clean())
          << name << " dvq: " << auditor.findings().front().str();
    }
  }
}

}  // namespace
}  // namespace pfair
