// Tests for algorithm PD^B (Sec. 3.1): the EB/PB/DB partition, Table 1
// decision order, the Fig. 2(c)/Fig. 6(a) walkthrough, and Theorem 2
// (tardiness <= 1 quantum) as a property sweep.
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "sched/pdb_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Pdb, Fig2cWalkthrough) {
  // Under adversarial PD^B the Fig. 2 system reproduces the paper's
  // Fig. 2(c)/Fig. 6(a) schedule: B_1 and C_1 usurp slot 2 (eligibility
  // blocking of D_2, E_2, F_2), and F_2 ends up missing its deadline by
  // exactly one quantum.
  const TaskSystem sys = fig6_system();
  PdbTrace trace;
  PdbOptions opts;
  opts.trace = &trace;
  const SlotSchedule sched = schedule_pdb(sys, opts);
  ASSERT_TRUE(sched.complete());

  const SubtaskRef b1{1, 0}, c1{2, 0}, d2{3, 1}, e2{4, 1}, f2{5, 1};
  EXPECT_EQ(sched.placement(b1).slot, 2);
  EXPECT_EQ(sched.placement(c1).slot, 2);
  EXPECT_EQ(sched.placement(d2).slot, 3);
  EXPECT_EQ(sched.placement(e2).slot, 3);
  EXPECT_EQ(sched.placement(f2).slot, 4);  // deadline 4 -> tardiness 1

  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_EQ(sum.max_ticks, kTicksPerSlot);
  EXPECT_EQ(sum.worst, f2);
  // Valid once the one-quantum allowance of Theorem 2 is granted.
  EXPECT_FALSE(check_slot_schedule(sys, sched).valid());
  EXPECT_TRUE(check_slot_schedule(sys, sched, 1).valid());
}

TEST(Pdb, BenignModeEqualsPd2OnFig2) {
  // With the mildest legal resolution of Table 1's nondeterminism the
  // Fig. 2 system schedules exactly as PD2 — no misses.
  const TaskSystem sys = fig6_system();
  PdbOptions opts;
  opts.mode = PdbMode::kBenign;
  const SlotSchedule pdb = schedule_pdb(sys, opts);
  const SlotSchedule pd2 = schedule_sfq(sys);
  ASSERT_TRUE(pdb.complete());
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      EXPECT_EQ(pdb.placement(SubtaskRef{k, s}).slot,
                pd2.placement(SubtaskRef{k, s}).slot);
    }
  }
}

TEST(Pdb, TraceRecordsPartitionAndDecisions) {
  const TaskSystem sys = fig6_system();
  PdbTrace trace;
  PdbOptions opts;
  opts.trace = &trace;
  const SlotSchedule sched = schedule_pdb(sys, opts);
  ASSERT_TRUE(sched.complete());
  EXPECT_EQ(static_cast<std::int64_t>(trace.decisions.size()),
            sys.total_subtasks());

  // At slot 0 every ready subtask is in EB (all eligibility times are 0).
  ASSERT_FALSE(trace.slots.empty());
  EXPECT_EQ(trace.slots[0].slot, 0);
  EXPECT_EQ(trace.slots[0].eb, 6);
  EXPECT_EQ(trace.slots[0].pb, 0);
  EXPECT_EQ(trace.slots[0].db, 0);

  // Decisions carry consistent slot/decision numbering.
  for (const PdbDecision& d : trace.decisions) {
    EXPECT_GE(d.decision, 1);
    EXPECT_LE(d.decision, sys.processors());
    EXPECT_EQ(sched.placement(d.chosen).slot, d.slot);
  }

  // The slot-2 usurpation came from DB (B_1 and C_1).
  int db_at_2 = 0;
  for (const PdbDecision& d : trace.decisions) {
    if (d.slot == 2 && d.from == PdbSet::kDB) ++db_at_2;
  }
  EXPECT_EQ(db_at_2, 2);
}

TEST(Pdb, PbSetMembersHavePredecessorsInPreviousSlot) {
  // Any subtask ever classified PB must have e < slot and its predecessor
  // scheduled exactly one slot earlier.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 20;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    PdbTrace trace;
    PdbOptions opts;
    opts.trace = &trace;
    const SlotSchedule sched = schedule_pdb(sys, opts);
    ASSERT_TRUE(sched.complete());
    for (const PdbDecision& d : trace.decisions) {
      if (d.from != PdbSet::kPB) continue;
      const Subtask& sub = sys.subtask(d.chosen);
      EXPECT_LT(sub.eligible, d.slot);
      ASSERT_GT(d.chosen.seq, 0);
      EXPECT_EQ(sched.placement(
                    SubtaskRef{d.chosen.task,
                               static_cast<std::int32_t>(d.chosen.seq - 1)})
                    .slot,
                d.slot - 1);
    }
  }
}

// ------------------------------------------------------ Theorem 2 sweeps

struct PdbCase {
  int processors;
  WeightClass cls;
  std::uint64_t seed;
};

class Theorem2Sweep : public ::testing::TestWithParam<PdbCase> {};

TEST_P(Theorem2Sweep, PdbTardinessAtMostOneQuantum) {
  const PdbCase c = GetParam();
  GeneratorConfig cfg;
  cfg.processors = c.processors;
  cfg.target_util = Rational(c.processors);
  cfg.horizon = 30;
  cfg.weights = c.cls;
  cfg.seed = c.seed;
  const TaskSystem sys = generate_periodic(cfg);

  for (const PdbMode mode : {PdbMode::kAdversarial, PdbMode::kBenign}) {
    PdbOptions opts;
    opts.mode = mode;
    const SlotSchedule sched = schedule_pdb(sys, opts);
    ASSERT_TRUE(sched.complete());
    const TardinessSummary sum = measure_tardiness(sys, sched);
    EXPECT_LE(sum.max_ticks, kTicksPerSlot) << sys.summary();
    EXPECT_TRUE(check_slot_schedule(sys, sched, 1).valid());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem2Sweep,
    ::testing::Values(PdbCase{2, WeightClass::kMixed, 41},
                      PdbCase{2, WeightClass::kHeavy, 42},
                      PdbCase{3, WeightClass::kMixed, 43},
                      PdbCase{3, WeightClass::kLight, 44},
                      PdbCase{4, WeightClass::kMixed, 45},
                      PdbCase{4, WeightClass::kHeavy, 46},
                      PdbCase{4, WeightClass::kUniform, 47},
                      PdbCase{8, WeightClass::kMixed, 48}),
    [](const ::testing::TestParamInfo<PdbCase>& param_info) {
      const PdbCase& c = param_info.param;
      return "M" + std::to_string(c.processors) + "_" + to_string(c.cls) +
             "_seed" + std::to_string(c.seed);
    });

TEST(Pdb, Theorem2ManySeeds) {
  for (std::uint64_t seed = 200; seed < 240; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const SlotSchedule sched = schedule_pdb(sys);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    ASSERT_LE(measure_tardiness(sys, sched).max_ticks, kTicksPerSlot)
        << "seed " << seed << "\n" << sys.summary();
  }
}

TEST(Pdb, Theorem2HoldsForGisSystems) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 24;
    cfg.seed = seed;
    const TaskSystem gis = drop_subtasks(
        add_is_jitter(generate_periodic(cfg), 2, 1, 4, seed + 70), 1, 6,
        seed + 80);
    const SlotSchedule sched = schedule_pdb(gis);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    EXPECT_LE(measure_tardiness(gis, sched).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

TEST(Pdb, SetNamesForTraces) {
  EXPECT_STREQ(to_string(PdbSet::kEB), "EB");
  EXPECT_STREQ(to_string(PdbSet::kPB), "PB");
  EXPECT_STREQ(to_string(PdbSet::kDB), "DB");
}

}  // namespace
}  // namespace pfair
