// Tests for switching/migration accounting and the indexed scheduler
// ablation (equivalence with the scanning implementation).
#include <gtest/gtest.h>

#include "analysis/switching.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "sched/indexed_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

// ------------------------------------------------------------- switching

TEST(Switching, HandBuiltSlotSchedule) {
  // Task A (1/1) on alternating processors; task B (absent).
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(4, 4), 4).with_early_release());
  const TaskSystem sys(std::move(tasks), 2);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  sched.place(SubtaskRef{0, 1}, 1, 1);  // migration
  sched.place(SubtaskRef{0, 2}, 2, 1);
  sched.place(SubtaskRef{0, 3}, 4, 0);  // migration + job break (gap)
  const SwitchingStats st = measure_switching(sys, sched);
  EXPECT_EQ(st.subtasks, 4);
  EXPECT_EQ(st.migrations, 2);
  EXPECT_EQ(st.job_breaks, 1);
  // Each processor only ever ran task A: no context switches.
  EXPECT_EQ(st.context_switches, 0);
}

TEST(Switching, ContextSwitchesCountOccupantChanges) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 4));
  tasks.push_back(Task::periodic("B", Weight(1, 2), 4));
  const TaskSystem sys(std::move(tasks), 1);
  SlotSchedule sched(sys);
  sched.place(SubtaskRef{0, 0}, 0, 0);
  sched.place(SubtaskRef{1, 0}, 1, 0);  // A -> B
  sched.place(SubtaskRef{0, 1}, 2, 0);  // B -> A
  sched.place(SubtaskRef{1, 1}, 3, 0);  // A -> B
  const SwitchingStats st = measure_switching(sys, sched);
  EXPECT_EQ(st.context_switches, 3);
  EXPECT_EQ(st.migrations, 0);
}

TEST(Switching, DvqBackToBackIsNoBreak) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(2, 2), 2).with_early_release());
  const TaskSystem sys(std::move(tasks), 1);
  const FixedYield yields(Time::ticks(kTicksPerSlot / 2));
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  const SwitchingStats st = measure_switching(sys, dvq);
  EXPECT_EQ(st.migrations, 0);
  EXPECT_EQ(st.job_breaks, 0);  // T_2 starts the instant T_1 yields
}

TEST(Switching, DvqReducesJobBreaksVsSfq) {
  // With early release and early yields, DVQ runs a job's subtasks
  // back-to-back where SFQ must wait for the next boundary.
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.weights = WeightClass::kHeavy;
  cfg.horizon = 20;
  cfg.seed = 12;
  const TaskSystem sys = generate_periodic(cfg).with_early_release();
  const FixedYield yields(Time::ticks(kTicksPerSlot / 2));
  const SwitchingStats sfq = measure_switching(sys, schedule_sfq(sys));
  const SwitchingStats dvq =
      measure_switching(sys, schedule_dvq(sys, yields));
  EXPECT_EQ(sfq.subtasks, dvq.subtasks);
  EXPECT_LE(dvq.job_breaks, sfq.job_breaks);
}

// ------------------------------------------------------ indexed scheduler

TEST(IndexedScheduler, MatchesScanningImplementation) {
  for (const Policy pol :
       {Policy::kEpdf, Policy::kPf, Policy::kPd, Policy::kPd2}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      GeneratorConfig cfg;
      cfg.processors = static_cast<int>(2 + seed % 3);
      cfg.target_util = Rational(cfg.processors);
      cfg.horizon = 20;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      SfqOptions opts;
      opts.policy = pol;
      const SlotSchedule a = schedule_sfq(sys, opts);
      const SlotSchedule b = schedule_sfq_indexed(sys, opts);
      for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
        for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
          const SubtaskRef ref{k, s};
          ASSERT_EQ(a.placement(ref).slot, b.placement(ref).slot)
              << to_string(pol) << " seed " << seed << " " << ref;
          ASSERT_EQ(a.placement(ref).proc, b.placement(ref).proc)
              << to_string(pol) << " seed " << seed << " " << ref;
        }
      }
    }
  }
}

TEST(IndexedScheduler, MatchesOnGisSystems) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 18;
    cfg.seed = seed;
    const TaskSystem gis = advance_eligibility(
        drop_subtasks(add_is_jitter(generate_periodic(cfg), 2, 1, 4,
                                    seed + 1),
                      1, 6, seed + 2),
        3, 1, 3, seed + 3);
    const SlotSchedule a = schedule_sfq(gis);
    const SlotSchedule b = schedule_sfq_indexed(gis);
    for (std::int32_t k = 0; k < gis.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < gis.task(k).num_subtasks(); ++s) {
        const SubtaskRef ref{k, s};
        ASSERT_EQ(a.placement(ref).slot, b.placement(ref).slot)
            << "seed " << seed;
      }
    }
  }
}

TEST(IndexedScheduler, HorizonTruncationMatches) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(1, 2), 30));
  const TaskSystem sys(std::move(tasks), 1);
  SfqOptions opts;
  opts.horizon_limit = 5;
  const SlotSchedule a = schedule_sfq(sys, opts);
  const SlotSchedule b = schedule_sfq_indexed(sys, opts);
  EXPECT_EQ(a.complete(), b.complete());
  for (std::int32_t s = 0; s < sys.task(0).num_subtasks(); ++s) {
    EXPECT_EQ(a.placement(SubtaskRef{0, s}).slot,
              b.placement(SubtaskRef{0, s}).slot);
  }
}

}  // namespace
}  // namespace pfair
