// Tests for the staggered quantum model (Holman & Anderson), a fixed-
// quantum special case of the DVQ model — Theorem 3 applies to it too.
#include <gtest/gtest.h>

#include <map>

#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/staggered.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TEST(Staggered, SingleProcessorEqualsSfq) {
  // With M = 1 the stagger offset is 0 and every quantum starts on a slot
  // boundary — the schedule must coincide with SFQ's.
  GeneratorConfig cfg;
  cfg.processors = 1;
  cfg.target_util = Rational(1);
  cfg.horizon = 16;
  cfg.seed = 2;
  const TaskSystem sys = generate_periodic(cfg);
  const FullQuantumYield yields;
  const DvqSchedule stag = schedule_staggered(sys, yields);
  const SlotSchedule sfq = schedule_sfq(sys);
  ASSERT_TRUE(stag.complete());
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      EXPECT_EQ(stag.placement(ref).start,
                Time::slots(sfq.placement(ref).slot));
    }
  }
}

TEST(Staggered, StartsLieOnTheStaggeredGrid) {
  GeneratorConfig cfg;
  cfg.processors = 4;
  cfg.target_util = Rational(4);
  cfg.horizon = 16;
  cfg.seed = 3;
  const TaskSystem sys = generate_periodic(cfg);
  const FullQuantumYield yields;
  const DvqSchedule sched = schedule_staggered(sys, yields);
  ASSERT_TRUE(sched.complete());
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const DvqPlacement& p = sched.placement(SubtaskRef{k, s});
      const std::int64_t offset =
          p.start.raw_ticks() -
          p.start.slot_floor() * kTicksPerSlot;
      EXPECT_EQ(offset, static_cast<std::int64_t>(p.proc) * kTicksPerSlot / 4)
          << "proc " << p.proc;
    }
  }
}

TEST(Staggered, NoSimultaneousDecisions) {
  // The staggered model's purpose: decision instants never coincide
  // across processors (for M not dividing into equal co-incident
  // offsets), spreading bus traffic.
  GeneratorConfig cfg;
  cfg.processors = 4;
  cfg.target_util = Rational(4);
  cfg.horizon = 12;
  cfg.seed = 4;
  const TaskSystem sys = generate_periodic(cfg);
  const FullQuantumYield yields;
  StaggeredOptions opts;
  opts.log_decisions = true;
  const DvqSchedule sched = schedule_staggered(sys, yields, opts);
  std::map<std::int64_t, int> per_instant;
  for (const DvqDecision& d : sched.decisions()) {
    ++per_instant[d.at.raw_ticks()];
  }
  for (const auto& [at, n] : per_instant) {
    EXPECT_EQ(n, 1) << "simultaneous decisions at tick " << at;
  }
}

TEST(Staggered, TardinessWithinOneQuantum) {
  // Staggering is a DVQ special case, so Theorem 3's bound applies; with
  // full quanta the stagger itself is the only source of lateness.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(4);
    cfg.horizon = 20;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const FullQuantumYield yields;
    const DvqSchedule sched = schedule_staggered(sys, yields);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const TardinessSummary sum = measure_tardiness(sys, sched);
    EXPECT_LT(sum.max_ticks, kTicksPerSlot)
        << "seed " << seed << "\n" << sys.summary();
    EXPECT_TRUE(check_dvq_schedule(sys, sched, kQuantum).valid());
  }
}

TEST(Staggered, EarlyYieldsIdleUntilOwnBoundary) {
  // Staggering alone is not work-conserving: a yielded remainder is lost.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("T", Weight(2, 2), 2).with_early_release());
  const TaskSystem sys(std::move(tasks), 2);
  const FixedYield yields(Time::ticks(kTicksPerSlot / 2));
  const DvqSchedule sched = schedule_staggered(sys, yields);
  ASSERT_TRUE(sched.complete());
  const DvqPlacement& p0 = sched.placement(SubtaskRef{0, 0});
  const DvqPlacement& p1 = sched.placement(SubtaskRef{0, 1});
  // T_1 on processor 0 at t=0 yields at 0.5; T_2 (eligible at 0) can only
  // start at the next grid point after 0.5 on either processor — 0.5 is
  // exactly processor 1's boundary, so T_2 starts there, not at 0.5001.
  EXPECT_EQ(p0.start, Time::slots(0));
  EXPECT_TRUE(p1.start == Time::slots_frac(0, 1, 2) ||
              p1.start == Time::slots(1))
      << p1.start.str();
}

}  // namespace
}  // namespace pfair
