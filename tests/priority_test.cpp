// Tests for src/sched/priority: the EPDF / PF / PD / PD2 comparators.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "sched/priority.hpp"
#include "tasks/task.hpp"

namespace pfair {
namespace {

TaskSystem two_task_system(Weight wa, Weight wb, std::int64_t horizon,
                           int m = 2) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", wa, horizon));
  tasks.push_back(Task::periodic("B", wb, horizon));
  return TaskSystem(std::move(tasks), m);
}

TEST(Priority, EarlierDeadlineWinsUnderEveryPolicy) {
  // A = 1/2 (d(A_1) = 2), B = 1/6 (d(B_1) = 6).
  const TaskSystem sys = two_task_system(Weight(1, 2), Weight(1, 6), 6);
  const SubtaskRef a{0, 0}, b{1, 0};
  for (const Policy p :
       {Policy::kEpdf, Policy::kPf, Policy::kPd, Policy::kPd2}) {
    const PriorityOrder order(sys, p);
    EXPECT_TRUE(order.strictly_higher(a, b)) << to_string(p);
    EXPECT_FALSE(order.strictly_higher(b, a)) << to_string(p);
    EXPECT_TRUE(order.at_least(a, b)) << to_string(p);
  }
}

TEST(Priority, EpdfTreatsDeadlineTiesAsTies) {
  // A = 3/4 and B = 2/4: d(A_1) = 2 = d(B_1), but b(A_1) = 1, b(B_1) = 0.
  const TaskSystem sys = two_task_system(Weight(3, 4), Weight(2, 4), 4);
  const SubtaskRef a{0, 0}, b{1, 0};
  EXPECT_EQ(PriorityOrder(sys, Policy::kEpdf).compare(a, b), 0);
  // PD2 breaks the tie by b-bit.
  EXPECT_TRUE(PriorityOrder(sys, Policy::kPd2).strictly_higher(a, b));
  // PF breaks it the same way on the first bit.
  EXPECT_TRUE(PriorityOrder(sys, Policy::kPf).strictly_higher(a, b));
}

TEST(Priority, Pd2GroupDeadlineBreaksBBitTies) {
  // A = 3/4 (D(A_1) = 4) vs B = 7/8 (d(B_1) = 2, b = 1, D(B_1) = 8):
  // equal deadline 2, equal b-bit 1, B's longer cascade wins.
  const TaskSystem sys = two_task_system(Weight(3, 4), Weight(7, 8), 8);
  const SubtaskRef a{0, 0}, b{1, 0};
  ASSERT_EQ(sys.subtask(a).deadline, sys.subtask(b).deadline);
  ASSERT_TRUE(sys.subtask(a).bbit && sys.subtask(b).bbit);
  ASSERT_GT(sys.subtask(b).group_deadline, sys.subtask(a).group_deadline);
  EXPECT_TRUE(PriorityOrder(sys, Policy::kPd2).strictly_higher(b, a));
}

TEST(Priority, HeavyBeatsLightOnBBitTie) {
  // A light task with b = 1 has group deadline 0 and loses to any heavy
  // contender with b = 1 and the same deadline.  A = 2/5: d(A_1) = 3,
  // b = 1, D = 0.  B = 2/3 with theta... use B = 4/6: d(B_1) = 2.  Try
  // A = 2/6 = 1/3 (d = 3, b = 0) — need b = 1: A = 2/5 (d=3, b=1) and
  // B = 5/7? d(B_1) = ceil(7/5) = 2.  Use index 2 of B = 2/3:
  // d(B_2) = 3, b(B_2) = 0.  Instead: B = 5/8, d(B_1) = 2... choose
  // B = 7/10: d(B_1) = ceil(10/7) = 2.  Simplest matching pair:
  // A = 2/5 vs B = 4/7 at index 2: d(B_2) = ceil(2*7/4) = 4.  Fall back
  // to constructed GIS with offsets below.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("L", Weight(2, 5), 5));     // L_1: [0,3) b=1
  tasks.push_back(Task::intra_sporadic("H", Weight(3, 4), {1}, 3));
  // H_1: [1,3), b = 1, group deadline 1 + 4 = 5.
  const TaskSystem sys(std::move(tasks), 2);
  const SubtaskRef l{0, 0}, h{1, 0};
  ASSERT_EQ(sys.subtask(l).deadline, 3);
  ASSERT_EQ(sys.subtask(h).deadline, 3);
  ASSERT_TRUE(sys.subtask(l).bbit);
  ASSERT_TRUE(sys.subtask(h).bbit);
  EXPECT_TRUE(PriorityOrder(sys, Policy::kPd2).strictly_higher(h, l));
}

TEST(Priority, PfLexicographicBitComparison) {
  // A = 3/4: bits 1,1,0,...  B = 7/8: bits 1,1,1,1,1,1,0.  Equal first
  // deadline (2) and equal successor deadlines (3) — at depth 2 both have
  // bit 1; A's third subtask has d = 4 vs B's d = 4... walk until they
  // differ; B (denser) must win eventually.
  const TaskSystem sys = two_task_system(Weight(3, 4), Weight(7, 8), 8);
  const SubtaskRef a{0, 0}, b{1, 0};
  EXPECT_TRUE(PriorityOrder(sys, Policy::kPf).strictly_higher(b, a));
}

TEST(Priority, PfTrueTieOnIdenticalWeights) {
  const TaskSystem sys = two_task_system(Weight(1, 2), Weight(1, 2), 4);
  EXPECT_EQ(
      PriorityOrder(sys, Policy::kPf).compare(SubtaskRef{0, 0},
                                              SubtaskRef{1, 0}),
      0);
}

TEST(Priority, PdRefinesPd2ByWeight) {
  // Two heavy tasks with identical (d, b, D) prefixes but different
  // weights would tie under PD2; PD prefers the heavier.  Same weight
  // expressed differently must still tie under PD.
  const TaskSystem same = two_task_system(Weight(1, 2), Weight(2, 4), 4);
  EXPECT_EQ(PriorityOrder(same, Policy::kPd).compare(SubtaskRef{0, 0},
                                                     SubtaskRef{1, 0}),
            0);
}

TEST(Priority, HigherIsStrictTotalOrder) {
  const TaskSystem sys = two_task_system(Weight(1, 2), Weight(1, 2), 4);
  const PriorityOrder order(sys, Policy::kPd2);
  const SubtaskRef a{0, 0}, b{1, 0};
  // compare() ties, but higher() breaks by task id deterministically.
  EXPECT_EQ(order.compare(a, b), 0);
  EXPECT_TRUE(order.higher(a, b));
  EXPECT_FALSE(order.higher(b, a));
  EXPECT_FALSE(order.higher(a, a));
}

TEST(Priority, ComparatorConsistencySampled) {
  // compare() must be antisymmetric and transitive over a random pool of
  // subtasks under every policy.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(3, 4), 12));
  tasks.push_back(Task::periodic("B", Weight(8, 11), 11));
  tasks.push_back(Task::periodic("C", Weight(2, 5), 10));
  tasks.push_back(Task::periodic("D", Weight(1, 2), 12));
  tasks.push_back(Task::periodic("E", Weight(1, 6), 12));
  const TaskSystem sys(std::move(tasks), 2);

  std::vector<SubtaskRef> pool;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      pool.push_back(SubtaskRef{k, s});
    }
  }
  for (const Policy p :
       {Policy::kEpdf, Policy::kPf, Policy::kPd, Policy::kPd2}) {
    const PriorityOrder order(sys, p);
    for (const SubtaskRef& x : pool) {
      EXPECT_EQ(order.compare(x, x), 0);
      for (const SubtaskRef& y : pool) {
        EXPECT_EQ(order.compare(x, y), -order.compare(y, x))
            << to_string(p) << " " << x << " vs " << y;
      }
    }
    Rng rng(99);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto& x = pool[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto& y = pool[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto& z = pool[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
      if (order.compare(x, y) <= 0 && order.compare(y, z) <= 0) {
        EXPECT_LE(order.compare(x, z), 0)
            << to_string(p) << " transitivity " << x << y << z;
      }
    }
  }
}

TEST(Priority, PolicyNames) {
  EXPECT_STREQ(to_string(Policy::kEpdf), "EPDF");
  EXPECT_STREQ(to_string(Policy::kPf), "PF");
  EXPECT_STREQ(to_string(Policy::kPd), "PD");
  EXPECT_STREQ(to_string(Policy::kPd2), "PD2");
}

}  // namespace
}  // namespace pfair
