// Tests for the executable Lemma 2 (PD^B priority-inversion witnesses).
#include <gtest/gtest.h>

#include "analysis/pdb_blocking.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Lemma2, HoldsOnTheFig6System) {
  const TaskSystem sys = fig6_system();
  PdbTrace trace;
  PdbOptions opts;
  opts.trace = &trace;
  const SlotSchedule sched = schedule_pdb(sys, opts);
  ASSERT_TRUE(sched.complete());
  const Lemma2Report rep = check_lemma2(sys, sched, trace);
  EXPECT_TRUE(rep.holds())
      << (rep.details.empty() ? "" : rep.details.front());
  EXPECT_GT(rep.slots_checked, 0);
}

TEST(Lemma2, HoldsAcrossRandomAdversarialRuns) {
  std::int64_t total_inversions = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = static_cast<int>(2 + seed % 3);
    cfg.target_util = Rational(cfg.processors);
    cfg.horizon = 18;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    PdbTrace trace;
    PdbOptions opts;
    opts.trace = &trace;
    const SlotSchedule sched = schedule_pdb(sys, opts);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const Lemma2Report rep = check_lemma2(sys, sched, trace);
    EXPECT_TRUE(rep.holds())
        << "seed " << seed << ": "
        << (rep.details.empty() ? "" : rep.details.front());
    total_inversions += rep.inversions;
  }
  // Adversarial PD^B must actually produce inversions for the check to
  // mean anything.
  EXPECT_GT(total_inversions, 0);
}

TEST(Lemma2, BenignModeHasNoPredecessorStyleInversions) {
  // Benign PD^B merges EB and DB under strict PD2; the only remaining
  // inversions involve PB exclusion, which Lemma 2 still covers.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    PdbTrace trace;
    PdbOptions opts;
    opts.mode = PdbMode::kBenign;
    opts.trace = &trace;
    const SlotSchedule sched = schedule_pdb(sys, opts);
    ASSERT_TRUE(sched.complete());
    const Lemma2Report rep = check_lemma2(sys, sched, trace);
    EXPECT_TRUE(rep.holds()) << "seed " << seed;
  }
}

TEST(Lemma2, GisSystemsHold) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem gis = drop_subtasks(
        add_is_jitter(generate_periodic(cfg), 2, 1, 4, seed + 3), 1, 6,
        seed + 5);
    PdbTrace trace;
    PdbOptions opts;
    opts.trace = &trace;
    const SlotSchedule sched = schedule_pdb(gis, opts);
    ASSERT_TRUE(sched.complete());
    EXPECT_TRUE(check_lemma2(gis, sched, trace).holds()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pfair
