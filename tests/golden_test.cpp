// Golden-snapshot tests for the figure reproductions: every scheduler in
// this library is deterministic, so the rendered paper figures must be
// byte-identical across runs and refactors.  If a change legitimately
// alters a schedule (e.g. a new tie-break), the goldens below must be
// updated *consciously*, alongside EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "dvq/dvq_scheduler.hpp"
#include "io/render.hpp"
#include "sched/pdb_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Golden, Fig2aSfqSchedule) {
  const TaskSystem sys = fig6_system();
  const std::string expected =
      "      0    5\n"
      "   A |.1....|\n"
      "   B |...1..|\n"
      "   C |....0.|\n"
      "   D |0.0.1.|\n"
      "   E |1.1..0|\n"
      "   F |.0.0.1|\n"
      "(digits = executing subtask's processor; '.' = pending window)";
  EXPECT_EQ(render_slot_schedule(sys, schedule_sfq(sys)), expected);
}

TEST(Golden, Fig2cPdbSchedule) {
  // B_1/C_1 usurp slot 2; F_2 lands in slot 4 (one quantum late).
  const TaskSystem sys = fig6_system();
  const std::string expected =
      "      0    5\n"
      "   A |.1....|\n"
      "   B |..0...|\n"
      "   C |..1...|\n"
      "   D |0..01.|\n"
      "   E |1..1.0|\n"
      "   F |.0..01|\n"
      "(digits = executing subtask's processor; '.' = pending window)";
  EXPECT_EQ(render_slot_schedule(sys, schedule_pdb(sys)), expected);
}

TEST(Golden, Fig2bDvqTimeline) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 8));
  RenderOptions opts;
  opts.chars_per_slot = 8;
  const std::string expected =
      "      0       1       2       3       4       5       6\n"
      "P0   |D1======F1====)B1=====)D2=====)F2=====)E3=====) |\n"
      "P1   |E1======A1====)C1=====)E2=====) D3======F3======|\n"
      "(')' = early yield before the slot boundary)";
  EXPECT_EQ(
      render_dvq_schedule(sc.system, schedule_dvq(sc.system, *sc.yields),
                          opts),
      expected);
}

TEST(Golden, Fig1WindowParameters) {
  // The full parameter dump of the Fig. 1(b) IS task.
  const std::string expected =
      "task      i  theta      r      d  e      b  grpD\n"
      "T         1      0      0      2  0      1     4\n"
      "T         2      0      1      3  1      1     4\n"
      "T         3      1      3      5  3      0     5\n";
  EXPECT_EQ(describe_subtasks(fig1_intra_sporadic()), expected);
}

}  // namespace
}  // namespace pfair
