// Tests for the extension modules: hyperperiod analysis, CSV schedule
// export, the fractional-tail yield model (the paper's future work), and
// failure-injection checks on infeasible / overloaded systems.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/hyperperiod.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "io/export.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

// ------------------------------------------------------------- hyperperiod

TEST(Hyperperiod, LcmOfPeriods) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 4), 4));
  tasks.push_back(Task::periodic("B", Weight(1, 6), 6));
  tasks.push_back(Task::periodic("C", Weight(1, 10), 10));
  const TaskSystem sys(std::move(tasks), 1);
  EXPECT_EQ(hyperperiod(sys), 60);
  EXPECT_THROW((void)hyperperiod(TaskSystem({}, 1)), ContractViolation);
}

TEST(Hyperperiod, Pd2ScheduleRepeats) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.seed = seed;
    // Generate over one hyperperiod-agnostic horizon, then rebuild the
    // same weights over two hyperperiods.
    cfg.horizon = 4;
    const TaskSystem probe = generate_periodic(cfg);
    const std::int64_t h = hyperperiod(probe);
    if (h > 120) continue;  // keep the test fast
    std::vector<Task> tasks;
    for (const Task& t : probe.tasks()) {
      tasks.push_back(Task::periodic(t.name(), t.weight(), 2 * h));
    }
    const TaskSystem sys(std::move(tasks), 2);
    const SlotSchedule sched = schedule_sfq(sys);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const PeriodicityReport rep = check_schedule_periodicity(sys, sched);
    ASSERT_TRUE(rep.applicable) << "seed " << seed;
    EXPECT_TRUE(rep.periodic) << "seed " << seed << " H=" << rep.hyper;
  }
}

TEST(Hyperperiod, UnderUtilizedSystemsAreNowCovered) {
  // Utilization < M: idle slots are part of the repeating pattern, so the
  // fingerprint-based check applies where the old slot-set check bailed.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 8));
  const TaskSystem slack(std::move(tasks), 2);
  const SlotSchedule sched = schedule_sfq(slack);
  const PeriodicityReport rep = check_schedule_periodicity(slack, sched);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.periodic);
  EXPECT_FALSE(rep.fully_utilized);
  EXPECT_EQ(rep.prefix_slots, 0);
}

TEST(Hyperperiod, NotApplicableCases) {
  // Too-short schedule: not applicable.
  std::vector<Task> t2;
  t2.push_back(Task::periodic("A", Weight(1, 1), 1));
  const TaskSystem brief(std::move(t2), 1);
  EXPECT_FALSE(
      check_schedule_periodicity(brief, schedule_sfq(brief)).applicable);

  // Phased system: release anchors carry state the fingerprint cannot
  // normalize away — refused.
  std::vector<Task> t3;
  t3.push_back(Task::periodic_phased("A", Weight(1, 2), 1, 9));
  t3.push_back(Task::periodic("B", Weight(1, 2), 8));
  const TaskSystem phased(std::move(t3), 2);
  EXPECT_FALSE(
      check_schedule_periodicity(phased, schedule_sfq(phased)).applicable);
}

// ------------------------------------------------------------------ export

TEST(Export, TaskSystemCsvHasOneRowPerSubtask) {
  GeneratorConfig cfg;
  cfg.processors = 2;
  cfg.target_util = Rational(2);
  cfg.horizon = 8;
  cfg.seed = 3;
  const TaskSystem sys = generate_periodic(cfg);
  const CsvWriter w = export_task_system(sys);
  EXPECT_EQ(static_cast<std::int64_t>(w.rows()), sys.total_subtasks());
}

TEST(Export, SlotScheduleCsvRoundTripsValues) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 4));
  const TaskSystem sys(std::move(tasks), 1);
  const SlotSchedule sched = schedule_sfq(sys);
  std::ostringstream os;
  export_slot_schedule(sys, sched).write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("task,name,index,slot"), std::string::npos);
  // Subtask 1 of A is scheduled in slot 0 or 1 with tardiness 0.
  EXPECT_NE(out.find("0,A,1,"), std::string::npos);
  EXPECT_NE(out.find(",0\n"), std::string::npos);
}

TEST(Export, DvqScheduleCsvUsesExactTicks) {
  std::vector<Task> tasks;
  tasks.push_back(
      Task::periodic("A", Weight(2, 2), 2).with_early_release());
  const TaskSystem sys(std::move(tasks), 1);
  const FixedYield yields(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  std::ostringstream os;
  export_dvq_schedule(sys, dvq).write(os);
  // Second subtask starts at 3/4 slot = 786432 ticks.
  EXPECT_NE(os.str().find("786432"), std::string::npos) << os.str();
}

// -------------------------------------------------- fractional-tail yields

TEST(FractionalTail, OnlyJobTailsShortened) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(3, 4), 8));
  const TaskSystem sys(std::move(tasks), 1);
  const FractionalTailYield yields(Time::ticks(kTicksPerSlot / 2));
  // Subtasks 1, 2 are full; subtask 3 (job tail, index % e == 0) is half.
  EXPECT_EQ(yields.cost(sys, SubtaskRef{0, 0}), kQuantum);
  EXPECT_EQ(yields.cost(sys, SubtaskRef{0, 1}), kQuantum);
  EXPECT_EQ(yields.cost(sys, SubtaskRef{0, 2}),
            Time::ticks(kTicksPerSlot / 2));
  EXPECT_EQ(yields.cost(sys, SubtaskRef{0, 5}),
            Time::ticks(kTicksPerSlot / 2));
  EXPECT_THROW((void)FractionalTailYield{Time()}, ContractViolation);
}

TEST(FractionalTail, Theorem3StillHolds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(3);
    cfg.horizon = 24;
    cfg.weights = WeightClass::kHeavy;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const FractionalTailYield yields(Time::ticks(kTicksPerSlot / 3 + 1));
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(dvq.complete()) << "seed " << seed;
    EXPECT_LT(measure_tardiness(sys, dvq).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

// -------------------------------------------------------- failure injection

TEST(FailureInjection, OverloadedSystemMissesUnderPd2) {
  // util = 3 on M = 2: infeasible; PD2 must exhibit misses (tardiness
  // grows) and the checker must flag the schedule.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 1), 12));
  tasks.push_back(Task::periodic("B", Weight(1, 1), 12));
  tasks.push_back(Task::periodic("C", Weight(1, 1), 12));
  const TaskSystem sys(std::move(tasks), 2);
  ASSERT_FALSE(sys.feasible());
  const SlotSchedule sched = schedule_sfq(sys);
  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_TRUE(sum.max_ticks > 0 || sum.unscheduled > 0);
  EXPECT_FALSE(check_slot_schedule(sys, sched).valid());
}

TEST(FailureInjection, OverloadTardinessGrowsWithHorizon) {
  // On an infeasible system the backlog grows linearly — no bounded
  // tardiness exists (contrast with Theorem 3's bounded result for
  // feasible systems).
  std::int64_t prev = 0;
  for (const std::int64_t horizon : {6, 12, 24}) {
    std::vector<Task> tasks;
    tasks.push_back(Task::periodic("A", Weight(1, 1), horizon));
    tasks.push_back(Task::periodic("B", Weight(1, 1), horizon));
    tasks.push_back(Task::periodic("C", Weight(1, 1), horizon));
    const TaskSystem sys(std::move(tasks), 2);
    const SlotSchedule sched = schedule_sfq(sys);
    const std::int64_t t = measure_tardiness(sys, sched).max_ticks;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(FailureInjection, DvqOverloadAlsoUnbounded) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 1), 12));
  tasks.push_back(Task::periodic("B", Weight(1, 1), 12));
  tasks.push_back(Task::periodic("C", Weight(1, 1), 12));
  const TaskSystem sys(std::move(tasks), 2);
  const FullQuantumYield yields;
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  EXPECT_GT(measure_tardiness(sys, dvq).max_ticks, kTicksPerSlot);
}

}  // namespace
}  // namespace pfair
