// Tests for the k-compliance induction of Sec. 3.3 (Lemma 6 / Fig. 6):
// the constructive bridge from PD2's optimality to PD^B's one-quantum
// tardiness bound.
#include <gtest/gtest.h>

#include "analysis/compliance.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Compliance, Fig6FullInduction) {
  // The paper's Fig. 6 system: every intermediate k-compliant schedule is
  // valid and S_B's tardiness is exactly one quantum (F_2's miss).
  const ComplianceResult res = run_compliance(fig6_system());
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.ranks, 12);
  EXPECT_EQ(res.steps_checked, 13);  // k = 0 .. 12
  EXPECT_EQ(res.sb_max_tardiness, 1);
}

TEST(Compliance, StepMechanismsAreAccounted) {
  const ComplianceResult res = run_compliance(fig6_system());
  ASSERT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.already_placed + res.holes_used + res.swaps_used, res.ranks);
}

TEST(Compliance, BenignModeAlsoComplies) {
  ComplianceOptions opts;
  opts.pdb_mode = PdbMode::kBenign;
  const ComplianceResult res = run_compliance(fig6_system(), opts);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.sb_max_tardiness, 0);  // benign PD^B == PD2 here
}

TEST(Compliance, EndpointsOnlyModeMatchesFullRun) {
  ComplianceOptions fast;
  fast.check_all_steps = false;
  const ComplianceResult a = run_compliance(fig6_system(), fast);
  const ComplianceResult b = run_compliance(fig6_system());
  EXPECT_TRUE(a.ok) << a.failure;
  EXPECT_EQ(a.ranks, b.ranks);
  EXPECT_EQ(a.sb_max_tardiness, b.sb_max_tardiness);
  EXPECT_LT(a.steps_checked, b.steps_checked);
}

struct ComplianceCase {
  int processors;
  WeightClass cls;
  std::uint64_t seed;
};

class ComplianceSweep : public ::testing::TestWithParam<ComplianceCase> {};

TEST_P(ComplianceSweep, RandomSystemsComply) {
  const ComplianceCase c = GetParam();
  GeneratorConfig cfg;
  cfg.processors = c.processors;
  cfg.target_util = Rational(c.processors);
  cfg.horizon = 10;  // keep the O(n^2) induction affordable
  cfg.weights = c.cls;
  cfg.seed = c.seed;
  const TaskSystem sys = generate_periodic(cfg);
  const ComplianceResult res = run_compliance(sys);
  EXPECT_TRUE(res.ok) << "seed " << c.seed << ": " << res.failure << "\n"
                      << sys.summary();
  EXPECT_LE(res.sb_max_tardiness, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ComplianceSweep,
    ::testing::Values(ComplianceCase{2, WeightClass::kMixed, 61},
                      ComplianceCase{2, WeightClass::kHeavy, 62},
                      ComplianceCase{2, WeightClass::kLight, 63},
                      ComplianceCase{3, WeightClass::kMixed, 64},
                      ComplianceCase{3, WeightClass::kHeavy, 65},
                      ComplianceCase{4, WeightClass::kMixed, 66}),
    [](const ::testing::TestParamInfo<ComplianceCase>& param_info) {
      const ComplianceCase& c = param_info.param;
      return "M" + std::to_string(c.processors) + "_" + to_string(c.cls) +
             "_seed" + std::to_string(c.seed);
    });

TEST(Compliance, GisSystemsComply) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 10;
    cfg.seed = seed;
    const TaskSystem gis = drop_subtasks(
        add_is_jitter(generate_periodic(cfg), 1, 1, 4, seed + 7), 1, 6,
        seed + 9);
    const ComplianceResult res = run_compliance(gis);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.failure;
  }
}

}  // namespace
}  // namespace pfair
