// Sweep-harness reducers and thread-pool grain selection.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

#include "core/thread_pool.hpp"
#include "../bench/sweep.hpp"

namespace pfair {
namespace {

// Regression: a default-constructed MaxReducer has identity 0, which
// silently masked all-negative sample sets.  The explicit identity makes
// the maximum exact there.
TEST(MaxReducer, ExplicitIdentityHandlesAllNegativeSamples) {
  bench::MaxReducer wrong;  // historical behavior: identity 0
  bench::MaxReducer right(std::numeric_limits<std::int64_t>::min());
  for (const std::int64_t v : {-7, -3, -12}) {
    wrong.raise(v);
    right.raise(v);
  }
  EXPECT_EQ(wrong.get(), 0);  // the bug this guards against
  EXPECT_EQ(right.get(), -3);
}

TEST(MaxReducer, IdentityReportedWhenNothingRaised) {
  bench::MaxReducer m(-100);
  EXPECT_EQ(m.get(), -100);
  m.raise(-200);  // below identity: ignored
  EXPECT_EQ(m.get(), -100);
  m.raise(5);
  EXPECT_EQ(m.get(), 5);
}

TEST(MaxReducer, RacesBenignlyUnderThePool) {
  bench::MaxReducer m(std::numeric_limits<std::int64_t>::min());
  global_pool().parallel_for(0, 10000,
                             [&](std::int64_t i) { m.raise(i - 5000); });
  EXPECT_EQ(m.get(), 4999);
}

// The automatic grain (grain == 0) must still run every index exactly
// once, for ranges smaller and larger than 8 * workers.
TEST(ThreadPoolGrain, AutoGrainCoversEveryIndexOnce) {
  ThreadPool pool(4);
  for (const std::int64_t n : {1, 7, 31, 32, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(0, n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "n=" << n;
  }
}

TEST(ThreadPoolGrain, ExplicitGrainStillHonored) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(
      0, 100, [&](std::int64_t i) { sum.fetch_add(i); }, 17);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolGrain, SweepSeedsUsesAutoGrain) {
  std::atomic<std::int64_t> n{0};
  bench::sweep_seeds(500, 0x9e3779b9u, 42,
                     [&](std::uint64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 500);
}

}  // namespace
}  // namespace pfair
