// Tests for the partitioned-Pfair baseline, the shared FFD partitioner,
// the adversarial yield search, and the Chrome-trace export.
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "edf/partition.hpp"
#include "edf/partitioned_pfair.hpp"
#include "io/export.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/adversary.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TaskSystem make_sys(std::vector<std::pair<std::int64_t, std::int64_t>> ws,
                    int m, std::int64_t horizon) {
  std::vector<Task> tasks;
  int id = 0;
  for (const auto& [e, p] : ws) {
    tasks.push_back(
        Task::periodic("T" + std::to_string(id++), Weight(e, p), horizon));
  }
  return TaskSystem(std::move(tasks), m);
}

// ---------------------------------------------------------------- FFD

TEST(Partition, FfdPacksDecreasing) {
  const TaskSystem sys = make_sys({{1, 10}, {9, 10}, {9, 10}, {1, 10}},
                                  2, 10);
  const auto a = first_fit_decreasing(sys);
  ASSERT_TRUE(a.has_value());
  // Heavies split; lights fill alongside.
  EXPECT_NE((*a)[1], (*a)[2]);
}

TEST(Partition, FfdFailsWhenNoFit) {
  const TaskSystem sys = make_sys({{2, 3}, {2, 3}, {2, 3}}, 2, 6);
  EXPECT_FALSE(first_fit_decreasing(sys).has_value());
}

// ---------------------------------------------------- partitioned Pfair

TEST(PartitionedPfair, PartitionedMeansAllMet) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(9, 4);  // 75%: usually partitionable
    cfg.horizon = 20;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const PartitionedPfairResult res = run_partitioned_pfair(sys);
    if (!res.partitioned) continue;
    EXPECT_TRUE(res.all_met) << "seed " << seed;
    // Assignment covers every task and respects per-processor load <= 1.
    std::vector<Rational> load(3);
    for (std::int64_t k = 0; k < sys.num_tasks(); ++k) {
      const int pi = res.assignment[static_cast<std::size_t>(k)];
      ASSERT_GE(pi, 0);
      load[static_cast<std::size_t>(pi)] += sys.task(k).weight().value();
    }
    for (const Rational& l : load) EXPECT_LE(l, Rational(1));
  }
}

TEST(PartitionedPfair, FailsExactlyWhereGlobalPfairSucceeds) {
  const TaskSystem sys = make_sys({{2, 3}, {2, 3}, {2, 3}}, 2, 12);
  EXPECT_FALSE(run_partitioned_pfair(sys).partitioned);
  const SlotSchedule global = schedule_sfq(sys);
  ASSERT_TRUE(global.complete());
  EXPECT_EQ(measure_tardiness(sys, global).max_ticks, 0);
}

// --------------------------------------------------------- adversary

TEST(Adversary, FindsTheFig2StyleMiss) {
  // On the paper's Fig. 2 system the search must find at least the
  // hand-crafted 1 - delta witness (it can toggle A_1/F_1 itself).
  const TaskSystem sys = fig6_system();
  AdversaryOptions opts;
  opts.sweeps = 2;
  opts.random_restarts = 1;
  const AdversaryResult res = find_adversarial_yields(sys, opts);
  EXPECT_EQ(res.max_tardiness_ticks, kTicksPerSlot - 1);
  EXPECT_GT(res.evaluations, 0);
  // The returned script reproduces the tardiness.
  const DvqSchedule sched = schedule_dvq(sys, *res.script);
  EXPECT_EQ(measure_tardiness(sys, sched).max_ticks,
            res.max_tardiness_ticks);
}

TEST(Adversary, NeverExceedsOneQuantum) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 2;
    cfg.target_util = Rational(2);
    cfg.horizon = 10;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    AdversaryOptions opts;
    opts.sweeps = 1;
    opts.random_restarts = 1;
    opts.seed = seed;
    const AdversaryResult res = find_adversarial_yields(sys, opts);
    EXPECT_LT(res.max_tardiness_ticks, kTicksPerSlot) << "seed " << seed;
  }
}

TEST(Adversary, ParameterValidation) {
  const TaskSystem sys = fig6_system();
  AdversaryOptions opts;
  opts.delta = Time();
  EXPECT_THROW((void)find_adversarial_yields(sys, opts), ContractViolation);
}

// ------------------------------------------------------- chrome trace

TEST(ChromeTrace, DvqEventsWellFormed) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  const std::string json = export_chrome_trace(sc.system, sched);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"A_1\""), std::string::npos);
  // A_1 runs [1, 2 - 1/4): ts 1000, dur 750.
  EXPECT_NE(json.find("\"ts\": 1000, \"dur\": 750"), std::string::npos)
      << json;
  // Balanced braces (cheap sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, SlotEventsWellFormed) {
  const TaskSystem sys = fig6_system();
  const std::string json = export_chrome_trace(sys, schedule_sfq(sys));
  EXPECT_NE(json.find("\"dur\": 1000"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace pfair
