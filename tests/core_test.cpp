// Unit tests for src/core: contracts, rationals, time, RNG, stats, pool.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "core/assert.hpp"
#include "core/rational.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"

namespace pfair {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, AssertThrowsContractViolation) {
  EXPECT_THROW(PFAIR_ASSERT(1 == 2), ContractViolation);
  EXPECT_NO_THROW(PFAIR_ASSERT(1 == 1));
}

TEST(Contracts, RequireCarriesMessage) {
  try {
    PFAIR_REQUIRE(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ---------------------------------------------------------------- rationals

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
  const Rational zero(0, 7);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), ContractViolation);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, DivisionByZeroRejected) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), ContractViolation);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(6, 7));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
}

TEST(Rational, LargeIntermediatesDoNotOverflow) {
  // (2^40/3) * (3/2^40) must reduce through 128-bit intermediates.
  const std::int64_t big = std::int64_t{1} << 40;
  EXPECT_EQ(Rational(big, 3) * Rational(3, big), Rational(1));
  EXPECT_EQ(Rational(big, 7) + Rational(-big, 7), Rational(0));
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3, 4).str(), "3/4");
  EXPECT_EQ(Rational(5).str(), "5");
}

TEST(Rational, FloorCeilDivMul) {
  EXPECT_EQ(floor_div_mul(7, 3, 4), 5);   // 21/4 = 5.25
  EXPECT_EQ(ceil_div_mul(7, 3, 4), 6);
  EXPECT_EQ(floor_div_mul(-7, 3, 4), -6);  // -5.25 -> -6
  EXPECT_EQ(ceil_div_mul(-7, 3, 4), -5);
  EXPECT_EQ(floor_div_mul(8, 3, 4), 6);   // exact
  EXPECT_EQ(ceil_div_mul(8, 3, 4), 6);
}

// --------------------------------------------------------------------- time

TEST(Time, SlotConstruction) {
  EXPECT_EQ(Time::slots(3).raw_ticks(), 3 * kTicksPerSlot);
  EXPECT_EQ(Time::slots(3).slot_floor(), 3);
  EXPECT_TRUE(Time::slots(3).is_slot_boundary());
}

TEST(Time, FractionalConstruction) {
  const Time t = Time::slots_frac(2, 1, 2);
  EXPECT_EQ(t.raw_ticks(), 2 * kTicksPerSlot + kTicksPerSlot / 2);
  EXPECT_EQ(t.slot_floor(), 2);
  EXPECT_EQ(t.slot_ceil(), 3);
  EXPECT_FALSE(t.is_slot_boundary());
}

TEST(Time, UnrepresentableFractionRejected) {
  EXPECT_THROW((void)Time::slots_frac(0, 1, 3), ContractViolation);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::slots(1) + Time::slots(2), Time::slots(3));
  EXPECT_EQ(kQuantum - kTick,
            Time::ticks(kTicksPerSlot - 1));
  EXPECT_LT(kQuantum - kTick, kQuantum);
}

TEST(Time, NegativeFloorCeil) {
  const Time t = Time::ticks(-1);
  EXPECT_EQ(t.slot_floor(), -1);
  EXPECT_EQ(t.slot_ceil(), 0);
}

TEST(Time, Str) {
  EXPECT_EQ(Time::slots(5).str(), "5");
  EXPECT_EQ((Time::slots(5) + kTick).str(), "5+1/2^20");
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_seed_mismatch = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    if (va != b.next_u64()) all_equal = false;
    if (va != c.next_u64()) any_diff_seed_mismatch = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_mismatch);
}

TEST(Rng, UniformInRangeAndCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformDegenerate) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform(5, 5), 5);
  EXPECT_THROW(rng.uniform(6, 5), ContractViolation);
}

TEST(Rng, ChanceEdges) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
  EXPECT_THROW(rng.chance(11, 10), ContractViolation);
}

TEST(Rng, ChanceFrequencyRoughlyCorrect) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(1, 4)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------------- stats

TEST(Stats, StreamingBasics) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  StreamingStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, EmptyAccessorsThrow) {
  const StreamingStats s;
  EXPECT_THROW((void)s.mean(), ContractViolation);
  EXPECT_THROW((void)s.min(), ContractViolation);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_THROW((void)percentile({}, 50), ContractViolation);
}

TEST(Stats, MaxTracker) {
  MaxTracker m;
  EXPECT_FALSE(m.seen());
  EXPECT_THROW((void)m.max(), ContractViolation);
  m.add(-5);
  m.add(3);
  m.add(1);
  EXPECT_EQ(m.max(), 3);
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainAndEmptyRange) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(
      10, 60, [&](std::int64_t i) { sum.fetch_add(i); }, 7);
  EXPECT_EQ(sum.load(), (10 + 59) * 50 / 2);
  pool.parallel_for(5, 5, [&](std::int64_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::int64_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(0, 50, [&](std::int64_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 50);
  }
}

}  // namespace
}  // namespace pfair
