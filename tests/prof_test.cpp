// Self-profiling span layer (obs/prof.hpp), histogram algebra
// (obs/metrics.hpp), and the scheduler-quality counters' incremental ==
// offline-recount contract (obs/quality.hpp, analysis/recount.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/recount.hpp"
#include "core/thread_pool.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/quality.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

using prof::Phase;
using prof::Profiler;
using prof::ProfScope;
using prof::ProfileSnapshot;

const ProfileSnapshot::PhaseEntry& entry(const ProfileSnapshot& snap,
                                         Phase p) {
  const ProfileSnapshot::PhaseEntry* e = snap.find(p);
  EXPECT_NE(e, nullptr) << "phase " << prof::to_string(p) << " missing";
  static ProfileSnapshot::PhaseEntry zero{};
  return e != nullptr ? *e : zero;
}

TEST(Prof, InactiveThreadRecordsNothing) {
  EXPECT_FALSE(prof::active());
  { PFAIR_PROF_SPAN(kSimulate); }  // no profiler installed: a no-op
  Profiler p;
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.threads, 0);
  EXPECT_EQ(snap.spans_recorded, 0u);
  EXPECT_EQ(snap.spans_dropped, 0u);
  EXPECT_TRUE(snap.phases.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST(Prof, NestedSpansTelescopeExactly) {
  Profiler p;
  {
    ProfScope scope(&p);
    EXPECT_TRUE(prof::active());
    PFAIR_PROF_SPAN(kSimulate);
    { PFAIR_PROF_SPAN(kCalendarWalk); }
    { PFAIR_PROF_SPAN(kReadyHeap); }
  }
  EXPECT_FALSE(prof::active());
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.threads, 1);
  EXPECT_EQ(snap.spans_recorded, 3u);
  const auto& sim = entry(snap, Phase::kSimulate);
  const auto& cal = entry(snap, Phase::kCalendarWalk);
  const auto& heap = entry(snap, Phase::kReadyHeap);
  EXPECT_EQ(sim.count, 1);
  EXPECT_EQ(cal.count, 1);
  EXPECT_EQ(heap.count, 1);
  // The parent's self time excludes exactly its children's totals, so
  // the tick arithmetic telescopes with no slack.
  EXPECT_EQ(sim.self_ticks,
            sim.total_ticks - cal.total_ticks - heap.total_ticks);
  // Leaves have no children: self == total.
  EXPECT_EQ(cal.self_ticks, cal.total_ticks);
  EXPECT_EQ(heap.self_ticks, heap.total_ticks);
  // Attributed time == the one top-level span's duration.
  const std::int64_t self_sum =
      sim.self_ticks + cal.self_ticks + heap.self_ticks;
  EXPECT_EQ(self_sum, sim.total_ticks);
}

void recurse(int depth) {
  PFAIR_PROF_SPAN(kAnalysis);
  if (depth > 1) recurse(depth - 1);
}

TEST(Prof, RecursiveSamePhaseSelfSumsToOutermostSpan) {
  Profiler p;
  {
    ProfScope scope(&p);
    recurse(5);
  }
  const ProfileSnapshot snap = p.snapshot();
  const auto& e = entry(snap, Phase::kAnalysis);
  EXPECT_EQ(e.count, 5);
  // total double-counts the nesting; self must not.  The sum of self
  // times equals the outermost (depth-0) span's duration exactly.
  ASSERT_EQ(snap.spans.size(), 5u);
  std::uint64_t outer_dur = 0;
  int depth0 = 0;
  for (const prof::SpanRecord& s : snap.spans) {
    EXPECT_EQ(s.phase, Phase::kAnalysis);
    if (s.depth == 0) {
      ++depth0;
      outer_dur = s.dur_ticks;
    }
  }
  EXPECT_EQ(depth0, 1);
  EXPECT_EQ(static_cast<std::uint64_t>(e.self_ticks), outer_dur);
  EXPECT_GE(e.total_ticks, e.self_ticks);
}

TEST(Prof, RingOverflowKeepsNewestAndCountsDrops) {
  Profiler p(/*ring_capacity=*/8);
  {
    ProfScope scope(&p);
    for (int i = 0; i < 100; ++i) {
      PFAIR_PROF_SPAN(kWarp);
    }
  }
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.spans_recorded, 100u);
  EXPECT_EQ(snap.spans_dropped, 92u);
  EXPECT_EQ(snap.spans.size(), 8u);
  // The per-phase accumulators are exact regardless of ring drops.
  EXPECT_EQ(entry(snap, Phase::kWarp).count, 100);
  // Newest kept: the retained spans are the run's last (and therefore
  // latest-starting) ones, sorted by start tick.
  for (std::size_t i = 1; i < snap.spans.size(); ++i) {
    EXPECT_GE(snap.spans[i].start_ticks, snap.spans[i - 1].start_ticks);
  }
}

TEST(Prof, NullScopeSuspendsAndRestores) {
  Profiler p;
  {
    ProfScope outer(&p);
    { PFAIR_PROF_SPAN(kWarp); }
    {
      ProfScope suspend(nullptr);
      EXPECT_FALSE(prof::active());
      PFAIR_PROF_SPAN(kFingerprint);  // must vanish
    }
    EXPECT_TRUE(prof::active());
    { PFAIR_PROF_SPAN(kWarp); }
  }
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(entry(snap, Phase::kWarp).count, 2);
  EXPECT_EQ(snap.find(Phase::kFingerprint), nullptr);
  EXPECT_EQ(snap.spans_recorded, 2u);
}

TEST(Prof, ThreadsMergeIntoOneSnapshot) {
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 10;
  Profiler p;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&p] {
      ProfScope scope(&p);
      for (int i = 0; i < kSpansEach; ++i) {
        PFAIR_PROF_SPAN(kSimulate);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const ProfileSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.threads, kThreads);
  EXPECT_EQ(snap.spans_recorded,
            static_cast<std::uint64_t>(kThreads * kSpansEach));
  EXPECT_EQ(entry(snap, Phase::kSimulate).count, kThreads * kSpansEach);
}

TEST(Prof, JsonAndMetricsExpositionsCarryTheSnapshot) {
  Profiler p;
  {
    ProfScope scope(&p);
    PFAIR_PROF_SPAN(kSimulate);
    { PFAIR_PROF_SPAN(kCalendarWalk); }
    { PFAIR_PROF_SPAN(kCalendarWalk); }
  }
  const ProfileSnapshot snap = p.snapshot();

  const JsonValue doc = parse_json(prof::profile_to_json(snap));
  const JsonValue& phases = doc.at("phases");
  EXPECT_EQ(phases.at("simulate").at("count").integer, 1);
  EXPECT_EQ(phases.at("calendar_walk").at("count").integer, 2);
  EXPECT_EQ(doc.at("spans_recorded").integer, 3);
  EXPECT_EQ(doc.at("clock").string, prof::clock_name());

  MetricsRegistry reg;
  prof::publish_profile(snap, reg);
  const MetricsSnapshot m = reg.snapshot();
  EXPECT_EQ(m.counter_or("prof.simulate.count"), 1);
  EXPECT_EQ(m.counter_or("prof.calendar_walk.count"), 2);
  EXPECT_GE(m.counter_or("prof.simulate.total_ns"),
            m.counter_or("prof.simulate.self_ns"));
}

// --- histogram algebra -------------------------------------------------

std::vector<std::int64_t> bucket_vector(const Histogram& h) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(Histogram::kBuckets));
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    v[static_cast<std::size_t>(b)] = h.bucket(b);
  }
  return v;
}

void expect_same(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(bucket_vector(a), bucket_vector(b));
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Histogram a;
  Histogram b;
  Histogram c;
  for (std::int64_t x : {0, 1, 2, 3, 1000}) a.add(x);
  for (std::int64_t x : {-5, 7, 1 << 20}) b.add(x);
  c.add(std::int64_t{1} << 40);  // c deliberately skewed; b holds x <= 0

  Histogram ab_c;  // (a + b) + c
  ab_c.merge_from(a);
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  Histogram a_bc;  // a + (b + c)
  {
    Histogram bc;
    bc.merge_from(b);
    bc.merge_from(c);
    a_bc.merge_from(a);
    a_bc.merge_from(bc);
  }
  Histogram cba;  // reversed order
  cba.merge_from(c);
  cba.merge_from(b);
  cba.merge_from(a);
  expect_same(ab_c, a_bc);
  expect_same(ab_c, cba);

  // Merging an empty histogram is the identity (sentinel min/max must
  // not leak through).
  Histogram with_empty;
  with_empty.merge_from(a);
  with_empty.merge_from(Histogram{});
  expect_same(with_empty, a);
}

TEST(Histogram, QuantilesMonotoneAndExactAtExtremes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q");
  for (std::int64_t i = 1; i <= 1000; ++i) h.add(i * i);
  const HistogramSnapshot snap = reg.snapshot().histograms.at("q");
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0 * 1000.0);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
  // The median of i^2 over i in [1,1000] is ~500^2; log2 buckets bound
  // the interpolation error to the bucket's value range (one octave).
  const double med = snap.quantile(0.5);
  EXPECT_GT(med, 500.0 * 500.0 / 2.0);
  EXPECT_LT(med, 500.0 * 500.0 * 2.0);
}

TEST(Histogram, ConcurrentAddAndMergeLoseNothing) {
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 20000;
  Histogram src;
  Histogram acc;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&src, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        src.add((t * kPerThread + i) % 4096);
      }
    });
  }
  // One thread repeatedly folds the (moving) source into an accumulator
  // while the adders hammer it: merge_from must stay safe, and a final
  // quiescent merge must observe every sample.
  workers.emplace_back([&src, &acc, &go] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 50; ++i) {
      Histogram scratch;
      scratch.merge_from(src);
      acc.merge_from(scratch);  // exercises concurrent-read safety
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(src.count(), kThreads * kPerThread);
  std::int64_t bucketed = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucketed += src.bucket(b);
  EXPECT_EQ(bucketed, src.count());
}

// --- quality counters: incremental == offline recount ------------------

constexpr Policy kAllPolicies[] = {Policy::kEpdf, Policy::kPf, Policy::kPd,
                                   Policy::kPd2};
constexpr int kSeeds = 25;

TaskSystem make_system(int seed) {
  GeneratorConfig cfg;
  cfg.processors = 2 + seed % 5;
  cfg.target_util = Rational(cfg.processors) - Rational(1, 2 + seed % 3);
  cfg.weights = static_cast<WeightClass>(seed % 4);
  cfg.horizon = 12 + (seed % 4) * 8;
  cfg.seed = 4242 + static_cast<std::uint64_t>(seed);
  TaskSystem sys = generate_periodic(cfg);
  const auto s = static_cast<std::uint64_t>(seed);
  switch (seed % 3) {
    case 1:
      sys = add_is_jitter(sys, 3, 1, 3, s);
      break;
    case 2:
      sys = advance_eligibility(sys, 2, 1, 4, s);
      break;
    default:
      break;
  }
  return sys;
}

struct FailureLog {
  std::mutex mu;
  std::atomic<int> count{0};
  std::string first;

  void record(const std::string& what) {
    count.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    if (first.empty()) first = what;
  }
};

TEST(Quality, SfqIncrementalMatchesRecountAcrossSeedsAndPolicies) {
  FailureLog failures;
  global_pool().parallel_for(0, kSeeds * 4, [&](std::int64_t i) {
    const int seed = static_cast<int>(i / 4);
    const Policy policy = kAllPolicies[i % 4];
    const TaskSystem sys = make_system(seed);
    SfqOptions opts;
    opts.policy = policy;
    QualityCounters live;
    opts.quality = &live;
    const SlotSchedule sched = schedule_sfq(sys, opts);
    if (!sched.complete()) return;  // recount needs a full schedule
    const QualityCounters offline = recount_quality(sys, sched);
    if (live != offline) {
      failures.record("seed " + std::to_string(seed) + " " +
                      to_string(policy) + ": " + quality_to_string(live) +
                      " vs recount " + quality_to_string(offline));
    }
  });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

TEST(Quality, DvqIncrementalMatchesRecountAcrossSeedsAndPolicies) {
  FailureLog failures;
  global_pool().parallel_for(0, kSeeds * 4, [&](std::int64_t i) {
    const int seed = static_cast<int>(i / 4);
    const Policy policy = kAllPolicies[i % 4];
    const TaskSystem sys = make_system(seed);
    const BernoulliYield yields(static_cast<std::uint64_t>(seed) * 7919 + 3,
                                1, 3, kTick, kQuantum - kTick);
    DvqOptions opts;
    opts.policy = policy;
    QualityCounters live;
    opts.quality = &live;
    const DvqSchedule sched = schedule_dvq(sys, yields, opts);
    if (!sched.complete()) return;
    const QualityCounters offline = recount_quality(sys, sched);
    if (live != offline) {
      failures.record("seed " + std::to_string(seed) + " " +
                      to_string(policy) + ": " + quality_to_string(live) +
                      " vs recount " + quality_to_string(offline));
    }
  });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
}

}  // namespace
}  // namespace pfair
